"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that fully offline environments without the ``wheel`` package can still do a
legacy editable install via ``python setup.py develop`` (modern
``pip install -e .`` requires building a wheel, which needs network access to
fetch the ``wheel`` backend on minimal machines).
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
