#!/usr/bin/env python
"""Network traffic monitoring: the paper's motivating application.

Builds an origin-destination traffic matrix from a synthetic packet stream
(heavy-tailed address popularity, a handful of supernodes, log-normal packet
sizes) using a hierarchical hypersparse matrix, and runs the analyses the
paper's introduction motivates:

* supernode detection (top talkers / top destinations and their traffic share),
* a gravity background model and anomaly scores for unexpected flows,
* per-window summary statistics exported while streaming continues.

Run:  python examples/network_traffic_analysis.py
"""

import numpy as np

from repro.analytics import (
    WindowedAnalyzer,
    degree_summary,
    top_anomalies,
    top_destinations,
    top_sources,
    traffic_share,
)
from repro.workloads import int_to_ipv4, synthetic_packets

PACKETS_PER_WINDOW = 20_000
N_WINDOWS = 10
CUTS = [2_048, 16_384, 131_072]


def main() -> None:
    analyzer = WindowedAnalyzer(cuts=CUTS, analysis_interval=5, top_k=5)

    print(f"streaming {N_WINDOWS} windows x {PACKETS_PER_WINDOW:,} packets ...")
    for batch in synthetic_packets(
        PACKETS_PER_WINDOW, N_WINDOWS, alpha=1.25, supernode_fraction=0.08, seed=42
    ):
        snapshot = analyzer.ingest(batch)
        if snapshot is not None:
            s = snapshot.summary
            print(
                f"  window {snapshot.window:>2}: {s['nnz']:>9,.0f} distinct flows, "
                f"{s['total_traffic']:>10,.0f} packets, "
                f"max out-degree {s['max_out_degree']:,.0f}"
            )

    matrix = analyzer.matrix
    stats = matrix.stats
    print(
        f"\ningest rate: {stats.updates_per_second:,.0f} updates/s "
        f"({stats.total_updates:,} packet observations)"
    )
    print(f"fast-memory write share: {stats.fast_memory_fraction:.3f}")

    # ------------------------------------------------------------------ #
    # supernodes
    # ------------------------------------------------------------------ #
    print("\ntop traffic sources (supernodes):")
    for node in top_sources(matrix, 5):
        addr = int_to_ipv4([node.identifier])[0]
        print(f"  {addr:<16} {node.traffic:>10,.0f} packets to {node.fan:>6,} destinations")

    print("top traffic destinations:")
    for node in top_destinations(matrix, 5):
        addr = int_to_ipv4([node.identifier])[0]
        print(f"  {addr:<16} {node.traffic:>10,.0f} packets from {node.fan:>6,} sources")

    src_share, dst_share = traffic_share(matrix, 10)
    print(
        f"top-10 sources carry {100 * src_share:.1f}% of traffic; "
        f"top-10 destinations receive {100 * dst_share:.1f}%"
    )

    # ------------------------------------------------------------------ #
    # background model / anomalies
    # ------------------------------------------------------------------ #
    print("\nmost anomalous flows versus the gravity background model:")
    for src, dst, score in top_anomalies(matrix, 5):
        print(
            f"  {int_to_ipv4([src])[0]:<16} -> {int_to_ipv4([dst])[0]:<16} "
            f"anomaly score {score:8.2f}"
        )

    summary = degree_summary(matrix)
    print(
        f"\nfinal traffic matrix: {summary['nnz']:,.0f} flows between "
        f"{summary['active_sources']:,.0f} sources and "
        f"{summary['active_destinations']:,.0f} destinations"
    )


if __name__ == "__main__":
    main()
