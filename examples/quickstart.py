#!/usr/bin/env python
"""Quickstart: streaming inserts into a hierarchical hypersparse matrix.

This is the smallest end-to-end use of the library:

1. create a hierarchical hypersparse matrix over the IPv4 x IPv4 space,
2. stream batches of power-law network updates into it,
3. compare its measured update rate with a flat (non-hierarchical) matrix,
4. materialise the matrix and read some entries back.

Run:  python examples/quickstart.py
"""

from repro import HierarchicalMatrix
from repro.baselines import FlatGraphBLASIngestor
from repro.workloads import IngestSession, paper_stream

TOTAL_UPDATES = 100_000
N_BATCHES = 50
CUTS = [4_096, 32_768, 262_144]  # layer thresholds c_1, c_2, c_3 (layer 4 unbounded)


def main() -> None:
    # --- 1. the hierarchical hypersparse matrix -------------------------- #
    matrix = HierarchicalMatrix(2**32, 2**32, "fp64", cuts=CUTS)
    print(f"created {matrix!r}")

    # --- 2. stream the paper's power-law workload ------------------------ #
    stream = paper_stream(total_entries=TOTAL_UPDATES, nbatches=N_BATCHES, seed=0)
    result = IngestSession(matrix, "hierarchical GraphBLAS").run(stream)
    print(
        f"hierarchical ingest: {result.total_updates:,} updates in "
        f"{result.elapsed_seconds:.2f} s -> {result.updates_per_second:,.0f} updates/s"
    )
    print(f"  cascades per layer:      {matrix.stats.cascades}")
    print(f"  element writes per layer: {matrix.stats.element_writes}")
    print(f"  fast-memory write share: {matrix.stats.fast_memory_fraction:.3f}")

    # --- 3. the flat baseline (what the hierarchy replaces) -------------- #
    flat = FlatGraphBLASIngestor(2**32, 2**32)
    flat_result = IngestSession(flat, "flat GraphBLAS").run(
        paper_stream(total_entries=TOTAL_UPDATES, nbatches=N_BATCHES, seed=0)
    )
    print(
        f"flat ingest:         {flat_result.total_updates:,} updates in "
        f"{flat_result.elapsed_seconds:.2f} s -> {flat_result.updates_per_second:,.0f} updates/s"
    )
    speedup = result.updates_per_second / flat_result.updates_per_second
    print(f"hierarchical speedup over flat: {speedup:.2f}x")

    # --- 4. query the logical matrix ------------------------------------- #
    logical = matrix.materialize()
    print(f"materialised traffic matrix: {logical.nvals:,} stored entries")
    rows, cols, vals = logical.extract_tuples()
    print("a few entries:")
    for i in range(min(3, rows.size)):
        print(f"  ({int(rows[i])}, {int(cols[i])}) -> {vals[i]:.0f}")
    # Both representations agree exactly (the hierarchy is purely a performance
    # transformation).
    assert logical.isclose(flat.materialize())
    print("hierarchical result identical to flat accumulation: OK")


if __name__ == "__main__":
    main()
