#!/usr/bin/env python
"""Reproduce Figure 2: aggregate update rate versus number of servers.

The paper's experiment is embarrassingly parallel: every process owns an
independent hierarchical hypersparse matrix and streams its own power-law
graph.  This example:

1. measures the per-instance update rate locally (one real ingest),
2. runs a small local parallel engine (independent workers whose rates add),
3. extrapolates to the MIT SuperCloud configuration (28 instances/node,
   up to 1,100 nodes) with the weak-scaling model,
4. prints the rate-versus-servers table next to the published Figure 2 curves.

Run:  python examples/supercloud_scaling.py
"""

from repro.baselines import PAPER_HEADLINE_RATE, HierarchicalD4MIngestor
from repro.core import HierarchicalMatrix
from repro.distributed import (
    ClusterConfig,
    ParallelIngestEngine,
    SuperCloudModel,
    build_figure2_table,
    format_table,
)
from repro.workloads import IngestSession, paper_stream

CUTS = [4_096, 32_768, 262_144]


def main() -> None:
    # --- 1. single-instance rate (the quantity everything scales from) --- #
    hier = HierarchicalMatrix(2**32, 2**32, "fp64", cuts=CUTS)
    hier_result = IngestSession(hier, "hierarchical GraphBLAS").run(
        paper_stream(total_entries=200_000, nbatches=50, seed=0)
    )
    print(
        f"single-instance hierarchical GraphBLAS rate: "
        f"{hier_result.updates_per_second:,.0f} updates/s"
    )

    d4m = HierarchicalD4MIngestor(cuts=[1_000, 10_000, 100_000])
    d4m_result = IngestSession(d4m, "hierarchical D4M").run(
        paper_stream(total_entries=10_000, nbatches=10, seed=0)
    )
    print(
        f"single-instance hierarchical D4M rate:       "
        f"{d4m_result.updates_per_second:,.0f} updates/s"
    )

    # --- 2. local parallel engine (independent workers, rates add) ------- #
    engine = ParallelIngestEngine(nworkers=2, cuts=CUTS, use_processes=False)
    parallel = engine.run(updates_per_worker=50_000, batch_size=10_000)
    print(
        f"\nlocal parallel engine ({parallel.nworkers} workers): "
        f"sum of per-worker rates = {parallel.aggregate_rate_sum:,.0f} updates/s"
    )

    # --- 3. SuperCloud projection ---------------------------------------- #
    model = SuperCloudModel(ClusterConfig.paper_configuration())
    projection = model.headline_projection(hier_result.updates_per_second)
    print("\nprojection to the paper's headline configuration:")
    print(f"  nodes x instances:        1,100 x 28 = {projection['instances']:,.0f}")
    print(f"  modelled aggregate rate:  {projection['aggregate_rate']:,.0f} updates/s")
    print(f"  paper headline rate:      {PAPER_HEADLINE_RATE:,} updates/s")
    print(f"  ratio (repro / paper):    {projection['ratio_to_paper']:.2f}x")

    # --- 4. the full Figure 2 table --------------------------------------- #
    rows = build_figure2_table(
        {
            "Hierarchical GraphBLAS (measured)": hier_result.updates_per_second,
            "Hierarchical D4M (measured)": d4m_result.updates_per_second,
        },
        server_counts=(1, 4, 16, 64, 256, 1100),
    )
    print("\nFigure 2 table (measured+model series alongside published curves):\n")
    print(format_table(rows))


if __name__ == "__main__":
    main()
