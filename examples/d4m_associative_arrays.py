#!/usr/bin/env python
"""D4M associative arrays: string-keyed traffic analysis.

Before the GraphBLAS hypersparse path, the paper's group analysed traffic with
D4M associative arrays — sparse matrices whose rows and columns are labelled by
arbitrary strings (IP addresses, domains, timestamps).  This example shows the
associative-array workflow on a small web-log-style dataset and the hierarchical
D4M cascade the paper uses as its main prior-work baseline:

* building an Assoc from string triples,
* addition (union of keys), subscripting by prefix/range, transpose,
* correlation queries (``sqIn`` / ``sqOut``),
* the hierarchical D4M ingestor versus flat D4M ingest.

Run:  python examples/d4m_associative_arrays.py
"""

import numpy as np

from repro.baselines import FlatD4MIngestor, HierarchicalD4MIngestor
from repro.d4m import Assoc
from repro.workloads import IngestSession, paper_stream


def build_weblog_assoc() -> Assoc:
    """A tiny web-log: who fetched what."""
    clients = [
        "10.0.0.1", "10.0.0.1", "10.0.0.2", "10.0.0.2",
        "10.0.0.3", "192.168.7.9", "192.168.7.9", "10.0.0.1",
    ]
    urls = [
        "/index.html", "/login", "/index.html", "/api/data",
        "/index.html", "/login", "/admin", "/api/data",
    ]
    return Assoc(clients, urls, 1.0)


def main() -> None:
    # ------------------------------------------------------------------ #
    # basic associative-array algebra
    # ------------------------------------------------------------------ #
    A = build_weblog_assoc()
    print(f"web-log associative array: {A!r}")
    print(A.display())

    # Another observation window arrives; adding Assocs unions the keys.
    B = Assoc(["10.0.0.9", "10.0.0.1"], ["/index.html", "/index.html"], 1.0)
    total = A + B
    print(f"\nafter adding a second window: {total.nnz} distinct (client, url) pairs")
    print(f"requests for /index.html by 10.0.0.1: {total.getval('10.0.0.1', '/index.html')}")

    # Subscripting by prefix: all clients in 10.0.0.0/24.
    internal = total["10.0.0.*", :]
    print(f"rows matching '10.0.0.*': {sorted(internal.row)}")

    # Column sums = requests per URL; row sums = requests per client.
    print("\nrequests per URL:")
    for _, url, count in total.sum_rows():
        print(f"  {url:<14} {count:.0f}")

    # Correlation: which URLs share clients (sqIn), which clients share URLs (sqOut).
    url_corr = total.sqin()
    print(
        "\nURLs co-requested by the same client "
        f"(e.g. /index.html & /login): {url_corr.getval('/index.html', '/login'):.0f}"
    )

    # ------------------------------------------------------------------ #
    # hierarchical D4M versus flat D4M ingest (the Fig. 2 baseline)
    # ------------------------------------------------------------------ #
    print("\ningesting a power-law stream through D4M associative arrays ...")
    hier = HierarchicalD4MIngestor(cuts=[500, 5_000, 50_000])
    flat = FlatD4MIngestor()
    stream = lambda: paper_stream(total_entries=8_000, nbatches=20, seed=3)  # noqa: E731
    hier_result = IngestSession(hier, "hierarchical D4M").run(stream())
    flat_result = IngestSession(flat, "flat D4M").run(stream())
    print(f"  hierarchical D4M: {hier_result.updates_per_second:,.0f} updates/s")
    print(f"  flat D4M:         {flat_result.updates_per_second:,.0f} updates/s")
    print(
        "  hierarchical/flat speedup: "
        f"{hier_result.updates_per_second / flat_result.updates_per_second:.2f}x"
    )
    assert hier.materialize() == flat.materialize()
    print("  both produce identical associative arrays: OK")


if __name__ == "__main__":
    main()
