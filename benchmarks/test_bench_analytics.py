"""Benchmark: incremental stats queries versus materialize-based analytics.

The tentpole claim of the incremental reduction subsystem is that the
monitoring analyses the paper motivates traffic matrices with (degree
summaries, supernode top-K) can be served *during* streaming — from the
running reduction vectors, without materialising the hierarchy and without
forcing the deferred layer-1 flush.  This harness measures exactly that:

* a hierarchical matrix is streamed to a state with populated layers *and* a
  pending layer-1 tail (the steady streaming state);
* the first incremental ``degree_summary`` query is timed (it pays the
  amortised catch-up of the deferred reduction buffers) and asserted not to
  have flushed the pending tail;
* the first materialize-based query is timed (it pays the flush plus the full
  layer merge), then both paths are timed in steady state (best-of-3);
* the same comparison runs against a sharded matrix (cross-shard incremental
  merge versus cross-shard materialize).

Both paths are asserted to return identical statistics before anything is
recorded.  Results land in the ``analytics`` section of
``BENCH_kernels.json`` next to the kernel and sharding trajectories.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analytics import degree_summary, out_degree, supernode_report
from repro.core import HierarchicalMatrix
from repro.distributed import ShardedHierarchicalMatrix
from repro.workloads import paper_stream

from .conftest import scaled, update_bench_json, write_report

pytestmark = pytest.mark.bench

TOTAL = scaled(300_000, minimum=30_000)
BATCH = max(TOTAL // 30, 1_000)
CUTS = [2 ** 13, 2 ** 16, 2 ** 19]

_results = {}


def _stream_into(matrix):
    nbatches = max(TOTAL // BATCH, 1)
    for batch in paper_stream(total_entries=TOTAL, nbatches=nbatches, seed=23):
        matrix.update(batch.rows, batch.cols, batch.values)


def _ensure_pending(matrix: HierarchicalMatrix) -> None:
    """Leave the matrix in the steady streaming state: a pending layer-1 tail."""
    rng = np.random.default_rng(99)
    for _ in range(3):
        if matrix.layers[0].has_pending:
            return
        rows = rng.integers(0, 2 ** 22, 200, dtype=np.uint64)
        matrix.update(rows, rows + 1, np.ones(200))
    assert matrix.layers[0].has_pending


def _best_of(n, fn):
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


class TestAnalyticsLatency:
    def test_single_instance(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        H = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        _stream_into(H)
        _ensure_pending(H)

        # Incremental first: pays the deferred-reduction catch-up, must not
        # flush the matrix.
        inc_summary, inc_first = _timed(lambda: degree_summary(H))
        assert H.layers[0].has_pending, "incremental stats must not force a flush"
        inc_steady = _best_of(3, lambda: degree_summary(H))
        inc_topk = _best_of(3, lambda: supernode_report(H, 10))

        # Materialize path second: its first query pays the flush + layer merge.
        mat_summary, mat_first = _timed(lambda: degree_summary(H, materialized=True))
        mat_steady = _best_of(3, lambda: degree_summary(H, materialized=True))
        mat_topk = _best_of(3, lambda: supernode_report(H, 10, materialized=True))

        assert inc_summary == mat_summary
        assert supernode_report(H, 10) == supernode_report(H, 10, materialized=True)
        assert out_degree(H, materialized=False).isequal(
            out_degree(H, materialized=True)
        )
        # The steady-state incremental query does strictly less work than the
        # materialize path (no layer merge, no transpose sort), so even noisy
        # shared runners must measure a speedup.
        assert inc_steady < mat_steady

        _results["single"] = {
            "total_updates": TOTAL,
            "nnz": int(inc_summary["nnz"]),
            "first_query_incremental_s": round(inc_first, 6),
            "first_query_materialize_s": round(mat_first, 6),
            "steady_incremental_s": round(inc_steady, 6),
            "steady_materialize_s": round(mat_steady, 6),
            "topk_incremental_s": round(inc_topk, 6),
            "topk_materialize_s": round(mat_topk, 6),
            "speedup_first_query": round(mat_first / inc_first, 2) if inc_first else 0.0,
            "speedup_steady": round(mat_steady / inc_steady, 2) if inc_steady else 0.0,
        }

    def test_sharded(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        with ShardedHierarchicalMatrix(4, cuts=CUTS) as S:
            _stream_into(S)
            inc_summary, inc_first = _timed(lambda: degree_summary(S))
            inc_steady = _best_of(3, lambda: degree_summary(S))
            mat_summary, mat_first = _timed(lambda: degree_summary(S, materialized=True))
            mat_steady = _best_of(3, lambda: degree_summary(S, materialized=True))
            assert inc_summary == mat_summary
        _results["sharded"] = {
            "shards": 4,
            "total_updates": TOTAL,
            "first_query_incremental_s": round(inc_first, 6),
            "first_query_materialize_s": round(mat_first, 6),
            "steady_incremental_s": round(inc_steady, 6),
            "steady_materialize_s": round(mat_steady, 6),
            "speedup_first_query": round(mat_first / inc_first, 2) if inc_first else 0.0,
            "speedup_steady": round(mat_steady / inc_steady, 2) if inc_steady else 0.0,
        }

    def test_tracker_drain_piggyback(self, benchmark):
        """Regression guard for the tracker-drain overhead fix.

        Deferred ingest appends to the layer-1 pending buffer and the
        tracker backlog in lockstep, so every layer-1 flush hands its
        already-sorted, duplicate-collapsed output to the tracker as an O(1)
        stashed run.  Pure streaming must therefore never pay a tracker-side
        sort over raw triples (``full_drains == 0`` — catch-ups merge
        pre-collapsed runs), and the total ingest overhead of tracking must
        stay well below the ~40-75% the tracker's own periodic re-sorts cost
        before the piggyback.
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        nbatches = max(TOTAL // BATCH, 1)
        batches = [
            (b.rows, b.cols, b.values)
            for b in paper_stream(total_entries=TOTAL, nbatches=nbatches, seed=23)
        ]

        tracked = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        untracked = HierarchicalMatrix(
            2 ** 32, 2 ** 32, cuts=CUTS, track_reductions=False
        )
        start = time.perf_counter()
        for rows, cols, vals in batches:
            untracked.update(rows, cols, vals)
        untracked_s = time.perf_counter() - start
        start = time.perf_counter()
        for rows, cols, vals in batches:
            tracked.update(rows, cols, vals)
        tracked_s = time.perf_counter() - start

        inc = tracked.incremental
        # Streaming alone: every window rode a flush; no raw-triple sort.
        assert inc.piggybacked_drains > 0
        assert inc.full_drains == 0
        # A mid-window query may drain the partial raw backlog the slow way
        # once (plus one more for the realigning flush below), then the next
        # flush window starts aligned and piggybacking resumes.
        degree_summary(tracked)
        tracked.flush()  # realigns buffer and backlog at a flush boundary
        full_after_query = inc.full_drains
        assert full_after_query <= 2
        before = inc.piggybacked_drains
        for rows, cols, vals in batches[:5]:
            tracked.update(rows, cols, vals)
        tracked.flush()
        assert inc.piggybacked_drains > before
        assert inc.full_drains == full_after_query

        overhead = tracked_s / untracked_s if untracked_s > 0 else 1.0
        # Measured ~1.03x at the default 300k scale (the tracker's own
        # periodic re-sorts cost 1.75x before the piggyback); 1.5 leaves
        # room for noisy shared runners while still catching a regression
        # back to per-window tracker sorts.
        assert overhead < 1.5
        _results["piggyback"] = {
            "total_updates": TOTAL,
            "tracked_ingest_s": round(tracked_s, 6),
            "untracked_ingest_s": round(untracked_s, 6),
            "tracking_overhead": round(overhead, 3),
            "piggybacked_drains": int(inc.piggybacked_drains),
            "run_merges": int(inc.run_merges),
            "full_drains": int(inc.full_drains),
        }

    def test_zz_report(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert "single" in _results and "sharded" in _results
        assert "piggyback" in _results
        s = _results["single"]
        d = _results["sharded"]
        p = _results["piggyback"]
        lines = [
            f"Analytics query latency: incremental vs materialize "
            f"({TOTAL:,} updates, cuts={CUTS})",
            "",
            f"{'configuration':<28} {'first query':>14} {'steady state':>14}",
            "-" * 58,
            f"{'single, incremental':<28} {s['first_query_incremental_s']:>12.6f} s "
            f"{s['steady_incremental_s']:>12.6f} s",
            f"{'single, materialize':<28} {s['first_query_materialize_s']:>12.6f} s "
            f"{s['steady_materialize_s']:>12.6f} s",
            f"{'single speedup':<28} {s['speedup_first_query']:>13.2f}x "
            f"{s['speedup_steady']:>13.2f}x",
            f"{'sharded(4), incremental':<28} {d['first_query_incremental_s']:>12.6f} s "
            f"{d['steady_incremental_s']:>12.6f} s",
            f"{'sharded(4), materialize':<28} {d['first_query_materialize_s']:>12.6f} s "
            f"{d['steady_materialize_s']:>12.6f} s",
            f"{'sharded speedup':<28} {d['speedup_first_query']:>13.2f}x "
            f"{d['speedup_steady']:>13.2f}x",
            "",
            "first query includes each path's one-time catch-up (deferred",
            "reduction drain vs forced flush + layer merge); the incremental",
            "path is asserted to leave the layer-1 pending buffer untouched.",
            "",
            f"tracker ingest overhead:     {p['tracking_overhead']:.3f}x "
            f"(tracked {p['tracked_ingest_s']:.3f}s vs untracked "
            f"{p['untracked_ingest_s']:.3f}s)",
            f"tracker drains:              {p['piggybacked_drains']} piggybacked "
            f"on layer-1 flushes, {p['run_merges']} pre-collapsed catch-ups, "
            f"{p['full_drains']} raw sorts",
        ]
        write_report(results_dir, "analytics_latency", lines)
        update_bench_json(
            results_dir,
            "analytics",
            {"cuts": CUTS, "single": s, "sharded": d, "piggyback": p},
        )
