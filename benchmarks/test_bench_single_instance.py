"""Headline A: single-instance streaming update rate.

The paper: "Hierarchical hypersparse matrices achieve over 1,000,000 updates
per second in a single instance."  This benchmark streams the paper's workload
(power-law edges in fixed-size batches) into one hierarchical hypersparse
matrix and into the flat baselines, and reports updates/second for each.

Expected shape (not absolute numbers): hierarchical GraphBLAS is the fastest,
flat GraphBLAS degrades as the accumulated matrix grows, and the D4M variants
sit well below their GraphBLAS counterparts because of string-key overhead.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.baselines import FlatD4MIngestor, FlatGraphBLASIngestor, HierarchicalD4MIngestor
from repro.core import HierarchicalMatrix
from repro.graphblas import coords
from repro.workloads import IngestSession, paper_stream

from .conftest import scaled, update_bench_json, write_report

pytestmark = pytest.mark.bench

#: Updates streamed per measured system (paper: 100,000,000 per process);
#: identity at the default REPRO_BENCH_SCALE, shrunk for smoke runs.
N_UPDATES = scaled(200_000, minimum=20_000)
N_BATCHES = 50
#: Much smaller stream for the slow D4M baselines so the harness stays quick.
N_UPDATES_D4M = scaled(10_000, minimum=5_000)
N_BATCHES_D4M = 10

#: Cuts scaled to this (laptop-sized) stream the same way the paper scales its
#: cuts to the cache hierarchy: the first layer holds ~2 batches, each later
#: layer 8x more, and the last layer is unbounded.
CUTS = [4_096, 32_768, 262_144]

#: Minimum accepted packed+deferred / eager-lexsort speedup.  2.0x is the
#: acceptance floor on a quiet machine; noisy shared CI runners can relax it
#: (the measured ratio is always recorded in BENCH_kernels.json regardless).
SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_SPEEDUP_FLOOR", "2.0"))

_RESULTS = {}


def _stream(total, nbatches, seed=0):
    return paper_stream(total_entries=total, nbatches=nbatches, seed=seed)


def _ingest(make_ingestor, total, nbatches, repeats=3):
    # Warm-up pass on a throwaway instance so one-time costs (imports, string
    # table setup, allocator growth) don't land on whichever system runs
    # first, then best-of-N so scheduler noise in any single pass can't
    # scramble the rate ordering the shape assertions check.
    IngestSession(make_ingestor(), "warmup").run(_stream(1_000, 2, seed=99))
    best = None
    for _ in range(repeats):
        result = IngestSession(make_ingestor(), "bench").run(_stream(total, nbatches))
        if best is None or result.updates_per_second > best.updates_per_second:
            best = result
    return best


class TestSingleInstanceRates:
    def test_hierarchical_graphblas(self, benchmark):
        result = benchmark.pedantic(
            _ingest,
            args=(lambda: HierarchicalMatrix(2**32, 2**32, "fp64", cuts=CUTS), N_UPDATES, N_BATCHES),
            rounds=1,
            iterations=1,
        )
        _RESULTS["hierarchical GraphBLAS"] = result.updates_per_second
        assert result.total_updates == N_UPDATES

    def test_flat_graphblas(self, benchmark):
        result = benchmark.pedantic(
            _ingest,
            args=(lambda: FlatGraphBLASIngestor(2**32, 2**32), N_UPDATES, N_BATCHES),
            rounds=1,
            iterations=1,
        )
        _RESULTS["flat GraphBLAS"] = result.updates_per_second

    def test_hierarchical_d4m(self, benchmark):
        # The D4M streams are tiny (milliseconds per pass) and the
        # hierarchical-vs-flat D4M margin is only ~10%, so take best-of-5 to
        # keep the zz shape assertion out of scheduler noise.
        result = benchmark.pedantic(
            _ingest,
            args=(lambda: HierarchicalD4MIngestor(cuts=[1000, 10_000, 100_000]), N_UPDATES_D4M, N_BATCHES_D4M, 5),
            rounds=1,
            iterations=1,
        )
        _RESULTS["hierarchical D4M"] = result.updates_per_second

    def test_flat_d4m(self, benchmark):
        result = benchmark.pedantic(
            _ingest,
            args=(lambda: FlatD4MIngestor(), N_UPDATES_D4M, N_BATCHES_D4M, 5),
            rounds=1,
            iterations=1,
        )
        _RESULTS["flat D4M"] = result.updates_per_second

    def test_zz_report_and_shape(self, benchmark, results_dir):
        """Emit the headline-A table and check the expected ordering."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
        assert "hierarchical GraphBLAS" in _RESULTS, "rate benchmarks must run first"
        lines = [
            "Headline A: single-instance streaming update rate",
            f"(workload: power-law stream, {N_UPDATES:,} updates for GraphBLAS systems, "
            f"{N_UPDATES_D4M:,} for D4M systems)",
            "",
            f"{'system':<28} {'updates/s':>15}",
            "-" * 44,
        ]
        for system, rate in sorted(_RESULTS.items(), key=lambda kv: -kv[1]):
            lines.append(f"{system:<28} {rate:>15,.0f}")
        lines += [
            "",
            "paper reference: > 1,000,000 updates/s per instance (SuiteSparse C library)",
        ]
        write_report(results_dir, "headline_a_single_instance", lines)

        update_bench_json(
            results_dir,
            "single_instance",
            {
                "n_updates": N_UPDATES,
                "n_updates_d4m": N_UPDATES_D4M,
                "cuts": CUTS,
                "updates_per_second": {k: round(v, 1) for k, v in _RESULTS.items()},
            },
        )

        # Shape assertions from the paper's comparison.
        assert _RESULTS["hierarchical GraphBLAS"] > _RESULTS["flat GraphBLAS"]
        assert _RESULTS["hierarchical GraphBLAS"] > _RESULTS["hierarchical D4M"]
        assert _RESULTS["hierarchical D4M"] > _RESULTS["flat D4M"]
        # Pure-Python substrate still clears 100k updates/s; the paper's 1e6/s
        # needed the C library, so we assert the order of magnitude only.
        assert _RESULTS["hierarchical GraphBLAS"] > 1e5


class TestDeferredPackedSpeedup:
    """Before/after comparison for this PR's streaming-insert optimisation.

    "Before" emulates the pre-packed engine exactly: packing disabled (every
    kernel on the dual-key lexsort path) and ``defer_ingest=False`` (eager
    sort + merge on every batch).  "After" is the default configuration:
    packed single-key kernels plus deferred layer-1 ingest.  Both ingest the
    identical stream and must produce the identical logical matrix.
    """

    def test_deferred_packed_vs_eager_lexsort(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        # The incremental-reduction tracker (PR 3) adds the same constant
        # per-batch cost to both configurations; it is disabled here so the
        # ratio isolates the PR-1 mechanism under measurement (packed keys +
        # deferred ingest).  The headline rate benchmarks above keep the
        # default configuration, tracker included.
        make_new = lambda: HierarchicalMatrix(
            2**32, 2**32, "fp64", cuts=CUTS, track_reductions=False
        )
        make_old = lambda: HierarchicalMatrix(
            2**32, 2**32, "fp64", cuts=CUTS, defer_ingest=False,
            track_reductions=False,
        )
        new_result = _ingest(make_new, N_UPDATES, N_BATCHES)
        with coords.packing_disabled():
            old_result = _ingest(make_old, N_UPDATES, N_BATCHES)
        speedup = new_result.updates_per_second / old_result.updates_per_second

        # Identical logical matrices: the optimisation is purely mechanical.
        check_new, check_old = make_new(), make_old()
        for batch in _stream(20_000, 10, seed=3):
            check_new.update(batch.rows, batch.cols, batch.values)
        with coords.packing_disabled():
            for batch in _stream(20_000, 10, seed=3):
                check_old.update(batch.rows, batch.cols, batch.values)
            assert check_new.materialize().isequal(check_old.materialize())

        lines = [
            "Streaming-insert hot path: packed + deferred vs pre-PR eager lexsort",
            f"(workload: power-law stream, {N_UPDATES:,} updates in {N_BATCHES} batches)",
            "",
            f"{'configuration':<36} {'updates/s':>15}",
            "-" * 52,
            f"{'packed kernels + deferred ingest':<36} {new_result.updates_per_second:>15,.0f}",
            f"{'lexsort kernels + eager ingest':<36} {old_result.updates_per_second:>15,.0f}",
            "",
            f"speedup: {speedup:.2f}x (acceptance floor: {SPEEDUP_FLOOR:.2f}x)",
        ]
        write_report(results_dir, "insert_rate_speedup", lines)
        update_bench_json(
            results_dir,
            "insert_rate",
            {
                "n_updates": N_UPDATES,
                "n_batches": N_BATCHES,
                "cuts": CUTS,
                "packed_deferred_updates_per_second": round(new_result.updates_per_second, 1),
                "eager_lexsort_updates_per_second": round(old_result.updates_per_second, 1),
                "speedup": round(speedup, 3),
            },
        )
        assert speedup >= SPEEDUP_FLOOR
