"""Headline A: single-instance streaming update rate.

The paper: "Hierarchical hypersparse matrices achieve over 1,000,000 updates
per second in a single instance."  This benchmark streams the paper's workload
(power-law edges in fixed-size batches) into one hierarchical hypersparse
matrix and into the flat baselines, and reports updates/second for each.

Expected shape (not absolute numbers): hierarchical GraphBLAS is the fastest,
flat GraphBLAS degrades as the accumulated matrix grows, and the D4M variants
sit well below their GraphBLAS counterparts because of string-key overhead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FlatD4MIngestor, FlatGraphBLASIngestor, HierarchicalD4MIngestor
from repro.core import HierarchicalMatrix
from repro.workloads import IngestSession, paper_stream

from .conftest import write_report

#: Updates streamed per measured system (paper: 100,000,000 per process).
N_UPDATES = 200_000
N_BATCHES = 50
#: Much smaller stream for the slow D4M baselines so the harness stays quick.
N_UPDATES_D4M = 10_000
N_BATCHES_D4M = 10

#: Cuts scaled to this (laptop-sized) stream the same way the paper scales its
#: cuts to the cache hierarchy: the first layer holds ~2 batches, each later
#: layer 8x more, and the last layer is unbounded.
CUTS = [4_096, 32_768, 262_144]

_RESULTS = {}


def _stream(total, nbatches, seed=0):
    return paper_stream(total_entries=total, nbatches=nbatches, seed=seed)


def _ingest(make_ingestor, total, nbatches):
    ingestor = make_ingestor()
    result = IngestSession(ingestor, "bench").run(_stream(total, nbatches))
    return result


class TestSingleInstanceRates:
    def test_hierarchical_graphblas(self, benchmark):
        result = benchmark.pedantic(
            _ingest,
            args=(lambda: HierarchicalMatrix(2**32, 2**32, "fp64", cuts=CUTS), N_UPDATES, N_BATCHES),
            rounds=1,
            iterations=1,
        )
        _RESULTS["hierarchical GraphBLAS"] = result.updates_per_second
        assert result.total_updates == N_UPDATES

    def test_flat_graphblas(self, benchmark):
        result = benchmark.pedantic(
            _ingest,
            args=(lambda: FlatGraphBLASIngestor(2**32, 2**32), N_UPDATES, N_BATCHES),
            rounds=1,
            iterations=1,
        )
        _RESULTS["flat GraphBLAS"] = result.updates_per_second

    def test_hierarchical_d4m(self, benchmark):
        result = benchmark.pedantic(
            _ingest,
            args=(lambda: HierarchicalD4MIngestor(cuts=[1000, 10_000, 100_000]), N_UPDATES_D4M, N_BATCHES_D4M),
            rounds=1,
            iterations=1,
        )
        _RESULTS["hierarchical D4M"] = result.updates_per_second

    def test_flat_d4m(self, benchmark):
        result = benchmark.pedantic(
            _ingest,
            args=(lambda: FlatD4MIngestor(), N_UPDATES_D4M, N_BATCHES_D4M),
            rounds=1,
            iterations=1,
        )
        _RESULTS["flat D4M"] = result.updates_per_second

    def test_zz_report_and_shape(self, benchmark, results_dir):
        """Emit the headline-A table and check the expected ordering."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
        assert "hierarchical GraphBLAS" in _RESULTS, "rate benchmarks must run first"
        lines = [
            "Headline A: single-instance streaming update rate",
            f"(workload: power-law stream, {N_UPDATES:,} updates for GraphBLAS systems, "
            f"{N_UPDATES_D4M:,} for D4M systems)",
            "",
            f"{'system':<28} {'updates/s':>15}",
            "-" * 44,
        ]
        for system, rate in sorted(_RESULTS.items(), key=lambda kv: -kv[1]):
            lines.append(f"{system:<28} {rate:>15,.0f}")
        lines += [
            "",
            "paper reference: > 1,000,000 updates/s per instance (SuiteSparse C library)",
        ]
        write_report(results_dir, "headline_a_single_instance", lines)

        # Shape assertions from the paper's comparison.
        assert _RESULTS["hierarchical GraphBLAS"] > _RESULTS["flat GraphBLAS"]
        assert _RESULTS["hierarchical GraphBLAS"] > _RESULTS["hierarchical D4M"]
        assert _RESULTS["hierarchical D4M"] > _RESULTS["flat D4M"]
        # Pure-Python substrate still clears 100k updates/s; the paper's 1e6/s
        # needed the C library, so we assert the order of magnitude only.
        assert _RESULTS["hierarchical GraphBLAS"] > 1e5
