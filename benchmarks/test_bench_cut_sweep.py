"""Ablation 1: tunability of the cut parameters.

The paper: "The parameters of hierarchical hypersparse matrices rely on
controlling the number of entries in each level in the hierarchy before an
update is cascaded.  The parameters are easily tunable to achieve optimal
performance for a variety of applications."

This benchmark sweeps the first-layer cut and the number of levels for a fixed
stream and reports updates/second for each configuration.  Expected shape: an
interior optimum — cuts far smaller than the batch size cascade constantly,
cuts far larger than the distinct-entry count make layer 1 as slow as a flat
matrix — and multi-level hierarchies beat 2-level ones once the stream is
large relative to the first cut.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GeometricCuts, HierarchicalMatrix
from repro.workloads import IngestSession, paper_stream

from .conftest import write_report

pytestmark = pytest.mark.bench

N_UPDATES = 100_000
N_BATCHES = 50

#: First-layer cuts swept (batch size is N_UPDATES / N_BATCHES = 2,000).
FIRST_CUTS = [256, 2_048, 16_384, 131_072, 1_048_576]
#: Level counts swept at a fixed geometric ratio.
LEVEL_COUNTS = [2, 3, 4, 5]

_sweep_results = {}


def _run_with_cuts(cuts):
    H = HierarchicalMatrix(2**32, 2**32, "fp64", cuts=cuts)
    result = IngestSession(H, f"cuts={cuts}").run(
        paper_stream(total_entries=N_UPDATES, nbatches=N_BATCHES, seed=0)
    )
    return result, H


class TestCutSweep:
    @pytest.mark.parametrize("first_cut", FIRST_CUTS)
    def test_first_cut_sweep(self, benchmark, first_cut):
        cuts = GeometricCuts(first_cut=first_cut, ratio=8, nlevels_total=4).initial_cuts()
        (result, H) = benchmark.pedantic(_run_with_cuts, args=(cuts,), rounds=1, iterations=1)
        _sweep_results[("first_cut", first_cut)] = (
            result.updates_per_second,
            H.stats.cascades,
            H.stats.fast_memory_fraction,
        )
        assert result.total_updates == N_UPDATES

    @pytest.mark.parametrize("nlevels", LEVEL_COUNTS)
    def test_level_count_sweep(self, benchmark, nlevels):
        cuts = GeometricCuts(first_cut=2_048, ratio=16, nlevels_total=nlevels).initial_cuts()
        (result, H) = benchmark.pedantic(_run_with_cuts, args=(cuts,), rounds=1, iterations=1)
        _sweep_results[("nlevels", nlevels)] = (
            result.updates_per_second,
            H.stats.cascades,
            H.stats.fast_memory_fraction,
        )

    def test_zz_report_and_shape(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
        assert _sweep_results, "sweep benchmarks must run first"
        lines = [
            "Ablation 1: cut-parameter sweep",
            f"(workload: {N_UPDATES:,} power-law updates in {N_BATCHES} batches)",
            "",
            f"{'configuration':<28} {'updates/s':>13} {'cascades':>22} {'fast-mem frac':>14}",
            "-" * 82,
        ]
        for (kind, value), (rate, cascades, frac) in _sweep_results.items():
            label = f"first_cut={value}" if kind == "first_cut" else f"levels={value}"
            lines.append(f"{label:<28} {rate:>13,.0f} {str(cascades):>22} {frac:>14.3f}")
        lines += [
            "",
            "expected shape: interior optimum over first_cut; very small cuts cascade",
            "constantly, very large cuts degenerate toward flat accumulation.",
        ]
        write_report(results_dir, "ablation1_cut_sweep", lines)

        rates = {k: v[0] for k, v in _sweep_results.items() if k[0] == "first_cut"}
        best_cut = max(rates, key=rates.get)[1]
        # The optimum is interior or at least not the smallest cut (cascade thrash).
        assert best_cut != FIRST_CUTS[0]
        # Tunability is real: the best configuration beats the worst by a clear margin.
        assert max(rates.values()) > 1.2 * min(rates.values())
