"""Cluster serving sweep: measured multi-node socket rates vs the model.

The paper's scaling study is modelled (we cannot rent 1,100 SuperCloud
nodes), and until PR 7 the :class:`~repro.distributed.SuperCloudModel` was
only ever fed rates measured from *forked* workers inside one process tree.
The socket transport makes the model's unit of measurement real: each
:class:`~repro.distributed.NodeAgent` is a "server node" hosting a fixed
number of shard workers, exactly the paper's processes-per-node shape, so the
sweep can compare the model's prediction against a genuinely multi-node
measured aggregate on the same machine:

* 1 and 2 local agents each host ``WORKERS_PER_AGENT`` workers; the same
  externally routed stream shape (fixed updates per worker — weak scaling,
  the paper's experimental shape) runs against every agent count.
* The 1-agent run's mean per-worker rate seeds the model; the model's
  zero-overhead prediction for ``n`` agents is compared with the measured
  per-worker rate sum (the paper's aggregation) at ``n`` agents.
* The same measured per-worker rate also seeds the paper-configuration
  headline projection (31,000 instances / 1,100 nodes), connecting the local
  socket measurement to the reproduction's Figure-2 machinery.
* A replicated point (PR 9) re-runs the largest agent count with
  ``replicas=1`` so the sweep records what barrier-ordered mirrored
  mutation costs relative to the unreplicated rate on the same wire.

All local agents share one machine's cores, so the measured-vs-predicted
ratio quantifies how far shared-CPU contention (and the routing parent)
bends the embarrassingly-parallel assumption — informational, not gated.
Recorded as ``cluster_sweep.txt`` and the ``cluster`` section of
``BENCH_kernels.json``; run with ``-k cluster``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.distributed import (
    ClusterConfig,
    ShardedHierarchicalMatrix,
    SuperCloudModel,
    spawn_local_agents,
)
from repro.workloads import paper_stream

from .conftest import scaled, update_bench_json, write_report

pytestmark = [
    pytest.mark.bench,
    pytest.mark.skipif(not hasattr(os, "fork"), reason="NodeAgent requires os.fork"),
]

AGENT_COUNTS = [1, 2]
WORKERS_PER_AGENT = 2
PER_WORKER = scaled(50_000, minimum=5_000)
CUTS = [2 ** 15, 2 ** 18, 2 ** 21]
# Replication factor for the replicated sweep point (PR 9): the same stream
# shape at the largest agent count, with every shard mirrored once.  The
# measured rate_sum/rate_wall gap vs the unreplicated point is the cost of
# barrier-ordered mirrored mutation on this wire.
REPLICAS = 1


def _run_cluster(nagents: int, replicas: int = 0) -> dict:
    """Stream PER_WORKER updates per worker through nagents local agents."""
    nshards = nagents * WORKERS_PER_AGENT
    total = PER_WORKER * nshards
    batches = list(
        paper_stream(total_entries=total, nbatches=max(total // 10_000, 1), seed=11)
    )
    with spawn_local_agents(nagents) as (addresses, _procs):
        with ShardedHierarchicalMatrix(
            nshards,
            2 ** 32,
            2 ** 32,
            cuts=CUTS,
            use_processes=True,
            transport="socket",
            nodes=addresses,
            replicas=replicas,
        ) as matrix:
            assert matrix.transport == "socket"
            wall_start = time.perf_counter()
            for b in batches:
                matrix.update(b.rows, b.cols, b.values)
            matrix.finalize()
            wall = time.perf_counter() - wall_start
            reports = matrix.reports()
            nvals = matrix.materialize().nvals
    worker_rates = [r.updates_per_second for r in reports]
    total_updates = sum(r.total_updates for r in reports)
    assert total_updates == total
    return {
        "agents": nagents,
        "replicas": replicas,
        "workers": nshards,
        "total_updates": total_updates,
        "wall_seconds": round(wall, 6),
        "worker_rates": [round(r, 1) for r in worker_rates],
        "rate_sum": round(sum(worker_rates), 1),
        "rate_wall": round(total_updates / wall if wall > 0 else 0.0, 1),
        "global_nvals": nvals,
    }


class TestClusterServing:
    def test_cluster_sweep(self, benchmark, results_dir):
        """Measured multi-agent aggregate vs the SuperCloud model's prediction."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        measured = {n: _run_cluster(n) for n in AGENT_COUNTS}

        base = measured[AGENT_COUNTS[0]]
        per_instance = base["rate_sum"] / base["workers"]
        # The local topology with the overhead terms zeroed: the model then
        # predicts the pure independent-instances sum, so any measured gap is
        # attributable to sharing one machine rather than to the model shape.
        local_model = SuperCloudModel(
            ClusterConfig(
                max_nodes=max(AGENT_COUNTS),
                processes_per_node=WORKERS_PER_AGENT,
                launch_overhead_seconds=0.0,
                per_node_launch_seconds=0.0,
                straggler_fraction=0.0,
            )
        )
        sweep = []
        for n in AGENT_COUNTS:
            point = local_model.aggregate_rate(per_instance, n)
            m = measured[n]
            ratio = m["rate_sum"] / point.aggregate_rate if point.aggregate_rate else 0.0
            sweep.append(
                {**m, "predicted_rate": round(point.aggregate_rate, 1), "measured_over_predicted": round(ratio, 4)}
            )
        headline = SuperCloudModel().headline_projection(per_instance)

        # Replicated point (PR 9): the same stream shape at the largest agent
        # count with every shard mirrored once.  Mirrors ride the same ingest
        # fan-out as primaries, so the rate gap vs the unreplicated point is
        # the measured price of barrier-ordered replication on this wire.
        top = max(AGENT_COUNTS)
        replicated = _run_cluster(top, replicas=REPLICAS)
        unreplicated = measured[top]
        replication_cost = (
            replicated["rate_wall"] / unreplicated["rate_wall"]
            if unreplicated["rate_wall"]
            else 0.0
        )

        header = (
            f"{'agents':>7} {'workers':>8} {'updates':>11} {'measured sum':>14} "
            f"{'predicted':>14} {'meas/pred':>10} {'rate wall':>13}"
        )
        lines = [
            "Cluster serving sweep: socket wire through local NodeAgents "
            f"({WORKERS_PER_AGENT} workers per agent, {PER_WORKER:,} updates per worker)",
            "",
            header,
            "-" * len(header),
        ]
        for m in sweep:
            lines.append(
                f"{m['agents']:>7} {m['workers']:>8} {m['total_updates']:>11,} "
                f"{m['rate_sum']:>14,.0f} {m['predicted_rate']:>14,.0f} "
                f"{m['measured_over_predicted']:>10.3f} {m['rate_wall']:>13,.0f}"
            )
        lines += [
            "",
            f"replicated point ({top} agents, replicas={REPLICAS}, mirrored mutation):",
            f"  rate wall {replicated['rate_wall']:>13,.0f} updates/s "
            f"({replication_cost:.3f} of the unreplicated rate at the same "
            "agent count)",
            "",
            "predicted is the SuperCloud model seeded with the 1-agent mean",
            "per-worker rate and all launch/straggler overheads zeroed — the",
            "pure independent-instances sum.  meas/pred below 1.0 is the cost",
            "of the agents sharing one machine's cores and routing parent.",
            "",
            "paper-configuration projection from the same measured rate:",
            f"  {headline['instances']:,} instances on {headline['nodes']:,} nodes -> "
            f"{headline['aggregate_rate']:.3e} updates/s "
            f"({headline['ratio_to_paper']:.3f} of the paper's 75e9/s headline)",
        ]
        write_report(results_dir, "cluster_sweep", lines)
        update_bench_json(
            results_dir,
            "cluster",
            {
                "workers_per_agent": WORKERS_PER_AGENT,
                "per_worker_updates": PER_WORKER,
                "cuts": CUTS,
                "per_instance_rate": round(per_instance, 1),
                "sweep": sweep,
                "replicated_point": {
                    **replicated,
                    "rate_vs_unreplicated": round(replication_cost, 4),
                },
                "headline_projection": {
                    k: (round(v, 4) if isinstance(v, float) else v)
                    for k, v in headline.items()
                },
            },
        )
