"""Strong/weak-scaling benchmark of the sharded streaming engine.

The paper's headline aggregate rate is a sum over independent instances; the
sharded engine reproduces that sum as one logical matrix.  This harness sweeps
the shard count two ways and records the trajectory into
``BENCH_kernels.json``:

* **strong scaling** — a fixed external stream is routed across 1, 2, 4
  shards; per-shard measured rates are summed (the paper's aggregation) and
  the single-clock wall rate is recorded alongside.
* **weak scaling** — the stream grows with the shard count (fixed updates per
  shard), the paper's actual experimental shape.

Shards run as real worker processes when the platform can fork (matching the
serving configuration); a correctness gate asserts the sharded result stays
bit-identical to a flat hierarchical matrix fed the same stream.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import HierarchicalMatrix
from repro.distributed import ShardedHierarchicalMatrix
from repro.workloads import paper_stream

from .conftest import scaled, update_bench_json, write_report

pytestmark = pytest.mark.bench

SHARD_COUNTS = [1, 2, 4]
STRONG_TOTAL = scaled(200_000, minimum=20_000)
WEAK_PER_SHARD = scaled(100_000, minimum=10_000)
BATCH = max(STRONG_TOTAL // 20, 1_000)
CUTS = [2 ** 15, 2 ** 18, 2 ** 21]
USE_PROCESSES = hasattr(os, "fork")

_strong = {}
_weak = {}


def _run_sharded(nshards: int, total: int):
    """Route one externally generated stream across nshards; return metrics."""
    batches = list(paper_stream(total_entries=total, nbatches=max(total // BATCH, 1), seed=7))
    matrix = ShardedHierarchicalMatrix(
        nshards,
        2 ** 32,
        2 ** 32,
        cuts=CUTS,
        use_processes=USE_PROCESSES and nshards > 1,
    )
    with matrix:
        wall_start = time.perf_counter()
        for batch in batches:
            matrix.update(batch.rows, batch.cols, batch.values)
        matrix.finalize()
        wall = time.perf_counter() - wall_start
        reports = matrix.reports()
        nvals = matrix.materialize().nvals
    total_updates = sum(r.total_updates for r in reports)
    return {
        "shards": nshards,
        "total_updates": total_updates,
        "wall_seconds": round(wall, 6),
        "rate_sum": round(sum(r.updates_per_second for r in reports), 1),
        "rate_wall": round(total_updates / wall if wall > 0 else 0.0, 1),
        "global_nvals": nvals,
    }


class TestShardedScaling:
    def test_equivalence_gate(self, benchmark):
        """Before timing anything: sharded == flat on this workload."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        total = min(STRONG_TOTAL, 20_000)
        batches = list(paper_stream(total_entries=total, nbatches=10, seed=7))
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for b in batches:
            flat.update(b.rows, b.cols, b.values)
        with ShardedHierarchicalMatrix(4, cuts=CUTS) as sharded:
            for b in batches:
                sharded.update(b.rows, b.cols, b.values)
            assert sharded.materialize().isequal(flat.materialize())

    @pytest.mark.parametrize("nshards", SHARD_COUNTS)
    def test_strong_scaling(self, benchmark, nshards):
        """Fixed stream of STRONG_TOTAL updates, swept over shard counts."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        _strong[nshards] = _run_sharded(nshards, STRONG_TOTAL)
        assert _strong[nshards]["total_updates"] == STRONG_TOTAL

    @pytest.mark.parametrize("nshards", SHARD_COUNTS)
    def test_weak_scaling(self, benchmark, nshards):
        """Stream grows with the shard count: WEAK_PER_SHARD updates each."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        _weak[nshards] = _run_sharded(nshards, WEAK_PER_SHARD * nshards)
        assert _weak[nshards]["total_updates"] == WEAK_PER_SHARD * nshards

    def test_zz_scaling_report(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert len(_strong) == len(SHARD_COUNTS)
        assert len(_weak) == len(SHARD_COUNTS)
        header = (
            f"{'shards':>7} {'updates':>12} {'wall s':>9} "
            f"{'rate sum':>14} {'rate wall':>14}"
        )
        lines = [
            "Sharded streaming engine scaling "
            f"(processes={USE_PROCESSES}, batch={BATCH:,}, cuts={CUTS})",
            "",
            f"strong scaling: {STRONG_TOTAL:,} total updates, externally fed",
            header,
            "-" * len(header),
        ]
        for k in SHARD_COUNTS:
            m = _strong[k]
            lines.append(
                f"{m['shards']:>7} {m['total_updates']:>12,} {m['wall_seconds']:>9.3f} "
                f"{m['rate_sum']:>14,.0f} {m['rate_wall']:>14,.0f}"
            )
        lines += [
            "",
            f"weak scaling: {WEAK_PER_SHARD:,} updates per shard",
            header,
            "-" * len(header),
        ]
        for k in SHARD_COUNTS:
            m = _weak[k]
            lines.append(
                f"{m['shards']:>7} {m['total_updates']:>12,} {m['wall_seconds']:>9.3f} "
                f"{m['rate_sum']:>14,.0f} {m['rate_wall']:>14,.0f}"
            )
        lines += [
            "",
            "rate sum is the paper's aggregation (independent per-shard clocks);",
            "rate wall is the stricter single-clock rate including routing and IPC.",
        ]
        write_report(results_dir, "sharded_scaling", lines)
        update_bench_json(
            results_dir,
            "sharded",
            {
                "use_processes": USE_PROCESSES,
                "batch_size": BATCH,
                "cuts": CUTS,
                "strong": [_strong[k] for k in SHARD_COUNTS],
                "weak": [_weak[k] for k in SHARD_COUNTS],
            },
        )
