"""Strong/weak-scaling benchmark of the sharded streaming engine.

The paper's headline aggregate rate is a sum over independent instances; the
sharded engine reproduces that sum as one logical matrix.  This harness sweeps
the shard count two ways and records the trajectory into
``BENCH_kernels.json``:

* **strong scaling** — a fixed external stream is routed across 1, 2, 4
  shards; per-shard measured rates are summed (the paper's aggregation) and
  the single-clock wall rate is recorded alongside.
* **weak scaling** — the stream grows with the shard count (fixed updates per
  shard), the paper's actual experimental shape.
* **transport sweep (PR 4, socket added in PR 7)** — the same fixed stream
  through process-backed workers on each transport (``queue`` pickled FIFO
  queues vs ``shm`` shared-memory ring buffers vs ``socket`` TCP streams to
  local :class:`~repro.distributed.NodeAgent` endpoints), quantifying how
  much of the ``rate_wall`` vs ``rate_sum`` gap is pickle/unpickle and
  kernel-boundary overhead.  Recorded into the ``sharded`` section of
  ``BENCH_kernels.json`` and reported as ``transport_sweep.txt`` (a CI
  artifact next to ``sharded_scaling.txt``).

Shards run as real worker processes when the platform can fork (matching the
serving configuration); a correctness gate asserts the sharded result stays
bit-identical to a flat hierarchical matrix fed the same stream on every
transport.
"""

from __future__ import annotations

import contextlib
import os
import time

import numpy as np
import pytest

from repro.core import HierarchicalMatrix
from repro.distributed import ShardedHierarchicalMatrix, spawn_local_agents
from repro.workloads import paper_stream
from repro.workloads.powerlaw import powerlaw_edges

from .conftest import scaled, update_bench_json, write_report

pytestmark = pytest.mark.bench

SHARD_COUNTS = [1, 2, 4]
TRANSPORTS = ["queue", "shm", "socket"]
STRONG_TOTAL = scaled(200_000, minimum=20_000)
WEAK_PER_SHARD = scaled(100_000, minimum=10_000)
BATCH = max(STRONG_TOTAL // 20, 1_000)
CUTS = [2 ** 15, 2 ** 18, 2 ** 21]
USE_PROCESSES = hasattr(os, "fork")

_strong = {}
_weak = {}
_transport = {}
_rebalance = {}

#: Rebalance sweep shape: a skewed stream whose active rows occupy only the
#: bottom 2^24 of the 2^32 row space — under the uniform range partition every
#: key lands on shard 0, the worst case live rebalancing exists to fix.
REB_SHARDS = 4
REB_TOTAL = scaled(120_000, minimum=12_000)
REB_NODES = 2 ** 24


def _skewed_batches(total: int, batch: int):
    """Power-law batches confined to a narrow row prefix (subnet-style skew)."""
    out = []
    done = 0
    b = 0
    while done < total:
        n = min(batch, total - done)
        rows, cols = powerlaw_edges(n, nnodes=REB_NODES, seed=101 + b)
        out.append((rows, cols, np.ones(n)))
        done += n
        b += 1
    return out


@contextlib.contextmanager
def _wire_kwargs(transport: str, nagents: int = 2):
    """Transport kwargs, spinning up local NodeAgents for the socket wire."""
    with contextlib.ExitStack() as stack:
        kwargs = {"transport": transport}
        if transport == "socket":
            if not USE_PROCESSES:
                pytest.skip("socket transport requires os.fork")
            addresses, _procs = stack.enter_context(spawn_local_agents(nagents))
            kwargs["nodes"] = addresses
        yield kwargs


def _run_sharded(
    nshards: int,
    total: int,
    *,
    transport: str = "queue",
    force_processes: bool = None,
):
    """Route one externally generated stream across nshards; return metrics."""
    batches = list(paper_stream(total_entries=total, nbatches=max(total // BATCH, 1), seed=7))
    use_processes = (
        force_processes
        if force_processes is not None
        else USE_PROCESSES and nshards > 1
    )
    with contextlib.ExitStack() as stack:
        wire_kwargs = stack.enter_context(_wire_kwargs(transport))
        matrix = stack.enter_context(
            ShardedHierarchicalMatrix(
                nshards,
                2 ** 32,
                2 ** 32,
                cuts=CUTS,
                use_processes=use_processes,
                **wire_kwargs,
            )
        )
        wire = matrix.transport  # the wire in force, not merely requested
        wall_start = time.perf_counter()
        for batch in batches:
            matrix.update(batch.rows, batch.cols, batch.values)
        matrix.finalize()
        wall = time.perf_counter() - wall_start
        reports = matrix.reports()
        nvals = matrix.materialize().nvals
    total_updates = sum(r.total_updates for r in reports)
    return {
        "shards": nshards,
        "transport": wire,
        "total_updates": total_updates,
        "wall_seconds": round(wall, 6),
        "rate_sum": round(sum(r.updates_per_second for r in reports), 1),
        "rate_wall": round(total_updates / wall if wall > 0 else 0.0, 1),
        "global_nvals": nvals,
    }


class TestShardedScaling:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_equivalence_gate(self, benchmark, transport):
        """Before timing anything: sharded == flat, on every transport."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        total = min(STRONG_TOTAL, 20_000)
        batches = list(paper_stream(total_entries=total, nbatches=10, seed=7))
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for b in batches:
            flat.update(b.rows, b.cols, b.values)
        with _wire_kwargs(transport) as wire_kwargs:
            with ShardedHierarchicalMatrix(
                4, cuts=CUTS, use_processes=USE_PROCESSES, **wire_kwargs
            ) as sharded:
                for b in batches:
                    sharded.update(b.rows, b.cols, b.values)
                assert sharded.materialize().isequal(flat.materialize())

    @pytest.mark.parametrize("nshards", SHARD_COUNTS)
    def test_strong_scaling(self, benchmark, nshards):
        """Fixed stream of STRONG_TOTAL updates, swept over shard counts."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        _strong[nshards] = _run_sharded(nshards, STRONG_TOTAL)
        assert _strong[nshards]["total_updates"] == STRONG_TOTAL

    @pytest.mark.parametrize("nshards", SHARD_COUNTS)
    def test_weak_scaling(self, benchmark, nshards):
        """Stream grows with the shard count: WEAK_PER_SHARD updates each."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        _weak[nshards] = _run_sharded(nshards, WEAK_PER_SHARD * nshards)
        assert _weak[nshards]["total_updates"] == WEAK_PER_SHARD * nshards

    @pytest.mark.parametrize("nshards", SHARD_COUNTS)
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_transport_sweep(self, benchmark, transport, nshards):
        """The same stream through real processes on each transport.

        Unlike the strong/weak sweeps this forces worker processes even for
        one shard, so the recorded numbers isolate the IPC wire itself —
        the ``queue``-vs-``shm`` delta is the pickle/unpickle cost the ring
        removes from the ingest path.
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        m = _run_sharded(
            nshards, STRONG_TOTAL, transport=transport, force_processes=USE_PROCESSES
        )
        _transport[(transport, nshards)] = m
        assert m["total_updates"] == STRONG_TOTAL

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_rebalance_sweep(self, benchmark, transport, results_dir):
        """Skewed-stream live rebalancing vs the static range partition (PR 5).

        The same skewed stream (every key in shard 0's uniform range slab)
        runs twice: once static, once with the auto policy interleaving
        migrations with ingest — the stream is never stopped; batches keep
        routing between rebalance rounds and the migration barriers overlap
        the other shards' ingest.  Recorded: per-shard nnz loads, the
        max/mean imbalance ratio, migrations, map epoch, and both aggregate
        rates.  The acceptance gate is imbalance strictly reduced vs static.
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        batches = _skewed_batches(REB_TOTAL, BATCH)
        results = {}
        for label in ("static", "rebalanced"):
            stack = contextlib.ExitStack()
            with stack:
                wire_kwargs = stack.enter_context(_wire_kwargs(transport))
                matrix = stack.enter_context(
                    ShardedHierarchicalMatrix(
                        REB_SHARDS,
                        2 ** 32,
                        2 ** 32,
                        cuts=CUTS,
                        partition="range",
                        use_processes=USE_PROCESSES,
                        **wire_kwargs,
                    )
                )
                wire = matrix.transport
                events = []
                wall_start = time.perf_counter()
                for i, (rows, cols, vals) in enumerate(batches):
                    matrix.update(rows, cols, vals)
                    # Start checking once the skew is established; migration
                    # rounds interleave with live batches from then on.
                    if label == "rebalanced" and i >= len(batches) // 3:
                        report = matrix.rebalance(threshold=1.25)
                        if report is not None:
                            events.append(report)
                matrix.finalize()
                wall = time.perf_counter() - wall_start
                loads = matrix.shard_loads("nnz")
                imbalance = matrix.imbalance("nnz")
                reports = matrix.reports()
                nvals = matrix.materialize().nvals
                epoch = matrix.map_epoch
            results[label] = {
                "transport": wire,
                "wall_seconds": round(wall, 6),
                "rate_sum": round(sum(r.updates_per_second for r in reports), 1),
                "rate_wall": round(REB_TOTAL / wall if wall > 0 else 0.0, 1),
                "shard_nnz": [int(l) for l in loads],
                "imbalance": round(imbalance, 4),
                "migrations": len(events),
                "entries_moved": int(sum(e.moved for e in events)),
                "map_epoch": epoch,
                "global_nvals": nvals,
            }
        # Correctness gate: migration must not change the logical matrix.
        assert results["rebalanced"]["global_nvals"] == results["static"]["global_nvals"]
        # The acceptance criterion: live rebalancing reduces the skew the
        # static range partition is stuck with (4.0 here: all keys on one of
        # four shards).
        assert results["rebalanced"]["imbalance"] < results["static"]["imbalance"]
        assert results["rebalanced"]["migrations"] >= 1
        _rebalance[transport] = results
        self._write_rebalance_outputs(results_dir)

    @staticmethod
    def _write_rebalance_outputs(results_dir):
        """(Re)write the rebalance report from every sweep recorded so far.

        Called per transport so a ``-k "rebalance and shm"`` CI leg still
        produces the artifact; a full run simply rewrites it with both wires.
        """
        header = (
            f"{'transport':>10} {'variant':>11} {'imbalance':>10} {'migrations':>11} "
            f"{'moved':>9} {'rate wall':>13} {'per-shard nnz'}"
        )
        lines = [
            "Live rebalance sweep: skewed stream "
            f"({REB_TOTAL:,} updates, rows < 2^24 of a 2^32 space, "
            f"{REB_SHARDS} shards, range partition, processes={USE_PROCESSES})",
            "",
            header,
            "-" * len(header),
        ]
        for transport, results in sorted(_rebalance.items()):
            for label in ("static", "rebalanced"):
                m = results[label]
                lines.append(
                    f"{m['transport']:>10} {label:>11} {m['imbalance']:>10.3f} "
                    f"{m['migrations']:>11} {m['entries_moved']:>9,} "
                    f"{m['rate_wall']:>13,.0f} {m['shard_nnz']}"
                )
        lines += [
            "",
            "imbalance is max/mean per-shard stored-entry count (1.0 = even).",
            "The static uniform range map pins this skewed stream onto one",
            "shard (imbalance = shard count); the auto policy migrates slabs",
            "between live workers *while the stream keeps flowing* — ingest is",
            "never stopped, in-flight batches are fenced by the map epoch, and",
            "global_nvals is asserted identical to the static run.",
        ]
        write_report(results_dir, "rebalance_sweep", lines)
        update_bench_json(
            results_dir,
            "rebalance",
            {
                "shards": REB_SHARDS,
                "total_updates": REB_TOTAL,
                "row_space": REB_NODES,
                "partition": "range",
                "use_processes": USE_PROCESSES,
                "sweep": dict(sorted(_rebalance.items())),
            },
        )

    def test_zz_scaling_report(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert len(_strong) == len(SHARD_COUNTS)
        assert len(_weak) == len(SHARD_COUNTS)
        assert len(_transport) == len(TRANSPORTS) * len(SHARD_COUNTS)
        header = (
            f"{'shards':>7} {'updates':>12} {'wall s':>9} "
            f"{'rate sum':>14} {'rate wall':>14}"
        )
        lines = [
            "Sharded streaming engine scaling "
            f"(processes={USE_PROCESSES}, batch={BATCH:,}, cuts={CUTS})",
            "",
            f"strong scaling: {STRONG_TOTAL:,} total updates, externally fed",
            header,
            "-" * len(header),
        ]
        for k in SHARD_COUNTS:
            m = _strong[k]
            lines.append(
                f"{m['shards']:>7} {m['total_updates']:>12,} {m['wall_seconds']:>9.3f} "
                f"{m['rate_sum']:>14,.0f} {m['rate_wall']:>14,.0f}"
            )
        lines += [
            "",
            f"weak scaling: {WEAK_PER_SHARD:,} updates per shard",
            header,
            "-" * len(header),
        ]
        for k in SHARD_COUNTS:
            m = _weak[k]
            lines.append(
                f"{m['shards']:>7} {m['total_updates']:>12,} {m['wall_seconds']:>9.3f} "
                f"{m['rate_sum']:>14,.0f} {m['rate_wall']:>14,.0f}"
            )
        lines += [
            "",
            "rate sum is the paper's aggregation (independent per-shard clocks);",
            "rate wall is the stricter single-clock rate including routing and IPC.",
        ]
        write_report(results_dir, "sharded_scaling", lines)

        # --- queue vs shm transport sweep (PR 4) ------------------------- #
        theader = (
            f"{'shards':>7} {'transport':>10} {'wall s':>9} "
            f"{'rate sum':>14} {'rate wall':>14} {'wall/sum':>9}"
        )
        tlines = [
            "Shard transport sweep: the same externally fed stream "
            f"({STRONG_TOTAL:,} updates, batch={BATCH:,}) through real worker "
            f"processes (processes={USE_PROCESSES})",
            "",
            theader,
            "-" * len(theader),
        ]
        for k in SHARD_COUNTS:
            for t in TRANSPORTS:
                m = _transport[(t, k)]
                gap = m["rate_wall"] / m["rate_sum"] if m["rate_sum"] else 0.0
                tlines.append(
                    f"{m['shards']:>7} {m['transport']:>10} {m['wall_seconds']:>9.3f} "
                    f"{m['rate_sum']:>14,.0f} {m['rate_wall']:>14,.0f} {gap:>9.3f}"
                )
        tlines += [
            "",
            "wall/sum is the fraction of the summed per-shard rate the single",
            "clock observes: the queue-vs-shm delta is the per-batch",
            "pickle/unpickle (and queue feeder) overhead the shared-memory ring",
            "removes from the parent's side of the ingest path.  On single-core",
            "hosts some of that time reappears inside the workers' timed",
            "sections (shared CPU), so read rate_wall — not the ratio alone —",
            "for the end-to-end effect.",
        ]
        write_report(results_dir, "transport_sweep", tlines)

        update_bench_json(
            results_dir,
            "sharded",
            {
                "use_processes": USE_PROCESSES,
                "batch_size": BATCH,
                "cuts": CUTS,
                "strong": [_strong[k] for k in SHARD_COUNTS],
                "weak": [_weak[k] for k in SHARD_COUNTS],
                "transport_sweep": {
                    t: [_transport[(t, k)] for k in SHARD_COUNTS]
                    for t in TRANSPORTS
                },
            },
        )
