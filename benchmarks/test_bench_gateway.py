"""Benchmark: ingest gateway aggregate throughput vs. concurrent client count.

The gateway's job is to turn many small client streams into few large router
batches, so its headline number is how the *aggregate* accepted-update rate
behaves as clients are added: coalescing should keep per-update cost roughly
flat (the router sees ``coalesce_updates``-sized batches regardless of how
many clients contributed), so N clients must not collapse the rate below
what a single client achieves alone.

Each sweep point streams the same total update count split evenly across N
threaded :class:`~repro.service.GatewayClient` connections into one
in-process 4-shard matrix behind an :class:`~repro.service.IngestGateway`,
syncs every client (so the time window covers full durability, not just
socket writes), and records the aggregate rate.  Results land in the
``gateway`` section of ``BENCH_kernels.json`` and in ``gateway_sweep.txt``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.distributed import ShardedHierarchicalMatrix
from repro.service import GatewayClient, IngestGateway

from .conftest import scaled, update_bench_json, write_report

pytestmark = pytest.mark.bench

TOTAL = scaled(200_000, minimum=20_000)
BATCH = 1_000
CLIENT_COUNTS = [1, 4, 16, 32]
CUTS = [2 ** 13, 2 ** 16, 2 ** 19]

_results = {}


def _client_batches(seed: int, total: int):
    """One client's share of the stream in ~BATCH-sized update batches."""
    rng = np.random.default_rng(seed)
    remaining = total
    while remaining > 0:
        n = min(BATCH, remaining)
        remaining -= n
        rows = rng.integers(0, 2 ** 22, n, dtype=np.uint64)
        cols = rng.integers(0, 2 ** 22, n, dtype=np.uint64)
        vals = rng.integers(1, 10, n).astype(np.float64)
        yield rows, cols, vals


def _run_point(nclients: int) -> dict:
    per_client = TOTAL // nclients
    failures = []
    with ShardedHierarchicalMatrix(4, cuts=CUTS) as sharded:
        gw = IngestGateway(sharded, coalesce_updates=8192, flush_interval=0.005)
        gw.start()
        try:
            barrier = threading.Barrier(nclients + 1)

            def run_client(seed):
                try:
                    with GatewayClient(
                        gw.address, client_id=f"bench-{seed}"
                    ) as client:
                        barrier.wait()
                        sent = 0
                        for rows, cols, vals in _client_batches(seed, per_client):
                            client.update(rows, cols, vals)
                            sent += rows.size
                        assert client.sync()["acked"] == sent
                except Exception as exc:  # pragma: no cover - surfaced below
                    failures.append((seed, exc))

            threads = [
                threading.Thread(target=run_client, args=(seed,))
                for seed in range(nclients)
            ]
            for t in threads:
                t.start()
            barrier.wait()  # start the clock after every client has connected
            start = time.perf_counter()
            for t in threads:
                t.join(timeout=300)
            elapsed = time.perf_counter() - start
            assert not any(t.is_alive() for t in threads)
            assert failures == []
            metrics = gw.metrics()
        finally:
            gw.close()
    total_sent = per_client * nclients
    assert metrics["routed_updates"] == total_sent
    return {
        "clients": nclients,
        "updates": total_sent,
        "seconds": round(elapsed, 6),
        "rate": round(total_sent / elapsed, 1) if elapsed > 0 else 0.0,
        "router_batches": int(metrics["routed_batches"]),
    }


class TestGatewaySweep:
    def test_single_pack_per_update(self, benchmark):
        """The gateway path packs each update batch exactly once.

        The client packs its coordinates into wire keys; the gateway decodes
        them, threads them through the coalescer, and the router reuses them
        (``route(..., keys=...)``) instead of re-packing.  With the shard
        workers in separate processes, every ``coords.pack`` observable here
        is either the client's wire encoding or a router re-pack — so the
        counter delta across the send window must equal the number of client
        batches exactly (it was 2x that when the gateway re-partitioned).
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        from repro.graphblas import coords

        nbatches = 40
        with ShardedHierarchicalMatrix(4, cuts=CUTS, use_processes=True) as sharded:
            gw = IngestGateway(sharded, coalesce_updates=8192, flush_interval=0.005)
            gw.start()
            try:
                with GatewayClient(gw.address, client_id="pack-count") as client:
                    before = coords.pack_calls()
                    sent = 0
                    for rows, cols, vals in _client_batches(7, nbatches * BATCH):
                        client.update(rows, cols, vals)
                        sent += rows.size
                    assert client.sync()["acked"] == sent
                    packs = coords.pack_calls() - before
            finally:
                gw.close()
        assert packs == nbatches, (
            f"expected one pack per update batch ({nbatches}), saw {packs} — "
            "the router is re-packing gateway batches"
        )

    def test_client_scaling(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        points = [_run_point(n) for n in CLIENT_COUNTS]
        # Coalescing must keep aggregate throughput from collapsing under
        # concurrency: the best multi-client point has to reach at least half
        # the single-client rate (generous for noisy shared runners; a
        # serialization bug shows up as a near-1/N cliff).
        single = points[0]["rate"]
        best_multi = max(p["rate"] for p in points[1:])
        assert best_multi >= 0.5 * single
        _results["points"] = points

    def test_zz_report(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert "points" in _results
        points = _results["points"]
        lines = [
            f"Gateway aggregate ingest rate vs concurrent clients "
            f"({TOTAL:,} updates total per point, 4 shards, cuts={CUTS})",
            "",
            f"{'clients':>8} {'updates':>10} {'seconds':>10} "
            f"{'rate (upd/s)':>14} {'router batches':>15}",
            "-" * 62,
        ]
        for p in points:
            lines.append(
                f"{p['clients']:>8} {p['updates']:>10,} {p['seconds']:>10.3f} "
                f"{p['rate']:>14,.0f} {p['router_batches']:>15,}"
            )
        lines += [
            "",
            "each point splits the same total across N threaded clients and",
            "times connect-to-final-sync; the gateway coalesces client frames",
            "into router batches, so router batches stay far below the number",
            "of client update() calls.",
        ]
        write_report(results_dir, "gateway_sweep", lines)
        update_bench_json(
            results_dir,
            "gateway",
            {
                "total_updates": TOTAL,
                "batch": BATCH,
                "cuts": CUTS,
                "coalesce_updates": 8192,
                "points": points,
            },
        )
