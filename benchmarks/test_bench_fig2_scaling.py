"""Figure 2: update rate as a function of the number of servers.

The paper's only figure with data plots the aggregate update rate of
hierarchical GraphBLAS on 1 ... 1,100 MIT SuperCloud nodes against previously
published results (Hierarchical D4M, Accumulo D4M, SciDB D4M, Accumulo, Oracle
TPC-C, CrateDB).  The headline point is 75,000,000,000 updates/s at 1,100
nodes / 31,000 instances.

Reproduction strategy (per DESIGN.md): the per-instance rate is *measured*
locally for our hierarchical GraphBLAS and hierarchical D4M implementations,
the multi-node aggregate is produced by the SuperCloud weak-scaling model
(launch overhead + stragglers), and the database systems are carried as
published reference curves.  The benchmark prints the full rate-vs-servers
table — the same series as the figure — and asserts its qualitative shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import PAPER_HEADLINE_RATE, HierarchicalD4MIngestor, published_series
from repro.core import HierarchicalMatrix
from repro.distributed import (
    ClusterConfig,
    ParallelIngestEngine,
    SuperCloudModel,
    build_figure2_table,
    format_table,
)
from repro.workloads import IngestSession, paper_stream

from .conftest import write_report

pytestmark = pytest.mark.bench

#: Cuts scaled to the laptop-sized measurement stream (see DESIGN.md / the
#: cut-sweep ablation); the paper's 2^17-entry first cut is tuned to a 100M
#: update stream on Xeon-class caches.
CUTS = [4_096, 32_768, 262_144]
SERVER_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1100)

_measured = {}


def _measure_hier_graphblas():
    H = HierarchicalMatrix(2**32, 2**32, "fp64", cuts=CUTS)
    return IngestSession(H, "hier-graphblas").run(
        paper_stream(total_entries=200_000, nbatches=50, seed=0)
    )


def _measure_hier_d4m():
    D = HierarchicalD4MIngestor(cuts=[1000, 10_000, 100_000])
    return IngestSession(D, "hier-d4m").run(
        paper_stream(total_entries=10_000, nbatches=10, seed=0)
    )


class TestFigure2:
    def test_measure_hierarchical_graphblas_instance(self, benchmark):
        result = benchmark.pedantic(_measure_hier_graphblas, rounds=1, iterations=1)
        _measured["Hierarchical GraphBLAS (measured)"] = result.updates_per_second

    def test_measure_hierarchical_d4m_instance(self, benchmark):
        result = benchmark.pedantic(_measure_hier_d4m, rounds=1, iterations=1)
        _measured["Hierarchical D4M (measured)"] = result.updates_per_second

    def test_local_parallel_engine_aggregates(self, benchmark):
        """The locally runnable slice of the scaling experiment: independent
        worker processes, aggregate rate = sum of per-worker rates."""
        engine = ParallelIngestEngine(nworkers=2, cuts=CUTS, use_processes=False)
        result = benchmark.pedantic(
            engine.run, kwargs={"updates_per_worker": 50_000, "batch_size": 10_000},
            rounds=1, iterations=1,
        )
        _measured.setdefault("Hierarchical GraphBLAS (measured)", result.mean_worker_rate)
        assert result.aggregate_rate_sum >= result.mean_worker_rate

    def test_zz_figure2_table_and_headline(self, benchmark, results_dir):
        """Emit the full Figure 2 table and check its qualitative shape."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
        assert _measured, "measurement benchmarks must run first"
        rows = build_figure2_table(_measured, server_counts=SERVER_COUNTS)
        table = format_table(rows)

        model = SuperCloudModel(ClusterConfig.paper_configuration())
        projection = model.headline_projection(_measured["Hierarchical GraphBLAS (measured)"])

        lines = [
            "Figure 2: update rate vs number of servers",
            "(measured per-instance rates extrapolated with the SuperCloud model;",
            " database systems shown at their published rates)",
            "",
            table,
            "",
            "Headline B: 31,000 instances on 1,100 nodes",
            f"  measured per-instance rate:      {projection['per_instance_rate']:,.0f} updates/s",
            f"  modelled aggregate rate:         {projection['aggregate_rate']:,.3e} updates/s",
            f"  paper headline rate:             {PAPER_HEADLINE_RATE:,.3e} updates/s",
            f"  ratio (this repro / paper):      {projection['ratio_to_paper']:.3f}",
        ]
        write_report(results_dir, "figure2_scaling", lines)

        by_system = {}
        for row in rows:
            by_system.setdefault(row.system, {})[row.servers] = row.updates_per_second

        hg = by_system["Hierarchical GraphBLAS (measured)"]
        hd = by_system["Hierarchical D4M (measured)"]
        # Weak scaling: monotone increase with servers, >100x from 1 to 1100 nodes.
        assert hg[1100] > hg[1] * 100
        # Hierarchical GraphBLAS beats hierarchical D4M at every scale (Fig. 2 gap).
        for n in SERVER_COUNTS:
            assert hg[n] > hd[n]
        # It also tops every published database curve at comparable scale.
        published = published_series()
        assert hg[256] > published["accumulo_d4m"].rate_at(216)
        assert hg[64] > published["scidb_d4m"].peak_rate
        assert hg[64] > published["cratedb"].peak_rate
        # Headline magnitude: the modelled 1,100-node aggregate lands within an
        # order of magnitude of 75e9 (our substrate is NumPy, not C+OpenMP).
        assert projection["aggregate_rate"] > PAPER_HEADLINE_RATE / 100
        assert 1e9 < hg[1100]
