"""Microbenchmarks of the GraphBLAS kernels underneath the cascade (Fig. 1 support).

Figure 1 argues that the cascade works because adding a small matrix into a
small matrix is cheap while adding into a large matrix is expensive (it
rewrites the large operand).  These microbenchmarks measure exactly that: the
cost of ``A += B`` as a function of ``nnz(A)`` for fixed ``nnz(B)``, plus the
cost of the build/dedup kernel — the two operations that dominate streaming
ingest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphblas import Matrix, binary
from repro.graphblas.io import random_hypersparse

from .conftest import write_report

BATCH_NNZ = 10_000
ACCUMULATED_SIZES = [10_000, 100_000, 1_000_000]

_timings = {}


@pytest.fixture(scope="module")
def batch_matrix():
    return random_hypersparse(BATCH_NNZ, seed=1)


class TestUnionAddCost:
    @pytest.mark.parametrize("accumulated", ACCUMULATED_SIZES)
    def test_add_batch_into_accumulated(self, benchmark, accumulated, batch_matrix):
        """Cost of one cascade step: merge a 10k-entry layer into a larger layer."""
        target = random_hypersparse(accumulated, seed=2)

        def merge():
            target.dup().update(batch_matrix, accum=binary.plus)

        benchmark(merge)
        _timings[accumulated] = benchmark.stats.stats.mean

    def test_zz_growth_report(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
        assert len(_timings) == len(ACCUMULATED_SIZES)
        lines = [
            "Kernel microbenchmark: cost of A += B with nnz(B)=10,000",
            "",
            f"{'nnz(A)':>12} {'seconds per merge':>20}",
            "-" * 34,
        ]
        for nnz, seconds in sorted(_timings.items()):
            lines.append(f"{nnz:>12,} {seconds:>20.6f}")
        lines += [
            "",
            "expected shape: merge cost grows with nnz(A) — the reason updates must be",
            "performed in the smallest layer (Fig. 1).",
        ]
        write_report(results_dir, "kernel_merge_cost", lines)
        # Merging into a 1M-entry matrix is clearly more expensive than into 10k.
        assert _timings[ACCUMULATED_SIZES[-1]] > _timings[ACCUMULATED_SIZES[0]]


class TestBuildKernel:
    def test_build_batch_throughput(self, benchmark):
        """Throughput of the duplicate-collapsing build kernel on one batch."""
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 2**32, 100_000, dtype=np.uint64)
        cols = rng.integers(0, 2**32, 100_000, dtype=np.uint64)
        vals = np.ones(100_000)

        def build():
            Matrix("fp64", 2**32, 2**32).build(rows, cols, vals)

        benchmark(build)

    def test_setelement_pending_throughput(self, benchmark):
        """Scalar-insert path: pending-tuple appends plus one final merge."""
        def inserts():
            A = Matrix("fp64", 2**32, 2**32)
            for i in range(2_000):
                A.setElement(i * 7, i * 13, 1.0)
            A.wait()
            return A

        result = benchmark(inserts)
        assert result.nvals == 2_000
