"""Microbenchmarks of the GraphBLAS kernels underneath the cascade (Fig. 1 support).

Figure 1 argues that the cascade works because adding a small matrix into a
small matrix is cheap while adding into a large matrix is expensive (it
rewrites the large operand).  These microbenchmarks measure exactly that: the
cost of ``A += B`` as a function of ``nnz(A)`` for fixed ``nnz(B)``, plus the
cost of the build/dedup kernel — the two operations that dominate streaming
ingest.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graphblas import Matrix, binary, coords
from repro.graphblas import _kernels as K
from repro.graphblas.io import random_hypersparse

from .conftest import scaled, update_bench_json, write_report

pytestmark = pytest.mark.bench

BATCH_NNZ = 10_000
ACCUMULATED_SIZES = [10_000, 100_000, 1_000_000]

_timings = {}
_packed_vs_fallback = {}


def _best_of(fn, repeats=3):
    """Best-of-N wall-clock seconds for ``fn()`` (first call warms caches)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _time_both_paths(name, fn):
    """Time ``fn`` on the packed engine and the lexsort fallback engine."""
    packed = _best_of(fn)
    with coords.packing_disabled():
        fallback = _best_of(fn)
    _packed_vs_fallback[name] = {
        "packed_seconds": packed,
        "lexsort_seconds": fallback,
        "speedup": fallback / packed if packed > 0 else float("inf"),
    }
    return packed, fallback


@pytest.fixture(scope="module")
def batch_matrix():
    return random_hypersparse(BATCH_NNZ, seed=1)


class TestUnionAddCost:
    @pytest.mark.parametrize("accumulated", ACCUMULATED_SIZES)
    def test_add_batch_into_accumulated(self, benchmark, accumulated, batch_matrix):
        """Cost of one cascade step: merge a 10k-entry layer into a larger layer."""
        target = random_hypersparse(accumulated, seed=2)

        def merge():
            target.dup().update(batch_matrix, accum=binary.plus)

        benchmark(merge)
        _timings[accumulated] = benchmark.stats.stats.mean

    def test_zz_growth_report(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
        assert len(_timings) == len(ACCUMULATED_SIZES)
        lines = [
            "Kernel microbenchmark: cost of A += B with nnz(B)=10,000",
            "",
            f"{'nnz(A)':>12} {'seconds per merge':>20}",
            "-" * 34,
        ]
        for nnz, seconds in sorted(_timings.items()):
            lines.append(f"{nnz:>12,} {seconds:>20.6f}")
        lines += [
            "",
            "expected shape: merge cost grows with nnz(A) — the reason updates must be",
            "performed in the smallest layer (Fig. 1).",
        ]
        write_report(results_dir, "kernel_merge_cost", lines)
        # Merging into a 1M-entry matrix is clearly more expensive than into 10k.
        assert _timings[ACCUMULATED_SIZES[-1]] > _timings[ACCUMULATED_SIZES[0]]


class TestBuildKernel:
    def test_build_batch_throughput(self, benchmark):
        """Throughput of the duplicate-collapsing build kernel on one batch."""
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 2**32, 100_000, dtype=np.uint64)
        cols = rng.integers(0, 2**32, 100_000, dtype=np.uint64)
        vals = np.ones(100_000)

        def build():
            Matrix("fp64", 2**32, 2**32).build(rows, cols, vals)

        benchmark(build)

    def test_setelement_pending_throughput(self, benchmark):
        """Scalar-insert path: pending-tuple appends plus one final merge."""
        def inserts():
            A = Matrix("fp64", 2**32, 2**32)
            for i in range(2_000):
                A.setElement(i * 7, i * 13, 1.0)
            A.wait()
            return A

        result = benchmark(inserts)
        assert result.nvals == 2_000


class TestPackedVsLexsort:
    """Packed single-key engine vs the dual-key lexsort fallback.

    Each test runs the same kernel workload on both engines, asserts the
    results are bit-identical, and records the timings; the zz report writes
    the packed/fallback trajectory into BENCH_kernels.json.
    """

    N = scaled(200_000, minimum=20_000)
    N_QUERIES = scaled(10_000, minimum=10_000)

    @pytest.fixture(scope="class")
    def triples(self):
        rng = np.random.default_rng(11)
        rows = rng.integers(0, 2**32, self.N, dtype=np.uint64)
        cols = rng.integers(0, 2**32, self.N, dtype=np.uint64)
        vals = rng.normal(size=self.N)
        return rows, cols, vals

    def test_build_triples_packed_vs_fallback(self, benchmark, triples):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows, cols, vals = triples
        _time_both_paths(
            "build_triples", lambda: K.build_triples(rows, cols, vals, binary.plus)
        )
        packed_out = K.build_triples(rows, cols, vals, binary.plus)
        with coords.packing_disabled():
            fallback_out = K.build_triples(rows, cols, vals, binary.plus)
        for p, f in zip(packed_out, fallback_out):
            assert np.array_equal(p, f)

    def test_union_merge_packed_vs_fallback(self, benchmark, triples):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows, cols, vals = triples
        half = self.N // 2
        a = K.build_triples(rows[:half], cols[:half], vals[:half], binary.plus)
        b = K.build_triples(rows[half:], cols[half:], vals[half:], binary.plus)
        _time_both_paths("union_merge", lambda: K.union_merge(a, b, binary.plus))
        packed_out = K.union_merge(a, b, binary.plus)
        with coords.packing_disabled():
            fallback_out = K.union_merge(a, b, binary.plus)
        for p, f in zip(packed_out, fallback_out):
            assert np.array_equal(p, f)

    def test_search_sorted_packed_vs_fallback(self, benchmark, triples):
        """Batched point queries: one binary search, no per-query Python loop."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows, cols, vals = triples
        srows, scols, _ = K.build_triples(rows, cols, vals, binary.plus)
        rng = np.random.default_rng(13)
        # Half the queries hit stored coordinates, half miss.
        pick = rng.integers(0, srows.size, self.N_QUERIES // 2)
        qr = np.concatenate(
            [srows[pick], rng.integers(0, 2**32, self.N_QUERIES // 2, dtype=np.uint64)]
        )
        qc = np.concatenate(
            [scols[pick], rng.integers(0, 2**32, self.N_QUERIES // 2, dtype=np.uint64)]
        )
        _time_both_paths(
            "search_sorted_coo", lambda: K.search_sorted_coo(srows, scols, qr, qc)
        )
        packed_out = K.search_sorted_coo(srows, scols, qr, qc)
        with coords.packing_disabled():
            fallback_out = K.search_sorted_coo(srows, scols, qr, qc)
        assert np.array_equal(packed_out, fallback_out)
        assert (packed_out[: self.N_QUERIES // 2] >= 0).all()

    def test_flush_reuses_pending_keys(self, benchmark, triples):
        """One layer-1 flush packs its pending triples exactly once (PR-5 lever).

        ``Matrix._wait`` fuses build (sort + collapse) and the stored-side
        union merge; before the reuse lever each stage packed the pending
        coordinates independently.  Counting ``coords.pack`` invocations
        around a steady-state flush pins the contract: one pack for the
        pending side (inside ``build_triples``), one for the stored side
        (inside ``union_merge``) — three would mean the reuse regressed.
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows, cols, vals = triples
        half = self.N // 2
        M = Matrix("fp64", 2 ** 32, 2 ** 32)
        M.build(rows[:half], cols[:half], vals[:half])  # non-empty stored side
        M.build(rows[half:], cols[half:], vals[half:], lazy=True)
        before = coords.pack_calls()
        M.wait()
        packs_per_flush = coords.pack_calls() - before
        assert packs_per_flush == 2, (
            f"flush packed coordinates {packs_per_flush} times; the pending "
            "keys must be built once and reused by the union merge"
        )

    def test_zz_packed_report(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert len(_packed_vs_fallback) == 3
        lines = [
            f"Packed-coordinate engine vs lexsort fallback (n={self.N:,} triples, "
            f"{self.N_QUERIES:,} point queries)",
            "",
            f"{'kernel':<20} {'packed s':>12} {'lexsort s':>12} {'speedup':>9}",
            "-" * 56,
        ]
        for name, t in _packed_vs_fallback.items():
            lines.append(
                f"{name:<20} {t['packed_seconds']:>12.6f} "
                f"{t['lexsort_seconds']:>12.6f} {t['speedup']:>8.2f}x"
            )
        lines += [
            "",
            "both engines produce bit-identical triples (asserted above); the",
            "packed path is the default whenever coordinates fit a 64-bit split.",
        ]
        write_report(results_dir, "kernel_packed_vs_lexsort", lines)
        update_bench_json(
            results_dir,
            "kernels",
            {
                "n_triples": self.N,
                "n_queries": self.N_QUERIES,
                "packed_vs_fallback": {
                    name: {k: round(v, 6) for k, v in t.items()}
                    for name, t in _packed_vs_fallback.items()
                },
            },
        )
