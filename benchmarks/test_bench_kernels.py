"""Microbenchmarks of the GraphBLAS kernels underneath the cascade (Fig. 1 support).

Figure 1 argues that the cascade works because adding a small matrix into a
small matrix is cheap while adding into a large matrix is expensive (it
rewrites the large operand).  These microbenchmarks measure exactly that: the
cost of ``A += B`` as a function of ``nnz(A)`` for fixed ``nnz(B)``, plus the
cost of the build/dedup kernel — the two operations that dominate streaming
ingest.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import HierarchicalMatrix
from repro.graphblas import Matrix, arena, binary, coords
from repro.graphblas import _kernels as K
from repro.graphblas.io import random_hypersparse
from repro.workloads import paper_stream

from .conftest import scaled, update_bench_json, write_report

pytestmark = pytest.mark.bench

BATCH_NNZ = 10_000
ACCUMULATED_SIZES = [10_000, 100_000, 1_000_000]

_timings = {}
_packed_vs_fallback = {}
_arena_results = {}
_mxm_results = {}

#: Arena-vs-list assertion floor: the arena ingest must be at least this much
#: faster than the chunk-list backend (1.0 = no slower).  Overridable for
#: noisy shared runners.
ARENA_FLOOR = float(os.environ.get("REPRO_BENCH_ARENA_FLOOR", "1.0"))

#: Ceiling on tracked/untracked streaming time at the 1M-entry scale.  The
#: segmented catch-up brought the tracker to parity (~1.0x, was ~1.45x); the
#: default leaves 10% headroom for runner noise.
TRACKED_CEILING = float(os.environ.get("REPRO_BENCH_TRACKED_CEILING", "1.10"))

#: Packed-key mxm must beat the lexsort fallback by at least this factor.
MXM_FLOOR = float(os.environ.get("REPRO_BENCH_MXM_FLOOR", "1.0"))


def _interleaved_best(fn_a, fn_b, repeats=3):
    """Interleaved best-of-N of two competitors (first round warms caches).

    Interleaving A/B/A/B instead of AAA/BBB keeps slow drifts of a shared
    runner (thermal, noisy neighbours) from landing entirely on one side.
    """
    fn_a()
    fn_b()
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def _best_of(fn, repeats=3):
    """Best-of-N wall-clock seconds for ``fn()`` (first call warms caches)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _time_both_paths(name, fn):
    """Time ``fn`` on the packed engine and the lexsort fallback engine."""
    packed = _best_of(fn)
    with coords.packing_disabled():
        fallback = _best_of(fn)
    _packed_vs_fallback[name] = {
        "packed_seconds": packed,
        "lexsort_seconds": fallback,
        "speedup": fallback / packed if packed > 0 else float("inf"),
    }
    return packed, fallback


@pytest.fixture(scope="module")
def batch_matrix():
    return random_hypersparse(BATCH_NNZ, seed=1)


class TestUnionAddCost:
    @pytest.mark.parametrize("accumulated", ACCUMULATED_SIZES)
    def test_add_batch_into_accumulated(self, benchmark, accumulated, batch_matrix):
        """Cost of one cascade step: merge a 10k-entry layer into a larger layer."""
        target = random_hypersparse(accumulated, seed=2)

        def merge():
            target.dup().update(batch_matrix, accum=binary.plus)

        benchmark(merge)
        _timings[accumulated] = benchmark.stats.stats.mean

    def test_zz_growth_report(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
        assert len(_timings) == len(ACCUMULATED_SIZES)
        lines = [
            "Kernel microbenchmark: cost of A += B with nnz(B)=10,000",
            "",
            f"{'nnz(A)':>12} {'seconds per merge':>20}",
            "-" * 34,
        ]
        for nnz, seconds in sorted(_timings.items()):
            lines.append(f"{nnz:>12,} {seconds:>20.6f}")
        lines += [
            "",
            "expected shape: merge cost grows with nnz(A) — the reason updates must be",
            "performed in the smallest layer (Fig. 1).",
        ]
        write_report(results_dir, "kernel_merge_cost", lines)
        # Merging into a 1M-entry matrix is clearly more expensive than into 10k.
        assert _timings[ACCUMULATED_SIZES[-1]] > _timings[ACCUMULATED_SIZES[0]]


class TestBuildKernel:
    def test_build_batch_throughput(self, benchmark):
        """Throughput of the duplicate-collapsing build kernel on one batch."""
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 2**32, 100_000, dtype=np.uint64)
        cols = rng.integers(0, 2**32, 100_000, dtype=np.uint64)
        vals = np.ones(100_000)

        def build():
            Matrix("fp64", 2**32, 2**32).build(rows, cols, vals)

        benchmark(build)

    def test_setelement_pending_throughput(self, benchmark):
        """Scalar-insert path: pending-tuple appends plus one final merge."""
        def inserts():
            A = Matrix("fp64", 2**32, 2**32)
            for i in range(2_000):
                A.setElement(i * 7, i * 13, 1.0)
            A.wait()
            return A

        result = benchmark(inserts)
        assert result.nvals == 2_000


class TestPackedVsLexsort:
    """Packed single-key engine vs the dual-key lexsort fallback.

    Each test runs the same kernel workload on both engines, asserts the
    results are bit-identical, and records the timings; the zz report writes
    the packed/fallback trajectory into BENCH_kernels.json.
    """

    N = scaled(200_000, minimum=20_000)
    N_QUERIES = scaled(10_000, minimum=10_000)

    @pytest.fixture(scope="class")
    def triples(self):
        rng = np.random.default_rng(11)
        rows = rng.integers(0, 2**32, self.N, dtype=np.uint64)
        cols = rng.integers(0, 2**32, self.N, dtype=np.uint64)
        vals = rng.normal(size=self.N)
        return rows, cols, vals

    def test_build_triples_packed_vs_fallback(self, benchmark, triples):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows, cols, vals = triples
        _time_both_paths(
            "build_triples", lambda: K.build_triples(rows, cols, vals, binary.plus)
        )
        packed_out = K.build_triples(rows, cols, vals, binary.plus)
        with coords.packing_disabled():
            fallback_out = K.build_triples(rows, cols, vals, binary.plus)
        for p, f in zip(packed_out, fallback_out):
            assert np.array_equal(p, f)

    def test_union_merge_packed_vs_fallback(self, benchmark, triples):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows, cols, vals = triples
        half = self.N // 2
        a = K.build_triples(rows[:half], cols[:half], vals[:half], binary.plus)
        b = K.build_triples(rows[half:], cols[half:], vals[half:], binary.plus)
        _time_both_paths("union_merge", lambda: K.union_merge(a, b, binary.plus))
        packed_out = K.union_merge(a, b, binary.plus)
        with coords.packing_disabled():
            fallback_out = K.union_merge(a, b, binary.plus)
        for p, f in zip(packed_out, fallback_out):
            assert np.array_equal(p, f)

    def test_search_sorted_packed_vs_fallback(self, benchmark, triples):
        """Batched point queries: one binary search, no per-query Python loop."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows, cols, vals = triples
        srows, scols, _ = K.build_triples(rows, cols, vals, binary.plus)
        rng = np.random.default_rng(13)
        # Half the queries hit stored coordinates, half miss.
        pick = rng.integers(0, srows.size, self.N_QUERIES // 2)
        qr = np.concatenate(
            [srows[pick], rng.integers(0, 2**32, self.N_QUERIES // 2, dtype=np.uint64)]
        )
        qc = np.concatenate(
            [scols[pick], rng.integers(0, 2**32, self.N_QUERIES // 2, dtype=np.uint64)]
        )
        _time_both_paths(
            "search_sorted_coo", lambda: K.search_sorted_coo(srows, scols, qr, qc)
        )
        packed_out = K.search_sorted_coo(srows, scols, qr, qc)
        with coords.packing_disabled():
            fallback_out = K.search_sorted_coo(srows, scols, qr, qc)
        assert np.array_equal(packed_out, fallback_out)
        assert (packed_out[: self.N_QUERIES // 2] >= 0).all()

    def test_flush_reuses_pending_keys(self, benchmark, triples):
        """One layer-1 flush packs its pending triples exactly once (PR-5 lever).

        ``Matrix._wait`` fuses build (sort + collapse) and the stored-side
        union merge; before the reuse lever each stage packed the pending
        coordinates independently.  Counting ``coords.pack`` invocations
        around a steady-state flush pins the contract: one pack for the
        pending side (inside ``build_triples``), one for the stored side
        (inside ``union_merge``) — three would mean the reuse regressed.
        """
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows, cols, vals = triples
        half = self.N // 2
        M = Matrix("fp64", 2 ** 32, 2 ** 32)
        M.build(rows[:half], cols[:half], vals[:half])  # non-empty stored side
        M.build(rows[half:], cols[half:], vals[half:], lazy=True)
        before = coords.pack_calls()
        M.wait()
        packs_per_flush = coords.pack_calls() - before
        assert packs_per_flush == 2, (
            f"flush packed coordinates {packs_per_flush} times; the pending "
            "keys must be built once and reused by the union merge"
        )

    def test_zz_packed_report(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert len(_packed_vs_fallback) == 3
        lines = [
            f"Packed-coordinate engine vs lexsort fallback (n={self.N:,} triples, "
            f"{self.N_QUERIES:,} point queries)",
            "",
            f"{'kernel':<20} {'packed s':>12} {'lexsort s':>12} {'speedup':>9}",
            "-" * 56,
        ]
        for name, t in _packed_vs_fallback.items():
            lines.append(
                f"{name:<20} {t['packed_seconds']:>12.6f} "
                f"{t['lexsort_seconds']:>12.6f} {t['speedup']:>8.2f}x"
            )
        lines += [
            "",
            "both engines produce bit-identical triples (asserted above); the",
            "packed path is the default whenever coordinates fit a 64-bit split.",
        ]
        write_report(results_dir, "kernel_packed_vs_lexsort", lines)
        update_bench_json(
            results_dir,
            "kernels",
            {
                "n_triples": self.N,
                "n_queries": self.N_QUERIES,
                "packed_vs_fallback": {
                    name: {k: round(v, 6) for k, v in t.items()}
                    for name, t in _packed_vs_fallback.items()
                },
            },
        )


class TestMxmPackedVsLexsort:
    """Product-key grouping in ``mxm``: single packed argsort vs lexsort."""

    NNZ = scaled(100_000, minimum=20_000)
    NODES = max(NNZ // 2, 1_000)  # keeps the product count ~2x nnz at any scale

    @staticmethod
    def _operand(seed, nnz, nodes):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, nodes, nnz, dtype=np.uint64)
        cols = rng.integers(0, nodes, nnz, dtype=np.uint64)
        return Matrix("fp64", 2**32, 2**32).build(rows, cols, rng.random(nnz))

    def test_mxm_packed_vs_fallback(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        A = self._operand(17, self.NNZ, self.NODES)
        B = self._operand(19, self.NNZ, self.NODES)
        packed_s = _best_of(lambda: A.mxm(B))
        with coords.packing_disabled():
            fallback_s = _best_of(lambda: A.mxm(B))
        out = A.mxm(B)
        with coords.packing_disabled():
            reference = A.mxm(B)
        assert out.isequal(reference, check_dtype=True)
        speedup = fallback_s / packed_s if packed_s > 0 else float("inf")
        _mxm_results.update(
            {
                "nnz_per_operand": self.NNZ,
                "distinct_nodes": self.NODES,
                "product_nvals": int(out.nvals),
                "packed_seconds": round(packed_s, 6),
                "lexsort_seconds": round(fallback_s, 6),
                "speedup": round(speedup, 4),
            }
        )
        assert speedup >= MXM_FLOOR, (
            f"packed-key mxm is {speedup:.2f}x the lexsort fallback, below the "
            f"{MXM_FLOOR}x floor (REPRO_BENCH_MXM_FLOOR)"
        )

    def test_zz_mxm_report(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert _mxm_results, "mxm timing must run before the report"
        update_bench_json(results_dir, "mxm", dict(_mxm_results))


class TestArenaIngest:
    """Arena pending buffers vs the legacy chunk-list backend.

    The A/B isolates exactly what PR 10 changed: one steady-state ingest
    window — batch appends into a pending buffer, one flush-time
    materialisation (``views``), then ``reset`` for the next window.  Matrix
    and tracker buffers live across windows, so the arena runs warm: appends
    land in already-reserved storage and views are zero-copy slices.  The
    chunk-list backend copies per batch, reallocates every window, *and*
    concatenates every column at flush.  Both sides run the same code through
    ``arena.make_pending`` — only the construction context differs.
    """

    SMALL = scaled(300_000, minimum=30_000)
    LARGE = 1_000_000  # fixed: the scale where flush concatenation hurt most
    NBATCHES = 100
    TRACKER_CUTS = [2**13, 2**16, 2**19]

    @staticmethod
    def _batches(total, nbatches, seed):
        rng = np.random.default_rng(seed)
        size = max(total // nbatches, 1)
        out = []
        for _ in range(nbatches):
            rows = rng.integers(0, 2**32, size, dtype=np.uint64)
            cols = rng.integers(0, 2**32, size, dtype=np.uint64)
            bits = arena.value_bits(rng.random(size), np.float64)
            out.append((rows, cols, bits))
        return out

    @staticmethod
    def _window(pend, batches):
        """One steady-state window: appends, flush-time views, reset."""
        for rows, cols, bits in batches:
            pend.append(rows, cols, bits)
        views = pend.views()  # chunk backend pays its concatenation here
        total = int(views[0].size)
        pend.reset()
        return total

    @pytest.mark.parametrize(
        "total", [SMALL, LARGE], ids=[f"{SMALL}", f"{LARGE}"]
    )
    def test_arena_vs_list_pending(self, benchmark, total):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        batches = self._batches(total, self.NBATCHES, seed=7)
        arena_pend = arena.make_pending(3)
        with arena.arena_disabled():
            list_pend = arena.make_pending(3)
        # The warm-up round inside _interleaved_best grows the arena to
        # window capacity; timed rounds then run the steady state.
        arena_s, list_s = _interleaved_best(
            lambda: self._window(arena_pend, batches),
            lambda: self._window(list_pend, batches),
            repeats=5,
        )
        speedup = list_s / arena_s if arena_s > 0 else float("inf")
        _arena_results[f"pending_{total}"] = {
            "total_entries": total,
            "nbatches": self.NBATCHES,
            "arena_seconds": round(arena_s, 6),
            "list_seconds": round(list_s, 6),
            "speedup": round(speedup, 4),
        }
        assert speedup >= ARENA_FLOOR, (
            f"arena ingest at {total:,} entries is {speedup:.2f}x the list "
            f"backend, below the {ARENA_FLOOR}x floor (REPRO_BENCH_ARENA_FLOOR)"
        )

    def test_steady_state_flushes_never_concatenate(self, benchmark):
        """Warm arena windows: zero concatenations, zero further growth."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        M = Matrix("fp64", 2**32, 2**32)
        rng = np.random.default_rng(3)
        concat_before = arena.concat_calls()
        grow_after_warmup = None
        for window in range(12):
            for _ in range(2):  # two lazy batches per window
                rows = rng.integers(0, 2**32, 5_000, dtype=np.uint64)
                cols = rng.integers(0, 2**32, 5_000, dtype=np.uint64)
                M.build(rows, cols, np.ones(5_000), lazy=True)
            M.wait()
            if window == 0:
                grow_after_warmup = arena.grow_calls()
        assert arena.concat_calls() == concat_before, (
            "steady-state arena flushes must never concatenate pending chunks"
        )
        assert arena.grow_calls() == grow_after_warmup, (
            "a reset arena keeps its capacity: later windows must not regrow"
        )

    def test_growth_ladder_is_geometric(self, benchmark):
        """Filling N entries costs at most one growth per capacity doubling."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        pend = arena.PendingArena(1)
        target = 1 << 20
        chunk = np.arange(4096, dtype=np.uint64)
        while pend.used < target:
            pend.append(chunk)
        doublings = int(np.ceil(np.log2(pend.capacity / arena.MIN_CAPACITY)))
        assert pend.grow_count <= doublings, (
            f"{pend.grow_count} growths to reach capacity {pend.capacity} "
            f"(geometric ladder allows {doublings})"
        )

    def test_tracked_overhead_at_1m(self, benchmark):
        """Reduction tracking at 1M entries: at or near streaming parity."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        batches = [
            (b.rows, b.cols, b.values)
            for b in paper_stream(
                total_entries=self.LARGE, nbatches=self.NBATCHES, seed=23
            )
        ]

        def stream(track):
            H = HierarchicalMatrix(
                2**32,
                2**32,
                cuts=self.TRACKER_CUTS,
                track_stats=False,
                track_reductions=track,
            )
            for rows, cols, vals in batches:
                H.update(rows, cols, vals)
            return H

        tracked_s, untracked_s = _interleaved_best(
            lambda: stream(True), lambda: stream(False), repeats=5
        )
        overhead = tracked_s / untracked_s if untracked_s > 0 else float("inf")
        _arena_results["tracker_1m"] = {
            "total_entries": self.LARGE,
            "nbatches": self.NBATCHES,
            "cuts": list(self.TRACKER_CUTS),
            "tracked_seconds": round(tracked_s, 6),
            "untracked_seconds": round(untracked_s, 6),
            "overhead": round(overhead, 4),
        }
        assert overhead <= TRACKED_CEILING, (
            f"tracked streaming at 1M is {overhead:.2f}x untracked, above the "
            f"{TRACKED_CEILING}x ceiling (REPRO_BENCH_TRACKED_CEILING)"
        )

    def test_zz_arena_report(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        expected = {f"pending_{self.SMALL}", f"pending_{self.LARGE}", "tracker_1m"}
        assert expected <= set(_arena_results)
        lines = [
            "Arena-backed ingest core: preallocated pending arenas (PR 10)",
            "",
            f"{'workload':>24} {'arena s':>10} {'list s':>10} {'speedup':>9}",
            "-" * 56,
        ]
        for key in sorted(k for k in _arena_results if k.startswith("pending_")):
            t = _arena_results[key]
            lines.append(
                f"{t['total_entries']:>16,} x {t['nbatches']:>3}b "
                f"{t['arena_seconds']:>10.6f} {t['list_seconds']:>10.6f} "
                f"{t['speedup']:>8.2f}x"
            )
        tr = _arena_results["tracker_1m"]
        lines += [
            "",
            f"tracked-vs-untracked streaming at {tr['total_entries']:,} entries "
            f"(cuts {tr['cuts']}):",
            f"  tracked {tr['tracked_seconds']:.3f}s  untracked "
            f"{tr['untracked_seconds']:.3f}s  overhead {tr['overhead']:.2f}x "
            f"(ceiling {TRACKED_CEILING}x)",
            "",
            "the arena appends into preallocated columns and serves zero-copy",
            "views at flush; the chunk-list backend copies per batch and pays a",
            "full concatenation per flush.  tracker catch-up is a segmented",
            "merge of presorted flush keys, so tracking streams at parity.",
        ]
        write_report(results_dir, "arena_sweep", lines)
        update_bench_json(results_dir, "arena", dict(_arena_results))
