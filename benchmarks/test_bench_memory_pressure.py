"""Ablation 2: memory pressure of hierarchical vs flat ingest.

The paper's architectural claim: "Hierarchical hypersparse matrices dramatically
reduce the number of updates to slow memory."  This benchmark measures, for the
same stream, (a) the element-writes per hierarchy layer recorded by the
hierarchical matrix and (b) the total elements rewritten by the flat baseline,
then maps both onto the memory-hierarchy cost model.

Expected shape: the hierarchy puts the large majority of element-writes into
cache-sized layers (high fast-memory fraction) and its slow-memory write count
is a small fraction of the flat baseline's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FlatGraphBLASIngestor
from repro.core import HierarchicalMatrix
from repro.memory import CostModel
from repro.workloads import IngestSession, paper_stream

from .conftest import write_report

pytestmark = pytest.mark.bench

N_UPDATES = 100_000
N_BATCHES = 100
CUTS = [2_000, 20_000, 200_000]

_state = {}


def _run_hierarchical():
    H = HierarchicalMatrix(2**32, 2**32, "fp64", cuts=CUTS)
    IngestSession(H, "hier").run(paper_stream(total_entries=N_UPDATES, nbatches=N_BATCHES, seed=0))
    return H


def _run_flat():
    F = FlatGraphBLASIngestor(2**32, 2**32)
    IngestSession(F, "flat").run(paper_stream(total_entries=N_UPDATES, nbatches=N_BATCHES, seed=0))
    return F


class TestMemoryPressure:
    def test_hierarchical_ingest(self, benchmark):
        _state["hier"] = benchmark.pedantic(_run_hierarchical, rounds=1, iterations=1)

    def test_flat_ingest(self, benchmark):
        _state["flat"] = benchmark.pedantic(_run_flat, rounds=1, iterations=1)

    def test_zz_report_and_shape(self, benchmark, results_dir):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep visible under --benchmark-only
        assert "hier" in _state and "flat" in _state
        H: HierarchicalMatrix = _state["hier"]
        F: FlatGraphBLASIngestor = _state["flat"]

        cm = CostModel()
        hier_est = cm.estimate_from_stats(H.stats, H.cuts, total_distinct=H.nvals)
        flat_writes = F.element_writes
        analytic_speedup = cm.speedup_estimate(N_UPDATES, N_UPDATES // N_BATCHES, CUTS)
        # Analytic projection at the paper's per-process scale (100M updates in
        # 1,000 batches of 100,000) with the paper-default cuts.
        paper_flat = cm.estimate_flat(100_000_000, 100_000)
        paper_hier = cm.estimate_hierarchical(100_000_000, 100_000, [2**17, 2**20, 2**23])

        lines = [
            "Ablation 2: memory pressure (element writes per memory level)",
            f"(workload: {N_UPDATES:,} updates in {N_BATCHES} batches, cuts={CUTS})",
            "",
            f"{'strategy':<16} {'writes/level (fastest->slowest)':<42} {'slow-mem writes':>16}",
            "-" * 78,
            f"{'hierarchical':<16} {str(H.stats.element_writes):<42} {H.stats.slow_memory_writes:>16,}",
            f"{'flat':<16} {'[all in one DRAM-resident matrix]':<42} {flat_writes:>16,}",
            "",
            f"hierarchical fast-memory write fraction: {H.stats.fast_memory_fraction:.3f}",
            f"measured slow-memory write reduction:    {flat_writes / max(H.stats.slow_memory_writes, 1):.1f}x",
            f"cost-model level attribution (hier):     {hier_est.writes_per_level}",
            f"cost-model estimated time  flat/hier:    {analytic_speedup:.1f}x",
            "",
            "analytic projection at paper scale (100M updates, batches of 100k, cuts 2^17/2^20/2^23):",
            f"  flat:          slow-memory fraction {paper_flat.slow_fraction:.3f}, "
            f"est. {paper_flat.estimated_seconds:,.1f} s of memory traffic",
            f"  hierarchical:  slow-memory fraction {paper_hier.slow_fraction:.3f}, "
            f"est. {paper_hier.estimated_seconds:,.1f} s of memory traffic",
        ]
        write_report(results_dir, "ablation2_memory_pressure", lines)

        # The paper's claim, quantitatively: most writes stay in fast memory and
        # the slow-memory traffic is far below the flat baseline's.
        assert H.stats.fast_memory_fraction > 0.5
        assert H.stats.slow_memory_writes < flat_writes / 2
        assert analytic_speedup > 1.0
        assert paper_hier.slow_fraction < paper_flat.slow_fraction
        assert paper_hier.estimated_seconds < paper_flat.estimated_seconds
