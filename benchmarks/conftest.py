"""Shared configuration for the benchmark harness.

Every benchmark writes its report (the rows/series corresponding to the
paper's figure or headline number) both to stdout and to a text file under
``benchmarks/results/`` so the numbers survive pytest's output capturing and
can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Machine-readable benchmark trajectory file; sections are written by the
#: individual benchmark modules via :func:`update_bench_json` so future PRs
#: can diff kernel/ingest performance against this PR's numbers.
BENCH_JSON_NAME = "BENCH_kernels.json"

#: Scale factor applied to the paper's workload sizes so the harness runs in
#: minutes on a laptop.  Override with REPRO_BENCH_SCALE=1.0 for a full run.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.001"))

#: The default scale the hard-coded workload constants were tuned for.
REFERENCE_SCALE = 0.001


def scaled(n: int, minimum: int = 1_000) -> int:
    """Scale a workload constant by BENCH_SCALE relative to the default scale.

    At the default ``REPRO_BENCH_SCALE`` this is the identity, so recorded
    numbers stay comparable across runs; smoke runs (e.g. CI at 0.0001)
    shrink the workloads proportionally, floored at ``minimum``.
    """
    return max(minimum, int(n * BENCH_SCALE / REFERENCE_SCALE))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def write_report(results_dir: Path, name: str, lines) -> str:
    """Write a benchmark report to results/<name>.txt and return the text."""
    text = "\n".join(lines) + "\n"
    (results_dir / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text


def update_bench_json(results_dir: Path, section: str, payload: dict) -> Path:
    """Merge one section into results/BENCH_kernels.json and return its path.

    The file accumulates sections from every benchmark module in a single
    run; existing sections from earlier runs are overwritten, never deleted,
    so a partial rerun keeps the rest of the trajectory intact.  Provenance
    (scale, interpreter, machine) is recorded per section so sections written
    by different runs can't be mislabelled with each other's configuration.
    """
    path = results_dir / BENCH_JSON_NAME
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data[section] = {
        **payload,
        "bench_scale": BENCH_SCALE,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path
