"""Shared configuration for the benchmark harness.

Every benchmark writes its report (the rows/series corresponding to the
paper's figure or headline number) both to stdout and to a text file under
``benchmarks/results/`` so the numbers survive pytest's output capturing and
can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale factor applied to the paper's workload sizes so the harness runs in
#: minutes on a laptop.  Override with REPRO_BENCH_SCALE=1.0 for a full run.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.001"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def write_report(results_dir: Path, name: str, lines) -> str:
    """Write a benchmark report to results/<name>.txt and return the text."""
    text = "\n".join(lines) + "\n"
    (results_dir / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text
