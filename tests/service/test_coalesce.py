"""Property tests for the gateway's batch coalescer.

The coalescer sits between many small per-client batches and the router's
large-batch sweet spot, so its correctness argument is exactly its three
documented invariants — order, bound, single combiner — plus the segment
bookkeeping the gateway's acknowledgement protocol depends on.  Hypothesis
drives randomized client interleavings (mixed batch sizes, operators, and
value kinds) and the tests reconstruct each client's stream from the emitted
batches to prove nothing was reordered, dropped, or duplicated.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import BatchCoalescer, CoalescedBatch

# One randomized client action: who sends, how many updates, with which
# operator, and whether the values ride symbolically (all-ones), as a
# broadcast scalar, or as an explicit array.
actions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),        # client
        st.integers(min_value=0, max_value=50),       # batch size
        st.sampled_from(["plus", "max", "min"]),      # operator
        st.sampled_from(["ones", "scalar", "array"]),  # value kind
    ),
    max_size=40,
)


def run_actions(coalescer, acts, seed=0):
    """Feed randomized actions; return (emitted batches, per-client truth)."""
    rng = np.random.default_rng(seed)
    emitted = []
    truth = {}  # client -> list of (row, col, value, op) in arrival order
    for client, n, op, kind in acts:
        rows = rng.integers(0, 1000, size=n, dtype=np.int64)
        cols = rng.integers(0, 1000, size=n, dtype=np.int64)
        if kind == "ones":
            values = 1
            vals = np.ones(n)
        elif kind == "scalar":
            values = 3.0
            vals = np.full(n, 3.0)
        else:
            vals = rng.integers(1, 10, size=n).astype(np.float64)
            values = vals
        truth.setdefault(client, []).extend(
            zip(rows.tolist(), cols.tolist(), vals.tolist(), [op] * n)
        )
        emitted.extend(coalescer.add(client, rows, cols, values, op=op))
    tail = coalescer.flush()
    if tail is not None:
        emitted.append(tail)
    return emitted, truth


def replay(emitted):
    """Reconstruct each client's update stream from batch segments."""
    streams = {}
    for batch in emitted:
        vals = (
            np.ones(batch.size)
            if np.isscalar(batch.values)
            else np.asarray(batch.values, dtype=np.float64)
        )
        offset = 0
        for client, count in batch.segments:
            sl = slice(offset, offset + count)
            streams.setdefault(client, []).extend(
                zip(
                    batch.rows[sl].tolist(),
                    batch.cols[sl].tolist(),
                    vals[sl].tolist(),
                    [batch.op] * count,
                )
            )
            offset += count
        assert offset == batch.size, "segments must tile the batch exactly"
    return streams


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(acts=actions, max_updates=st.integers(min_value=1, max_value=64))
    def test_per_client_order_preserved(self, acts, max_updates):
        """Replaying emitted segments reproduces every client's exact stream."""
        emitted, truth = run_actions(BatchCoalescer(max_updates), acts)
        streams = replay(emitted)
        for client, expect in truth.items():
            assert streams.get(client, []) == expect
        for client in streams:
            assert client in truth or not streams[client]

    @settings(max_examples=60, deadline=None)
    @given(acts=actions, max_updates=st.integers(min_value=1, max_value=64))
    def test_batches_bounded(self, acts, max_updates):
        """No emitted batch exceeds max_updates; the buffer stays below it."""
        coalescer = BatchCoalescer(max_updates)
        rng = np.random.default_rng(0)
        for client, n, op, _kind in acts:
            rows = rng.integers(0, 1000, size=n, dtype=np.int64)
            for batch in coalescer.add(client, rows, rows, 1, op=op):
                assert 0 < batch.size <= max_updates
            assert coalescer.pending_updates < max_updates
        tail = coalescer.flush()
        if tail is not None:
            assert 0 < tail.size < max_updates
        assert coalescer.pending_updates == 0

    @settings(max_examples=60, deadline=None)
    @given(acts=actions, max_updates=st.integers(min_value=1, max_value=64))
    def test_single_combiner_per_batch(self, acts, max_updates):
        """A batch never mixes operators; switches flush the old op first."""
        emitted, truth = run_actions(BatchCoalescer(max_updates), acts)
        streams = replay(emitted)
        for client, updates in streams.items():
            # Each replayed update carries the op of its emitted batch; if
            # batches mixed ops the replay would disagree with the truth.
            assert [u[3] for u in updates] == [u[3] for u in truth[client]]
        for batch in emitted:
            assert isinstance(batch, CoalescedBatch)
            assert batch.op in ("plus", "max", "min")


class TestFairness:
    @settings(max_examples=50, deadline=None)
    @given(
        max_updates=st.integers(min_value=4, max_value=256),
        nhot=st.integers(min_value=1, max_value=4),
        skew=st.integers(min_value=10, max_value=100),
    )
    def test_hot_clients_cannot_starve_slow_client(self, max_updates, nhot, skew):
        """A 1:``skew`` rate skew still drains the slow client promptly.

        Emission round-robins across clients, one chunk (or window remainder)
        per turn, and a served client yields the rotation head — so a slow
        client with one pending update is served within ``nhot + 1`` emitted
        windows no matter how much the hot clients keep queueing.  (The old
        arrival-order emission had no such bound: hot clients refilling the
        buffer faster than it drained starved the slow chunk indefinitely.)
        """
        c = BatchCoalescer(max_updates)
        rng = np.random.default_rng(3)
        hot = [f"hot{i}" for i in range(nhot)]
        # Build a hot backlog first so the slow client lands behind it.
        for name in hot:
            rows = rng.integers(0, 1000, size=skew, dtype=np.int64)
            c.add(name, rows, rows, 1)
        windows = 0
        served = False

        def scan(batches):
            nonlocal windows, served
            for batch in batches:
                if not served:
                    windows += 1
                    served = any(cl == "slow" for cl, _ in batch.segments)

        scan(c.add("slow", [7], [7], 1))
        # Hot clients keep producing skew updates for the slow client's one.
        for _ in range(400):
            if served or windows > nhot + 1:
                break
            for name in hot:
                rows = rng.integers(0, 1000, size=skew, dtype=np.int64)
                scan(c.add(name, rows, rows, 1))
        assert served, "slow client never served"
        assert windows <= nhot + 1, (
            f"slow client starved for {windows} windows "
            f"(bound is nhot + 1 = {nhot + 1})"
        )


class TestKeys:
    def test_keys_propagate_when_all_chunks_carry_them(self):
        c = BatchCoalescer(8)
        c.add("a", [1, 2, 3], [4, 5, 6], 1, keys=np.array([10, 11, 12], dtype=np.uint64))
        out = c.add("b", np.arange(5), np.arange(5), 1, keys=np.arange(20, 25, dtype=np.uint64))
        assert len(out) == 1
        np.testing.assert_array_equal(out[0].keys, [10, 11, 12, 20, 21, 22, 23, 24])
        assert out[0].keys.dtype == np.uint64

    def test_keys_dropped_when_any_chunk_lacks_them(self):
        """A keyless chunk (pickled-frame client) poisons only its window."""
        c = BatchCoalescer(8)
        c.add("a", [1, 2, 3], [4, 5, 6], 1, keys=np.array([10, 11, 12], dtype=np.uint64))
        out = c.add("b", np.arange(5), np.arange(5), 1)
        assert len(out) == 1 and out[0].keys is None

    def test_keys_split_with_their_updates(self):
        """An oversized keyed batch keeps keys aligned across the split."""
        c = BatchCoalescer(10)
        keys = np.arange(100, 125, dtype=np.uint64)
        out = c.add("a", np.arange(25), np.arange(25), 1, keys=keys)
        tail = c.flush()
        replayed = np.concatenate([b.keys for b in out] + [tail.keys])
        np.testing.assert_array_equal(replayed, keys)

    def test_keys_length_mismatch_rejected(self):
        c = BatchCoalescer(8)
        with pytest.raises(ValueError):
            c.add("a", [1, 2], [3, 4], 1, keys=np.array([9], dtype=np.uint64))


class TestUnit:
    def test_all_ones_stays_symbolic(self):
        """All-ones chunks coalesce to scalar values=1 (key-only wire)."""
        c = BatchCoalescer(8)
        out = c.add("a", [1, 2, 3], [4, 5, 6], 1)
        assert out == []
        out = c.add("b", np.arange(5), np.arange(5), 1)
        assert len(out) == 1 and out[0].values == 1
        assert out[0].segments == [("a", 3), ("b", 5)]

    def test_mixed_values_materialize_ones(self):
        """A symbolic chunk merged with an array chunk expands to ones."""
        c = BatchCoalescer(4)
        c.add("a", [1, 2], [1, 2], 1)
        out = c.add("b", [3, 4], [3, 4], np.array([7.0, 8.0]))
        assert len(out) == 1
        np.testing.assert_array_equal(out[0].values, [1.0, 1.0, 7.0, 8.0])

    def test_oversized_batch_splits(self):
        """One incoming batch larger than the bound peels into several."""
        c = BatchCoalescer(10)
        out = c.add("a", np.arange(25), np.arange(25), 1)
        assert [b.size for b in out] == [10, 10]
        assert c.pending_updates == 5
        tail = c.flush()
        assert tail.size == 5
        replayed = np.concatenate([b.rows for b in out] + [tail.rows])
        np.testing.assert_array_equal(replayed, np.arange(25))

    def test_op_switch_flushes(self):
        """Changing operator emits the old buffer before accepting new."""
        c = BatchCoalescer(100)
        c.add("a", [1], [1], 1, op="plus")
        out = c.add("a", [2], [2], 1, op="max")
        assert len(out) == 1 and out[0].op == "plus" and out[0].size == 1
        assert c.pending_op == "max"
        assert c.flush().op == "max"

    def test_scalar_broadcast(self):
        """A non-one scalar broadcasts to a per-update value array."""
        c = BatchCoalescer(100)
        c.add("a", [1, 2], [3, 4], 5.0)
        batch = c.flush()
        np.testing.assert_array_equal(batch.values, [5.0, 5.0])

    def test_length_mismatch_rejected(self):
        c = BatchCoalescer(100)
        with pytest.raises(ValueError):
            c.add("a", [1, 2], [3], 1)
        with pytest.raises(ValueError):
            c.add("a", [1, 2], [3, 4], np.array([1.0]))

    def test_empty_add_is_noop(self):
        c = BatchCoalescer(4)
        assert c.add("a", [], [], 1) == []
        assert c.pending_updates == 0 and c.pending_op is None
        assert c.flush() is None
