"""Gateway serving semantics + the auto-rebalancer policy, single process.

The fault battery and the multi-client soak live in ``tests/distributed``;
this file pins the service layer's own contracts with cheap in-process
matrices: the protocol surface (handshake, acks, snapshot reads, error
latching), admission control, backpressure accounting, shutdown draining,
and every branch of the :class:`AutoRebalancer` hysteresis machine driven by
an injected clock.
"""

from __future__ import annotations

import pickle
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import HierarchicalMatrix
from repro.distributed import ShardedHierarchicalMatrix
from repro.distributed.node import F_DATA_PICKLED
from repro.graphblas.errors import InvalidValue
from repro.graphblas.types import lookup_dtype
from repro.service import AutoRebalancer, GatewayClient, GatewayError, IngestGateway

CUTS = [200, 2_000]


# --------------------------------------------------------------------------- #
# AutoRebalancer policy (fake matrix, fake clock)
# --------------------------------------------------------------------------- #


class FakeBalanceMatrix:
    """Scripted imbalance readings + migration outcomes for policy tests."""

    def __init__(self, imbalances, migrations_available=0):
        self._imbalances = list(imbalances)
        self.migrations_available = migrations_available
        self.rebalance_calls = 0

    def imbalance(self, by="nnz"):
        if len(self._imbalances) > 1:
            return self._imbalances.pop(0)
        return self._imbalances[0]

    def rebalance(self, by="nnz", fraction=0.5, threshold=1.0):
        self.rebalance_calls += 1
        if self.migrations_available <= 0:
            return None
        self.migrations_available -= 1
        return SimpleNamespace(
            epoch=self.rebalance_calls, source=0, dest=1, moved=10,
            slab=(0, 100), imbalance_before=2.0,
        )


class TestAutoRebalancerPolicy:
    def test_below_trigger_never_migrates(self):
        matrix = FakeBalanceMatrix([1.2], migrations_available=5)
        policy = AutoRebalancer(matrix, trigger=1.5, interval=1.0, clock=lambda: 0.0)
        for now in range(10):
            policy.maybe_step(now=float(now))
        assert matrix.rebalance_calls == 0
        assert policy.events == []

    def test_trigger_migrates_down_to_settle(self):
        matrix = FakeBalanceMatrix([2.0], migrations_available=3)
        policy = AutoRebalancer(
            matrix, trigger=1.5, settle=1.1, interval=1.0, clock=lambda: 0.0
        )
        reports = policy.step(now=0.0)
        # Three migrations available, then the matrix reports settled (None).
        assert len(reports) == 3
        assert policy.events == reports

    def test_max_migrations_per_step_bounds_burst(self):
        matrix = FakeBalanceMatrix([2.0], migrations_available=100)
        policy = AutoRebalancer(
            matrix, trigger=1.5, interval=1.0, max_migrations_per_step=2,
            clock=lambda: 0.0,
        )
        assert len(policy.step(now=0.0)) == 2

    def test_cooldown_quiets_the_policy_after_migrating(self):
        matrix = FakeBalanceMatrix([2.0], migrations_available=1)
        policy = AutoRebalancer(
            matrix, trigger=1.5, interval=1.0, cooldown=5.0, clock=lambda: 0.0
        )
        assert len(policy.step(now=0.0)) == 1
        # Inside the cool-down window: no checks at all.
        checks = policy.checks
        for now in (1.0, 2.0, 4.9):
            assert policy.maybe_step(now=now) == []
        assert policy.checks == checks
        # After it expires the policy measures again.
        policy.maybe_step(now=5.0)
        assert policy.checks == checks + 1

    def test_fruitless_checks_back_off_exponentially(self):
        # Permanently skewed (one hot slab that cannot move): triggered
        # checks that migrate nothing must double the interval, capped.
        matrix = FakeBalanceMatrix([3.0], migrations_available=0)
        policy = AutoRebalancer(
            matrix, trigger=1.5, interval=1.0, max_backoff=4, clock=lambda: 0.0
        )
        gaps = []
        now = 0.0
        for _ in range(5):
            policy.step(now=now)
            gaps.append(policy._next_check - now)
            now = policy._next_check
        assert gaps == [2.0, 4.0, 4.0, 4.0, 4.0]  # doubles, then capped
        assert policy.fruitless_checks == 5
        # A successful migration re-arms the base cadence.
        matrix.migrations_available = 1
        policy.step(now=now)
        assert policy._backoff == 1

    def test_force_skips_the_trigger_gate(self):
        matrix = FakeBalanceMatrix([1.0], migrations_available=1)
        policy = AutoRebalancer(matrix, trigger=5.0, clock=lambda: 0.0)
        assert policy.step(now=0.0, force=False) == []
        assert len(policy.step(now=0.0, force=True)) == 1

    def test_parameter_validation(self):
        matrix = FakeBalanceMatrix([1.0])
        with pytest.raises(InvalidValue):
            AutoRebalancer(matrix, by="entropy")
        with pytest.raises(InvalidValue):
            AutoRebalancer(matrix, trigger=0.5)
        with pytest.raises(InvalidValue):
            AutoRebalancer(matrix, trigger=1.5, settle=2.0)
        # Default settle splits the band.
        assert AutoRebalancer(matrix, trigger=2.0).settle == 1.5

    def test_threaded_mode_routes_through_dispatch(self):
        matrix = FakeBalanceMatrix([2.0], migrations_available=1)
        policy = AutoRebalancer(matrix, trigger=1.5, interval=0.01)
        dispatched = threading.Event()

        def dispatch(fn):
            result = fn()
            dispatched.set()
            return result

        policy.start(dispatch=dispatch)
        try:
            assert dispatched.wait(timeout=10)
        finally:
            policy.stop()
        assert policy.last_error is None
        assert matrix.rebalance_calls >= 1
        policy.stop()  # idempotent


# --------------------------------------------------------------------------- #
# Gateway serving over real in-process matrices
# --------------------------------------------------------------------------- #


@pytest.fixture()
def gateway():
    matrix = ShardedHierarchicalMatrix(3, cuts=CUTS, partition="range")
    gw = IngestGateway(matrix, coalesce_updates=512, flush_interval=0.01)
    gw.start()
    yield gw
    gw.close()
    matrix.close()


def _client_batches(client_seed, nbatches=10, max_batch=200):
    rng = np.random.default_rng(client_seed)
    for _ in range(nbatches):
        n = int(rng.integers(1, max_batch))
        rows = rng.integers(0, 2 ** 20, n, dtype=np.uint64)
        cols = rng.integers(0, 2 ** 20, n, dtype=np.uint64)
        vals = rng.integers(1, 10, n).astype(np.float64)
        yield rows, cols, vals


class TestGatewayServing:
    def test_concurrent_clients_bit_identical_to_flat(self, gateway):
        """Two client threads; the served matrix equals a flat reference."""
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        lock = threading.Lock()
        failures = []

        def run(seed):
            try:
                with GatewayClient(gateway.address) as client:
                    sent = 0
                    for rows, cols, vals in _client_batches(seed):
                        client.update(rows, cols, vals)
                        sent += rows.size
                        with lock:
                            flat.update(rows, cols, vals)
                    ack = client.sync()
                    assert ack["acked"] == sent == client.sent_updates
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=run, args=(seed,)) for seed in (1, 2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert failures == []
        assert gateway.matrix.materialize().isequal(flat.materialize())
        metrics = gateway.metrics()
        assert metrics["clients_total"] == 2
        assert metrics["routed_updates"] == metrics["received_updates"]

    def test_snapshot_reads_and_epoch_tags(self, gateway):
        with GatewayClient(gateway.address) as client:
            client.update([1, 2, 3], [4, 5, 6], [2.0, 3.0, 4.0])
            ack = client.sync()
            assert ack["acked"] == 3
            assert client.nnz() == 3
            assert client.get(1, 4) == 2.0
            assert client.get(7, 7) is None
            stats = client.stats()
            assert stats["nnz"] == 3.0 and stats["total_traffic"] == 9.0
            top = client.top(2)
            assert len(top["top_sources"]) <= 2
            assert client.epoch() == 0 and client.last_epoch == 0
            assert client.imbalance("nnz") >= 1.0
            assert len(client.shard_loads("traffic")) == 3
            assert client.pressure() == 0.0
            metrics = client.gateway_metrics()
            assert metrics["received_updates"] == 3
            assert client.rebalance_events() == []

    def test_reads_observe_own_writes_without_sync(self, gateway):
        """Snapshot reads flush the coalescer first (read-your-writes)."""
        with GatewayClient(gateway.address) as client:
            client.update([10], [20], [5.0])
            assert client.get(10, 20) == 5.0  # no sync in between

    def test_admission_refuses_beyond_max_clients(self):
        matrix = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        gw = IngestGateway(matrix, max_clients=1, flush_interval=0.01)
        gw.start()
        try:
            with GatewayClient(gw.address) as first:
                assert first.nnz() == 0
                with pytest.raises(GatewayError, match="too many clients"):
                    GatewayClient(gw.address)
            # Slots free up when clients disconnect.
            with GatewayClient(gw.address) as second:
                assert second.nnz() == 0
        finally:
            gw.close()

    def test_oversized_frame_refused_and_connection_closed(self):
        matrix = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        gw = IngestGateway(matrix, max_frame_bytes=1024, flush_interval=0.01)
        gw.start()
        try:
            client = GatewayClient(gw.address)
            n = 2048  # 16 bytes per update on the wire >> 1024-byte bound
            rows = np.arange(n, dtype=np.uint64)
            client.update(rows, rows, np.full(n, 2.0))
            with pytest.raises(GatewayError):
                client.sync()
            client.close()
            assert gw.metrics()["rejected_frames"] >= 1
            assert gw.metrics()["routed_updates"] == 0
        finally:
            gw.close()

    def test_server_side_range_error_latches_until_sync(self, gateway):
        with GatewayClient(gateway.address) as client:
            # Bypass the client's local validation: a pickled frame with
            # coordinates beyond the shape must latch server-side.
            client._send(
                F_DATA_PICKLED,
                pickle.dumps(([2 ** 40], [1], [1.0]), protocol=pickle.HIGHEST_PROTOCOL),
            )
            with pytest.raises(GatewayError, match="InvalidIndex"):
                client.sync()
            # The connection keeps serving after reporting the error.
            client.update([1], [1], [1.0])
            assert client.sync()["acked"] == 1

    def test_operator_mismatch_latches_and_drops(self, gateway):
        with GatewayClient(gateway.address) as client:
            client.update([1], [1], [1.0])  # applied under plus
            client.update([2], [2], [7.0], op="max")  # refused combiner
            with pytest.raises(GatewayError, match="single-combiner"):
                client.sync()
            # The max-op update was dropped, not applied.
            assert client.get(2, 2) is None
            client.update([3], [3], [1.0], op="plus")
            assert client.sync()["acked"] == 2

    def test_all_ones_batches_ride_key_only_frames(self, gateway):
        with GatewayClient(gateway.address) as client:
            client.update([1, 2, 3], [1, 2, 3], 1)
            assert client.sync()["acked"] == 3
        metrics = gateway.metrics()
        assert metrics["key_only_frames"] >= 1
        assert gateway.matrix.get(1, 1) == 1.0

    def test_close_drains_coalesced_updates(self):
        matrix = ShardedHierarchicalMatrix(2, cuts=CUTS)
        gw = IngestGateway(matrix, coalesce_updates=1 << 16, flush_interval=60.0)
        gw.start()
        try:
            client = GatewayClient(gw.address)
            rows = np.arange(100, dtype=np.uint64)
            client.update(rows, rows, np.full(100, 2.0))
            # Wait until the frame is parsed into the coalescer (the huge
            # flush interval guarantees it has not been routed yet).
            deadline = threading.Event()
            for _ in range(2000):
                if gw.metrics()["received_updates"] == 100:
                    break
                deadline.wait(0.005)
            assert gw.metrics()["received_updates"] == 100
            assert gw.metrics()["routed_updates"] == 0
            client.close()
            gw.close()  # drain happens here
            assert matrix.materialize().nvals == 100
            assert matrix.get(5, 5) == 2.0
        finally:
            gw.close()
            matrix.close()

    def test_serves_a_plain_hierarchical_matrix(self):
        """Single-node serving: no sharding, no pressure signal, epoch 0."""
        matrix = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        with IngestGateway(matrix, flush_interval=0.01) as gw:
            with GatewayClient(gw.address) as client:
                client.update([1, 2], [3, 4], [1.5, 2.5])
                assert client.sync() == {"acked": 2, "epoch": 0}
                assert client.nnz() == 2
                assert client.pressure() == 0.0
        assert matrix.get(2, 4) == 2.5

    def test_gateway_rebalances_live_clients(self):
        """An attached rebalancer migrates mid-serving; reads stay exact."""
        matrix = ShardedHierarchicalMatrix(3, cuts=CUTS, partition="range")
        policy = AutoRebalancer(matrix, trigger=1.2, interval=0.01, cooldown=0.01)
        gw = IngestGateway(matrix, flush_interval=0.01, rebalancer=policy)
        gw.start()
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        try:
            with GatewayClient(gw.address) as client:
                rng = np.random.default_rng(7)
                for _ in range(20):
                    n = int(rng.integers(50, 200))
                    # Rows skewed into the first shard's range → imbalance.
                    rows = rng.integers(0, 2 ** 10, n, dtype=np.uint64)
                    cols = rng.integers(0, 2 ** 20, n, dtype=np.uint64)
                    vals = rng.integers(1, 5, n).astype(np.float64)
                    client.update(rows, cols, vals)
                    flat.update(rows, cols, vals)
                client.sync()
                reports = gw.rebalance_now()
                events = client.rebalance_events()
                assert len(events) == len(policy.events) >= len(reports) > 0
                assert client.epoch() >= 1
            assert matrix.materialize().isequal(flat.materialize())
        finally:
            gw.close()
            matrix.close()


# --------------------------------------------------------------------------- #
# Backpressure accounting (scripted pressure, fake matrix)
# --------------------------------------------------------------------------- #


class FakePressureMatrix:
    """Minimal gateway-servable matrix with a scripted pressure sequence."""

    nrows = 2 ** 32
    ncols = 2 ** 32
    dtype = lookup_dtype("fp64")
    accum = SimpleNamespace(name="plus")

    def __init__(self, pressures):
        self._pressures = list(pressures)
        self.applied = 0

    def ingest_pressure(self):
        if len(self._pressures) > 1:
            return self._pressures.pop(0)
        return self._pressures[0]

    def update(self, rows, cols, values=1):
        self.applied += int(np.asarray(rows).size)

    @property
    def nvals(self):
        return 0


class TestBackpressure:
    def test_high_watermark_pauses_routing(self):
        # First reading is above the high watermark; the route coroutine
        # must record a wait and poll until the script falls below low.
        matrix = FakePressureMatrix([0.9, 0.9, 0.9, 0.1])
        gw = IngestGateway(
            matrix, coalesce_updates=8, flush_interval=0.01,
            high_watermark=0.75, low_watermark=0.25,
        )
        gw.start()
        try:
            with GatewayClient(gw.address) as client:
                rows = np.arange(32, dtype=np.uint64)
                client.update(rows, rows, np.full(32, 2.0))
                assert client.sync()["acked"] == 32
        finally:
            gw.close()
        assert matrix.applied == 32
        assert gw.metrics()["backpressure_waits"] >= 1

    def test_zero_high_watermark_disables_the_gate(self):
        matrix = FakePressureMatrix([1.0])
        gw = IngestGateway(
            matrix, coalesce_updates=8, flush_interval=0.01,
            high_watermark=0.0, low_watermark=0.0,
        )
        gw.start()
        try:
            with GatewayClient(gw.address) as client:
                rows = np.arange(16, dtype=np.uint64)
                client.update(rows, rows, np.full(16, 2.0))
                assert client.sync()["acked"] == 16
        finally:
            gw.close()
        assert gw.metrics()["backpressure_waits"] == 0

    def test_watermark_validation(self):
        matrix = FakePressureMatrix([0.0])
        with pytest.raises(ValueError):
            IngestGateway(matrix, high_watermark=0.2, low_watermark=0.5)
