"""AutoRejoiner policy tests: fake matrix, injected clock, scripted outages.

The supervisor's whole contract is schedulable behaviour — cheap no-op checks
while healthy, every retired slot resynced as soon as its agent answers,
exponential back-off (capped) while it does not, re-armed by any progress —
so these tests drive :meth:`AutoRejoiner.step`/:meth:`maybe_step` on a fake
matrix whose outages are scripted and a clock that only moves when the test
says so.  The end-to-end rejoin (real agents SIGKILLed and restarted on their
endpoints) lives in ``tests/distributed/test_faults.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.distributed import WorkerCrash
from repro.graphblas.errors import InvalidValue
from repro.service import AutoRejoiner


class FakeRejoinMatrix:
    """Scripted replica deficits + per-shard agent outages."""

    def __init__(self, nshards=2, missing=None):
        self.nshards = nshards
        self.missing = dict(missing or {s: 0 for s in range(nshards)})
        self.down = set()  # shards whose retired slot cannot be respawned
        self.resync_calls = 0

    def missing_replicas(self):
        return sum(self.missing.values())

    def resync_replica(self, shard):
        self.resync_calls += 1
        if self.missing.get(shard, 0) == 0:
            return None
        if shard in self.down:
            raise WorkerCrash(f"shard {shard}: agent still down")
        self.missing[shard] -= 1
        return 100 + shard  # the slot that rejoined


class TestPolicy:
    def test_healthy_cluster_pays_only_the_bookkeeping_check(self):
        matrix = FakeRejoinMatrix(nshards=3)
        policy = AutoRejoiner(matrix, interval=1.0, clock=lambda: 0.0)
        assert policy.step(now=0.0) == []
        # missing_replicas() == 0 short-circuits: no resync round-trips.
        assert matrix.resync_calls == 0
        assert policy.checks == 1 and policy.events == []

    def test_retired_slots_all_rejoin_in_one_step(self):
        matrix = FakeRejoinMatrix(nshards=2, missing={0: 1, 1: 2})
        policy = AutoRejoiner(matrix, interval=1.0, clock=lambda: 0.0)
        events = policy.step(now=5.0)
        assert [(e["shard"], e["slot"]) for e in events] == [
            (0, 100), (1, 101), (1, 101)
        ]
        assert all(e["at"] == 5.0 for e in events)
        assert matrix.missing_replicas() == 0
        assert policy.events == events
        assert policy._backoff == 1  # progress re-arms the base interval

    def test_agent_down_backs_off_exponentially_until_it_returns(self):
        matrix = FakeRejoinMatrix(nshards=1, missing={0: 1})
        matrix.down.add(0)
        policy = AutoRejoiner(matrix, interval=1.0, max_backoff=4, clock=lambda: 0.0)
        gaps = []
        now = 0.0
        for _ in range(4):
            assert policy.step(now=now) == []
            gaps.append(policy._next_check - now)
            now = policy._next_check
        assert gaps == [2.0, 4.0, 4.0, 4.0]  # doubles, then capped
        assert policy.failed_attempts == 4
        assert isinstance(policy.last_error, WorkerCrash)
        # The agent comes back: the next step rejoins and re-arms.
        matrix.down.clear()
        assert len(policy.step(now=now)) == 1
        assert policy._backoff == 1
        assert policy._next_check == now + 1.0

    def test_partial_progress_resets_the_backoff(self):
        # Shard 0's agent is still down but shard 1's slot rejoins: the step
        # made progress, so the cadence must NOT back off (the healthy
        # shard's rejoin proves the supervisor is not spinning uselessly).
        matrix = FakeRejoinMatrix(nshards=2, missing={0: 1, 1: 1})
        matrix.down.add(0)
        policy = AutoRejoiner(matrix, interval=1.0, max_backoff=8, clock=lambda: 0.0)
        events = policy.step(now=0.0)
        assert [e["shard"] for e in events] == [1]
        assert policy._backoff == 1
        assert policy.last_error is not None  # shard 0's failure is recorded

    def test_maybe_step_rate_limits(self):
        matrix = FakeRejoinMatrix(nshards=1, missing={0: 1})
        policy = AutoRejoiner(matrix, interval=2.0, clock=lambda: 0.0)
        policy.step(now=0.0)
        checks = policy.checks
        assert policy.maybe_step(now=1.9) == []
        assert policy.checks == checks  # inside the interval: no check
        policy.maybe_step(now=2.0)
        assert policy.checks == checks + 1

    def test_force_walks_the_shards_even_when_bookkeeping_says_healthy(self):
        matrix = FakeRejoinMatrix(nshards=3)
        policy = AutoRejoiner(matrix, interval=1.0, clock=lambda: 0.0)
        assert policy.step(now=0.0, force=True) == []
        assert matrix.resync_calls == matrix.nshards

    def test_parameter_validation(self):
        with pytest.raises(InvalidValue):
            AutoRejoiner(FakeRejoinMatrix(), interval=-1.0)

    def test_threaded_mode_routes_through_dispatch(self):
        matrix = FakeRejoinMatrix(nshards=1, missing={0: 1})
        policy = AutoRejoiner(matrix, interval=0.01)
        dispatched = threading.Event()

        def dispatch(fn):
            result = fn()
            dispatched.set()
            return result

        policy.start(dispatch=dispatch)
        try:
            assert dispatched.wait(timeout=10)
        finally:
            policy.stop()
        assert policy.last_error is None
        assert matrix.missing_replicas() == 0
        assert len(policy.events) == 1
        policy.stop()  # idempotent
