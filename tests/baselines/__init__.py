"""Test package marker (unique module paths; enables relative imports)."""
