"""Tests for the flat-GraphBLAS and D4M baseline ingestors."""

import numpy as np
import pytest

from repro.baselines import FlatD4MIngestor, FlatGraphBLASIngestor, HierarchicalD4MIngestor
from repro.core import HierarchicalMatrix


def batches(rng, n=5, size=40, space=500):
    out = []
    for _ in range(n):
        out.append(
            (
                rng.integers(0, space, size).astype(np.uint64),
                rng.integers(0, space, size).astype(np.uint64),
                np.ones(size),
            )
        )
    return out


class TestFlatGraphBLAS:
    def test_accumulates_correctly(self, rng):
        flat = FlatGraphBLASIngestor(2**32, 2**32)
        hier = HierarchicalMatrix(nrows=2**32, ncols=2**32, cuts=[50, 500])
        for rows, cols, vals in batches(rng):
            flat.update(rows, cols, vals)
            hier.update(rows, cols, vals)
        assert flat.materialize().isclose(hier.materialize())
        assert flat.total_updates == 200

    def test_element_writes_grow_superlinearly(self, rng):
        flat = FlatGraphBLASIngestor(2**32, 2**32)
        writes = []
        for rows, cols, vals in batches(rng, n=6, space=10**6):
            flat.update(rows, cols, vals)
            writes.append(flat.element_writes)
        increments = np.diff([0] + writes)
        assert increments[-1] > increments[0]  # each merge touches more than the last

    def test_clear(self, rng):
        flat = FlatGraphBLASIngestor()
        flat.update([1], [2], [3.0])
        flat.clear()
        assert flat.total_updates == 0
        assert flat.matrix.nvals == 0

    def test_shape(self):
        assert FlatGraphBLASIngestor(10, 20).shape == (10, 20)


class TestFlatD4M:
    def test_accumulates(self):
        d4m = FlatD4MIngestor()
        d4m.update([1, 2], [3, 4], [1.0, 2.0])
        d4m.update([1], [3], [5.0])
        assoc = d4m.materialize()
        assert assoc.nnz == 2
        key = f"{1:020d}"
        col = f"{3:020d}"
        assert assoc.getval(key, col) == 6.0
        assert d4m.total_updates == 3

    def test_scalar_values(self):
        d4m = FlatD4MIngestor()
        d4m.update([1, 2], [3, 4], 1)
        assert d4m.materialize().nnz == 2

    def test_clear(self):
        d4m = FlatD4MIngestor()
        d4m.update([1], [1], [1.0])
        d4m.clear()
        assert d4m.materialize().nnz == 0


class TestHierarchicalD4M:
    def test_matches_flat_d4m(self, rng):
        hier = HierarchicalD4MIngestor(cuts=[20, 200])
        flat = FlatD4MIngestor()
        for rows, cols, vals in batches(rng, n=4, size=20, space=50):
            hier.update(rows, cols, vals)
            flat.update(rows, cols, vals)
        assert hier.materialize() == flat.materialize()

    def test_stats_exposed(self):
        hier = HierarchicalD4MIngestor(cuts=[2, 20])
        hier.update([1, 2, 3], [4, 5, 6], [1, 1, 1])
        assert hier.stats.total_updates == 3
        assert hier.stats.cascades[0] >= 1
        assert hier.hierarchy.nlevels == 3

    def test_clear(self):
        hier = HierarchicalD4MIngestor(cuts=[10])
        hier.update([1], [2], [1.0])
        hier.clear()
        assert hier.total_updates == 0
        assert hier.materialize().nnz == 0


class TestRelativePerformanceShape:
    def test_hierarchical_does_less_work_than_flat_graphblas(self, rng):
        """Shape check for Fig. 2: as the accumulated state grows, the flat
        ingestor's per-batch element traffic keeps growing while the
        hierarchy's stays bounded by the cuts."""
        flat = FlatGraphBLASIngestor(2**32, 2**32)
        hier = HierarchicalMatrix(nrows=2**32, ncols=2**32, cuts=[100, 1000])
        data = batches(rng, n=25, size=100, space=10**7)
        for rows, cols, vals in data:
            flat.update(rows, cols, vals)
            hier.update(rows, cols, vals)
        assert sum(hier.stats.element_writes) < flat.element_writes
