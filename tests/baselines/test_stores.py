"""Tests for the Accumulo-style LSM store and SciDB-style chunked-array store."""

import numpy as np
import pytest

from repro.baselines import ChunkedArrayStore, SortedTableStore


class TestSortedTableStore:
    def test_put_and_scan(self):
        store = SortedTableStore(memtable_limit=100)
        store.update([1, 2, 3], [4, 5, 6], [1.0, 2.0, 3.0])
        assert store.scan(2, 5) == 2.0
        assert store.scan(9, 9) is None
        assert store.total_updates == 3

    def test_duplicate_keys_sum(self):
        store = SortedTableStore(memtable_limit=100)
        store.update([1, 1], [4, 4], [1.0, 2.0])
        store.update([1], [4], [4.0])
        assert store.scan(1, 4) == 7.0

    def test_flush_on_memtable_limit(self):
        store = SortedTableStore(memtable_limit=10)
        store.update(np.arange(25), np.arange(25), np.ones(25))
        assert store.flushes >= 1
        assert store.num_runs >= 1
        assert store.scan(0, 0) == 1.0

    def test_compaction_merges_runs(self):
        store = SortedTableStore(memtable_limit=5, compaction_fanin=2)
        for i in range(4):
            store.update(np.arange(i * 5, i * 5 + 5), np.zeros(5, dtype=np.uint64), np.ones(5))
        assert store.compactions >= 1
        assert store.num_runs < 4

    def test_to_triples_materialises_everything(self):
        store = SortedTableStore(memtable_limit=3)
        store.update([5, 1, 5], [5, 1, 5], [1.0, 1.0, 1.0])
        rows, cols, vals = store.to_triples()
        assert rows.size == 2
        assert store.nvals == 2
        assert vals[np.where(rows == 5)[0][0]] == 2.0

    def test_write_amplification_tracked(self):
        store = SortedTableStore(memtable_limit=4, compaction_fanin=2)
        for i in range(5):
            store.update(np.arange(i * 4, i * 4 + 4), np.arange(4), np.ones(4))
        # 20 mutations, but flushes + compactions rewrote entries several times over.
        assert store.entries_rewritten > 20

    def test_validation(self):
        with pytest.raises(ValueError):
            SortedTableStore(memtable_limit=0)
        with pytest.raises(ValueError):
            SortedTableStore(compaction_fanin=1)

    def test_empty_store(self):
        store = SortedTableStore()
        assert store.nvals == 0
        assert store.scan(0, 0) is None
        store.flush()  # no-op
        store.compact()  # no-op


class TestChunkedArrayStore:
    def test_put_and_get(self):
        store = ChunkedArrayStore(chunk_size=100)
        store.update([5, 150], [7, 250], [1.0, 2.0])
        assert store.get(5, 7) == 1.0
        assert store.get(150, 250) == 2.0
        assert store.get(99, 99) is None
        assert store.num_chunks == 2

    def test_duplicates_sum_within_chunk(self):
        store = ChunkedArrayStore(chunk_size=100)
        store.update([1, 1], [1, 1], [1.0, 2.0])
        store.update([1], [1], [3.0])
        assert store.get(1, 1) == 6.0
        assert store.nvals == 1

    def test_chunk_routing(self):
        store = ChunkedArrayStore(chunk_size=10)
        store.update([0, 15, 25], [0, 15, 25], [1.0, 1.0, 1.0])
        assert store.num_chunks == 3

    def test_hot_chunk_rewrites_grow(self):
        store = ChunkedArrayStore(chunk_size=1000)
        for i in range(5):
            store.update(np.arange(i * 10, i * 10 + 10), np.arange(10), np.ones(10))
        # All batches land in chunk (0, 0), so rewrites accumulate entries repeatedly.
        assert store.chunk_writes == 5
        assert store.cells_rewritten > 50

    def test_to_triples_sorted(self):
        store = ChunkedArrayStore(chunk_size=10)
        store.update([25, 3, 14], [1, 1, 1], [1.0, 2.0, 3.0])
        rows, cols, vals = store.to_triples()
        assert rows.tolist() == [3, 14, 25]

    def test_empty(self):
        store = ChunkedArrayStore()
        assert store.nvals == 0
        assert store.to_triples()[0].size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkedArrayStore(chunk_size=0)

    def test_agrees_with_hierarchical(self, rng):
        from repro.core import HierarchicalMatrix

        store = ChunkedArrayStore(chunk_size=2**20)
        hier = HierarchicalMatrix(nrows=2**32, ncols=2**32, cuts=[50])
        for _ in range(4):
            rows = rng.integers(0, 10**6, 30).astype(np.uint64)
            cols = rng.integers(0, 10**6, 30).astype(np.uint64)
            store.update(rows, cols, np.ones(30))
            hier.update(rows, cols, np.ones(30))
        h_rows, h_cols, h_vals = hier.materialize().extract_tuples()
        s_rows, s_cols, s_vals = store.to_triples()
        assert np.array_equal(h_rows, s_rows)
        assert np.array_equal(h_cols, s_cols)
        assert np.allclose(h_vals, s_vals)
