"""Tests for the published Figure 2 reference series."""

import pytest

from repro.baselines import (
    PAPER_HEADLINE_RATE,
    PAPER_HEADLINE_SERVERS,
    PublishedSeries,
    figure2_reference_rows,
    published_series,
)


class TestSeries:
    def test_all_figure2_systems_present(self):
        series = published_series()
        names = {s.name for s in series.values()}
        for expected in [
            "Hierarchical GraphBLAS (paper)",
            "Hierarchical D4M",
            "Accumulo D4M",
            "SciDB D4M",
            "Accumulo",
            "Oracle (TPC-C)",
            "CrateDB",
        ]:
            assert expected in names

    def test_headline_constants(self):
        assert PAPER_HEADLINE_RATE == 75_000_000_000
        assert PAPER_HEADLINE_SERVERS == 1100
        paper = published_series()["hierarchical_graphblas_paper"]
        assert paper.peak_rate == pytest.approx(7.5e10)

    def test_figure2_ordering_preserved(self):
        """The ordering of systems in Fig. 2: hierarchical GraphBLAS > hierarchical
        D4M > Accumulo D4M > the database systems."""
        s = published_series()
        assert s["hierarchical_graphblas_paper"].peak_rate > s["hierarchical_d4m"].peak_rate
        assert s["hierarchical_d4m"].peak_rate > s["accumulo_d4m"].peak_rate
        assert s["accumulo_d4m"].peak_rate > s["scidb_d4m"].peak_rate
        assert s["accumulo_d4m"].peak_rate > s["cratedb"].peak_rate
        assert s["cratedb"].peak_rate > s["oracle_tpcc"].peak_rate

    def test_rates_monotone_in_servers(self):
        for series in published_series().values():
            rates = list(series.rates)
            assert rates == sorted(rates)

    def test_rate_at_interpolates(self):
        paper = published_series()["hierarchical_graphblas_paper"]
        mid = paper.rate_at(100)
        assert paper.rate_at(8) < mid < paper.rate_at(1100)

    def test_rate_at_single_point_series_scales_linearly(self):
        single = PublishedSeries("x", (10,), (1e6,), "test")
        assert single.rate_at(20) == pytest.approx(2e6)

    def test_headline_magnitude_from_interpolation(self):
        paper = published_series()["hierarchical_graphblas_paper"]
        assert paper.rate_at(1100) == pytest.approx(7.5e10, rel=0.35)


class TestReferenceRows:
    def test_rows_structure(self):
        rows = figure2_reference_rows(servers=(1, 1100))
        assert all({"system", "servers", "updates_per_second", "source"} <= set(r) for r in rows)
        assert all(r["source"] == "published" for r in rows)

    def test_every_series_contributes(self):
        rows = figure2_reference_rows(servers=(1,))
        assert len({r["system"] for r in rows}) == len(published_series())
