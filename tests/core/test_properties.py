"""Property-based tests for the hierarchical cascade invariants.

The central invariant (the paper's linearity argument): for ANY sequence of
updates and ANY valid cut configuration, the hierarchical matrix materialises
to exactly the same matrix as flat accumulation, and the layer occupancies
respect the cuts between updates.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import HierarchicalMatrix
from repro.graphblas import Matrix, binary

# A batch is a list of (row, col, value) triples over a small space.
batch_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=1, max_value=9),
    ),
    min_size=1,
    max_size=25,
)
batches_strategy = st.lists(batch_strategy, min_size=1, max_size=8)
cuts_strategy = st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=3).map(
    lambda xs: sorted(xs)
)


def apply_updates(H, ref, batches):
    for batch in batches:
        rows = np.array([t[0] for t in batch], dtype=np.uint64)
        cols = np.array([t[1] for t in batch], dtype=np.uint64)
        vals = np.array([t[2] for t in batch], dtype=np.float64)
        H.update(rows, cols, vals)
        ref.build(rows, cols, vals, dup_op=binary.plus)


@settings(max_examples=50, deadline=None)
@given(batches_strategy, cuts_strategy)
def test_hierarchy_equals_flat_accumulation(batches, cuts):
    H = HierarchicalMatrix(cuts=cuts)
    ref = Matrix("fp64", 2**64, 2**64)
    apply_updates(H, ref, batches)
    assert H.materialize().isclose(ref, abs_tol=1e-9)


@settings(max_examples=50, deadline=None)
@given(batches_strategy, cuts_strategy)
def test_layer_occupancy_respects_cuts_after_each_update(batches, cuts):
    """After every update call, every non-terminal layer holds at most c_i entries
    (the cascade fires whenever the cut is exceeded)."""
    H = HierarchicalMatrix(cuts=cuts)
    for batch in batches:
        rows = np.array([t[0] for t in batch], dtype=np.uint64)
        cols = np.array([t[1] for t in batch], dtype=np.uint64)
        vals = np.ones(len(batch))
        H.update(rows, cols, vals)
        for level, cut in enumerate(H.cuts):
            assert H.layer_nvals[level] <= cut


@settings(max_examples=50, deadline=None)
@given(batches_strategy, cuts_strategy)
def test_flush_equals_materialize(batches, cuts):
    H = HierarchicalMatrix(cuts=cuts)
    ref = Matrix("fp64", 2**64, 2**64)
    apply_updates(H, ref, batches)
    materialised = H.materialize()
    flushed = H.flush()
    assert flushed.isclose(materialised, abs_tol=1e-9)
    assert flushed.isclose(ref, abs_tol=1e-9)


@settings(max_examples=50, deadline=None)
@given(batches_strategy, cuts_strategy)
def test_total_updates_counted_exactly(batches, cuts):
    H = HierarchicalMatrix(cuts=cuts)
    expected = 0
    for batch in batches:
        rows = np.array([t[0] for t in batch], dtype=np.uint64)
        cols = np.array([t[1] for t in batch], dtype=np.uint64)
        H.update(rows, cols, np.ones(len(batch)))
        expected += len(batch)
    assert H.stats.total_updates == expected
    assert H.stats.element_writes[0] == expected


@settings(max_examples=30, deadline=None)
@given(batches_strategy, cuts_strategy, cuts_strategy)
def test_result_independent_of_cut_choice(batches, cuts_a, cuts_b):
    """Two hierarchies with different cuts see the same stream -> identical matrices."""
    Ha = HierarchicalMatrix(cuts=cuts_a)
    Hb = HierarchicalMatrix(cuts=cuts_b)
    for batch in batches:
        rows = np.array([t[0] for t in batch], dtype=np.uint64)
        cols = np.array([t[1] for t in batch], dtype=np.uint64)
        vals = np.array([t[2] for t in batch], dtype=np.float64)
        Ha.update(rows, cols, vals)
        Hb.update(rows, cols, vals)
    assert Ha.materialize().isclose(Hb.materialize(), abs_tol=1e-9)


@settings(max_examples=30, deadline=None)
@given(batches_strategy)
def test_get_matches_materialized_elements(batches):
    H = HierarchicalMatrix(cuts=[3, 9])
    seen = {}
    for batch in batches:
        rows = np.array([t[0] for t in batch], dtype=np.uint64)
        cols = np.array([t[1] for t in batch], dtype=np.uint64)
        vals = np.array([t[2] for t in batch], dtype=np.float64)
        H.update(rows, cols, vals)
        for r, c, v in batch:
            seen[(r, c)] = seen.get((r, c), 0.0) + v
    for (r, c), v in list(seen.items())[:20]:
        assert H.get(r, c) == v
