"""Tests for hierarchical-matrix checkpoint/restore."""

import numpy as np
import pytest

from repro.core import HierarchicalMatrix
from repro.core.checkpoint import load_checkpoint, save_checkpoint


def build_matrix(seed=0, cuts=(50, 500)):
    rng = np.random.default_rng(seed)
    H = HierarchicalMatrix(2**32, 2**32, "fp64", cuts=list(cuts), name="ckpt")
    for _ in range(8):
        rows = rng.integers(0, 10_000, 70).astype(np.uint64)
        cols = rng.integers(0, 10_000, 70).astype(np.uint64)
        H.update(rows, cols, np.ones(70))
    return H


class TestCheckpointRoundtrip:
    def test_content_identical(self, tmp_path):
        H = build_matrix()
        path = save_checkpoint(H, tmp_path / "state.npz")
        restored = load_checkpoint(path)
        assert restored.materialize().isequal(H.materialize())

    def test_layer_occupancy_preserved(self, tmp_path):
        H = build_matrix()
        restored = load_checkpoint(save_checkpoint(H, tmp_path / "s.npz"))
        assert restored.layer_nvals == H.layer_nvals
        assert restored.cuts == H.cuts
        assert restored.nlevels == H.nlevels
        assert restored.dtype.name == H.dtype.name
        assert restored.shape == H.shape
        assert restored.name == "ckpt"

    def test_stats_preserved(self, tmp_path):
        H = build_matrix()
        restored = load_checkpoint(save_checkpoint(H, tmp_path / "s.npz"))
        assert restored.stats.total_updates == H.stats.total_updates
        assert restored.stats.cascades == H.stats.cascades
        assert restored.stats.element_writes == H.stats.element_writes

    def test_streaming_continues_after_restore(self, tmp_path):
        H = build_matrix()
        restored = load_checkpoint(save_checkpoint(H, tmp_path / "s.npz"))
        before = restored.materialize().nvals
        restored.update([1, 2, 3], [4, 5, 6], 1.0)
        assert restored.materialize().nvals >= before
        assert restored.get(1, 4) is not None

    def test_pending_tuples_flushed_into_checkpoint(self, tmp_path):
        H = HierarchicalMatrix(2**32, 2**32, cuts=[100])
        H.layers[0].setElement(7, 9, 3.0)  # pending, unmerged
        restored = load_checkpoint(save_checkpoint(H, tmp_path / "s.npz"))
        assert restored.get(7, 9) == 3.0

    def test_path_suffix_added(self, tmp_path):
        H = build_matrix()
        returned = save_checkpoint(H, tmp_path / "noext")
        assert returned.suffix == ".npz"
        assert load_checkpoint(returned).materialize().isequal(H.materialize())

    def test_empty_matrix_roundtrip(self, tmp_path):
        H = HierarchicalMatrix(cuts=[10, 100])
        restored = load_checkpoint(save_checkpoint(H, tmp_path / "empty.npz"))
        assert restored.nvals_stored == 0
        assert restored.shape == (2**64, 2**64)

    def test_hypersparse_coordinates_roundtrip(self, tmp_path):
        H = HierarchicalMatrix(cuts=[5])
        H.update([2**63, 2**40], [2**62, 7], [1.0, 2.0])
        restored = load_checkpoint(save_checkpoint(H, tmp_path / "big.npz"))
        assert restored.get(2**63, 2**62) == 1.0
        assert restored.get(2**40, 7) == 2.0

    def test_wrong_format_version_rejected(self, tmp_path):
        import json

        H = build_matrix()
        path = save_checkpoint(H, tmp_path / "v.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["meta_json"]).decode())
        meta["format_version"] = 999
        arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError):
            load_checkpoint(path)
