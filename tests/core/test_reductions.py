"""Property tests for the incremental reduction subsystem.

The contract under test (the tentpole guarantee): the incrementally maintained
row/col reduction vectors — weighted out-/in-degree, fan-out/fan-in, total
traffic, exact nnz — are *bit-identical* to the materialize-based reductions,
across shard counts, both partition strategies, and both coordinate engines,
while never forcing the deferred layer-1 flush.  Streams use small integer
values (exact in fp64) so any grouping of the additions yields bit-identical
sums, the same idiom the sharded-equivalence suite uses.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HierarchicalMatrix,
    IncrementalReductions,
    KeySetCascade,
    load_checkpoint,
    save_checkpoint,
)
from repro.distributed import ShardedHierarchicalMatrix
from repro.graphblas import Matrix, Vector, binary, coords, monoid
from repro.graphblas import _kernels as K
from repro.graphblas.errors import InvalidValue

CUTS = [500, 5_000]


def random_batches(seed, nbatches=6, batch=300, space=2 ** 18):
    """Integer-valued random batches with plenty of duplicate coordinates."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(nbatches):
        rows = rng.integers(0, space, batch, dtype=np.uint64)
        cols = rng.integers(0, space, batch, dtype=np.uint64)
        vals = rng.integers(1, 8, batch).astype(np.float64)
        out.append((rows, cols, vals))
    return out


def reference_reductions(flat: Matrix):
    """The materialize-based reductions the incremental ones must equal."""
    ones = flat.apply("one")
    return {
        "row_traffic": flat.reduce_rowwise(monoid.plus),
        "col_traffic": flat.reduce_columnwise(monoid.plus),
        "row_fan": ones.reduce_rowwise(monoid.plus),
        "col_fan": ones.reduce_columnwise(monoid.plus),
        "total": float(flat.reduce_scalar(monoid.plus)),
        "nnz": flat.nvals,
    }


def assert_incremental_matches(inc, flat: Matrix):
    ref = reference_reductions(flat)
    assert inc.row_traffic().isequal(ref["row_traffic"])
    assert inc.col_traffic().isequal(ref["col_traffic"])
    assert inc.row_fan().isequal(ref["row_fan"])
    assert inc.col_fan().isequal(ref["col_fan"])
    assert float(inc.total()) == ref["total"]
    assert inc.nnz() == ref["nnz"]


# --------------------------------------------------------------------------- #
# the hierarchical distinct-key set
# --------------------------------------------------------------------------- #


class TestKeySetCascade:
    def test_insert_and_membership(self):
        ks = KeySetCascade(cuts=[4, 16])
        ks.add_new(np.array([3, 7, 11], dtype=np.uint64))
        assert ks.count == 3
        assert 7 in ks and 8 not in ks
        mask = ks.contains(np.array([1, 3, 11, 12], dtype=np.uint64))
        assert mask.tolist() == [False, True, True, False]

    def test_cascade_keeps_levels_disjoint_and_sorted(self):
        ks = KeySetCascade(cuts=[8, 32])
        rng = np.random.default_rng(0)
        seen = np.empty(0, dtype=np.uint64)
        for _ in range(20):
            batch = np.unique(rng.integers(0, 10_000, 50, dtype=np.uint64))
            new = batch[~ks.contains(batch)]
            ks.add_new(new)
            seen = np.union1d(seen, batch)
            assert ks.count == seen.size
            assert np.array_equal(ks.to_array(), seen)
            # Every level individually sorted; bottom level bounded by its cut
            # right after a cascade check.
            for level in ks._levels:
                assert np.all(np.diff(level.astype(np.int64)) > 0) or level.size <= 1

    def test_count_is_sum_of_disjoint_levels(self):
        ks = KeySetCascade(cuts=[2])
        ks.add_new(np.array([1, 2, 3], dtype=np.uint64))  # cascades past cut 2
        ks.add_new(np.array([4], dtype=np.uint64))
        assert ks.count == 4
        assert len(ks) == 4
        arrays = [lvl for lvl in ks._levels if lvl.size]
        merged = np.concatenate(arrays)
        assert np.unique(merged).size == merged.size  # pairwise disjoint

    def test_invalid_cuts_raise(self):
        with pytest.raises(InvalidValue):
            KeySetCascade(cuts=[0])


# --------------------------------------------------------------------------- #
# flat hierarchical matrix
# --------------------------------------------------------------------------- #


class TestIncrementalFlat:
    @pytest.mark.parametrize("packed_engine", [True, False])
    def test_bit_identical_to_materialize(self, packed_engine):
        batches = random_batches(seed=7)
        H = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        if packed_engine:
            for b in batches:
                H.update(*b)
            assert_incremental_matches(H.incremental, H.materialize())
        else:
            with coords.packing_disabled():
                for b in batches:
                    H.update(*b)
                assert_incremental_matches(H.incremental, H.materialize())

    def test_queries_do_not_force_flush(self):
        H = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=[10 ** 9])
        for b in random_batches(seed=3, nbatches=3):
            H.update(*b)
        assert H.layers[0].has_pending
        inc = H.incremental
        inc.row_traffic(), inc.col_traffic(), inc.row_fan(), inc.col_fan()
        inc.total(), inc.nnz()
        assert H.layers[0].has_pending, "incremental reads must not flush layer 1"

    def test_scalar_and_single_inserts(self):
        H = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=[4, 16])
        H.update(5, 6)
        H.update(5, 6, 2.0)
        H.insert(9, 9, 3.0)
        assert_incremental_matches(H.incremental, H.materialize())
        assert H.incremental.nnz() == 2

    def test_update_matrix_paths(self):
        other = Matrix.from_coo([1, 2, 2], [10, 20, 20], [1.0, 2.0, 3.0],
                                nrows=2 ** 32, ncols=2 ** 32)
        for defer in (True, False):
            H = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS, defer_ingest=defer)
            H.update_matrix(other)
            H.update([1], [10], [4.0])
            assert_incremental_matches(H.incremental, H.materialize())

    def test_eager_ingest_matches_too(self):
        batches = random_batches(seed=11, nbatches=3)
        H = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS, defer_ingest=False)
        for b in batches:
            H.update(*b)
        assert_incremental_matches(H.incremental, H.materialize())

    def test_clear_resets(self):
        H = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        H.update([1, 2], [3, 4], [1.0, 1.0])
        H.clear()
        assert H.incremental.nnz() == 0
        assert float(H.incremental.total()) == 0.0
        H.update([7], [8], [2.0])
        assert_incremental_matches(H.incremental, H.materialize())

    def test_non_plus_accum_unsupported(self):
        H = HierarchicalMatrix(cuts=CUTS, accum=binary.max)
        H.update([1, 1], [2, 2], [5.0, 3.0])
        assert not H.incremental.supported
        with pytest.raises(InvalidValue):
            H.incremental.row_traffic()

    def test_track_reductions_false_disables(self):
        H = HierarchicalMatrix(cuts=CUTS, track_reductions=False)
        H.update([1], [2], [1.0])
        assert not H.incremental.supported

    def test_ipv6_shape_tracks_traffic_only(self):
        H = HierarchicalMatrix(2 ** 64, 2 ** 64, cuts=CUTS)
        inc = H.incremental
        assert inc.supported and not inc.fan_supported
        H.update([2 ** 63, 5], [2 ** 63 + 1, 6], [2.0, 3.0])
        flat = H.materialize()
        assert inc.row_traffic().isequal(flat.reduce_rowwise(monoid.plus))
        with pytest.raises(InvalidValue):
            inc.row_fan()

    def test_integer_dtype(self):
        batches = random_batches(seed=13, nbatches=3)
        H = HierarchicalMatrix(2 ** 32, 2 ** 32, "int64", cuts=CUTS)
        for r, c, v in batches:
            H.update(r, c, v.astype(np.int64))
        assert_incremental_matches(H.incremental, H.materialize())

    def test_checkpoint_restore_rebuilds_tracker(self, tmp_path):
        H = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for b in random_batches(seed=17, nbatches=3):
            H.update(*b)
        path = save_checkpoint(H, tmp_path / "ckpt.npz")
        restored = load_checkpoint(path)
        assert_incremental_matches(restored.incremental, restored.materialize())
        # ... and stays consistent as streaming continues.
        restored.update([1, 2], [3, 4], [1.0, 1.0])
        assert_incremental_matches(restored.incremental, restored.materialize())

    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 40), st.integers(1, 9)),
            min_size=0,
            max_size=120,
        ),
        nbatches=st.integers(1, 5),
        engine_packed=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_bit_identity(self, pairs, nbatches, engine_packed):
        """Any batch split of any duplicate-heavy stream, on either engine."""
        H = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=[8, 64])

        def run():
            for chunk in np.array_split(np.arange(len(pairs)), nbatches):
                if chunk.size == 0:
                    continue
                rows = np.array([pairs[i][0] for i in chunk], dtype=np.uint64)
                cols = np.array([pairs[i][1] for i in chunk], dtype=np.uint64)
                vals = np.array([pairs[i][2] for i in chunk], dtype=np.float64)
                H.update(rows, cols, vals)
            assert_incremental_matches(H.incremental, H.materialize())

        if engine_packed:
            run()
        else:
            with coords.packing_disabled():
                run()


# --------------------------------------------------------------------------- #
# the deferred-segment machinery (arena backlog, flush absorption, catch-up)
# --------------------------------------------------------------------------- #


def simulate_flush(inc, r, c, v):
    """Feed one window through observe + a faithful layer-1 flush handoff."""
    inc.observe(r, c, v)
    sr, sc, sv, keys, spec = K.build_triples(r, c, v, binary.plus, with_keys=True)
    return inc.absorb_flush(r.size, binary.plus, sr, sc, sv, keys, spec)


class TestDeferredCatchUp:
    def test_tiny_drain_interval_valve_stays_exact(self):
        """The in-stream safety valve (raw path) never changes results."""
        inc = IncrementalReductions(2**32, 2**32, drain_interval=64)
        flat = Matrix("fp64", 2**32, 2**32)
        for r, c, v in random_batches(seed=19, nbatches=5, batch=100):
            inc.observe(r, c, v)
            flat.build(r, c, v)
        assert inc.full_drains > 0  # the valve actually fired mid-stream
        assert_incremental_matches(inc, flat)

    def test_absorbed_flushes_catch_up_exactly(self):
        """Piggybacked windows settle through segments, never a raw sort."""
        inc = IncrementalReductions(2**32, 2**32, drain_interval=150)
        flat = Matrix("fp64", 2**32, 2**32)
        for r, c, v in random_batches(seed=23, nbatches=6, batch=60):
            assert simulate_flush(inc, r, c, v)
            flat.build(r, c, v)
        assert inc.piggybacked_drains == 6
        assert inc.run_merges >= 1  # interval crossed: in-stream catch-up
        assert inc.full_drains == 0  # raw path never paid a sort
        assert_incremental_matches(inc, flat)

    def test_misaligned_flush_declines_and_drains(self):
        inc = IncrementalReductions(2**32, 2**32)
        r = np.array([1, 2], dtype=np.uint64)
        c = np.array([3, 4], dtype=np.uint64)
        v = np.array([1.0, 2.0])
        inc.observe(r, c, v)
        sr, sc, sv, keys, spec = K.build_triples(r, c, v, binary.plus, with_keys=True)
        # Flush claims a window size the backlog does not match: the tracker
        # must fall back to draining its own raw copy (counted once).
        assert not inc.absorb_flush(5, binary.plus, sr, sc, sv, keys, spec)
        assert inc.full_drains == 1 and inc.piggybacked_drains == 0
        flat = Matrix("fp64", 2**32, 2**32).build(r, c, v)
        assert_incremental_matches(inc, flat)

    def test_non_plus_flush_declines(self):
        inc = IncrementalReductions(2**32, 2**32)
        r = np.array([7], dtype=np.uint64)
        c = np.array([8], dtype=np.uint64)
        v = np.array([2.0])
        inc.observe(r, c, v)
        assert not inc.absorb_flush(1, binary.max, r, c, v)
        assert inc.nnz() == 1 and float(inc.total()) == 2.0

    def test_observe_is_safe_against_buffer_reuse(self):
        """The backlog arena copies at append: callers may mutate immediately."""
        inc = IncrementalReductions(2**32, 2**32)
        r = np.array([1, 2], dtype=np.uint64)
        c = np.array([3, 4], dtype=np.uint64)
        v = np.array([1.0, 2.0])
        inc.observe(r, c, v)
        r[0] = 9
        v[0] = 50.0
        assert float(inc.total()) == 3.0
        assert inc.row_traffic().to_coo()[0].tolist() == [1, 2]

    def test_reset_clears_deferred_segments(self):
        inc = IncrementalReductions(2**32, 2**32)
        for r, c, v in random_batches(seed=29, nbatches=2, batch=50):
            simulate_flush(inc, r, c, v)
        inc.reset()
        assert inc.nnz() == 0 and float(inc.total()) == 0.0
        # ... and keeps tracking correctly afterwards.
        flat = Matrix("fp64", 2**32, 2**32)
        for r, c, v in random_batches(seed=31, nbatches=2, batch=50):
            simulate_flush(inc, r, c, v)
            flat.build(r, c, v)
        assert_incremental_matches(inc, flat)

    def test_queries_between_flushes_stay_exact(self):
        """A mid-window read drains raw, desyncs one window, then realigns."""
        inc = IncrementalReductions(2**32, 2**32)
        flat = Matrix("fp64", 2**32, 2**32)
        batches = random_batches(seed=37, nbatches=4, batch=40)
        for i, (r, c, v) in enumerate(batches):
            if i == 2:
                inc.observe(r, c, v)
                flat.build(r, c, v)
                inc.total()  # mid-window query: backlog drains the raw way
                sr, sc, sv, keys, spec = K.build_triples(
                    r, c, v, binary.plus, with_keys=True
                )
                # The following flush is now misaligned and must decline ...
                assert not inc.absorb_flush(
                    r.size, binary.plus, sr, sc, sv, keys, spec
                )
            else:
                # ... while aligned windows keep piggybacking.
                assert simulate_flush(inc, r, c, v)
                flat.build(r, c, v)
        assert_incremental_matches(inc, flat)


# --------------------------------------------------------------------------- #
# sharded matrices: cross-shard merge
# --------------------------------------------------------------------------- #


class TestIncrementalSharded:
    @pytest.mark.parametrize("nshards", [1, 2, 3, 5])
    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_bit_identical_across_shards(self, nshards, partition):
        batches = random_batches(seed=nshards * 7 + len(partition))
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for b in batches:
            flat.update(*b)
        reference = flat.materialize()
        with ShardedHierarchicalMatrix(
            nshards, cuts=CUTS, partition=partition
        ) as sharded:
            for b in batches:
                sharded.update(*b)
            assert_incremental_matches(sharded.incremental, reference)

    @pytest.mark.parametrize("nshards", [2, 4])
    def test_bit_identical_lexsort_engine(self, nshards):
        with coords.packing_disabled():
            batches = random_batches(seed=31)
            flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
            for b in batches:
                flat.update(*b)
            reference = flat.materialize()
            with ShardedHierarchicalMatrix(nshards, cuts=CUTS) as sharded:
                for b in batches:
                    sharded.update(*b)
                assert_incremental_matches(sharded.incremental, reference)

    def test_process_backed_shards(self):
        batches = random_batches(seed=41, nbatches=4)
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for b in batches:
            flat.update(*b)
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, use_processes=True
        ) as sharded:
            for b in batches:
                sharded.update(*b)
            assert_incremental_matches(sharded.incremental, flat.materialize())

    def test_nvals_served_incrementally(self):
        with ShardedHierarchicalMatrix(2, cuts=CUTS) as sharded:
            sharded.update([1, 2, 1], [3, 4, 3], [1.0, 1.0, 2.0])
            assert sharded.nvals == 2

    def test_stats_command_snapshot(self):
        with ShardedHierarchicalMatrix(2, cuts=CUTS) as sharded:
            sharded.update([1, 2], [3, 4], [2.0, 3.0])
            stats = sharded._pool.request_all("stats")
            assert all(s["supported"] and s["fan_supported"] for s in stats)
            assert sum(s["total"] for s in stats) == 5.0
            assert sum(s["nnz"] for s in stats) == 2
            assert sum(s["updates"] for s in stats) == 2

    def test_track_reductions_false_propagates(self):
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, track_reductions=False
        ) as sharded:
            sharded.update([1], [2], [1.0])
            assert not sharded.incremental.supported
            with pytest.raises(InvalidValue):
                sharded.incremental._merge("row_traffic", sharded.nrows)


# --------------------------------------------------------------------------- #
# vector lazy build (the mechanism the tracker rides)
# --------------------------------------------------------------------------- #


class TestVectorLazyBuild:
    def test_lazy_equals_eager(self):
        rng = np.random.default_rng(5)
        eager = Vector("fp64", 2 ** 32)
        lazy = Vector("fp64", 2 ** 32)
        for _ in range(5):
            idx = rng.integers(0, 1000, 200, dtype=np.uint64)
            vals = rng.integers(1, 5, 200).astype(np.float64)
            eager.build(idx, vals)
            lazy.build(idx, vals, lazy=True)
        assert lazy.has_pending
        assert lazy.isequal(eager)
        assert not lazy.has_pending  # isequal forced the merge

    def test_upper_bound_is_o1_and_reads_force_wait(self):
        v = Vector("fp64", 100)
        v.build([1, 2, 2], [1.0, 1.0, 1.0], lazy=True)
        assert v.has_pending and v.nvals_upper_bound == 3
        assert v.nvals == 2  # forces the merge, duplicates collapse
        assert v[2] == 2.0

    def test_operator_switch_flushes_first(self):
        v = Vector("fp64", 100)
        v.build([1], [5.0], lazy=True)
        v.setElement(1, 9.0)  # 'second' semantics, must see the pending plus
        assert v[1] == 9.0

    def test_copy_semantics_protect_against_mutation(self):
        v = Vector("fp64", 100)
        idx = np.array([1, 2], dtype=np.uint64)
        vals = np.array([1.0, 2.0])
        v.build(idx, vals, lazy=True)
        idx[0] = 50
        vals[0] = 99.0
        assert v[1] == 1.0 and v[50] is None

    def test_clear_drops_pending(self):
        v = Vector("fp64", 100)
        v.build([1], [1.0], lazy=True)
        v.clear()
        assert v.nvals == 0 and not v.has_pending
