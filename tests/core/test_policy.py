"""Tests for cut policies."""

import pytest

from repro.core import AdaptiveCuts, FixedCuts, GeometricCuts, HierarchicalMatrix, default_policy


class TestFixedCuts:
    def test_basic(self):
        p = FixedCuts([10, 100])
        assert p.initial_cuts() == [10, 100]
        assert p.nlevels == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedCuts([])
        with pytest.raises(ValueError):
            FixedCuts([0, 10])
        with pytest.raises(ValueError):
            FixedCuts([-5])
        with pytest.raises(ValueError):
            FixedCuts([100, 10])

    def test_equal_cuts_allowed(self):
        assert FixedCuts([10, 10]).initial_cuts() == [10, 10]

    def test_on_cascade_default_keeps_cuts(self):
        p = FixedCuts([10])
        assert p.on_cascade(0, 15, [10], updates_since_last=1) == [10]

    def test_describe(self):
        assert "FixedCuts" in FixedCuts([4]).describe()


class TestGeometricCuts:
    def test_growth(self):
        p = GeometricCuts(first_cut=10, ratio=10, nlevels_total=4)
        assert p.initial_cuts() == [10, 100, 1000]
        assert p.nlevels == 4

    def test_default_matches_library_default(self):
        assert default_policy().initial_cuts() == [2**17, 2**20, 2**23]

    def test_validation(self):
        with pytest.raises(ValueError):
            GeometricCuts(first_cut=0)
        with pytest.raises(ValueError):
            GeometricCuts(ratio=0)
        with pytest.raises(ValueError):
            GeometricCuts(nlevels_total=1)

    def test_ratio_one_gives_constant_cuts(self):
        assert GeometricCuts(5, 1, 3).initial_cuts() == [5, 5]


class TestAdaptiveCuts:
    def test_initial_cuts_match_geometric(self):
        p = AdaptiveCuts(first_cut=8, ratio=2, nlevels_total=3)
        assert p.initial_cuts() == [8, 16]

    def test_hot_layer_cut_doubles(self):
        p = AdaptiveCuts(first_cut=8, ratio=2, nlevels_total=3, target_cascade_interval=4)
        # Cascade after absorbing only 10 updates (< 4*8=32): layer is hot.
        new = p.on_cascade(0, 9, [8, 16], updates_since_last=10)
        assert new[0] == 16
        assert new[1] >= new[0]  # non-decreasing invariant preserved

    def test_cool_layer_cut_unchanged(self):
        p = AdaptiveCuts(first_cut=8, ratio=2, nlevels_total=3, target_cascade_interval=4)
        new = p.on_cascade(0, 9, [8, 16], updates_since_last=1000)
        assert new == [8, 16]

    def test_growth_is_bounded(self):
        p = AdaptiveCuts(first_cut=8, ratio=2, nlevels_total=3,
                         target_cascade_interval=1000, max_growth=2)
        cuts = [8, 16]
        for _ in range(10):
            cuts = p.on_cascade(0, 9, cuts, updates_since_last=0)
        assert cuts[0] == 32  # doubled at most max_growth times

    def test_out_of_range_level_ignored(self):
        p = AdaptiveCuts(first_cut=8, ratio=2, nlevels_total=3)
        assert p.on_cascade(5, 9, [8, 16], updates_since_last=0) == [8, 16]

    def test_describe(self):
        assert "AdaptiveCuts" in AdaptiveCuts().describe()

    def test_adaptive_in_hierarchical_matrix_stays_correct(self, rng=None):
        import numpy as np
        from repro.graphblas import Matrix, binary

        rng = np.random.default_rng(5)
        policy = AdaptiveCuts(first_cut=4, ratio=2, nlevels_total=3, target_cascade_interval=8)
        H = HierarchicalMatrix(policy=policy)
        ref = Matrix("fp64", 2**64, 2**64)
        for _ in range(15):
            rows = rng.integers(0, 50, 20).astype(np.uint64)
            cols = rng.integers(0, 50, 20).astype(np.uint64)
            vals = np.ones(20)
            H.update(rows, cols, vals)
            ref.build(rows, cols, vals, dup_op=binary.plus)
        assert H.materialize().isclose(ref)
        # The adaptive policy actually widened the first cut under pressure.
        assert H.cuts[0] >= 4
