"""Tests for the hierarchical hypersparse matrix (the paper's core algorithm)."""

import numpy as np
import pytest

from repro.core import FixedCuts, GeometricCuts, HierarchicalMatrix
from repro.graphblas import Matrix, binary
from repro.graphblas.errors import DimensionMismatch, InvalidValue


def flat_reference(updates, nrows=2**64, ncols=2**64):
    """Accumulate the same updates into one flat matrix (ground truth)."""
    ref = Matrix("fp64", nrows, ncols)
    for rows, cols, vals in updates:
        ref.build(rows, cols, vals, dup_op=binary.plus)
    return ref


def random_updates(rng, nbatches=12, batch=50, space=200):
    out = []
    for _ in range(nbatches):
        rows = rng.integers(0, space, batch).astype(np.uint64)
        cols = rng.integers(0, space, batch).astype(np.uint64)
        vals = rng.integers(1, 5, batch).astype(np.float64)
        out.append((rows, cols, vals))
    return out


class TestConstruction:
    def test_default_policy(self):
        H = HierarchicalMatrix()
        assert H.nlevels == 4
        assert H.cuts == (2**17, 2**20, 2**23)
        assert H.shape == (2**64, 2**64)

    def test_explicit_cuts(self):
        H = HierarchicalMatrix(cuts=[10, 100, 1000])
        assert H.nlevels == 4
        assert H.cuts == (10, 100, 1000)

    def test_policy_object(self):
        H = HierarchicalMatrix(policy=GeometricCuts(16, 4, 3))
        assert H.cuts == (16, 64)
        assert H.nlevels == 3

    def test_cuts_and_policy_mutually_exclusive(self):
        with pytest.raises(InvalidValue):
            HierarchicalMatrix(cuts=[10], policy=GeometricCuts())

    def test_invalid_cuts(self):
        with pytest.raises(ValueError):
            HierarchicalMatrix(cuts=[])
        with pytest.raises(ValueError):
            HierarchicalMatrix(cuts=[0, 10])
        with pytest.raises(ValueError):
            HierarchicalMatrix(cuts=[100, 10])

    def test_layers_start_empty(self):
        H = HierarchicalMatrix(cuts=[4])
        assert H.layer_nvals == (0, 0)
        assert H.nvals_stored == 0
        assert all(isinstance(layer, Matrix) for layer in H.layers)

    def test_repr(self):
        H = HierarchicalMatrix(cuts=[4, 8])
        assert "levels=3" in repr(H)


class TestUpdateSemantics:
    def test_single_update_lands_in_layer1(self):
        H = HierarchicalMatrix(cuts=[100, 1000])
        H.update([1, 2], [3, 4], [1.0, 2.0])
        assert H.layer_nvals == (2, 0, 0)

    def test_cascade_when_cut_exceeded(self):
        H = HierarchicalMatrix(cuts=[3, 1000])
        H.update([1, 2, 3, 4], [1, 2, 3, 4], 1.0)
        # nnz(A1)=4 > 3, so A1 spills into A2 and is cleared.
        assert H.layer_nvals == (0, 4, 0)
        assert H.stats.cascades[0] == 1

    def test_cascade_can_ripple_multiple_levels(self):
        H = HierarchicalMatrix(cuts=[2, 3, 1000])
        H.update(np.arange(5), np.arange(5), 1.0)
        # 5 > 2 spills to A2; 5 > 3 spills again to A3; 5 <= 1000 stops there.
        assert H.layer_nvals == (0, 0, 5, 0)
        assert H.stats.cascades[0] == 1
        assert H.stats.cascades[1] == 1

    def test_no_cascade_below_cut(self):
        H = HierarchicalMatrix(cuts=[10])
        H.update(np.arange(5), np.arange(5), 1.0)
        assert H.layer_nvals == (5, 0)
        assert H.stats.cascades == [0, 0]

    def test_last_layer_never_cascades(self):
        H = HierarchicalMatrix(cuts=[2])
        for i in range(10):
            H.update([i * 3, i * 3 + 1, i * 3 + 2], [0, 1, 2], 1.0)
        assert H.layer_nvals[0] == 0 or H.layer_nvals[0] <= 2
        assert H.layer_nvals[-1] >= 24

    def test_duplicate_coordinates_accumulate(self):
        H = HierarchicalMatrix(cuts=[100])
        H.update([5, 5], [7, 7], [1.0, 2.0])
        H.update([5], [7], [4.0])
        assert H.get(5, 7) == 7.0

    def test_update_matrix(self):
        H = HierarchicalMatrix(nrows=100, ncols=100, cuts=[10])
        M = Matrix.from_coo([1, 2], [3, 4], [1.0, 1.0], nrows=100, ncols=100)
        H.update_matrix(M)
        assert H.get(1, 3) == 1.0

    def test_update_matrix_shape_check(self):
        H = HierarchicalMatrix(nrows=100, ncols=100, cuts=[10])
        with pytest.raises(DimensionMismatch):
            H.update_matrix(Matrix("fp64", 50, 50))

    def test_insert_single_element(self):
        H = HierarchicalMatrix(cuts=[5])
        H.insert(2**40, 2**41, 3.0)
        assert H[2**40, 2**41] == 3.0

    def test_iadd_matrix_and_tuple(self):
        H = HierarchicalMatrix(nrows=10, ncols=10, cuts=[100])
        H += Matrix.from_coo([0], [1], [2.0], nrows=10, ncols=10)
        H += ([1], [2], [3.0])
        H += ([3], [4])
        assert H.get(0, 1) == 2.0
        assert H.get(1, 2) == 3.0
        assert H.get(3, 4) == 1
        with pytest.raises(TypeError):
            H += 5

    def test_scalar_value_broadcast(self):
        H = HierarchicalMatrix(cuts=[100])
        H.update([1, 2, 3], [4, 5, 6], 2.5)
        assert H.get(2, 5) == 2.5

    def test_hypersparse_coordinates(self):
        H = HierarchicalMatrix(cuts=[5])
        H.update([2**63, 2**62], [2**61, 2**60], [1.0, 2.0])
        assert H[2**63, 2**61] == 1.0


class TestCorrectness:
    """The hierarchy is purely a performance transformation — results must
    exactly equal flat accumulation (the paper's linearity guarantee)."""

    @pytest.mark.parametrize("cuts", [[5], [3, 9], [2, 4, 8], [50, 500], [1, 2, 3]])
    def test_materialize_equals_flat_accumulation(self, rng, cuts):
        updates = random_updates(rng)
        H = HierarchicalMatrix(cuts=cuts)
        for rows, cols, vals in updates:
            H.update(rows, cols, vals)
        assert H.materialize().isclose(flat_reference(updates), abs_tol=1e-9)

    def test_materialize_does_not_disturb_layers(self, rng):
        updates = random_updates(rng, nbatches=5)
        H = HierarchicalMatrix(cuts=[10, 100])
        for rows, cols, vals in updates:
            H.update(rows, cols, vals)
        before = H.layer_nvals
        m1 = H.materialize()
        assert H.layer_nvals == before
        # Streaming can continue and stays correct.
        H.update([1], [1], [1.0])
        m2 = H.materialize()
        assert m2.nvals >= m1.nvals

    def test_flush_collapses_and_preserves_content(self, rng):
        updates = random_updates(rng, nbatches=6)
        H = HierarchicalMatrix(cuts=[7, 70])
        for rows, cols, vals in updates:
            H.update(rows, cols, vals)
        reference = H.materialize()
        top = H.flush()
        assert top.isclose(reference, abs_tol=1e-9)
        assert all(n == 0 for n in H.layer_nvals[:-1])
        # Streaming continues after a flush.
        H.update([9], [9], [1.0])
        assert H.materialize().nvals >= reference.nvals

    def test_nvals_matches_distinct_coordinates(self, rng):
        updates = random_updates(rng, nbatches=4, space=30)
        H = HierarchicalMatrix(cuts=[5])
        seen = set()
        for rows, cols, vals in updates:
            H.update(rows, cols, vals)
            seen.update(zip(rows.tolist(), cols.tolist()))
        assert H.nvals == len(seen)

    def test_get_sums_across_layers(self):
        H = HierarchicalMatrix(cuts=[2, 100])
        H.update([1, 2, 3], [1, 2, 3], 1.0)  # cascades into layer 2
        H.update([1], [1], [5.0])            # stays in layer 1
        assert H.layer_nvals[0] >= 1 and H.layer_nvals[1] >= 3
        assert H.get(1, 1) == 6.0
        assert H[2, 2] == 1.0
        assert H.get(9, 9) is None
        assert H.get(9, 9, default=0.0) == 0.0
        assert (1, 1) in H and (9, 9) not in H

    def test_to_coo(self):
        H = HierarchicalMatrix(cuts=[2])
        H.update([3, 1], [4, 2], [1.0, 2.0])
        rows, cols, vals = H.to_coo()
        assert rows.size == 2

    def test_clear(self):
        H = HierarchicalMatrix(cuts=[2])
        H.update([1, 2, 3], [1, 2, 3], 1.0)
        H.clear()
        assert H.nvals_stored == 0
        assert H.stats.total_updates == 0
        H.update([1], [1], [1.0])
        assert H.nvals == 1

    def test_min_accumulator(self):
        H = HierarchicalMatrix(cuts=[2, 10], accum=binary.min)
        H.update([1, 2, 3], [1, 2, 3], [5.0, 5.0, 5.0])
        H.update([1], [1], [2.0])
        H.update([1], [1], [9.0])
        assert H.get(1, 1) == 2.0


class TestStatsTracking:
    def test_stats_disabled(self):
        H = HierarchicalMatrix(cuts=[2], track_stats=False)
        H.update([1, 2, 3], [1, 2, 3], 1.0)
        assert H.stats is None
        assert H.materialize().nvals == 3

    def test_total_updates_counts_elements(self):
        H = HierarchicalMatrix(cuts=[100])
        H.update(np.arange(10), np.arange(10), 1.0)
        H.update(np.arange(5), np.arange(5), 1.0)
        assert H.stats.total_updates == 15
        assert H.stats.update_calls == 2

    def test_element_writes_layer0_equals_stream(self):
        H = HierarchicalMatrix(cuts=[3])
        for i in range(4):
            H.update(np.arange(i * 5, i * 5 + 5), np.arange(5), 1.0)
        assert H.stats.element_writes[0] == 20

    def test_fast_memory_fraction_between_0_and_1(self, rng):
        H = HierarchicalMatrix(cuts=[10, 100])
        for rows, cols, vals in random_updates(rng, nbatches=8):
            H.update(rows, cols, vals)
        assert 0.0 <= H.stats.fast_memory_fraction <= 1.0

    def test_updates_per_second_positive_after_updates(self):
        H = HierarchicalMatrix(cuts=[100])
        H.update(np.arange(100), np.arange(100), 1.0)
        assert H.stats.updates_per_second > 0
        assert H.stats.elapsed_seconds > 0

    def test_max_layer_nvals_tracked(self):
        H = HierarchicalMatrix(cuts=[3])
        H.update(np.arange(5), np.arange(5), 1.0)
        assert H.stats.max_layer_nvals[0] >= 5 or H.stats.max_layer_nvals[1] >= 5

    def test_memory_usage_positive(self):
        H = HierarchicalMatrix(cuts=[100])
        H.update(np.arange(10), np.arange(10), 1.0)
        assert H.memory_usage > 0


class TestHierarchyBeatsFlatOnWrites:
    def test_slow_memory_writes_smaller_than_flat(self, rng):
        """The paper's core claim, in miniature: the hierarchy writes far fewer
        elements into the big (slow) layer than a flat accumulation rewrites."""
        from repro.baselines import FlatGraphBLASIngestor

        updates = random_updates(rng, nbatches=30, batch=100, space=100_000)
        H = HierarchicalMatrix(cuts=[200, 2000])
        flat = FlatGraphBLASIngestor(2**32, 2**32)
        for rows, cols, vals in updates:
            H.update(rows, cols, vals)
            flat.update(rows, cols, vals)
        assert H.stats.slow_memory_writes < flat.element_writes
