"""Tests for update statistics."""

import time

import pytest

from repro.core import UpdateStats
from repro.core.stats import Timer


class TestCounters:
    def test_initial_state(self):
        s = UpdateStats(3)
        assert s.total_updates == 0
        assert s.element_writes == [0, 0, 0]
        assert s.cascades == [0, 0, 0]
        assert s.updates_per_second == 0.0
        assert s.fast_memory_fraction == 1.0
        assert s.slow_memory_writes == 0

    def test_record_update(self):
        s = UpdateStats(2)
        s.record_update(100)
        s.record_update(50)
        assert s.total_updates == 150
        assert s.update_calls == 2
        assert s.element_writes[0] == 150

    def test_record_cascade(self):
        s = UpdateStats(3)
        s.record_cascade(0, 40)
        s.record_cascade(1, 400)
        assert s.cascades == [1, 1, 0]
        assert s.element_writes == [0, 40, 400]

    def test_cascade_from_last_level_does_not_index_error(self):
        s = UpdateStats(2)
        s.record_cascade(1, 10)
        assert s.cascades == [0, 1]

    def test_record_layer_size_high_water_mark(self):
        s = UpdateStats(2)
        s.record_layer_size(0, 10)
        s.record_layer_size(0, 5)
        s.record_layer_size(0, 20)
        assert s.max_layer_nvals[0] == 20

    def test_updates_per_second(self):
        s = UpdateStats(2)
        s.record_update(1000)
        s.elapsed_seconds = 0.5
        assert s.updates_per_second == 2000.0

    def test_fast_memory_fraction(self):
        s = UpdateStats(2)
        s.element_writes = [90, 10]
        assert s.fast_memory_fraction == pytest.approx(0.9)
        assert s.slow_memory_writes == 10

    def test_reset(self):
        s = UpdateStats(2)
        s.record_update(10)
        s.record_cascade(0, 10)
        s.elapsed_seconds = 1.0
        s.reset()
        assert s.total_updates == 0
        assert s.element_writes == [0, 0]
        assert s.elapsed_seconds == 0.0


class TestMergeAndExport:
    def test_merge(self):
        a = UpdateStats(2)
        b = UpdateStats(2)
        a.record_update(10)
        b.record_update(20)
        a.record_cascade(0, 5)
        a.record_layer_size(0, 7)
        b.record_layer_size(0, 3)
        a.elapsed_seconds, b.elapsed_seconds = 1.0, 2.0
        merged = a.merge(b)
        assert merged.total_updates == 30
        assert merged.cascades == [1, 0]
        assert merged.max_layer_nvals[0] == 7
        assert merged.elapsed_seconds == 2.0

    def test_merge_mismatched_levels_rejected(self):
        with pytest.raises(ValueError):
            UpdateStats(2).merge(UpdateStats(3))

    def test_as_dict(self):
        s = UpdateStats(2)
        s.record_update(5)
        d = s.as_dict()
        assert d["total_updates"] == 5
        assert d["nlevels"] == 2
        assert "updates_per_second" in d
        assert "fast_memory_fraction" in d

    def test_timer_context_manager(self):
        s = UpdateStats(2)
        with Timer(s):
            time.sleep(0.01)
        assert s.elapsed_seconds >= 0.005
