"""Tests for hierarchical D4M associative arrays."""

import numpy as np
import pytest

from repro.core import HierarchicalAssoc, GeometricCuts
from repro.d4m import Assoc


class TestConstruction:
    def test_defaults(self):
        H = HierarchicalAssoc()
        assert H.nlevels == 4
        assert H.layer_nnz == (0, 0, 0, 0)

    def test_explicit_cuts(self):
        H = HierarchicalAssoc(cuts=[5, 50])
        assert H.cuts == (5, 50)

    def test_policy(self):
        H = HierarchicalAssoc(policy=GeometricCuts(4, 4, 3))
        assert H.cuts == (4, 16)

    def test_cuts_and_policy_exclusive(self):
        with pytest.raises(ValueError):
            HierarchicalAssoc(cuts=[5], policy=GeometricCuts())


class TestUpdates:
    def test_update_and_get(self):
        H = HierarchicalAssoc(cuts=[2, 8])
        H.update(["a", "b"], ["x", "y"], [1.0, 1.0])
        H.update(["a"], ["x"], [2.0])
        assert H.get("a", "x") == 3.0
        assert H.get("zz", "zz") is None
        assert H.get("zz", "zz", default=0.0) == 0.0

    def test_cascade_on_overflow(self):
        H = HierarchicalAssoc(cuts=[2, 100])
        H.update(["a", "b", "c"], ["x", "y", "z"], [1, 1, 1])
        assert H.layer_nnz[0] == 0
        assert H.layer_nnz[1] == 3
        assert H.stats.cascades[0] == 1

    def test_update_assoc_object(self):
        H = HierarchicalAssoc(cuts=[10])
        H.update_assoc(Assoc(["k"], ["v"], [4.0]))
        assert H.get("k", "v") == 4.0

    def test_materialize_equals_flat_assoc(self):
        rng = np.random.default_rng(0)
        H = HierarchicalAssoc(cuts=[5, 20])
        flat = Assoc.empty()
        for _ in range(10):
            rows = [f"r{int(x)}" for x in rng.integers(0, 20, 8)]
            cols = [f"c{int(x)}" for x in rng.integers(0, 20, 8)]
            vals = np.ones(8)
            H.update(rows, cols, vals)
            batch = Assoc(rows, cols, vals)
            flat = flat + batch if flat.nnz else batch
        assert H.materialize() == flat

    def test_flush(self):
        H = HierarchicalAssoc(cuts=[3, 30])
        for i in range(6):
            H.update([f"r{i}", f"s{i}"], [f"c{i}", f"d{i}"], [1.0, 1.0])
        ref = H.materialize()
        top = H.flush()
        assert top == ref
        assert all(n == 0 for n in H.layer_nnz[:-1])

    def test_clear(self):
        H = HierarchicalAssoc(cuts=[3])
        H.update(["a"], ["b"], [1.0])
        H.clear()
        assert H.layer_nnz == (0, 0)
        assert H.stats.total_updates == 0

    def test_stats_track_updates(self):
        H = HierarchicalAssoc(cuts=[100])
        H.update(["a", "b", "a"], ["x", "y", "x"], [1, 1, 1])
        # duplicate (a, x) collapses inside the batch Assoc, so 2 distinct triples
        assert H.stats.total_updates == 2
        assert H.stats.updates_per_second > 0

    def test_repr(self):
        assert "HierarchicalAssoc" in repr(HierarchicalAssoc(cuts=[2]))
