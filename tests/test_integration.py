"""End-to-end integration tests exercising the full pipeline the paper describes:
generate streaming network data, ingest it into hierarchical hypersparse
matrices faster than the flat baselines, analyse the resulting traffic matrix,
and project the aggregate rate with the cluster model."""

import numpy as np
import pytest

import repro
from repro.analytics import degree_summary, supernode_report, total_traffic
from repro.baselines import FlatGraphBLASIngestor, HierarchicalD4MIngestor
from repro.core import HierarchicalMatrix
from repro.distributed import SuperCloudModel, build_figure2_table
from repro.memory import CostModel
from repro.workloads import IngestSession, TrafficMatrixBuilder, paper_stream, synthetic_packets


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        assert repro.HierarchicalMatrix is HierarchicalMatrix
        for name in repro.__all__:
            assert hasattr(repro, name)


class TestEndToEndIngestAndAnalyze:
    def test_full_pipeline(self):
        """Stream the paper's workload (scaled down), verify correctness against
        the flat baseline, then run every analytic on the materialised matrix."""
        stream = list(paper_stream(total_entries=30_000, nbatches=30, seed=7))

        hier = HierarchicalMatrix(2**32, 2**32, "fp64", cuts=[2000, 20_000])
        flat = FlatGraphBLASIngestor(2**32, 2**32)
        hier_result = IngestSession(hier, "hier").run(stream)
        flat_result = IngestSession(flat, "flat").run(stream)

        # Identical logical matrices (linearity of the hierarchy).
        assert hier.materialize().isclose(flat.materialize())
        assert hier_result.total_updates == flat_result.total_updates == 30_000

        # Analytics run on the hierarchical matrix directly.
        summary = degree_summary(hier)
        assert summary["total_traffic"] == pytest.approx(30_000.0)
        report = supernode_report(hier, 5)
        assert len(report["top_sources"]) == 5

    def test_traffic_monitoring_scenario(self):
        """The motivating use case: build an origin-destination traffic matrix
        from synthetic packet windows and watch supernodes emerge."""
        builder = TrafficMatrixBuilder(cuts=[1000, 10_000])
        for batch in synthetic_packets(2_000, 5, supernode_fraction=0.2, seed=11):
            builder.observe(batch)
        assert builder.total_packets == 10_000
        snap = builder.snapshot()
        assert total_traffic(snap) == pytest.approx(10_000.0)
        report = supernode_report(snap, 3)
        assert report["top_source_share"] > 0.15

    def test_figure2_table_end_to_end(self):
        """Measure both hierarchical systems on a small stream and build the
        complete Figure 2 table with modelled scaling plus published curves."""
        hier = HierarchicalMatrix(2**32, 2**32, cuts=[2000, 20_000])
        hier_rate = IngestSession(hier, "hg").run(
            paper_stream(total_entries=20_000, nbatches=20, seed=1)
        ).updates_per_second
        d4m = HierarchicalD4MIngestor(cuts=[500, 5000])
        d4m_rate = IngestSession(d4m, "hd").run(
            paper_stream(total_entries=2_000, nbatches=5, seed=1)
        ).updates_per_second

        rows = build_figure2_table(
            {
                "Hierarchical GraphBLAS (measured)": hier_rate,
                "Hierarchical D4M (measured)": d4m_rate,
            },
            server_counts=(1, 64, 1100),
        )
        by_system = {}
        for row in rows:
            by_system.setdefault(row.system, {})[row.servers] = row.updates_per_second

        # Shape of Figure 2: GraphBLAS above D4M at every measured scale.
        for servers in (1, 64, 1100):
            assert (
                by_system["Hierarchical GraphBLAS (measured)"][servers]
                > by_system["Hierarchical D4M (measured)"][servers]
            )
        # And the measured hierarchical GraphBLAS scales into the billions at 1,100 nodes.
        assert by_system["Hierarchical GraphBLAS (measured)"][1100] > 1e9

    def test_memory_pressure_story(self):
        """The architectural claim: measured hierarchical ingest puts only a small
        fraction of element-writes into the slowest memory level."""
        hier = HierarchicalMatrix(2**32, 2**32, cuts=[500, 5000])
        IngestSession(hier, "h").run(paper_stream(total_entries=20_000, nbatches=40, seed=3))
        assert hier.stats.fast_memory_fraction > 0.5
        cm = CostModel()
        est = cm.estimate_from_stats(hier.stats, hier.cuts, total_distinct=hier.nvals)
        flat_est = cm.estimate_flat(20_000, 500)
        assert est.slow_fraction < 1.0

    def test_headline_claims_shape(self):
        """Both headline numbers, at reduced scale: a single instance exceeds
        100k updates/s even in pure Python, and the modelled 1,100-node
        aggregate lands within an order of magnitude of 75e9 when fed the
        locally measured rate."""
        hier = HierarchicalMatrix(2**32, 2**32, cuts=[2**17, 2**20, 2**23])
        result = IngestSession(hier, "h").run(
            paper_stream(total_entries=100_000, nbatches=10, seed=0)
        )
        assert result.updates_per_second > 1e5
        projection = SuperCloudModel().headline_projection(result.updates_per_second)
        assert projection["aggregate_rate"] > 1e9
