"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphblas import Matrix, Vector


@pytest.fixture
def rng():
    """A deterministic NumPy random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrix():
    """A small 5x5 matrix with a known pattern."""
    return Matrix.from_coo(
        [0, 0, 1, 2, 3, 4],
        [0, 2, 1, 3, 3, 4],
        [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        nrows=5,
        ncols=5,
    )


@pytest.fixture
def huge_matrix():
    """A hypersparse matrix over the full 2^64 x 2^64 index space."""
    return Matrix.from_coo(
        [2**63, 5, 2**40],
        [7, 2**40, 2**63 + 1],
        [10.0, 20.0, 30.0],
        nrows=2**64,
        ncols=2**64,
    )


@pytest.fixture
def small_vector():
    """A small sparse vector."""
    return Vector.from_coo([1, 3, 4], [1.0, 2.0, 3.0], size=6)


def random_coo(rng, n, nrows=1000, ncols=1000):
    """Random coordinate triples (may contain duplicates)."""
    rows = rng.integers(0, nrows, size=n, dtype=np.uint64)
    cols = rng.integers(0, ncols, size=n, dtype=np.uint64)
    vals = rng.normal(size=n)
    return rows, cols, vals
