"""Tests for the memory-hierarchy model and the ingest cost model."""

import numpy as np
import pytest

from repro.core import HierarchicalMatrix
from repro.graphblas import Matrix, Vector
from repro.memory import BYTES_PER_ENTRY, CostModel, MemoryHierarchy, MemoryLevel, default_hierarchy


class TestMemoryHierarchy:
    def test_default_levels(self):
        h = default_hierarchy()
        assert [lvl.name for lvl in h] == ["L1", "L2", "L3", "DRAM"]
        assert len(h) == 4
        assert h.fastest.name == "L1"
        assert h.slowest.name == "DRAM"

    def test_level_for_working_set(self):
        h = default_hierarchy()
        assert h.level_for(16 * 1024).name == "L1"
        assert h.level_for(512 * 1024).name == "L2"
        assert h.level_for(16 * 2**20).name == "L3"
        assert h.level_for(10 * 2**30).name == "DRAM"
        assert h.level_for(10**13).name == "DRAM"  # bigger than everything -> slowest

    def test_level_index(self):
        h = default_hierarchy()
        assert h.level_index_for(1024) == 0
        assert h.level_index_for(10**13) == 3

    def test_bandwidth_and_latency_ordering(self):
        h = default_hierarchy()
        bws = [lvl.bandwidth_gbps for lvl in h]
        lats = [lvl.latency_ns for lvl in h]
        assert bws == sorted(bws, reverse=True)
        assert lats == sorted(lats)

    def test_transfer_seconds(self):
        lvl = MemoryLevel("X", 1024, 1.0, 10.0)
        assert lvl.transfer_seconds(2**30) == pytest.approx(1.0)

    def test_access_seconds_random_vs_streaming(self):
        h = default_hierarchy()
        stream = h.access_seconds(10 * 2**30, 2**20, random=False)
        rand = h.access_seconds(10 * 2**30, 2**20, random=True)
        assert rand > stream

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([])
        with pytest.raises(ValueError):
            MemoryHierarchy(
                [MemoryLevel("big", 100, 1, 1), MemoryLevel("small", 10, 1, 1)]
            )

    def test_getitem(self):
        h = default_hierarchy()
        assert h[0].name == "L1"
        assert h.levels[3].name == "DRAM"


class TestCostModel:
    def test_flat_write_counts_quadratic(self):
        cm = CostModel()
        small = cm.flat_write_counts(10_000, 1000)
        large = cm.flat_write_counts(100_000, 1000)
        # 10x more updates -> ~100x more rewritten elements for the flat strategy.
        assert large > 50 * small

    def test_hierarchical_write_counts_structure(self):
        cm = CostModel()
        writes = cm.hierarchical_write_counts(1_000_000, 10_000, [10_000, 100_000])
        assert len(writes) == 3
        assert writes[0] > 0
        assert writes[-1] >= 0

    def test_hierarchy_beats_flat(self):
        cm = CostModel()
        speedup = cm.speedup_estimate(10_000_000, 100_000, [2**17, 2**20, 2**23])
        assert speedup > 1.0

    def test_estimates_have_expected_slow_fractions(self):
        cm = CostModel()
        flat = cm.estimate_flat(10_000_000, 100_000)
        hier = cm.estimate_hierarchical(10_000_000, 100_000, [2**17, 2**20, 2**23])
        assert flat.slow_fraction == 1.0  # flat working set always lives in DRAM
        assert hier.slow_fraction < flat.slow_fraction
        assert hier.estimated_seconds < flat.estimated_seconds
        assert flat.strategy == "flat"
        assert hier.strategy == "hierarchical"

    def test_bytes_accounting(self):
        cm = CostModel()
        est = cm.estimate_flat(1_000_000, 100_000)
        assert sum(est.bytes_per_level) == sum(est.writes_per_level) * BYTES_PER_ENTRY
        assert "writes_per_level" in est.as_dict()

    def test_estimate_from_measured_stats(self):
        H = HierarchicalMatrix(cuts=[100, 1000])
        rng = np.random.default_rng(0)
        for _ in range(10):
            rows = rng.integers(0, 10**6, 200).astype(np.uint64)
            H.update(rows, rows, 1.0)
        cm = CostModel()
        est = cm.estimate_from_stats(H.stats, H.cuts, total_distinct=H.nvals)
        assert est.strategy == "hierarchical(measured)"
        assert sum(est.writes_per_level) == sum(H.stats.element_writes)
        assert est.slow_fraction <= 1.0

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            CostModel().flat_write_counts(100, 0)

    def test_custom_hierarchy(self):
        tiny = MemoryHierarchy([MemoryLevel("fast", 1000, 100.0, 1.0), MemoryLevel("slow", 10**12, 1.0, 100.0)])
        cm = CostModel(tiny, bytes_per_entry=10)
        est = cm.estimate_hierarchical(10_000, 100, [50])
        assert len(est.writes_per_level) == 2


class TestPlacementLevel:
    """Placement follows resident capacity; traffic follows live bytes."""

    def test_capacity_drives_placement(self):
        h = default_hierarchy()
        # 1 KiB of live data in an arena that preallocated 16 MiB: the
        # container no longer fits L1/L2, whatever its fill level.
        assert h.placement_level(1024, 16 * 2**20).name == "L3"
        assert h.placement_level(1024).name == "L1"  # no preallocation

    def test_used_floor_when_capacity_unreported(self):
        h = default_hierarchy()
        # A degenerate report (capacity < used) must not improve placement.
        assert h.placement_level(16 * 2**20, 1024).name == "L3"

    def test_cost_model_placement_for_breakdown(self):
        cm = CostModel()
        spilled = {
            "stored_bytes": 2048,
            "pending_used_bytes": 0,
            "pending_capacity_bytes": 64 * 2**20,
        }
        assert cm.placement_for(spilled).name == "DRAM"
        compact = {"stored_bytes": 2048, "pending_used_bytes": 0, "pending_capacity_bytes": 0}
        assert cm.placement_for(compact).name == "L1"

    def test_matrix_breakdown_separates_used_and_capacity(self):
        m = Matrix("fp64", 2**32, 2**32)
        m.build(np.arange(100, dtype=np.uint64), np.arange(100, dtype=np.uint64),
                np.ones(100), lazy=True)
        b = m.memory_breakdown
        assert b["pending_used_bytes"] == 100 * 3 * 8
        assert b["pending_capacity_bytes"] >= b["pending_used_bytes"]
        assert m.memory_usage == b["stored_bytes"] + b["pending_capacity_bytes"]
        m.wait()
        after = m.memory_breakdown
        assert after["pending_used_bytes"] == 0
        assert after["stored_bytes"] > 0
        # A flushed arena keeps its capacity for the next window ...
        assert after["pending_capacity_bytes"] == b["pending_capacity_bytes"]
        # ... and clear() releases it.
        m.clear()
        assert m.memory_breakdown["pending_capacity_bytes"] == 0

    def test_vector_breakdown_separates_used_and_capacity(self):
        v = Vector("fp64", 2**32)
        v.build(np.arange(50, dtype=np.uint64), np.ones(50), lazy=True)
        b = v.memory_breakdown
        assert b["pending_used_bytes"] == 50 * 2 * 8
        assert b["pending_capacity_bytes"] >= b["pending_used_bytes"]
        assert v.memory_usage == b["stored_bytes"] + b["pending_capacity_bytes"]

    def test_hierarchical_breakdown_sums_layers(self):
        H = HierarchicalMatrix(2**32, 2**32, cuts=[100, 1000])
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 10**6, 300).astype(np.uint64)
        H.update(rows, rows, 1.0)
        b = H.memory_breakdown
        assert set(b) == {"stored_bytes", "pending_used_bytes", "pending_capacity_bytes"}
        for key in b:
            assert b[key] == sum(layer.memory_breakdown[key] for layer in H.layers)
        assert H.memory_usage == b["stored_bytes"] + b["pending_capacity_bytes"]
