"""Doctest harness for the documentation code blocks.

Every ``>>>`` snippet in the README and ``docs/`` must execute and produce
exactly the documented output, so the documented examples cannot rot as the
code evolves.  CI runs the same files through ``pytest --doctest-glob``
in the docs job; this module keeps the check inside the tier-1 suite too.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

DOC_FILES = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "architecture.md",
]


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_documented_snippets_run(path):
    assert path.exists(), f"documented file missing: {path}"
    result = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {path.name}"
    assert result.attempted > 0, f"no doctest examples found in {path.name}"


def test_readme_and_architecture_link_each_other():
    readme = (REPO_ROOT / "README.md").read_text()
    arch = (REPO_ROOT / "docs" / "architecture.md").read_text()
    assert "docs/architecture.md" in readme
    assert "README" in arch
    # ...and the ROADMAP links the architecture document too.
    assert "docs/architecture.md" in (REPO_ROOT / "ROADMAP.md").read_text()
