"""Tests for the sparse Vector container."""

import numpy as np
import pytest

from repro.graphblas import (
    DimensionMismatch,
    IndexOutOfBound,
    InvalidValue,
    Matrix,
    NotImplementedException,
    Vector,
    binary,
    monoid,
)


class TestConstruction:
    def test_empty(self):
        v = Vector("fp64", 100)
        assert v.size == 100
        assert v.nvals == 0

    def test_default_size_hypersparse(self):
        assert Vector("int64").size == 2**64

    def test_invalid_size(self):
        with pytest.raises(InvalidValue):
            Vector("fp64", 0)

    def test_from_coo(self):
        v = Vector.from_coo([3, 1], [1.0, 2.0], size=5)
        assert v.nvals == 2
        assert v[1] == 2.0

    def test_from_coo_duplicates_sum(self):
        v = Vector.from_coo([1, 1], [1.0, 2.0], size=5)
        assert v[1] == 3.0

    def test_from_coo_scalar_broadcast(self):
        v = Vector.from_coo([0, 1, 2], 5, size=4)
        assert v[2] == 5

    def test_from_dense(self):
        v = Vector.from_dense(np.array([0.0, 1.0, 0.0, 2.0]))
        assert v.nvals == 2
        assert v[3] == 2.0

    def test_from_dense_rejects_2d(self):
        with pytest.raises(DimensionMismatch):
            Vector.from_dense(np.zeros((2, 2)))

    def test_dup(self):
        v = Vector.from_coo([1], [1.0], size=4)
        w = v.dup()
        w.setElement(2, 2.0)
        assert v.nvals == 1 and w.nvals == 2

    def test_huge_indices(self):
        v = Vector.from_coo([2**63, 5], [1.0, 2.0], size=2**64)
        assert v[2**63] == 1.0


class TestElements:
    def test_set_get_remove(self):
        v = Vector("fp64", 10)
        v.setElement(3, 1.5)
        assert v[3] == 1.5
        v[4] = 2.5
        assert v.extractElement(4) == 2.5
        assert v.removeElement(3)
        assert not v.removeElement(3)
        assert v.get(3, default=0.0) == 0.0

    def test_setelement_replaces(self):
        v = Vector("fp64", 10)
        v.setElement(1, 1.0)
        v.setElement(1, 9.0)
        assert v[1] == 9.0 and v.nvals == 1

    def test_out_of_bounds(self):
        v = Vector("fp64", 4)
        with pytest.raises(IndexOutOfBound):
            v.build([4], [1.0])

    def test_build_length_mismatch(self):
        v = Vector("fp64", 4)
        with pytest.raises(DimensionMismatch):
            v.build([0, 1], [1.0])

    def test_contains_and_iter(self):
        v = Vector.from_coo([2, 0], [1.0, 3.0], size=4)
        assert 2 in v and 1 not in v
        assert list(v) == [(0, 3.0), (2, 1.0)]

    def test_clear_and_resize(self):
        v = Vector.from_coo([1, 3], [1.0, 2.0], size=5)
        v.resize(2)
        assert v.nvals == 1
        v.clear()
        assert v.nvals == 0
        assert bool(v) is False

    def test_to_coo_copies(self):
        v = Vector.from_coo([1], [1.0], size=3)
        idx, vals = v.to_coo()
        idx[0] = 2
        assert v[1] == 1.0


class TestAlgebra:
    def test_ewise_add(self):
        a = Vector.from_coo([0, 1], [1.0, 2.0], size=3)
        b = Vector.from_coo([1, 2], [10.0, 20.0], size=3)
        c = a.ewise_add(b)
        assert c[0] == 1.0 and c[1] == 12.0 and c[2] == 20.0
        assert (a + b).isequal(c)

    def test_ewise_mult(self):
        a = Vector.from_coo([0, 1], [2.0, 3.0], size=3)
        b = Vector.from_coo([1, 2], [4.0, 5.0], size=3)
        c = a.ewise_mult(b)
        assert c.nvals == 1 and c[1] == 12.0
        assert (a * b).isequal(c)

    def test_size_mismatch(self):
        with pytest.raises(DimensionMismatch):
            Vector("fp64", 3).ewise_add(Vector("fp64", 4))
        with pytest.raises(DimensionMismatch):
            Vector("fp64", 3).ewise_mult(Vector("fp64", 4))

    def test_apply(self):
        v = Vector.from_coo([0, 1], [1.0, -2.0], size=3)
        assert v.apply("abs")[1] == 2.0
        assert v.apply(binary.times, right=3)[0] == 3.0
        assert (v * 2)[1] == -4.0
        with pytest.raises(InvalidValue):
            v.apply(binary.times)

    def test_select(self):
        v = Vector.from_coo([0, 1, 2], [1.0, 5.0, -1.0], size=4)
        assert v.select("valuegt", 0.0).nvals == 2
        assert v.select("valuele", 1.0).nvals == 2

    def test_reduce(self):
        v = Vector.from_coo([0, 5], [2.0, 3.0], size=10)
        assert v.reduce() == 5.0
        assert v.reduce(monoid.max) == 3.0
        assert v.reduce("min") == 2.0
        assert Vector("fp64", 3).reduce() == 0.0

    def test_vxm_matches_dense(self, rng):
        a = rng.random((4, 5))
        x = rng.random(4)
        y = Vector.from_dense(x).vxm(Matrix.from_dense(a))
        assert np.allclose(y.to_dense(), x @ a)

    def test_to_dense_and_guard(self):
        v = Vector.from_coo([1], [2.0], size=4)
        assert np.array_equal(v.to_dense(), [0.0, 2.0, 0.0, 0.0])
        with pytest.raises(NotImplementedException):
            Vector("fp64", 2**40).to_dense()

    def test_isequal_isclose(self):
        a = Vector.from_coo([1], [1.0], size=3)
        b = Vector.from_coo([1], [1.0], size=3)
        c = Vector.from_coo([1], [1.0 + 1e-12], size=3)
        assert a.isequal(b)
        assert not a.isequal(Vector("fp64", 4))
        assert a.isclose(c)
        assert not a.isclose(Vector.from_coo([2], [1.0], size=3))

    def test_memory_usage(self):
        v = Vector.from_coo(np.arange(100), np.ones(100), size=1000)
        assert v.memory_usage >= 100 * 16

    def test_repr(self):
        assert "nvals=1" in repr(Vector.from_coo([0], [1.0], size=2))
