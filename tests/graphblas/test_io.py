"""Tests for Matrix Market / triple-file I/O and random matrix generation."""

import io

import numpy as np
import pytest

from repro.graphblas import (
    InvalidValue,
    Matrix,
    mmread,
    mmwrite,
    random_hypersparse,
    read_triples,
    write_triples,
)


class TestMatrixMarket:
    def test_roundtrip_float(self, small_matrix, tmp_path):
        path = tmp_path / "m.mtx"
        mmwrite(path, small_matrix)
        back = mmread(path)
        assert back.isequal(small_matrix)

    def test_roundtrip_integer(self, tmp_path):
        A = Matrix.from_coo([0, 1], [1, 0], [3, 4], dtype="int64", nrows=2, ncols=2)
        path = tmp_path / "m.mtx"
        mmwrite(path, A)
        back = mmread(path)
        assert back[0, 1] == 3
        assert back.dtype.is_integer

    def test_roundtrip_stringio(self, small_matrix):
        buf = io.StringIO()
        mmwrite(buf, small_matrix, comment="traffic matrix\nsecond line")
        text = buf.getvalue()
        assert text.startswith("%%MatrixMarket")
        assert "% traffic matrix" in text
        buf.seek(0)
        assert mmread(buf).isequal(small_matrix)

    def test_header_has_dimensions(self, small_matrix):
        buf = io.StringIO()
        mmwrite(buf, small_matrix)
        dims_line = buf.getvalue().splitlines()[1]
        assert dims_line.split() == ["5", "5", "6"]

    def test_read_rejects_non_mm(self):
        with pytest.raises(InvalidValue):
            mmread(io.StringIO("not a matrix market file\n"))

    def test_indices_are_one_based_on_disk(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=1, ncols=1)
        buf = io.StringIO()
        mmwrite(buf, A)
        last = buf.getvalue().strip().splitlines()[-1]
        assert last.split()[:2] == ["1", "1"]


class TestTriples:
    def test_roundtrip(self, small_matrix, tmp_path):
        path = tmp_path / "triples.tsv"
        write_triples(path, small_matrix)
        back = read_triples(path, nrows=5, ncols=5)
        assert back.isequal(small_matrix)

    def test_comments_and_blank_lines_skipped(self):
        text = "# header\n\n1\t2\t3.0\n"
        back = read_triples(io.StringIO(text), nrows=4, ncols=4)
        assert back.nvals == 1
        assert back[1, 2] == 3.0

    def test_custom_separator(self):
        buf = io.StringIO()
        write_triples(buf, Matrix.from_coo([0], [1], [2.0], nrows=2, ncols=2), sep=",")
        buf.seek(0)
        back = read_triples(buf, sep=",", nrows=2, ncols=2)
        assert back[0, 1] == 2.0

    def test_hypersparse_coordinates_roundtrip(self):
        A = Matrix.from_coo([2**40], [2**50], [1.0], nrows=2**64, ncols=2**64)
        buf = io.StringIO()
        write_triples(buf, A)
        buf.seek(0)
        back = read_triples(buf)
        assert back[2**40, 2**50] == 1.0


class TestRandom:
    def test_reproducible_with_seed(self):
        A = random_hypersparse(500, seed=7)
        B = random_hypersparse(500, seed=7)
        assert A.isequal(B)

    def test_nvals_close_to_requested(self):
        A = random_hypersparse(1000, seed=1)
        assert A.nvals >= 990  # collisions vanishingly rare over 2^32 x 2^32

    def test_dtypes(self):
        assert random_hypersparse(10, dtype="bool", seed=0).dtype.is_bool
        assert random_hypersparse(10, dtype="int64", seed=0, value_range=(1, 5)).dtype.is_integer
        assert random_hypersparse(10, dtype="fp32", seed=0).dtype.is_float

    def test_custom_shape(self):
        A = random_hypersparse(50, nrows=100, ncols=200, seed=2)
        assert A.nrows == 100 and A.ncols == 200
        rows, cols, _ = A.extract_tuples()
        assert rows.max() < 100 and cols.max() < 200
