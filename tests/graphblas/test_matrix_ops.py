"""Tests for Matrix algebra: element-wise ops, mxm, reductions, apply, select,
extract/assign, transpose, kronecker, and masks."""

import numpy as np
import pytest

from repro.graphblas import (
    DimensionMismatch,
    InvalidValue,
    Mask,
    Matrix,
    StructuralMask,
    Vector,
    binary,
    descriptor,
    monoid,
    semiring,
)


def dense(A):
    return A.to_dense()


class TestEwise:
    def test_ewise_add_union(self):
        A = Matrix.from_coo([0, 1], [0, 1], [1.0, 2.0], nrows=2, ncols=2)
        B = Matrix.from_coo([1, 0], [1, 1], [10.0, 5.0], nrows=2, ncols=2)
        C = A.ewise_add(B)
        assert C.nvals == 3
        assert C[1, 1] == 12.0
        assert C[0, 1] == 5.0

    def test_ewise_add_matches_dense(self, rng):
        a = rng.random((6, 7)) * (rng.random((6, 7)) > 0.5)
        b = rng.random((6, 7)) * (rng.random((6, 7)) > 0.5)
        C = Matrix.from_dense(a).ewise_add(Matrix.from_dense(b))
        assert np.allclose(dense(C), a + b)

    def test_ewise_add_min_operator(self):
        A = Matrix.from_coo([0], [0], [5.0], nrows=1, ncols=1)
        B = Matrix.from_coo([0], [0], [3.0], nrows=1, ncols=1)
        assert A.ewise_add(B, binary.min)[0, 0] == 3.0

    def test_ewise_add_accepts_monoid_and_string(self):
        A = Matrix.from_coo([0], [0], [5.0], nrows=1, ncols=1)
        B = Matrix.from_coo([0], [0], [3.0], nrows=1, ncols=1)
        assert A.ewise_add(B, monoid.max)[0, 0] == 5.0
        assert A.ewise_add(B, "times")[0, 0] == 15.0

    def test_ewise_mult_intersection(self):
        A = Matrix.from_coo([0, 1], [0, 1], [2.0, 3.0], nrows=2, ncols=2)
        B = Matrix.from_coo([1, 1], [0, 1], [7.0, 4.0], nrows=2, ncols=2)
        C = A.ewise_mult(B)
        assert C.nvals == 1
        assert C[1, 1] == 12.0

    def test_ewise_mult_matches_dense(self, rng):
        a = rng.random((5, 5)) * (rng.random((5, 5)) > 0.4)
        b = rng.random((5, 5)) * (rng.random((5, 5)) > 0.4)
        C = Matrix.from_dense(a).ewise_mult(Matrix.from_dense(b))
        assert np.allclose(dense(C), a * b)

    def test_shape_mismatch(self):
        A = Matrix("fp64", 2, 2)
        B = Matrix("fp64", 3, 3)
        with pytest.raises(DimensionMismatch):
            A.ewise_add(B)
        with pytest.raises(DimensionMismatch):
            A.ewise_mult(B)

    def test_operator_sugar(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=2, ncols=2)
        B = Matrix.from_coo([0, 1], [0, 1], [2.0, 3.0], nrows=2, ncols=2)
        assert (A + B)[0, 0] == 3.0
        assert (A * B).nvals == 1
        assert (B - A)[0, 0] == 1.0
        assert (-A)[0, 0] == -1.0
        assert (A * 4.0)[0, 0] == 4.0
        assert (3.0 * A)[0, 0] == 3.0

    def test_iadd_in_place(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=2, ncols=2)
        B = Matrix.from_coo([0], [0], [2.0], nrows=2, ncols=2)
        A += B
        assert A[0, 0] == 3.0

    def test_result_type_promotion(self):
        A = Matrix.from_coo([0], [0], [1], dtype="int32", nrows=1, ncols=1)
        B = Matrix.from_coo([0], [0], [0.5], dtype="fp64", nrows=1, ncols=1)
        assert A.ewise_add(B).dtype.name == "FP64"


class TestMxM:
    def test_small_known_product(self):
        A = Matrix.from_coo([0, 1], [1, 2], [1.0, 2.0], nrows=3, ncols=3)
        B = Matrix.from_coo([1, 2], [2, 0], [3.0, 4.0], nrows=3, ncols=3)
        C = A.mxm(B)
        assert sorted(C) == [(0, 2, 3.0), (1, 0, 8.0)]

    def test_matches_dense_product(self, rng):
        a = rng.random((6, 8)) * (rng.random((6, 8)) > 0.5)
        b = rng.random((8, 5)) * (rng.random((8, 5)) > 0.5)
        C = Matrix.from_dense(a).mxm(Matrix.from_dense(b))
        assert np.allclose(dense(C), a @ b)

    def test_matmul_operator(self, rng):
        a = rng.random((4, 4))
        C = Matrix.from_dense(a) @ Matrix.from_dense(a)
        assert np.allclose(dense(C), a @ a)

    def test_inner_dimension_mismatch(self):
        A = Matrix("fp64", 3, 4)
        B = Matrix("fp64", 5, 3)
        with pytest.raises(DimensionMismatch):
            A.mxm(B)

    def test_empty_result(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=2, ncols=2)
        B = Matrix.from_coo([1], [1], [1.0], nrows=2, ncols=2)
        assert A.mxm(B).nvals == 0

    def test_min_plus_semiring(self):
        # Shortest-path style: C[i,j] = min_k(A[i,k] + B[k,j])
        A = Matrix.from_coo([0, 0], [0, 1], [1.0, 5.0], nrows=1, ncols=2)
        B = Matrix.from_coo([0, 1], [0, 0], [2.0, 1.0], nrows=2, ncols=1)
        C = A.mxm(B, semiring.min_plus)
        assert C[0, 0] == 3.0

    def test_plus_pair_counts_overlap(self):
        # plus_pair counts matched index pairs — the triangle-counting trick.
        A = Matrix.from_coo([0, 0, 0], [0, 1, 2], [9.0, 9.0, 9.0], nrows=1, ncols=3)
        B = Matrix.from_coo([0, 1, 2], [0, 0, 0], [7.0, 7.0, 7.0], nrows=3, ncols=1)
        assert A.mxm(B, semiring.plus_pair)[0, 0] == 3

    def test_semiring_by_name(self):
        A = Matrix.from_coo([0], [0], [2.0], nrows=1, ncols=1)
        assert A.mxm(A, "plus_times")[0, 0] == 4.0

    def test_transpose_descriptors(self, rng):
        a = rng.random((4, 6))
        b = rng.random((4, 5))
        A, B = Matrix.from_dense(a), Matrix.from_dense(b)
        C = A.mxm(B, desc=descriptor.t0)
        assert np.allclose(dense(C), a.T @ b)

    def test_hypersparse_product(self):
        A = Matrix.from_coo([2**50], [2**40], [2.0], nrows=2**64, ncols=2**64)
        B = Matrix.from_coo([2**40], [123], [3.0], nrows=2**64, ncols=2**64)
        C = A.mxm(B)
        assert C[2**50, 123] == 6.0

    def test_mxv(self):
        A = Matrix.from_dense(np.array([[1.0, 2.0], [0.0, 3.0]]))
        x = Vector.from_dense(np.array([1.0, 1.0]))
        y = A.mxv(x)
        assert y[0] == 3.0 and y[1] == 3.0

    def test_mxv_dimension_mismatch(self):
        A = Matrix("fp64", 2, 3)
        x = Vector("fp64", 2)
        with pytest.raises(DimensionMismatch):
            A.mxv(x)

    def test_vxm(self):
        A = Matrix.from_dense(np.array([[1.0, 2.0], [0.0, 3.0]]))
        x = Vector.from_dense(np.array([1.0, 1.0]))
        y = x.vxm(A)
        assert y[0] == 1.0 and y[1] == 5.0


class TestReductions:
    def test_reduce_scalar(self, small_matrix):
        assert small_matrix.reduce_scalar() == pytest.approx(21.0)
        assert small_matrix.reduce_scalar(monoid.max) == 6.0
        assert small_matrix.reduce_scalar("min") == 1.0

    def test_reduce_scalar_empty_is_identity(self):
        assert Matrix("fp64", 3, 3).reduce_scalar() == 0.0

    def test_reduce_rowwise(self, small_matrix):
        v = small_matrix.reduce_rowwise()
        assert v[0] == 3.0
        assert v[4] == 6.0
        assert v.size == 5

    def test_reduce_columnwise(self, small_matrix):
        v = small_matrix.reduce_columnwise()
        assert v[3] == 9.0

    def test_reduce_rowwise_matches_dense(self, rng):
        a = rng.random((7, 5)) * (rng.random((7, 5)) > 0.3)
        A = Matrix.from_dense(a)
        v = A.reduce_rowwise()
        expected = a.sum(axis=1)
        for i in range(7):
            got = v[i] if v[i] is not None else 0.0
            assert got == pytest.approx(expected[i])


class TestApplySelect:
    def test_apply_unary(self, small_matrix):
        neg = small_matrix.apply("ainv")
        assert neg[0, 0] == -1.0
        assert neg.nvals == small_matrix.nvals

    def test_apply_bound_binary(self, small_matrix):
        doubled = small_matrix.apply(binary.times, right=2)
        assert doubled[0, 2] == 4.0
        offset = small_matrix.apply(binary.minus, left=10)
        assert offset[0, 0] == 9.0

    def test_apply_requires_exactly_one_bind(self, small_matrix):
        with pytest.raises(InvalidValue):
            small_matrix.apply(binary.times)
        with pytest.raises(InvalidValue):
            small_matrix.apply(binary.times, left=1, right=2)

    def test_select_tril_triu_diag(self):
        A = Matrix.from_dense(np.arange(1, 10, dtype=float).reshape(3, 3))
        assert A.select("tril").nvals == 6
        assert A.select("triu").nvals == 6
        assert A.select("diag").nvals == 3
        assert A.select("offdiag").nvals == 6

    def test_select_value_predicates(self, small_matrix):
        assert small_matrix.select("valuegt", 4.0).nvals == 2
        assert small_matrix.select("valuele", 1.0).nvals == 1
        assert small_matrix.select("valueeq", 3.0).nvals == 1
        assert small_matrix.select("nonzero").nvals == 6

    def test_select_positional_thunk(self):
        A = Matrix.from_dense(np.ones((4, 4)))
        assert A.select("rowle", 1).nvals == 8
        assert A.select("colgt", 2).nvals == 4


class TestExtractAssignTranspose:
    def test_extract_submatrix(self, small_matrix):
        sub = small_matrix.extract([0, 2], [0, 2, 3])
        assert sub.shape == (2, 3)
        assert sub[0, 0] == 1.0  # (0,0)
        assert sub[1, 2] == 4.0  # (2,3) -> position (1,2)

    def test_extract_rows_only(self, small_matrix):
        sub = small_matrix.extract(rows=[3, 4])
        assert sub.shape[0] == 2
        assert sub.nvals == 2

    def test_extract_without_reindex(self, small_matrix):
        sub = small_matrix.extract([0], [0], reindex=False)
        assert sub.shape == small_matrix.shape
        assert sub.nvals == 1
        assert sub[0, 0] == 1.0

    def test_extract_getitem_sugar(self, small_matrix):
        sub = small_matrix[[0, 2], [0, 3]]
        assert sub.nvals == 2

    def test_extract_empty_selection(self, small_matrix):
        sub = small_matrix.extract([], [])
        assert sub.nvals == 0

    def test_assign_scalar(self):
        A = Matrix("fp64", 5, 5)
        A.assign(3.0, [0, 1], [0, 1])
        assert A.nvals == 4
        assert A[1, 0] == 3.0

    def test_assign_accumulates(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=3, ncols=3)
        A.assign(2.0, [0], [0], accum=binary.plus)
        assert A[0, 0] == 3.0

    def test_transpose(self, small_matrix):
        T = small_matrix.transpose()
        assert T[3, 2] == 4.0
        assert T.shape == (5, 5)
        assert small_matrix.T.isequal(T)

    def test_transpose_matches_dense(self, rng):
        a = rng.random((4, 6)) * (rng.random((4, 6)) > 0.5)
        assert np.allclose(dense(Matrix.from_dense(a).transpose()), a.T)

    def test_diag(self):
        A = Matrix.from_dense(np.diag([1.0, 2.0, 3.0]))
        d = A.diag()
        assert d.nvals == 3
        assert d[1] == 2.0

    def test_kronecker(self):
        A = Matrix.from_dense(np.array([[1.0, 2.0]]))
        B = Matrix.from_dense(np.array([[0.0, 3.0], [4.0, 0.0]]))
        K = A.kronecker(B)
        assert K.shape == (2, 4)
        expected = np.kron(np.array([[1.0, 2.0]]), np.array([[0.0, 3.0], [4.0, 0.0]]))
        assert np.allclose(dense(K), expected)


class TestMasks:
    def test_value_mask_default(self):
        A = Matrix.from_dense(np.ones((2, 2)))
        M = Matrix.from_coo([0, 1], [0, 1], [1.0, 0.0], nrows=2, ncols=2)
        C = A.ewise_add(Matrix("fp64", 2, 2), mask=M)
        # value mask: only (0,0) kept because M[1,1] is zero-valued
        assert C.nvals == 1
        assert C[0, 0] == 1.0

    def test_structural_mask(self):
        A = Matrix.from_dense(np.ones((2, 2)))
        M = Matrix.from_coo([0, 1], [0, 1], [1.0, 0.0], nrows=2, ncols=2)
        C = A.ewise_add(Matrix("fp64", 2, 2), mask=StructuralMask(M))
        assert C.nvals == 2

    def test_complement_mask(self):
        A = Matrix.from_dense(np.ones((2, 2)))
        M = Matrix.from_coo([0], [0], [1.0], nrows=2, ncols=2)
        C = A.ewise_add(Matrix("fp64", 2, 2), mask=~Mask(M))
        assert C.nvals == 3
        assert C[0, 0] is None

    def test_mask_via_descriptor_flags(self):
        A = Matrix.from_dense(np.ones((2, 2)))
        M = Matrix.from_coo([0], [0], [0.0], nrows=2, ncols=2)
        C = A.ewise_add(Matrix("fp64", 2, 2), mask=M, desc=descriptor.s)
        assert C.nvals == 1  # structure flag keeps the explicit zero

    def test_mask_on_mxm(self, rng):
        a = rng.random((4, 4))
        A = Matrix.from_dense(a)
        M = Matrix.from_coo([0], [0], [1.0], nrows=4, ncols=4)
        C = A.mxm(A, mask=M)
        assert C.nvals == 1
        assert C[0, 0] == pytest.approx((a @ a)[0, 0])

    def test_mask_S_and_V_accessors(self):
        M = Matrix.from_coo([0], [0], [0.0], nrows=1, ncols=1)
        m = Mask(M)
        assert m.S.structure and not m.V.structure
        assert (~m).complement
