"""Tests for binary operators, unary operators, monoids and semirings."""

import numpy as np
import pytest

from repro.graphblas import binary, monoid, semiring, unary
from repro.graphblas.binaryop import BinaryOp
from repro.graphblas.errors import DomainMismatch
from repro.graphblas.monoid import Monoid
from repro.graphblas.types import BOOL, FP64, INT32, INT64


class TestBinaryOps:
    def test_plus(self):
        assert np.array_equal(binary.plus([1, 2], [3, 4]), [4, 6])

    def test_minus_and_rminus(self):
        assert np.array_equal(binary.minus([5, 5], [2, 3]), [3, 2])
        assert np.array_equal(binary.rminus([5, 5], [2, 3]), [-3, -2])

    def test_times(self):
        assert np.array_equal(binary.times([2, 3], [4, 5]), [8, 15])

    def test_min_max(self):
        assert np.array_equal(binary.min([1, 7], [5, 2]), [1, 2])
        assert np.array_equal(binary.max([1, 7], [5, 2]), [5, 7])

    def test_first_second(self):
        assert np.array_equal(binary.first([1, 2], [9, 9]), [1, 2])
        assert np.array_equal(binary.second([1, 2], [9, 9]), [9, 9])

    def test_pair_returns_one(self):
        assert np.array_equal(binary.pair([7, 8], [9, 10]), [1, 1])
        assert np.array_equal(binary.oneb([7.0], [3.0]), [1.0])

    def test_div_integer_truncates_and_guards_zero(self):
        out = binary.div(np.array([7, 8, 3]), np.array([2, 0, 3]))
        assert out[0] == 3
        assert out[1] == 0  # division by zero guarded
        assert out[2] == 1

    def test_div_float(self):
        out = binary.div(np.array([1.0]), np.array([4.0]))
        assert out[0] == pytest.approx(0.25)

    def test_comparisons_return_bool(self):
        assert binary.eq.bool_result
        assert np.array_equal(binary.lt([1, 5], [3, 2]), [True, False])
        assert np.array_equal(binary.ge([1, 5], [1, 6]), [True, False])

    def test_logical_ops(self):
        assert np.array_equal(binary.land([True, True], [True, False]), [True, False])
        assert np.array_equal(binary.lor([False, True], [False, False]), [False, True])
        assert np.array_equal(binary.lxor([True, True], [True, False]), [False, True])
        assert np.array_equal(binary.lxnor([True, True], [True, False]), [True, False])

    def test_bitwise_ops(self):
        assert np.array_equal(binary.band([6], [3]), [2])
        assert np.array_equal(binary.bor([6], [3]), [7])
        assert np.array_equal(binary.bxor([6], [3]), [5])

    def test_output_type_bool_ops(self):
        assert binary.eq.output_type(FP64, FP64) is BOOL
        assert binary.plus.output_type(INT32, FP64) is FP64

    def test_namespace_access(self):
        assert binary["plus"] is binary.plus
        assert "times" in binary
        assert "nonexistent" not in binary
        assert binary.plus in list(binary)

    def test_register_custom_op(self):
        op = binary.register("testavg", lambda x, y: (x + y) / 2, commutative=True)
        assert binary.testavg is op
        assert np.array_equal(op([2.0], [4.0]), [3.0])

    def test_repr(self):
        assert "plus" in repr(binary.plus)


class TestUnaryOps:
    def test_identity(self):
        assert np.array_equal(unary.identity([1, 2, 3]), [1, 2, 3])

    def test_ainv(self):
        assert np.array_equal(unary.ainv([1, -2]), [-1, 2])

    def test_ainv_unsigned_wraps(self):
        out = unary.ainv(np.array([1], dtype=np.uint8))
        assert out.dtype == np.uint8
        assert out[0] == 255

    def test_minv(self):
        assert unary.minv(np.array([4.0]))[0] == pytest.approx(0.25)
        assert unary.minv(np.array([0]))[0] == 0  # guarded integer inverse

    def test_abs(self):
        assert np.array_equal(unary.abs([-1.5, 2.0]), [1.5, 2.0])

    def test_lnot(self):
        assert np.array_equal(unary.lnot([0, 1, 2]), [True, False, False])

    def test_one(self):
        assert np.array_equal(unary.one([5.0, -3.0]), [1.0, 1.0])

    def test_transcendental_promote_to_float(self):
        assert unary.sqrt.output_type(INT64) is FP64
        assert unary.sqrt(np.array([4]))[0] == pytest.approx(2.0)
        assert unary.exp(np.array([0]))[0] == pytest.approx(1.0)
        assert unary.log(np.array([np.e]))[0] == pytest.approx(1.0)

    def test_rounding(self):
        assert np.array_equal(unary.floor([1.7]), [1.0])
        assert np.array_equal(unary.ceil([1.2]), [2.0])

    def test_signum(self):
        assert np.array_equal(unary.signum([-3.0, 0.0, 9.0]), [-1.0, 0.0, 1.0])

    def test_namespace_and_register(self):
        assert unary["abs"] is unary.abs
        op = unary.register("testdouble", lambda x: x * 2)
        assert np.array_equal(op([3]), [6])


class TestMonoids:
    def test_plus_reduce(self):
        assert monoid.plus.reduce(np.array([1.0, 2.0, 3.0])) == pytest.approx(6.0)

    def test_reduce_empty_returns_identity(self):
        assert monoid.plus.reduce(np.array([], dtype=np.float64)) == 0.0
        assert monoid.times.reduce(np.array([], dtype=np.int64)) == 1
        assert monoid.max.reduce(np.array([], dtype=np.float64)) == -np.inf

    def test_min_max_identities_by_dtype(self):
        assert monoid.min.identity_for(FP64) == np.inf
        assert monoid.min.identity_for(INT32) == np.iinfo(np.int32).max
        assert monoid.max.identity_for(INT32) == np.iinfo(np.int32).min

    def test_terminal_values(self):
        assert monoid.times.terminal_for(INT64) == 0
        assert monoid.lor.terminal_for(BOOL) == True  # noqa: E712
        assert monoid.plus.terminal_for(FP64) is None

    def test_reduce_groups_ufunc(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        starts = np.array([0, 2])
        out = monoid.plus.reduce_groups(vals, starts)
        assert np.array_equal(out, [3.0, 12.0])

    def test_reduce_groups_min(self):
        vals = np.array([5.0, 1.0, 7.0, 2.0])
        out = monoid.min.reduce_groups(vals, np.array([0, 2]))
        assert np.array_equal(out, [1.0, 2.0])

    def test_reduce_groups_empty(self):
        out = monoid.plus.reduce_groups(np.array([]), np.array([], dtype=np.intp))
        assert out.size == 0

    def test_non_associative_op_rejected(self):
        with pytest.raises(DomainMismatch):
            Monoid("bad", binary.minus, 0)

    def test_callable(self):
        assert monoid.plus(2, 3) == 5

    def test_namespace_and_register(self):
        assert monoid["max"] is monoid.max
        m = monoid.register("testplus", binary.plus, 0)
        assert m.reduce(np.array([1, 2, 3])) == 6

    def test_lor_land_reduce(self):
        assert monoid.lor.reduce(np.array([False, True, False])) == True  # noqa: E712
        assert monoid.land.reduce(np.array([True, True, False])) == False  # noqa: E712


class TestSemirings:
    def test_builtin_composition(self):
        assert semiring.plus_times.add is monoid.plus
        assert semiring.plus_times.multiply is binary.times
        assert semiring.min_plus.add is monoid.min
        assert semiring.max_first.multiply is binary.first

    def test_output_type(self):
        assert semiring.plus_times.output_type(INT32, FP64) is FP64
        assert semiring.lor_land.output_type(FP64, FP64) is BOOL

    def test_namespace_access(self):
        assert semiring["plus_times"] is semiring.plus_times
        assert "min_plus" in semiring
        assert semiring.plus_pair in list(semiring)

    def test_register_custom(self):
        s = semiring.register("testring", monoid.max, binary.plus)
        assert s.add is monoid.max

    def test_all_standard_semirings_present(self):
        for name in [
            "plus_times", "plus_min", "plus_max", "plus_first", "plus_second",
            "plus_pair", "min_plus", "min_times", "min_first", "min_second",
            "max_plus", "max_times", "lor_land", "any_pair",
        ]:
            assert name in semiring
