"""Property-based tests (hypothesis) for the GraphBLAS substrate invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphblas import Matrix, binary, monoid

# Strategy: small coordinate triples over a modest dense-checkable space.
coords = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=-50, max_value=50),
    ),
    min_size=0,
    max_size=40,
)


def to_dense(triples, n=16):
    out = np.zeros((n, n))
    for r, c, v in triples:
        out[r, c] += v
    return out


def from_triples(triples, n=16):
    if not triples:
        return Matrix("fp64", n, n)
    r, c, v = zip(*triples)
    return Matrix.from_coo(list(r), list(c), [float(x) for x in v], nrows=n, ncols=n)


def matrix_dense(A):
    return A.to_dense().astype(float)


@settings(max_examples=60, deadline=None)
@given(coords)
def test_from_coo_matches_dense_accumulation(triples):
    """Building from duplicated triples equals dense += accumulation."""
    A = from_triples(triples)
    assert np.allclose(matrix_dense(A), to_dense(triples))


@settings(max_examples=60, deadline=None)
@given(coords, coords)
def test_ewise_add_commutative_and_matches_dense(t1, t2):
    A, B = from_triples(t1), from_triples(t2)
    C1 = A.ewise_add(B)
    C2 = B.ewise_add(A)
    assert C1.isclose(C2, abs_tol=1e-9)
    assert np.allclose(matrix_dense(C1), to_dense(t1) + to_dense(t2))


@settings(max_examples=60, deadline=None)
@given(coords, coords)
def test_ewise_mult_matches_dense(t1, t2):
    A, B = from_triples(t1), from_triples(t2)
    C = A.ewise_mult(B)
    da, db = to_dense(t1), to_dense(t2)
    # eWiseMult only keeps coordinates stored in both; with +=-accumulation a
    # coordinate can cancel to 0 yet remain stored, so compare on the pattern.
    expected = np.where((da != 0) | (db != 0), da * db, 0.0)
    got = matrix_dense(C)
    pattern_rows, pattern_cols, _ = A.ewise_mult(B).extract_tuples()
    for r, c in zip(pattern_rows, pattern_cols):
        assert np.isclose(got[int(r), int(c)], da[int(r), int(c)] * db[int(r), int(c)])


@settings(max_examples=40, deadline=None)
@given(coords, coords, coords)
def test_ewise_add_associative(t1, t2, t3):
    A, B, C = from_triples(t1), from_triples(t2), from_triples(t3)
    left = A.ewise_add(B).ewise_add(C)
    right = A.ewise_add(B.ewise_add(C))
    assert left.isclose(right, abs_tol=1e-9)


@settings(max_examples=40, deadline=None)
@given(coords, coords)
def test_mxm_matches_dense(t1, t2):
    A, B = from_triples(t1), from_triples(t2)
    C = A.mxm(B)
    assert np.allclose(matrix_dense(C), to_dense(t1) @ to_dense(t2), atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(coords)
def test_transpose_involution(triples):
    A = from_triples(triples)
    assert A.transpose().transpose().isequal(A)


@settings(max_examples=60, deadline=None)
@given(coords)
def test_reduce_scalar_matches_sum(triples):
    A = from_triples(triples)
    assert np.isclose(float(A.reduce_scalar()), to_dense(triples).sum())


@settings(max_examples=60, deadline=None)
@given(coords)
def test_rowwise_reduce_matches_dense(triples):
    A = from_triples(triples)
    v = A.reduce_rowwise()
    dense_sums = to_dense(triples).sum(axis=1)
    got = np.zeros(16)
    idx, vals = v.to_coo()
    got[idx.astype(np.int64)] = vals
    assert np.allclose(got, dense_sums)


@settings(max_examples=60, deadline=None)
@given(coords)
def test_extract_tuples_sorted_unique(triples):
    A = from_triples(triples)
    r, c, _ = A.extract_tuples()
    order = np.lexsort((c, r))
    assert np.array_equal(order, np.arange(r.size))
    if r.size > 1:
        dup = (r[1:] == r[:-1]) & (c[1:] == c[:-1])
        assert not dup.any()


@settings(max_examples=40, deadline=None)
@given(coords, st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15))
def test_set_get_roundtrip(triples, i, j):
    A = from_triples(triples)
    A.setElement(i, j, 123.0)
    assert A[i, j] == 123.0


@settings(max_examples=40, deadline=None)
@given(coords)
def test_dup_independent(triples):
    A = from_triples(triples)
    B = A.dup()
    B.setElement(0, 0, 999.0)
    assert A[0, 0] != 999.0 or to_dense(triples)[0, 0] == 999.0


@settings(max_examples=40, deadline=None)
@given(coords)
def test_apply_one_then_reduce_counts_nvals(triples):
    A = from_triples(triples)
    ones = A.apply("one")
    assert float(ones.reduce_scalar()) == A.nvals
