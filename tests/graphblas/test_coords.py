"""Property tests for the packed-coordinate codec and the dual-engine kernels.

The contract under test: for every kernel in :mod:`repro.graphblas._kernels`,
the packed single-key engine and the dual-key lexsort fallback produce
bit-identical triples — across value dtypes, duplicate patterns, and boundary
coordinates (0, 2^32-1, 2^64-1).  The hypothesis suites drive both engines on
the same inputs via :func:`repro.graphblas.coords.packing_disabled`.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HierarchicalMatrix
from repro.graphblas import Matrix, binary, coords
from repro.graphblas import _kernels as K

U32_MAX = 2**32 - 1
U64_MAX = 2**64 - 1

# Coordinate pools biased toward the packing boundaries: small, exactly at the
# 32-bit edge, just past it, and at the very top of the 64-bit space (which
# forces the lexsort fallback on both engines).
coordinate = st.one_of(
    st.integers(0, 50),
    st.sampled_from([0, U32_MAX - 1, U32_MAX, U32_MAX + 1]),
    st.sampled_from([2**40, 2**63, U64_MAX - 1, U64_MAX]),
)

value_dtype = st.sampled_from([np.float64, np.float32, np.int64, np.uint64, np.int32])

dup_ops = st.sampled_from(["plus", "second", "first", "min", "max", "times"])


def make_triples(draw_pairs, dtype):
    rows = np.array([p[0] for p in draw_pairs], dtype=np.uint64)
    cols = np.array([p[1] for p in draw_pairs], dtype=np.uint64)
    vals = (np.arange(rows.size) % 7 + 1).astype(dtype)
    return rows, cols, vals


triple_lists = st.lists(st.tuples(coordinate, coordinate), min_size=0, max_size=120)


def assert_triples_equal(a, b):
    for x, y in zip(a, b):
        assert x.dtype == y.dtype or x.dtype.kind == y.dtype.kind
        assert np.array_equal(x, y)


class TestCodec:
    def test_plan_prefers_ipv4_split(self):
        spec = coords.plan_split(U32_MAX, U32_MAX)
        assert spec == coords.PackedSpec(32, 32)

    def test_plan_gives_columns_needed_bits(self):
        spec = coords.plan_split(2**40, 2**20)
        assert spec is not None
        assert spec.col_bits == 21  # bit_length(2**20) = 21
        assert spec.row_bits == 43

    def test_plan_rejects_full_64bit(self):
        assert coords.plan_split(U64_MAX, 1) is None
        assert coords.plan_split(2**33, 2**31) is None
        # Full 64-bit rows always fall back (columns reserve at least one bit).
        assert coords.plan_split(U64_MAX, 0) is None
        # 63-bit rows with boolean-sized columns still pack.
        assert coords.plan_split(2**63 - 1, 1) == coords.PackedSpec(63, 1)

    def test_plan_respects_disable_switch(self):
        with coords.packing_disabled():
            assert coords.plan_split(1, 1) is None
            assert coords.plan_pack(
                (np.array([1], dtype=np.uint64), np.array([1], dtype=np.uint64))
            ) is None
        assert coords.plan_split(1, 1) is not None

    def test_empty_arrays_plan_canonically(self):
        empty = np.empty(0, dtype=np.uint64)
        assert coords.plan_pack((empty, empty)) == coords.PackedSpec(32, 32)

    @given(pairs=triple_lists)
    @settings(max_examples=60, deadline=None)
    def test_pack_roundtrip_and_monotonicity(self, pairs):
        rows = np.array([p[0] for p in pairs], dtype=np.uint64)
        cols = np.array([p[1] for p in pairs], dtype=np.uint64)
        spec = coords.plan_pack((rows, cols))
        if spec is None:
            return  # coordinates genuinely exceed one 64-bit key
        keys = coords.pack(rows, cols, spec)
        r2, c2 = coords.unpack(keys, spec)
        assert np.array_equal(r2, rows)
        assert np.array_equal(c2, cols)
        # Packing preserves lexicographic order exactly.
        order_lex = np.lexsort((cols, rows))
        order_key = np.argsort(keys, kind="stable")
        assert np.array_equal(order_lex, order_key)


class TestEngineParity:
    """Packed engine vs lexsort fallback: bit-identical on every kernel."""

    @given(pairs=triple_lists, dtype=value_dtype, op_name=dup_ops)
    @settings(max_examples=80, deadline=None)
    def test_build_triples_parity(self, pairs, dtype, op_name):
        rows, cols, vals = make_triples(pairs, dtype)
        op = binary[op_name]
        packed = K.build_triples(rows, cols, vals, op)
        with coords.packing_disabled():
            fallback = K.build_triples(rows, cols, vals, op)
        assert_triples_equal(packed, fallback)

    @given(pairs=triple_lists, dtype=value_dtype)
    @settings(max_examples=60, deadline=None)
    def test_sort_collapse_parity(self, pairs, dtype):
        rows, cols, vals = make_triples(pairs, dtype)
        packed = K.collapse_duplicates(*K.sort_coo(rows, cols, vals), binary.plus)
        with coords.packing_disabled():
            fallback = K.collapse_duplicates(*K.sort_coo(rows, cols, vals), binary.plus)
        assert_triples_equal(packed, fallback)

    @given(
        pairs_a=triple_lists,
        pairs_b=triple_lists,
        dtype=value_dtype,
        op_name=st.sampled_from(["plus", "second", "minus", "min"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_union_merge_parity(self, pairs_a, pairs_b, dtype, op_name):
        a = K.build_triples(*make_triples(pairs_a, dtype), binary.plus)
        b = K.build_triples(*make_triples(pairs_b, dtype), binary.plus)
        op = binary[op_name]
        packed = K.union_merge(a, b, op)
        with coords.packing_disabled():
            fallback = K.union_merge(a, b, op)
        assert_triples_equal(packed, fallback)

    @given(
        pairs_a=triple_lists,
        pairs_b=triple_lists,
        dtype=value_dtype,
        op_name=st.sampled_from(["times", "plus", "minus", "eq"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_intersect_merge_parity(self, pairs_a, pairs_b, dtype, op_name):
        a = K.build_triples(*make_triples(pairs_a, dtype), binary.plus)
        b = K.build_triples(*make_triples(pairs_b, dtype), binary.plus)
        op = binary[op_name]
        packed = K.intersect_merge(a, b, op)
        with coords.packing_disabled():
            fallback = K.intersect_merge(a, b, op)
        assert_triples_equal(packed, fallback)

    @given(pairs_a=triple_lists, pairs_b=triple_lists)
    @settings(max_examples=60, deadline=None)
    def test_membership_mask_parity(self, pairs_a, pairs_b):
        ra, ca, _ = K.build_triples(*make_triples(pairs_a, np.float64), binary.plus)
        rb, cb, _ = K.build_triples(*make_triples(pairs_b, np.float64), binary.plus)
        packed = K.membership_mask(ra, ca, rb, cb)
        with coords.packing_disabled():
            fallback = K.membership_mask(ra, ca, rb, cb)
        assert np.array_equal(packed, fallback)

    @given(pairs=triple_lists, queries=triple_lists)
    @settings(max_examples=60, deadline=None)
    def test_search_sorted_parity(self, pairs, queries):
        rows, cols, _ = K.build_triples(*make_triples(pairs, np.float64), binary.plus)
        qr = np.array([q[0] for q in queries], dtype=np.uint64)
        qc = np.array([q[1] for q in queries], dtype=np.uint64)
        packed = K.search_sorted_coo(rows, cols, qr, qc)
        with coords.packing_disabled():
            fallback = K.search_sorted_coo(rows, cols, qr, qc)
        assert np.array_equal(packed, fallback)
        # Cross-check against a dictionary reference.
        index = {(int(r), int(c)): i for i, (r, c) in enumerate(zip(rows, cols))}
        expected = np.array(
            [index.get((int(r), int(c)), -1) for r, c in zip(qr, qc)], dtype=np.int64
        )
        assert np.array_equal(packed, expected)


class TestMatrixAndHierarchyParity:
    """End-to-end parity: whole containers built on each engine are equal."""

    @given(pairs=triple_lists, dtype=value_dtype)
    @settings(max_examples=40, deadline=None)
    def test_matrix_build_parity(self, pairs, dtype):
        rows, cols, vals = make_triples(pairs, dtype)
        a = Matrix(np.dtype(dtype).name.replace("float", "fp"), 2**64, 2**64)
        a.build(rows, cols, vals)
        with coords.packing_disabled():
            b = Matrix(np.dtype(dtype).name.replace("float", "fp"), 2**64, 2**64)
            b.build(rows, cols, vals)
            assert a.isequal(b)

    @given(pairs=triple_lists)
    @settings(max_examples=30, deadline=None)
    def test_lazy_build_matches_eager(self, pairs):
        rows, cols, vals = make_triples(pairs, np.float64)
        lazy = Matrix("fp64", 2**64, 2**64)
        eager = Matrix("fp64", 2**64, 2**64)
        # Feed in two chunks so the lazy path exercises multi-batch pending.
        half = rows.size // 2
        for lo, hi in ((0, half), (half, rows.size)):
            if hi > lo:
                lazy.build(rows[lo:hi], cols[lo:hi], vals[lo:hi], lazy=True)
                eager.build(rows[lo:hi], cols[lo:hi], vals[lo:hi])
        assert lazy.isequal(eager)

    def test_deferred_hierarchy_matches_eager(self):
        rng = np.random.default_rng(5)
        deferred = HierarchicalMatrix(2**32, 2**32, "fp64", cuts=[50, 400])
        eager = HierarchicalMatrix(
            2**32, 2**32, "fp64", cuts=[50, 400], defer_ingest=False
        )
        for _ in range(30):
            n = int(rng.integers(1, 80))
            rows = rng.integers(0, 500, n, dtype=np.uint64)
            cols = rng.integers(0, 500, n, dtype=np.uint64)
            deferred.update(rows, cols, 1.0)
            eager.update(rows, cols, 1.0)
        assert deferred.materialize().isequal(eager.materialize())

    def test_lazy_build_non_associative_op_runs_eager(self):
        """Matrix.build ignores lazy= for non-associative dup_ops (regrouping)."""
        m = Matrix("fp64", 100, 100)
        m.build([1], [1], [10.0], dup_op=binary.minus)
        m.build([1], [1], [5.0], dup_op=binary.minus, lazy=True)
        m.build([1], [1], [3.0], dup_op=binary.minus, lazy=True)
        assert not m.has_pending
        assert m[1, 1] == 2.0  # (10 - 5) - 3, never 10 - (5 - 3)

    def test_non_associative_accum_keeps_eager_semantics(self):
        """Deferral regroups batches, so minus/div must fall back to eager."""
        deferred = HierarchicalMatrix(100, 100, "fp64", cuts=[50], accum=binary.minus)
        eager = HierarchicalMatrix(
            100, 100, "fp64", cuts=[50], accum=binary.minus, defer_ingest=False
        )
        for vals in ([10.0], [5.0], [3.0]):
            deferred.update([1], [1], vals)
            eager.update([1], [1], vals)
        # Sequential left-fold: (10 - 5) - 3, not 10 - (5 - 3).
        assert deferred[1, 1] == eager[1, 1] == 2.0

    def test_empty_lazy_builds_do_not_accumulate_buffers(self):
        m = Matrix("fp64", 100, 100)
        for _ in range(100):
            m.build([], [], [], lazy=True)
        assert not m.has_pending
        assert m._pend.used == 0

    def test_setelement_interleaved_with_lazy_build(self):
        """Switching pending operators flushes; replace-then-add semantics hold."""
        m = Matrix("fp64", 100, 100)
        m.setElement(1, 1, 5.0)       # pending under `second`
        m.build([1], [1], [2.0], dup_op=binary.plus, lazy=True)  # flushes, then pends
        m.setElement(1, 1, 9.0)       # flushes the plus buffer, pends replace
        assert m[1, 1] == 9.0
        m.build([1], [1], [4.0], dup_op=binary.plus, lazy=True)
        assert m[1, 1] == 13.0


class TestMultiplyAndExtractParity:
    """Packed-key mxm/mxv/extract fast paths vs the lexsort/np.isin reference.

    The fast paths are gated on the same toggle as the packed kernels, so
    ``packing_disabled`` drives the reference engine on identical inputs —
    outputs must be bit-identical (the product-key sort and the lexsort see
    the same composite order, and both sorts are stable).
    """

    @given(pairs_a=triple_lists, pairs_b=triple_lists, dtype=value_dtype)
    @settings(max_examples=40, deadline=None)
    def test_mxm_parity(self, pairs_a, pairs_b, dtype):
        name = np.dtype(dtype).name.replace("float", "fp")
        ra, ca, va = make_triples(pairs_a, dtype)
        rb, cb, vb = make_triples(pairs_b, dtype)
        A = Matrix(name, 2**64, 2**64).build(ra, ca, va)
        B = Matrix(name, 2**64, 2**64).build(rb, cb, vb)
        fast = A.mxm(B)
        with coords.packing_disabled():
            reference = A.mxm(B)
        assert fast.isequal(reference, check_dtype=True)

    @given(pairs=triple_lists, dtype=value_dtype)
    @settings(max_examples=40, deadline=None)
    def test_mxv_parity(self, pairs, dtype):
        from repro.graphblas import Vector

        name = np.dtype(dtype).name.replace("float", "fp")
        rows, cols, vals = make_triples(pairs, dtype)
        A = Matrix(name, 2**64, 2**64).build(rows, cols, vals)
        x = Vector(name, 2**64)
        if cols.size:
            x.build(cols[::2], (np.arange(cols[::2].size) % 3 + 1).astype(dtype))
        fast = A.mxv(x)
        with coords.packing_disabled():
            reference = A.mxv(x)
        assert fast.isequal(reference, check_dtype=True)

    @given(
        pairs=triple_lists,
        sel=st.lists(coordinate, max_size=20),
        reindex=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_extract_parity(self, pairs, sel, reindex):
        rows, cols, vals = make_triples(pairs, np.float64)
        A = Matrix("fp64", 2**64, 2**64).build(rows, cols, vals)
        selection = np.array(sel, dtype=np.uint64)
        fast = A.extract(selection, selection, reindex=reindex)
        with coords.packing_disabled():
            reference = A.extract(selection, selection, reindex=reindex)
        assert fast.isequal(reference, check_dtype=True)

    def test_sorted_membership_matches_isin(self):
        rng = np.random.default_rng(3)
        values = np.sort(rng.integers(0, 1000, 500, dtype=np.uint64))
        selection = rng.integers(0, 1000, 40, dtype=np.uint64)  # unsorted, dups
        got = K.sorted_membership(values, selection)
        assert np.array_equal(got, np.isin(values, selection))
        empty = np.empty(0, dtype=np.uint64)
        assert K.sorted_membership(empty, selection).size == 0
        assert not K.sorted_membership(values, empty).any()

    def test_mxm_on_unpackable_shape_uses_fallback(self):
        # Full 64-bit coordinates cannot pack into one key: plan_pack
        # declines and the lexsort branch must produce the same product.
        big = 2**63
        A = Matrix("fp64", 2**64, 2**64).build([big, 1], [2, 2], [3.0, 4.0])
        B = Matrix("fp64", 2**64, 2**64).build([2, 2], [big + 1, 5], [10.0, 1.0])
        out = A.mxm(B)
        assert out[big, big + 1] == 30.0 and out[1, 5] == 4.0
        assert out.nvals == 4


class TestSearchScaling:
    def test_point_and_bulk_query_paths_agree(self):
        """The <=32-query fast path and the vectorised bulk path match."""
        rng = np.random.default_rng(23)
        rows, cols, _ = K.build_triples(
            rng.integers(0, 1000, 2_000, dtype=np.uint64),
            rng.integers(0, 1000, 2_000, dtype=np.uint64),
            np.ones(2_000),
            binary.plus,
        )
        qr = rng.integers(0, 1000, 40, dtype=np.uint64)
        qc = rng.integers(0, 1000, 40, dtype=np.uint64)
        bulk = K.search_sorted_coo(rows, cols, qr, qc)  # 40 > 32: vectorised
        one_by_one = np.concatenate(
            [K.search_sorted_coo(rows, cols, qr[i : i + 1], qc[i : i + 1]) for i in range(40)]
        )
        assert np.array_equal(bulk, one_by_one)

    def test_search_sorted_handles_bulk_queries(self):
        """Regression: >=10k point queries stay vectorised (no per-query loop)."""
        rng = np.random.default_rng(17)
        n, nq = 50_000, 20_000
        rows, cols, _ = K.build_triples(
            rng.integers(0, 2**32, n, dtype=np.uint64),
            rng.integers(0, 2**32, n, dtype=np.uint64),
            np.ones(n),
            binary.plus,
        )
        pick = rng.integers(0, rows.size, nq // 2)
        qr = np.concatenate([rows[pick], rng.integers(0, 2**32, nq // 2, dtype=np.uint64)])
        qc = np.concatenate([cols[pick], rng.integers(0, 2**32, nq // 2, dtype=np.uint64)])
        for force_fallback in (False, True):
            if force_fallback:
                with coords.packing_disabled():
                    start = time.perf_counter()
                    out = K.search_sorted_coo(rows, cols, qr, qc)
                    elapsed = time.perf_counter() - start
            else:
                start = time.perf_counter()
                out = K.search_sorted_coo(rows, cols, qr, qc)
                elapsed = time.perf_counter() - start
            assert (out[: nq // 2] >= 0).all()
            assert np.array_equal(rows[out[: nq // 2]], qr[: nq // 2])
            # Generous bound: quadratic or per-query-loop behaviour would blow
            # far past this even on slow CI machines.
            assert elapsed < 2.0
