"""Tests for the low-level sorted-COO kernels."""

import numpy as np
import pytest

from repro.graphblas import _kernels as K
from repro.graphblas.binaryop import binary
from repro.graphblas.errors import InvalidIndex


def make(rows, cols, vals, dtype=np.float64):
    return (
        np.asarray(rows, dtype=np.uint64),
        np.asarray(cols, dtype=np.uint64),
        np.asarray(vals, dtype=dtype),
    )


class TestAsIndexArray:
    def test_list_of_ints(self):
        out = K.as_index_array([1, 2, 3])
        assert out.dtype == np.uint64
        assert np.array_equal(out, [1, 2, 3])

    def test_large_ints_preserved_exactly(self):
        out = K.as_index_array([2**63, 2**64 - 1, 5])
        assert out[0] == 2**63
        assert out[1] == 2**64 - 1

    def test_scalar(self):
        assert np.array_equal(K.as_index_array(7), [7])

    def test_negative_rejected(self):
        with pytest.raises(InvalidIndex):
            K.as_index_array([-1, 2])

    def test_fractional_float_rejected(self):
        with pytest.raises(InvalidIndex):
            K.as_index_array(np.array([1.5, 2.0]))

    def test_integral_float_accepted(self):
        out = K.as_index_array(np.array([1.0, 2.0]))
        assert np.array_equal(out, [1, 2])

    def test_negative_float_rejected(self):
        with pytest.raises(InvalidIndex):
            K.as_index_array(np.array([-1.0]))

    def test_2d_rejected(self):
        with pytest.raises(InvalidIndex):
            K.as_index_array(np.zeros((2, 2)))

    def test_int_array_passthrough(self):
        out = K.as_index_array(np.array([3, 4], dtype=np.int32))
        assert out.dtype == np.uint64

    def test_bool_array(self):
        out = K.as_index_array(np.array([True, False]))
        assert np.array_equal(out, [1, 0])


class TestSortCoo:
    def test_already_sorted_passthrough(self):
        r, c, v = make([0, 0, 1], [1, 2, 0], [1, 2, 3])
        rs, cs, vs = K.sort_coo(r, c, v)
        assert rs is r and cs is c and vs is v

    def test_unsorted_gets_sorted(self):
        r, c, v = make([1, 0, 0], [0, 2, 1], [3, 2, 1])
        rs, cs, vs = K.sort_coo(r, c, v)
        assert np.array_equal(rs, [0, 0, 1])
        assert np.array_equal(cs, [1, 2, 0])
        assert np.array_equal(vs, [1, 2, 3])

    def test_stable_for_duplicates(self):
        r, c, v = make([0, 0], [1, 1], [10, 20])
        rs, cs, vs = K.sort_coo(r, c, v)
        assert np.array_equal(vs, [10, 20])  # original order preserved

    def test_empty_and_singleton(self):
        r, c, v = make([], [], [])
        assert K.sort_coo(r, c, v)[0].size == 0
        r, c, v = make([5], [6], [1.0])
        assert K.sort_coo(r, c, v)[2][0] == 1.0


class TestGroupStarts:
    def test_no_duplicates(self):
        r, c, _ = make([0, 1, 2], [0, 0, 0], [1, 1, 1])
        assert np.array_equal(K.group_starts(r, c), [0, 1, 2])

    def test_with_duplicates(self):
        r, c, _ = make([0, 0, 0, 1], [1, 1, 2, 0], [1, 1, 1, 1])
        assert np.array_equal(K.group_starts(r, c), [0, 2, 3])

    def test_empty(self):
        r, c, _ = make([], [], [])
        assert K.group_starts(r, c).size == 0


class TestCollapseDuplicates:
    def test_plus_collapse(self):
        r, c, v = make([0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0])
        rs, cs, vs = K.collapse_duplicates(r, c, v, binary.plus)
        assert np.array_equal(rs, [0, 1])
        assert np.array_equal(vs, [3.0, 5.0])

    def test_first_and_second(self):
        r, c, v = make([0, 0], [1, 1], [1.0, 2.0])
        assert K.collapse_duplicates(r, c, v, binary.first)[2][0] == 1.0
        assert K.collapse_duplicates(r, c, v, binary.second)[2][0] == 2.0

    def test_min_collapse(self):
        r, c, v = make([0, 0, 0], [1, 1, 1], [5.0, 2.0, 7.0])
        assert K.collapse_duplicates(r, c, v, binary.min)[2][0] == 2.0

    def test_default_is_plus(self):
        r, c, v = make([0, 0], [1, 1], [1.0, 2.0])
        assert K.collapse_duplicates(r, c, v)[2][0] == 3.0

    def test_no_duplicates_passthrough(self):
        r, c, v = make([0, 1], [1, 1], [1.0, 2.0])
        rs, cs, vs = K.collapse_duplicates(r, c, v, binary.plus)
        assert np.array_equal(vs, [1.0, 2.0])

    def test_non_ufunc_op_fallback(self):
        r, c, v = make([0, 0, 0], [1, 1, 1], [1.0, 2.0, 4.0])
        avg_like = binary.register("testtakefirstplus1", lambda x, y: x + 1)
        rs, cs, vs = K.collapse_duplicates(r, c, v, avg_like)
        assert vs[0] == 3.0  # ((1+1)+1)


class TestUnionMerge:
    def test_disjoint(self):
        a = make([0], [0], [1.0])
        b = make([1], [1], [2.0])
        r, c, v = K.union_merge(a, b, binary.plus)
        assert np.array_equal(r, [0, 1])
        assert np.array_equal(v, [1.0, 2.0])

    def test_overlap_applies_op(self):
        a = make([0, 1], [0, 1], [1.0, 10.0])
        b = make([1, 2], [1, 2], [5.0, 7.0])
        r, c, v = K.union_merge(a, b, binary.plus)
        assert np.array_equal(r, [0, 1, 2])
        assert np.array_equal(v, [1.0, 15.0, 7.0])

    def test_argument_order_for_noncommutative_op(self):
        a = make([0], [0], [10.0])
        b = make([0], [0], [3.0])
        _, _, v = K.union_merge(a, b, binary.minus)
        assert v[0] == 7.0  # a - b, not b - a
        _, _, v2 = K.union_merge(a, b, binary.second)
        assert v2[0] == 3.0

    def test_empty_operands(self):
        a = make([], [], [])
        b = make([0], [1], [2.0])
        r, c, v = K.union_merge(a, b, binary.plus)
        assert np.array_equal(v, [2.0])
        r, c, v = K.union_merge(b, a, binary.plus)
        assert np.array_equal(v, [2.0])

    def test_identical_patterns(self):
        a = make([0, 1], [1, 2], [1.0, 2.0])
        b = make([0, 1], [1, 2], [10.0, 20.0])
        r, c, v = K.union_merge(a, b, binary.plus)
        assert np.array_equal(v, [11.0, 22.0])
        assert r.size == 2

    def test_output_dtype_promotion(self):
        a = (np.array([0], dtype=np.uint64), np.array([0], dtype=np.uint64), np.array([1], dtype=np.int32))
        b = (np.array([0], dtype=np.uint64), np.array([0], dtype=np.uint64), np.array([0.5]))
        _, _, v = K.union_merge(a, b, binary.plus)
        assert v[0] == pytest.approx(1.5)

    def test_result_is_sorted_and_unique(self):
        rng = np.random.default_rng(3)
        def rand_set(n, seed):
            r = np.random.default_rng(seed)
            rows = r.integers(0, 50, n).astype(np.uint64)
            cols = r.integers(0, 50, n).astype(np.uint64)
            vals = np.ones(n)
            rows, cols, vals = K.sort_coo(rows, cols, vals)
            return K.collapse_duplicates(rows, cols, vals, binary.plus)
        a = rand_set(200, 1)
        b = rand_set(200, 2)
        r, c, v = K.union_merge(a, b, binary.plus)
        order = np.lexsort((c, r))
        assert np.array_equal(order, np.arange(r.size))
        starts = K.group_starts(r, c)
        assert starts.size == r.size  # no duplicates


class TestIntersectMerge:
    def test_basic_intersection(self):
        a = make([0, 1], [0, 1], [2.0, 3.0])
        b = make([1, 2], [1, 2], [5.0, 7.0])
        r, c, v = K.intersect_merge(a, b, binary.times)
        assert np.array_equal(r, [1])
        assert np.array_equal(v, [15.0])

    def test_no_overlap(self):
        a = make([0], [0], [1.0])
        b = make([5], [5], [1.0])
        r, c, v = K.intersect_merge(a, b, binary.times)
        assert r.size == 0

    def test_empty_operand(self):
        a = make([], [], [])
        b = make([1], [1], [1.0])
        assert K.intersect_merge(a, b, binary.times)[0].size == 0

    def test_noncommutative_order(self):
        a = make([0], [0], [10.0])
        b = make([0], [0], [4.0])
        _, _, v = K.intersect_merge(a, b, binary.minus)
        assert v[0] == 6.0

    def test_bool_result_op(self):
        a = make([0], [0], [3.0])
        b = make([0], [0], [3.0])
        _, _, v = K.intersect_merge(a, b, binary.eq)
        assert v.dtype == np.bool_
        assert v[0] == True  # noqa: E712


class TestMembershipAndSearch:
    def test_membership_mask(self):
        rows, cols = np.array([0, 1, 2], dtype=np.uint64), np.array([0, 1, 2], dtype=np.uint64)
        orows, ocols = np.array([1, 3], dtype=np.uint64), np.array([1, 3], dtype=np.uint64)
        mask = K.membership_mask(rows, cols, orows, ocols)
        assert np.array_equal(mask, [False, True, False])

    def test_membership_empty(self):
        empty = np.empty(0, dtype=np.uint64)
        assert K.membership_mask(empty, empty, empty, empty).size == 0
        rows = np.array([1], dtype=np.uint64)
        assert not K.membership_mask(rows, rows, empty, empty)[0]

    def test_difference_mask(self):
        rows, cols = np.array([0, 1], dtype=np.uint64), np.array([0, 1], dtype=np.uint64)
        orows, ocols = np.array([1], dtype=np.uint64), np.array([1], dtype=np.uint64)
        assert np.array_equal(K.difference_mask(rows, cols, orows, ocols), [True, False])

    def test_search_sorted_coo(self):
        rows, cols, _ = make([0, 0, 2], [1, 5, 3], [1, 1, 1])
        pos = K.search_sorted_coo(rows, cols, [0, 2, 2], [5, 3, 99])
        assert np.array_equal(pos, [1, 2, -1])

    def test_search_empty(self):
        empty = np.empty(0, dtype=np.uint64)
        pos = K.search_sorted_coo(empty, empty, [1], [1])
        assert pos[0] == -1
