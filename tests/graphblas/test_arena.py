"""Tests for the preallocated pending arena and its adopters.

Three layers of coverage: the arena/chunk containers themselves (growth,
accounting, zero-copy views, instrumentation counters), the raw value-bits
codec (exact bit round-trips, including NaN payloads), and a hypothesis
battery asserting that arena-backed ``Matrix``/``Vector``/tracker state is
bit-identical to the legacy list-append backend across engines, dtypes, and
operator switches mid-stream — the two backends must be observationally
indistinguishable everywhere except the instrumentation counters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HierarchicalMatrix
from repro.graphblas import Matrix, Vector, binary, coords
from repro.graphblas import arena


def nan_with_payload(payload: int) -> float:
    """A quiet float64 NaN carrying ``payload`` in its mantissa bits."""
    bits = np.uint64(0x7FF8_0000_0000_0000) | np.uint64(payload)
    return np.array([bits], dtype=np.uint64).view(np.float64)[0]


# --------------------------------------------------------------------------- #
# the arena container
# --------------------------------------------------------------------------- #


class TestPendingArena:
    def test_append_views_roundtrip(self):
        a = arena.PendingArena(3)
        r = np.array([5, 1, 9], dtype=np.uint64)
        c = np.array([2, 2, 3], dtype=np.uint64)
        v = np.array([7, 8, 9], dtype=np.uint64)
        a.append(r, c, v)
        a.append(r[:1], c[:1], v[:1])
        assert a.used == 4 and a.ncols == 3
        rv, cv, vv = a.views()
        assert rv.tolist() == [5, 1, 9, 5]
        assert cv.tolist() == [2, 2, 3, 2]
        assert vv.tolist() == [7, 8, 9, 7]

    def test_views_are_zero_copy(self):
        a = arena.PendingArena(1)
        a.append(np.arange(10, dtype=np.uint64))
        (view,) = a.views()
        assert np.shares_memory(view, a._columns[0])

    def test_append_copies_input(self):
        a = arena.PendingArena(1)
        batch = np.arange(4, dtype=np.uint64)
        a.append(batch)
        batch[0] = 99
        assert a.views()[0][0] == 0

    def test_geometric_growth_one_per_doubling(self):
        a = arena.PendingArena(2)
        one = np.ones(1, dtype=np.uint64)
        total = arena.MIN_CAPACITY * 8
        for _ in range(total):
            a.append(one, one)
        # Capacity ladder: MIN, 2*MIN, 4*MIN, 8*MIN -> exactly one growth
        # per doubling, log-many in total.
        assert a.capacity == total
        assert a.grow_count == 4
        # Appending up to the current capacity never grows again.
        before = a.grow_count
        a.append(np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.uint64))
        assert a.grow_count == before

    def test_large_batch_single_growth(self):
        a = arena.PendingArena(1)
        a.append(np.zeros(10 * arena.MIN_CAPACITY, dtype=np.uint64))
        assert a.grow_count == 1
        assert a.capacity >= 10 * arena.MIN_CAPACITY

    def test_growth_preserves_prefix(self):
        a = arena.PendingArena(1, capacity=4)
        a.append(np.array([1, 2, 3, 4], dtype=np.uint64))
        a.append(np.array([5, 6], dtype=np.uint64))
        assert a.views()[0].tolist() == [1, 2, 3, 4, 5, 6]

    def test_reset_keeps_capacity_clear_drops_it(self):
        a = arena.PendingArena(2)
        one = np.ones(100, dtype=np.uint64)
        a.append(one, one)
        cap = a.capacity
        a.reset()
        assert a.used == 0 and a.capacity == cap
        a.append(one, one)
        assert a.grow_count == 1  # steady state: no new growth after reset
        a.clear()
        assert a.used == 0 and a.capacity == 0 and a.capacity_bytes == 0

    def test_reserve_replaces_growth_ladder(self):
        a = arena.PendingArena(1)
        a.reserve(arena.MIN_CAPACITY * 16)
        grows = a.grow_count
        assert grows == 1 and a.capacity >= arena.MIN_CAPACITY * 16
        for _ in range(16):
            a.append(np.zeros(arena.MIN_CAPACITY, dtype=np.uint64))
        assert a.grow_count == grows  # fill never grows within the reservation
        a.reserve(1)  # smaller than capacity: no-op
        assert a.grow_count == grows

    def test_byte_accounting(self):
        a = arena.PendingArena(3)
        a.append(*(np.ones(10, dtype=np.uint64),) * 3)
        assert a.used_bytes == 10 * 8 * 3
        assert a.capacity_bytes == a.capacity * 8 * 3
        assert a.capacity_bytes >= a.used_bytes

    def test_narrow_unsigned_inputs_zero_extend(self):
        a = arena.PendingArena(1)
        a.append(np.array([250, 7], dtype=np.uint8))
        assert a.views()[0].tolist() == [250, 7]

    def test_invalid_ncols(self):
        with pytest.raises(ValueError):
            arena.PendingArena(0)
        with pytest.raises(ValueError):
            arena.PendingChunks(0)


class TestPendingChunks:
    def test_concat_counter_only_on_multi_chunk_views(self):
        c = arena.PendingChunks(2)
        one = np.ones(5, dtype=np.uint64)
        c.append(one, one)
        before = arena.concat_calls()
        c.views()  # single chunk: handed back as-is
        assert arena.concat_calls() == before
        c.append(one, one)
        c.views()  # two chunks: one counted concatenation
        assert arena.concat_calls() == before + 1

    def test_interface_parity_with_arena(self):
        c = arena.PendingChunks(2)
        one = np.ones(5, dtype=np.uint64)
        c.append(one, one)
        assert c.used == 5 and c.capacity == 5  # no preallocation to report
        assert c.used_bytes == c.capacity_bytes == 5 * 8 * 2
        assert c.grow_count == 0
        c.reserve(10_000)  # no-op, interface parity
        assert c.capacity == 5
        c.reset()
        assert c.used == 0 and c.views()[0].size == 0

    def test_append_copies_input(self):
        c = arena.PendingChunks(1)
        batch = np.arange(4, dtype=np.uint64)
        c.append(batch)
        batch[0] = 99
        assert c.views()[0][0] == 0


class TestBackendToggle:
    def test_make_pending_follows_toggle(self):
        assert isinstance(arena.make_pending(2), arena.PendingArena)
        with arena.arena_disabled():
            assert isinstance(arena.make_pending(2), arena.PendingChunks)
        assert isinstance(arena.make_pending(2), arena.PendingArena)

    def test_backend_fixed_at_construction(self):
        with arena.arena_disabled():
            v = Vector("fp64", 100)
        assert isinstance(v._pend, arena.PendingChunks)
        v.build([1, 2], [1.0, 2.0], lazy=True)  # outside the context
        assert isinstance(v._pend, arena.PendingChunks)
        assert v[1] == 1.0


# --------------------------------------------------------------------------- #
# the raw value-bits codec
# --------------------------------------------------------------------------- #


class TestValueBits:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_nan_payloads_roundtrip_exactly(self, dtype):
        vals = np.array(
            [nan_with_payload(0xABC), np.nan, -np.nan, np.inf, 0.0, -0.0],
            dtype=dtype,
        )
        bits = arena.value_bits(vals, dtype)
        a = arena.PendingArena(1)
        a.append(bits)
        back = arena.bits_to_values(a.views()[0], dtype)
        u = np.dtype(f"u{np.dtype(dtype).itemsize}")
        assert np.array_equal(back.view(u), vals.view(u))  # bit-for-bit

    def test_eight_byte_decode_is_zero_copy(self):
        a = arena.PendingArena(1)
        a.append(arena.value_bits(np.array([1.5, -2.5]), np.float64))
        decoded = arena.bits_to_values(a.views()[0], np.float64)
        assert np.shares_memory(decoded, a._columns[0])
        assert decoded.tolist() == [1.5, -2.5]

    def test_canonical_input_encode_is_zero_copy(self):
        vals = np.array([1.5, 2.5], dtype=np.float64)
        assert np.shares_memory(arena.value_bits(vals, np.float64), vals)

    @pytest.mark.parametrize(
        "dtype,vals",
        [
            (np.int64, [-5, 0, 2**40]),
            (np.int32, [-5, 0, 7]),
            (np.uint8, [0, 255]),
            (np.bool_, [True, False]),
            (np.float32, [1.5, -0.25]),
        ],
    )
    def test_narrow_dtypes_roundtrip(self, dtype, vals):
        v = np.array(vals, dtype=dtype)
        a = arena.PendingArena(1)
        a.append(arena.value_bits(v, dtype))
        back = arena.bits_to_values(a.views()[0], dtype)
        assert back.dtype == np.dtype(dtype)
        assert np.array_equal(back, v)

    def test_cast_happens_at_encode_time(self):
        # Mixed-dtype pending batches converge to the canonical dtype here,
        # once — the flush never re-casts (the old Vector.wait() paid a full
        # astype copy over the concatenated buffer for this).
        bits = arena.value_bits(np.array([1, 2], dtype=np.int32), np.float64)
        assert arena.bits_to_values(bits, np.float64).tolist() == [1.0, 2.0]


# --------------------------------------------------------------------------- #
# bit-identity: arena backend vs legacy list backend
# --------------------------------------------------------------------------- #

DTYPES = ["fp64", "fp32", "int64"]


def _apply_stream(container, stream, ops):
    """Replay (op_idx, idx, val) triples as single-entry lazy builds."""
    for op_idx, idx, val in stream:
        container.build([idx], [val], dup_op=ops[op_idx], lazy=True)


class TestBitIdentity:
    @given(
        stream=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 30), st.integers(-4, 9)),
            max_size=60,
        ),
        dtype=st.sampled_from(DTYPES),
        packed=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_vector_streams_match(self, stream, dtype, packed):
        """Arena and list backends agree for any op-switching lazy stream."""
        ops = [binary.plus, binary.times, binary.second]
        a = Vector(dtype, 2**32)
        with arena.arena_disabled():
            b = Vector(dtype, 2**32)
        ctx = coords.packing_disabled() if not packed else _null_ctx()
        with ctx:
            _apply_stream(a, stream, ops)
            _apply_stream(b, stream, ops)
            assert a.isequal(b, check_dtype=True)

    @given(
        stream=st.lists(
            st.tuples(
                st.integers(0, 2), st.integers(0, 12), st.integers(0, 12),
                st.integers(-4, 9),
            ),
            max_size=60,
        ),
        dtype=st.sampled_from(DTYPES),
        packed=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_matrix_streams_match(self, stream, dtype, packed):
        ops = [binary.plus, binary.times, binary.second]
        a = Matrix(dtype, 2**32, 2**32)
        with arena.arena_disabled():
            b = Matrix(dtype, 2**32, 2**32)
        ctx = coords.packing_disabled() if not packed else _null_ctx()
        with ctx:
            for op_idx, r, c, val in stream:
                a.build([r], [c], [val], dup_op=ops[op_idx], lazy=True)
                b.build([r], [c], [val], dup_op=ops[op_idx], lazy=True)
            assert a.isequal(b, check_dtype=True)

    def test_nan_payloads_survive_matrix_flush(self):
        payload = nan_with_payload(0x123)
        a = Matrix("fp64", 100, 100)
        with arena.arena_disabled():
            b = Matrix("fp64", 100, 100)
        for m in (a, b):
            m.build([1, 2], [3, 4], [payload, 1.0], dup_op=binary.second, lazy=True)
            m.wait()
        _, _, va = a.extract_tuples()
        _, _, vb = b.extract_tuples()
        assert np.array_equal(va.view(np.uint64), vb.view(np.uint64))
        assert va.view(np.uint64)[0] & np.uint64(0xFFF) == 0x123

    @given(
        seed=st.integers(0, 99),
        nbatches=st.integers(1, 4),
        shards=st.sampled_from([None, 1, 2, 3]),
    )
    @settings(max_examples=15, deadline=None)
    def test_tracker_matches_across_backends(self, seed, nbatches, shards):
        """Arena-backed tracker state equals the list-append tracker's."""
        from repro.distributed import ShardedHierarchicalMatrix

        rng = np.random.default_rng(seed)
        batches = [
            (
                rng.integers(0, 50, 40, dtype=np.uint64),
                rng.integers(0, 50, 40, dtype=np.uint64),
                rng.integers(1, 6, 40).astype(np.float64),
            )
            for _ in range(nbatches)
        ]

        def run():
            if shards is None:
                H = HierarchicalMatrix(2**32, 2**32, cuts=[16, 128])
                for b in batches:
                    H.update(*b)
                inc = H.incremental
                return (
                    inc.row_traffic().to_coo(),
                    inc.col_traffic().to_coo(),
                    inc.row_fan().to_coo(),
                    inc.col_fan().to_coo(),
                    float(inc.total()),
                    inc.nnz(),
                )
            with ShardedHierarchicalMatrix(shards, cuts=[16, 128]) as S:
                for b in batches:
                    S.update(*b)
                inc = S.incremental
                return (
                    inc.row_traffic().to_coo(),
                    inc.col_traffic().to_coo(),
                    float(inc.total()),
                    inc.nnz(),
                )

        got = run()
        with arena.arena_disabled():
            want = run()
        for g, w in zip(got, want):
            if isinstance(g, tuple):
                assert np.array_equal(g[0], w[0]) and np.array_equal(g[1], w[1])
            else:
                assert g == w


def _null_ctx():
    import contextlib

    return contextlib.nullcontext()


# --------------------------------------------------------------------------- #
# flush-cost regressions (the Vector.wait() mixed-dtype astype bug)
# --------------------------------------------------------------------------- #


class TestFlushAllocationRegression:
    def test_mixed_dtype_chunks_flush_without_concat_or_recast(self):
        """Pending batches of different input dtypes flush exactly.

        The pre-arena implementation concatenated the pending value chunks
        and then paid a *second* full-size ``astype`` copy whenever batches
        arrived in mixed dtypes (old ``vector.py:194``).  The arena stores
        canonical value bits at append time, so the flush performs zero
        concatenations and zero re-casts, regardless of input dtypes.
        """
        v = Vector("fp64", 1000)
        v.build(np.arange(10, dtype=np.uint64), np.arange(10, dtype=np.int32),
                lazy=True)
        v.build(np.arange(10, 20, dtype=np.uint64),
                np.arange(10, dtype=np.float32) / 4.0, lazy=True)
        v.build(np.arange(20, 30, dtype=np.uint64),
                np.arange(10, dtype=np.float64) / 8.0, lazy=True)
        before = arena.concat_calls()
        assert v.nvals == 30  # forces the flush
        assert arena.concat_calls() == before  # zero concatenations
        assert v[5] == 5.0 and v[12] == 0.5 and v[24] == 0.5

    def test_flush_reads_value_bits_without_copy(self):
        """The flush's value view aliases the arena column (no astype pass)."""
        v = Vector("fp64", 1000)
        v.build(np.arange(8, dtype=np.uint64), np.ones(8, dtype=np.int64),
                lazy=True)
        _, bits_view = v._pend.views()
        decoded = arena.bits_to_values(bits_view, np.float64)
        assert np.shares_memory(decoded, v._pend._columns[1])

    def test_steady_state_flush_counters(self):
        """Repeated build/wait cycles: zero concats, no growth after warmup."""
        m = Matrix("fp64", 2**32, 2**32)
        idx = np.arange(100, dtype=np.uint64)
        vals = np.ones(100)
        m.build(idx, idx, vals, lazy=True)
        m.wait()
        grows = m._pend.grow_count
        concats = arena.concat_calls()
        for _ in range(10):
            m.build(idx, idx, vals, lazy=True)
            m.wait()
        assert m._pend.grow_count == grows
        assert arena.concat_calls() == concats
