"""Tests for GraphBLAS scalar types and promotion rules."""

import numpy as np
import pytest

from repro.graphblas import types
from repro.graphblas.types import (
    BOOL,
    FP32,
    FP64,
    INT8,
    INT32,
    INT64,
    UINT8,
    UINT64,
    BUILTIN_TYPES,
    lookup_dtype,
    unify,
)


class TestLookup:
    def test_lookup_by_name(self):
        assert lookup_dtype("FP64") is FP64
        assert lookup_dtype("fp64") is FP64
        assert lookup_dtype("INT32") is INT32

    def test_lookup_by_alias(self):
        assert lookup_dtype("double") is FP64
        assert lookup_dtype("float") is FP32
        assert lookup_dtype("int") is INT64

    def test_lookup_by_numpy_name(self):
        assert lookup_dtype("float64") is FP64
        assert lookup_dtype("uint8") is UINT8

    def test_lookup_by_numpy_dtype(self):
        assert lookup_dtype(np.dtype(np.int64)) is INT64
        assert lookup_dtype(np.float32) is FP32

    def test_lookup_by_python_type(self):
        assert lookup_dtype(bool) is BOOL
        assert lookup_dtype(int) is INT64
        assert lookup_dtype(float) is FP64

    def test_lookup_identity(self):
        assert lookup_dtype(FP64) is FP64

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            lookup_dtype("complex128")

    def test_all_builtins_resolve_roundtrip(self):
        for t in BUILTIN_TYPES:
            assert lookup_dtype(t.name) is t
            assert lookup_dtype(t.np_type) is t


class TestProperties:
    def test_integer_flags(self):
        assert INT8.is_integer and INT8.is_signed and not INT8.is_unsigned
        assert UINT64.is_integer and UINT64.is_unsigned
        assert not FP64.is_integer

    def test_float_flags(self):
        assert FP32.is_float and FP64.is_float
        assert not INT32.is_float

    def test_bool_flags(self):
        assert BOOL.is_bool
        assert not INT8.is_bool

    def test_itemsize(self):
        assert INT8.itemsize == 1
        assert FP64.itemsize == 8
        assert UINT64.itemsize == 8

    def test_zero_and_one(self):
        assert FP64.zero() == 0.0
        assert INT32.one() == 1
        assert BOOL.one() == True  # noqa: E712

    def test_repr(self):
        assert "FP64" in repr(FP64)


class TestUnify:
    def test_same_type(self):
        assert unify(FP64, FP64) is FP64
        assert unify(BOOL, BOOL) is BOOL

    def test_int_float_promotes_to_float(self):
        assert unify(INT32, FP64) is FP64
        assert unify(FP32, INT8) is FP32

    def test_small_ints_promote_upward(self):
        assert unify(INT8, INT32) is INT32
        assert unify(UINT8, UINT64) is UINT64

    def test_bool_with_int(self):
        assert unify(BOOL, INT8) is INT8

    def test_mixed_sign_promotes(self):
        out = unify(INT64, UINT64)
        assert out.is_float or out.is_integer  # NumPy promotes to FP64

    def test_unify_accepts_names(self):
        assert unify("int16", "fp32") is FP32
        assert unify("int32", "fp32") is FP64  # NumPy widens to preserve int32 range
