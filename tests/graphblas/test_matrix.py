"""Tests for Matrix construction, element access, and bookkeeping."""

import numpy as np
import pytest

from repro.graphblas import (
    DimensionMismatch,
    IndexOutOfBound,
    InvalidValue,
    Matrix,
    NotImplementedException,
    binary,
)
from repro.graphblas.types import FP64, INT64


class TestConstruction:
    def test_empty_matrix(self):
        A = Matrix("fp64", 10, 20)
        assert A.shape == (10, 20)
        assert A.nvals == 0
        assert A.dtype is FP64

    def test_default_dimensions_are_hypersparse(self):
        A = Matrix("int64")
        assert A.nrows == 2**64
        assert A.ncols == 2**64

    def test_invalid_dimensions(self):
        with pytest.raises(InvalidValue):
            Matrix("fp64", 0, 5)
        with pytest.raises(InvalidValue):
            Matrix("fp64", 5, 2**64 + 1)

    def test_from_coo_basic(self):
        A = Matrix.from_coo([0, 1], [1, 2], [1.5, 2.5], nrows=3, ncols=3)
        assert A.nvals == 2
        assert A[0, 1] == 1.5

    def test_from_coo_scalar_value_broadcast(self):
        A = Matrix.from_coo([0, 1, 2], [0, 1, 2], 7, nrows=3, ncols=3)
        assert A[2, 2] == 7

    def test_from_coo_duplicates_sum_by_default(self):
        A = Matrix.from_coo([0, 0], [1, 1], [2.0, 3.0], nrows=2, ncols=2)
        assert A.nvals == 1
        assert A[0, 1] == 5.0

    def test_from_coo_dup_op_second(self):
        A = Matrix.from_coo([0, 0], [1, 1], [2.0, 3.0], nrows=2, ncols=2, dup_op=binary.second)
        assert A[0, 1] == 3.0

    def test_from_coo_dtype_cast(self):
        A = Matrix.from_coo([0], [0], [2.7], dtype="int64", nrows=1, ncols=1)
        assert A.dtype is INT64
        assert A[0, 0] == 2

    def test_from_dense(self):
        dense = np.array([[0, 1.0], [2.0, 0]])
        A = Matrix.from_dense(dense)
        assert A.nvals == 2
        assert A[1, 0] == 2.0

    def test_from_dense_rejects_1d(self):
        with pytest.raises(DimensionMismatch):
            Matrix.from_dense(np.array([1.0, 2.0]))

    def test_from_scipy_roundtrip(self):
        import scipy.sparse as sp

        S = sp.random(20, 30, density=0.1, random_state=0, format="csr")
        A = Matrix.from_scipy_sparse(S)
        back = A.to_scipy_sparse("csr")
        assert (back != S).nnz == 0

    def test_identity(self):
        I = Matrix.identity(4, value=2, dtype="int64")
        assert I.nvals == 4
        assert I[3, 3] == 2
        assert I[0, 1] is None

    def test_dup_is_deep(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=2, ncols=2)
        B = A.dup()
        B.setElement(1, 1, 5.0)
        assert A.nvals == 1
        assert B.nvals == 2

    def test_dup_with_cast(self):
        A = Matrix.from_coo([0], [0], [1.9], nrows=2, ncols=2)
        B = A.dup(dtype="int32")
        assert B[0, 0] == 1

    def test_huge_dimensions(self, huge_matrix):
        assert huge_matrix.nvals == 3
        assert huge_matrix[2**63, 7] == 10.0
        assert huge_matrix.nrows == 2**64


class TestElementAccess:
    def test_set_and_extract(self):
        A = Matrix("fp64", 10, 10)
        A.setElement(3, 4, 1.5)
        assert A.extractElement(3, 4) == 1.5
        assert A.get(9, 9) is None
        assert A.get(9, 9, default=0.0) == 0.0

    def test_setitem_getitem(self):
        A = Matrix("fp64", 10, 10)
        A[2, 3] = 9.0
        assert A[2, 3] == 9.0

    def test_setelement_replaces(self):
        A = Matrix("fp64", 10, 10)
        A.setElement(1, 1, 1.0)
        A.setElement(1, 1, 2.0)
        assert A[1, 1] == 2.0
        assert A.nvals == 1

    def test_pending_buffer_is_lazy(self):
        A = Matrix("fp64", 10, 10)
        A.setElement(0, 0, 1.0)
        assert A.has_pending
        assert A.nvals_upper_bound == 1
        _ = A.nvals  # forces the merge
        assert not A.has_pending

    def test_pending_merges_with_existing(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=4, ncols=4)
        A.setElement(0, 0, 5.0)  # replace semantics for setElement
        assert A[0, 0] == 5.0

    def test_wait_chainable(self):
        A = Matrix("fp64", 4, 4)
        A.setElement(0, 1, 2.0)
        assert A.wait() is A

    def test_out_of_bounds_rejected(self):
        A = Matrix("fp64", 4, 4)
        with pytest.raises(IndexOutOfBound):
            A.setElement(4, 0, 1.0)
        with pytest.raises(IndexOutOfBound):
            A.build([0], [4], [1.0])

    def test_remove_element(self):
        A = Matrix.from_coo([0, 1], [0, 1], [1.0, 2.0], nrows=2, ncols=2)
        assert A.removeElement(0, 0)
        assert A.nvals == 1
        assert not A.removeElement(0, 0)

    def test_contains(self):
        A = Matrix.from_coo([0], [1], [1.0], nrows=2, ncols=2)
        assert (0, 1) in A
        assert (1, 0) not in A

    def test_iteration_sorted(self, small_matrix):
        triples = list(small_matrix)
        assert triples[0] == (0, 0, 1.0)
        assert len(triples) == 6
        assert triples == sorted(triples)

    def test_bool(self):
        assert not Matrix("fp64", 2, 2)
        assert Matrix.from_coo([0], [0], [1.0], nrows=2, ncols=2)


class TestBuildAndClear:
    def test_build_merges_batches(self):
        A = Matrix("fp64", 100, 100)
        A.build([1, 2], [1, 2], [1.0, 1.0])
        A.build([1, 3], [1, 3], [2.0, 3.0])
        assert A.nvals == 3
        assert A[1, 1] == 3.0

    def test_build_clear_replaces(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=4, ncols=4)
        A.build([1], [1], [9.0], clear=True)
        assert A.nvals == 1
        assert A[0, 0] is None

    def test_build_length_mismatch(self):
        A = Matrix("fp64", 4, 4)
        with pytest.raises(DimensionMismatch):
            A.build([0, 1], [0], [1.0, 2.0])
        with pytest.raises(DimensionMismatch):
            A.build([0, 1], [0, 1], [1.0])

    def test_build_scalar_value(self):
        A = Matrix("int64", 10, 10)
        A.build([1, 2, 3], [1, 2, 3], 1)
        assert A.reduce_scalar() == 3

    def test_clear_preserves_shape_and_dtype(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=7, ncols=9)
        A.clear()
        assert A.nvals == 0
        assert A.shape == (7, 9)
        assert A.dtype is FP64

    def test_resize_drops_out_of_range(self):
        A = Matrix.from_coo([0, 5], [0, 5], [1.0, 2.0], nrows=10, ncols=10)
        A.resize(3, 3)
        assert A.nvals == 1
        assert A.shape == (3, 3)

    def test_resize_grows(self):
        A = Matrix.from_coo([0], [0], [1.0], nrows=2, ncols=2)
        A.resize(100, 100)
        assert A.shape == (100, 100)
        assert A.nvals == 1

    def test_update_accumulates(self):
        A = Matrix.from_coo([0, 1], [0, 1], [1.0, 2.0], nrows=3, ncols=3)
        B = Matrix.from_coo([1, 2], [1, 2], [10.0, 20.0], nrows=3, ncols=3)
        A.update(B)
        assert A[1, 1] == 12.0
        assert A.nvals == 3

    def test_update_shape_mismatch(self):
        A = Matrix("fp64", 3, 3)
        B = Matrix("fp64", 4, 4)
        with pytest.raises(DimensionMismatch):
            A.update(B)

    def test_extract_tuples_returns_copies(self, small_matrix):
        r, c, v = small_matrix.extract_tuples()
        r[0] = 99
        assert small_matrix[0, 0] == 1.0

    def test_memory_usage_grows(self):
        A = Matrix("fp64", 100, 100)
        before = A.memory_usage
        A.build(np.arange(50), np.arange(50), np.ones(50))
        assert A.memory_usage > before


class TestConversions:
    def test_to_dense(self):
        A = Matrix.from_coo([0, 1], [1, 0], [1.0, 2.0], nrows=2, ncols=2)
        dense = A.to_dense()
        assert np.array_equal(dense, [[0.0, 1.0], [2.0, 0.0]])

    def test_to_dense_guard(self, huge_matrix):
        with pytest.raises(NotImplementedException):
            huge_matrix.to_dense()

    def test_to_scipy_guard(self, huge_matrix):
        with pytest.raises(NotImplementedException):
            huge_matrix.to_scipy_sparse()

    def test_isequal(self):
        A = Matrix.from_coo([0], [1], [1.0], nrows=2, ncols=2)
        B = Matrix.from_coo([0], [1], [1.0], nrows=2, ncols=2)
        C = Matrix.from_coo([0], [1], [2.0], nrows=2, ncols=2)
        assert A.isequal(B)
        assert not A.isequal(C)
        assert not A.isequal(Matrix("fp64", 3, 3))
        assert not A.isequal("not a matrix")

    def test_isequal_dtype_check(self):
        A = Matrix.from_coo([0], [1], [1], dtype="int64", nrows=2, ncols=2)
        B = Matrix.from_coo([0], [1], [1], dtype="fp64", nrows=2, ncols=2)
        assert A.isequal(B)
        assert not A.isequal(B, check_dtype=True)

    def test_isclose(self):
        A = Matrix.from_coo([0], [1], [1.0], nrows=2, ncols=2)
        B = Matrix.from_coo([0], [1], [1.0 + 1e-12], nrows=2, ncols=2)
        assert A.isclose(B)
        C = Matrix.from_coo([0], [1], [1.1], nrows=2, ncols=2)
        assert not A.isclose(C)

    def test_repr_mentions_shape(self, small_matrix):
        assert "5x5" in repr(small_matrix)
