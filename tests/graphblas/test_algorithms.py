"""Tests for the linear-algebraic graph algorithms."""

import numpy as np
import pytest

from repro.graphblas import Matrix
from repro.graphblas.algorithms import (
    bfs_levels,
    connected_components,
    degree_centrality,
    katz_centrality,
    pagerank,
    triangle_count,
)


def path_graph(n=5):
    """0 -> 1 -> 2 -> ... -> n-1."""
    src = np.arange(n - 1)
    return Matrix.from_coo(src, src + 1, 1.0, nrows=n, ncols=n)


def cycle_graph(n=4):
    src = np.arange(n)
    return Matrix.from_coo(src, (src + 1) % n, 1.0, nrows=n, ncols=n)


class TestBFS:
    def test_path_graph_levels(self):
        levels = bfs_levels(path_graph(5), 0)
        assert [levels[i] for i in range(5)] == [0, 1, 2, 3, 4]

    def test_unreachable_vertices_not_stored(self):
        levels = bfs_levels(path_graph(5), 2)
        assert levels[2] == 0 and levels[4] == 2
        assert levels[0] is None and levels[1] is None

    def test_cycle(self):
        levels = bfs_levels(cycle_graph(4), 0)
        assert levels[0] == 0 and levels[2] == 2

    def test_hypersparse_vertex_ids(self):
        g = Matrix.from_coo([2**40, 2**41], [2**41, 2**42], 1.0, nrows=2**64, ncols=2**64)
        levels = bfs_levels(g, 2**40)
        assert levels[2**42] == 2

    def test_max_iterations_bound(self):
        levels = bfs_levels(path_graph(10), 0, max_iterations=3)
        assert levels.nvals == 3

    def test_isolated_source(self):
        g = Matrix.from_coo([1], [2], 1.0, nrows=5, ncols=5)
        levels = bfs_levels(g, 4)
        assert levels.nvals == 1 and levels[4] == 0


class TestPageRank:
    def test_ranks_sum_to_one(self):
        g = cycle_graph(5)
        pr = pagerank(g)
        _, vals = pr.to_coo()
        assert vals.sum() == pytest.approx(1.0, abs=1e-3)

    def test_symmetric_cycle_is_uniform(self):
        pr = pagerank(cycle_graph(4))
        _, vals = pr.to_coo()
        assert np.allclose(vals, 0.25, atol=1e-3)

    def test_hub_ranks_highest(self):
        # Everyone points at vertex 0.
        g = Matrix.from_coo([1, 2, 3, 4], [0, 0, 0, 0], 1.0, nrows=5, ncols=5)
        pr = pagerank(g)
        idx, vals = pr.to_coo()
        best = int(idx[np.argmax(vals)])
        assert best == 0

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(0)
        edges = set()
        while len(edges) < 30:
            edges.add((int(rng.integers(0, 12)), int(rng.integers(0, 12))))
        edges = [(u, v) for u, v in edges if u != v]
        rows = [u for u, _ in edges]
        cols = [v for _, v in edges]
        g = Matrix.from_coo(rows, cols, 1.0, nrows=12, ncols=12)
        ours = pagerank(g, damping=0.85, tolerance=1e-10, max_iterations=200)
        nxg = nx.DiGraph(edges)
        theirs = nx.pagerank(nxg, alpha=0.85, tol=1e-10, max_iter=200)
        for node, expected in theirs.items():
            assert ours[node] == pytest.approx(expected, abs=5e-3)

    def test_empty_graph(self):
        assert pagerank(Matrix("fp64", 10, 10)).nvals == 0


class TestTriangles:
    def test_triangle(self):
        g = Matrix.from_coo([0, 1, 2], [1, 2, 0], 1.0, nrows=3, ncols=3)
        assert triangle_count(g) == 1

    def test_square_has_no_triangles(self):
        assert triangle_count(cycle_graph(4)) == 0

    def test_complete_graph(self):
        n = 5
        rows, cols = [], []
        for i in range(n):
            for j in range(n):
                if i != j:
                    rows.append(i)
                    cols.append(j)
        g = Matrix.from_coo(rows, cols, 1.0, nrows=n, ncols=n)
        assert triangle_count(g) == 10  # C(5,3)

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        gnx = nx.gnp_random_graph(20, 0.3, seed=1)
        rows = [u for u, v in gnx.edges()]
        cols = [v for u, v in gnx.edges()]
        g = Matrix.from_coo(rows, cols, 1.0, nrows=20, ncols=20)
        expected = sum(nx.triangles(gnx).values()) // 3
        assert triangle_count(g) == expected


class TestComponentsAndCentrality:
    def test_two_components(self):
        g = Matrix.from_coo([0, 1, 5, 6], [1, 2, 6, 7], 1.0, nrows=10, ncols=10)
        labels = connected_components(g)
        assert labels[0] == labels[1] == labels[2]
        assert labels[5] == labels[6] == labels[7]
        assert labels[0] != labels[5]
        assert labels[0] == 0 and labels[5] == 5  # smallest id in each component

    def test_single_component_cycle(self):
        labels = connected_components(cycle_graph(6))
        _, vals = labels.to_coo()
        assert np.all(vals == vals[0])

    def test_empty_graph_components(self):
        assert connected_components(Matrix("fp64", 4, 4)).nvals == 0

    def test_degree_centrality_modes(self):
        g = Matrix.from_coo([0, 0, 1], [1, 2, 2], 1.0, nrows=3, ncols=3)
        assert degree_centrality(g, mode="out")[0] == 2
        assert degree_centrality(g, mode="in")[2] == 2
        assert degree_centrality(g, mode="total")[1] == 2
        with pytest.raises(ValueError):
            degree_centrality(g, mode="bogus")

    def test_katz_hub_highest(self):
        g = Matrix.from_coo([1, 2, 3], [0, 0, 0], 1.0, nrows=4, ncols=4)
        katz = katz_centrality(g, alpha=0.05)
        idx, vals = katz.to_coo()
        assert int(idx[np.argmax(vals)]) == 0
        assert katz.nvals == 4

    def test_katz_empty(self):
        assert katz_centrality(Matrix("fp64", 3, 3)).nvals == 0
