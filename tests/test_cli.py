"""Tests for the command-line entry points."""

import json

import pytest

from repro.cli import main_fig2, main_ingest, main_scaling


class TestIngestCLI:
    def test_hierarchical_text_output(self, capsys):
        rc = main_ingest(["--updates", "20000", "--batches", "5", "--cuts", "1000,10000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "updates per second" in out
        assert "20,000" in out

    def test_json_output(self, capsys):
        rc = main_ingest(["--updates", "5000", "--batches", "5", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_updates"] == 5000
        assert payload["updates_per_second"] > 0

    def test_flat_system(self, capsys):
        rc = main_ingest(["--updates", "3000", "--batches", "3", "--system", "flat"])
        assert rc == 0
        assert "flat" in capsys.readouterr().out

    def test_d4m_system(self, capsys):
        rc = main_ingest(
            ["--updates", "2000", "--batches", "4", "--system", "hierarchical-d4m",
             "--cuts", "500,5000"]
        )
        assert rc == 0
        assert "hierarchical-d4m" in capsys.readouterr().out


class TestScalingCLI:
    def test_sequential_run(self, capsys):
        rc = main_scaling(
            ["--workers", "2", "--updates-per-worker", "5000", "--batch-size", "1000",
             "--sequential"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SuperCloud projection" in out
        assert "75,000,000,000" in out

    def test_json_output(self, capsys):
        rc = main_scaling(
            ["--workers", "1", "--updates-per-worker", "3000", "--batch-size", "1000",
             "--sequential", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_updates"] == 3000
        assert payload["headline_projection"]["nodes"] == 1100


class TestFig2CLI:
    def test_prints_all_series(self, capsys):
        rc = main_fig2(["--updates", "20000", "--d4m-updates", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Hierarchical GraphBLAS (measured)" in out
        assert "Hierarchical D4M" in out
        assert "Accumulo" in out
        assert "CrateDB" in out
