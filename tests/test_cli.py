"""Tests for the command-line entry points."""

import json

import pytest

from repro.cli import main_fig2, main_ingest, main_scaling, main_shard


class TestIngestCLI:
    def test_hierarchical_text_output(self, capsys):
        rc = main_ingest(["--updates", "20000", "--batches", "5", "--cuts", "1000,10000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "updates per second" in out
        assert "20,000" in out

    def test_json_output(self, capsys):
        rc = main_ingest(["--updates", "5000", "--batches", "5", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_updates"] == 5000
        assert payload["updates_per_second"] > 0

    def test_flat_system(self, capsys):
        rc = main_ingest(["--updates", "3000", "--batches", "3", "--system", "flat"])
        assert rc == 0
        assert "flat" in capsys.readouterr().out

    def test_d4m_system(self, capsys):
        rc = main_ingest(
            ["--updates", "2000", "--batches", "4", "--system", "hierarchical-d4m",
             "--cuts", "500,5000"]
        )
        assert rc == 0
        assert "hierarchical-d4m" in capsys.readouterr().out


class TestScalingCLI:
    def test_sequential_run(self, capsys):
        rc = main_scaling(
            ["--workers", "2", "--updates-per-worker", "5000", "--batch-size", "1000",
             "--sequential"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SuperCloud projection" in out
        assert "75,000,000,000" in out

    def test_json_output(self, capsys):
        rc = main_scaling(
            ["--workers", "1", "--updates-per-worker", "3000", "--batch-size", "1000",
             "--sequential", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_updates"] == 3000
        assert payload["headline_projection"]["nodes"] == 1100


class TestShardCLI:
    def test_powerlaw_text_output(self, capsys):
        rc = main_shard(
            ["--shards", "3", "--updates", "20000", "--batch-size", "5000",
             "--cuts", "1000,10000"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "shards:                3" in out
        assert "20,000" in out
        assert "aggregate rate (sum)" in out

    def test_json_output_range_partition(self, capsys):
        rc = main_shard(
            ["--shards", "2", "--partition", "range", "--updates", "10000",
             "--batch-size", "2000", "--cuts", "1000,10000", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_updates"] == 10000
        assert payload["partition"] == "range"
        assert len(payload["per_shard"]) == 2
        assert sum(s["updates"] for s in payload["per_shard"]) == 10000

    def test_traffic_source(self, capsys):
        rc = main_shard(
            ["--shards", "2", "--source", "traffic", "--updates", "6000",
             "--batch-size", "3000", "--cuts", "1000,10000", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "traffic"
        assert payload["total_updates"] == 6000

    @pytest.mark.parametrize("source", ["powerlaw", "traffic"])
    def test_sources_stream_exactly_updates(self, capsys, source):
        """Whole-window generators must not round the request up or down."""
        rc = main_shard(
            ["--shards", "2", "--source", source, "--updates", "1500",
             "--batch-size", "1000", "--cuts", "1000,10000", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_updates"] == 1500
        assert sum(s["updates"] for s in payload["per_shard"]) == 1500

    def test_stats_text_output(self, capsys):
        rc = main_shard(
            ["--shards", "2", "--updates", "6000", "--batch-size", "2000",
             "--cuts", "1000,10000", "--stats"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "incremental traffic statistics" in out
        assert "total traffic:         6,000" in out
        assert "top source share" in out

    def test_stats_json_matches_materialized_nvals(self, capsys):
        rc = main_shard(
            ["--shards", "3", "--updates", "5000", "--batch-size", "1000",
             "--cuts", "1000,10000", "--stats", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["nnz"] == payload["global_nvals"]
        assert payload["stats"]["total_traffic"] == 5000.0
        assert len(payload["supernodes"]["top_sources"]) == 5

    def test_manual_rebalance_migrates_once(self, capsys):
        """--rebalance manual forces exactly one mid-stream migration."""
        rc = main_shard(
            ["--shards", "3", "--partition", "range", "--updates", "20000",
             "--batch-size", "2000", "--cuts", "1000,10000", "--rebalance",
             "manual", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_updates"] == 20000
        reb = payload["rebalance"]
        assert reb["mode"] == "manual"
        assert len(reb["events"]) == 1
        assert reb["map_epoch"] == 1
        event = reb["events"][0]
        assert event["moved"] > 0 and event["source"] != event["dest"]

    def test_auto_rebalance_respects_threshold(self, capsys):
        """A sky-high threshold means zero migrations; the run still reports."""
        rc = main_shard(
            ["--shards", "2", "--updates", "8000", "--batch-size", "2000",
             "--cuts", "1000,10000", "--rebalance", "auto",
             "--imbalance-threshold", "100", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rebalance"]["events"] == []
        assert payload["rebalance"]["map_epoch"] == 0
        assert payload["total_updates"] == 8000

    def test_replay_manual_rebalance_uses_real_stream_length(self, tmp_path, capsys):
        """Regression: --replay ignores --updates, so the manual midpoint
        must be computed from the capture's real length (default --updates
        would place it far past a short capture's last batch)."""
        replay = tmp_path / "capture.tsv"
        lines = [f"{i}\t{i % 97}\t1.0" for i in range(400)]
        replay.write_text("\n".join(lines) + "\n")
        rc = main_shard(
            ["--shards", "2", "--partition", "range", "--replay", str(replay),
             "--batch-size", "100", "--cuts", "1000,10000",
             "--rebalance", "manual", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_updates"] == 400
        assert len(payload["rebalance"]["events"]) == 1
        assert payload["rebalance"]["map_epoch"] == 1

    def test_rebalance_text_output(self, capsys):
        rc = main_shard(
            ["--shards", "2", "--partition", "range", "--updates", "8000",
             "--batch-size", "2000", "--cuts", "1000,10000",
             "--rebalance", "manual"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "rebalance:             manual" in out
        assert "final imbalance" in out

    def test_replay_file(self, tmp_path, capsys):
        replay = tmp_path / "capture.tsv"
        lines = [f"{i % 7}\t{i % 5}\t1.0" for i in range(100)]
        replay.write_text("\n".join(lines) + "\n")
        rc = main_shard(
            ["--shards", "2", "--replay", str(replay), "--batch-size", "30",
             "--cuts", "1000,10000", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "replay"
        assert payload["total_updates"] == 100
        assert payload["global_nvals"] == 35  # 7 x 5 distinct coordinate pairs


class TestFig2CLI:
    def test_prints_all_series(self, capsys):
        rc = main_fig2(["--updates", "20000", "--d4m-updates", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Hierarchical GraphBLAS (measured)" in out
        assert "Hierarchical D4M" in out
        assert "Accumulo" in out
        assert "CrateDB" in out
