"""Transport conformance suite: every wire must produce bit-identical results.

One battery runs over all four worker modes — in-process states, the queue
transport (pickled FIFO queues), the shm transport (shared-memory ring
buffers), and the socket transport (TCP connections to
:class:`~repro.distributed.NodeAgent` endpoints, PR 7) — asserting that a
:class:`~repro.distributed.ShardedHierarchicalMatrix` fed a stream
``materialize``s, ``get``s, and reduces bit-identically to a flat
:class:`~repro.core.HierarchicalMatrix` fed the same stream.  Hypothesis
drives shard counts, partitions, batch shapes, and both coordinate engines,
so the guarantee that made the sharded engine shippable in PR 2 is now
enforced *per transport* (PR 4) — a new wire cannot land without passing
exactly this battery.

CI runs the process-backed thirds separately via ``-k queue`` / ``-k shm`` /
``-k socket`` (the transport matrix); the mode name is embedded in every
test id.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import HierarchicalMatrix
from repro.distributed import (
    ShardedHierarchicalMatrix,
    ShardWorkerPool,
    ValueCodec,
    make_transport,
    shm_supported,
    spawn_local_agents,
)
from repro.graphblas import coords

CUTS = [500, 5_000]

#: (mode id, ShardedHierarchicalMatrix kwargs).  The mode id is what the CI
#: transport matrix selects with ``-k``.
MODES = [
    ("inproc", {"use_processes": False}),
    ("queue", {"use_processes": True, "transport": "queue"}),
    ("shm", {"use_processes": True, "transport": "shm"}),
    ("socket", {"use_processes": True, "transport": "socket"}),
]
MODE_IDS = [m[0] for m in MODES]
MODE_KWARGS = dict(MODES)

#: Lazily spawned localhost NodeAgent pair serving every socket-mode test in
#: this module (one pair for the module keeps the battery fast; each test's
#: pool still forks fresh workers through them).  Torn down by the autouse
#: fixture below.
_SOCKET_AGENTS = None


def _socket_nodes():
    global _SOCKET_AGENTS
    if _SOCKET_AGENTS is None:
        cm = spawn_local_agents(2)
        addresses, _procs = cm.__enter__()
        _SOCKET_AGENTS = (cm, addresses)
    return list(_SOCKET_AGENTS[1])


@pytest.fixture(scope="module", autouse=True)
def _socket_agent_teardown():
    yield
    global _SOCKET_AGENTS
    if _SOCKET_AGENTS is not None:
        _SOCKET_AGENTS[0].__exit__(None, None, None)
        _SOCKET_AGENTS = None


def mode_kwargs(mode):
    """Pool kwargs for one mode; socket mode gets the shared local agents.

    Note the engine-toggle caveat: socket workers are forked by the agents,
    which started before any test entered ``packing_disabled()`` — so the
    lexsort examples exercise the toggle in the *reference* only.  Bit
    identity must hold anyway (the engines' own conformance contract).
    """
    kwargs = dict(MODE_KWARGS[mode])
    if kwargs.get("transport") == "socket":
        kwargs["nodes"] = _socket_nodes()
    return kwargs


def mode_param():
    return pytest.mark.parametrize("mode", MODE_IDS)


@contextlib.contextmanager
def engine_context(engine: str):
    """Run under the packed or the lexsort coordinate engine.

    Entered *before* pools are created: forked workers inherit the toggle, so
    process-backed shards genuinely run the fallback engine too (shard
    routing is toggle-independent by construction).
    """
    if engine == "lexsort":
        with coords.packing_disabled():
            yield
    else:
        yield


def flat_reference(batches, nrows=2 ** 32, ncols=2 ** 32):
    flat = HierarchicalMatrix(nrows, ncols, cuts=CUTS)
    for rows, cols, vals in batches:
        flat.update(rows, cols, vals)
    return flat


def run_battery(mode, batches, *, nshards, partition, nrows=2 ** 32, ncols=2 ** 32):
    """Feed ``batches`` to flat + sharded and assert global bit-identity."""
    flat = flat_reference(batches, nrows, ncols)
    flat_matrix = flat.materialize()
    with ShardedHierarchicalMatrix(
        nshards,
        nrows,
        ncols,
        cuts=CUTS,
        partition=partition,
        **mode_kwargs(mode),
    ) as sharded:
        for rows, cols, vals in batches:
            sharded.update(rows, cols, vals)
        # materialize: the full global result, merged across shards.
        assert sharded.materialize().isequal(flat_matrix)
        # get: point reads route to the owning shard.
        seen = set()
        for rows, cols, _ in batches[:2]:
            for r, c in list(zip(rows.tolist(), cols.tolist()))[:10]:
                if (r, c) in seen:
                    continue
                seen.add((r, c))
                assert sharded.get(r, c) == flat.get(r, c)
        assert sharded.get(nrows - 1, ncols - 1, default=-1.0) == flat.get(
            nrows - 1, ncols - 1, -1.0
        )
        # reductions: monoid merges across shards.
        assert sharded.reduce_rowwise("plus").isequal(flat_matrix.reduce_rowwise("plus"))
        assert sharded.reduce_columnwise("plus").isequal(
            flat_matrix.reduce_columnwise("plus")
        )
        # incremental reductions: the tracker path must agree with the
        # materialize path (and therefore with the flat reference).
        inc = sharded.incremental
        if inc.supported and inc.fan_supported:
            assert inc.nnz() == flat_matrix.nvals
            assert inc.total() == pytest.approx(float(flat_matrix.reduce_scalar("plus")))
            assert inc.row_traffic().isequal(flat_matrix.reduce_rowwise("plus"))


def batches_strategy():
    """Random small streams: duplicate-heavy coords, exactly-summable values."""

    @st.composite
    def _batches(draw):
        nbatches = draw(st.integers(1, 5))
        space = draw(st.sampled_from([64, 2 ** 10, 2 ** 18]))
        seed = draw(st.integers(0, 2 ** 16))
        rng = np.random.default_rng(seed)
        out = []
        for _ in range(nbatches):
            n = draw(st.integers(1, 80))
            rows = rng.integers(0, space, n, dtype=np.uint64)
            cols = rng.integers(0, space, n, dtype=np.uint64)
            vals = rng.integers(1, 8, n).astype(np.float64)
            out.append((rows, cols, vals))
        return out

    return _batches()


def run_rebalance_battery(
    mode,
    batches,
    *,
    nshards,
    partition,
    rebalance_after,
    nrows=2 ** 32,
    ncols=2 ** 32,
):
    """Feed ``batches`` with live rebalances interleaved mid-stream.

    ``rebalance_after`` holds batch indices; after routing batch ``i`` a
    ``rebalance()`` is attempted (auto policy).  The sharded matrix must end
    bit-identical to the flat reference on every surface the plain battery
    checks, and the map epoch must count exactly the completed migrations.
    """
    flat = flat_reference(batches, nrows, ncols)
    flat_matrix = flat.materialize()
    with ShardedHierarchicalMatrix(
        nshards,
        nrows,
        ncols,
        cuts=CUTS,
        partition=partition,
        **mode_kwargs(mode),
    ) as sharded:
        epoch0 = sharded.map_epoch
        migrations = 0
        for i, (rows, cols, vals) in enumerate(batches):
            sharded.update(rows, cols, vals)
            if i in rebalance_after and sharded.nshards > 1:
                report = sharded.rebalance()
                if report is not None:
                    migrations += 1
                    assert report.moved > 0
                    assert report.epoch == epoch0 + migrations
        assert sharded.map_epoch == epoch0 + migrations
        assert sharded.materialize().isequal(flat_matrix)
        seen = set()
        for rows, cols, _ in batches[:2]:
            for r, c in list(zip(rows.tolist(), cols.tolist()))[:10]:
                if (r, c) in seen:
                    continue
                seen.add((r, c))
                assert sharded.get(r, c) == flat.get(r, c)
        assert sharded.reduce_rowwise("plus").isequal(flat_matrix.reduce_rowwise("plus"))
        assert sharded.reduce_columnwise("plus").isequal(
            flat_matrix.reduce_columnwise("plus")
        )
        inc = sharded.incremental
        if inc.supported and inc.fan_supported:
            assert inc.nnz() == flat_matrix.nvals
            assert inc.total() == pytest.approx(float(flat_matrix.reduce_scalar("plus")))
            assert inc.row_traffic().isequal(flat_matrix.reduce_rowwise("plus"))
            assert inc.col_traffic().isequal(flat_matrix.reduce_columnwise("plus"))
        return migrations


class TestConformanceBattery:
    """The hypothesis-driven battery, one process-spawning config per example."""

    @mode_param()
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        batches=batches_strategy(),
        nshards=st.integers(1, 4),
        partition=st.sampled_from(["hash", "range"]),
        engine=st.sampled_from(["packed", "lexsort"]),
    )
    def test_bit_identical_to_flat(self, mode, batches, nshards, partition, engine):
        with engine_context(engine):
            run_battery(mode, batches, nshards=nshards, partition=partition)


class TestConformanceGrid:
    """A deterministic pinned grid on top of the randomized battery."""

    @mode_param()
    @pytest.mark.parametrize("partition", ["hash", "range"])
    @pytest.mark.parametrize("engine", ["packed", "lexsort"])
    def test_fixed_stream_all_partitions_and_engines(self, mode, partition, engine):
        rng = np.random.default_rng(1234)
        batches = [
            (
                rng.integers(0, 2 ** 18, 400, dtype=np.uint64),
                rng.integers(0, 2 ** 18, 400, dtype=np.uint64),
                rng.integers(1, 8, 400).astype(np.float64),
            )
            for _ in range(5)
        ]
        with engine_context(engine):
            run_battery(mode, batches, nshards=3, partition=partition)

    @mode_param()
    def test_single_shard_degenerate(self, mode):
        rng = np.random.default_rng(7)
        batches = [
            (
                rng.integers(0, 256, 50, dtype=np.uint64),
                rng.integers(0, 256, 50, dtype=np.uint64),
                rng.integers(1, 5, 50).astype(np.float64),
            )
        ]
        run_battery(mode, batches, nshards=1, partition="hash")

    @mode_param()
    def test_scalar_broadcast_and_odd_batches(self, mode):
        """Scalar values, 1-element batches, and duplicate coordinates."""
        with ShardedHierarchicalMatrix(2, cuts=CUTS, **mode_kwargs(mode)) as sharded:
            sharded.update(5, 6)
            sharded.update([5, 5, 9], [6, 6, 1], 2.0)
            sharded.update(np.array([9]), np.array([1]), np.array([0.5]))
            assert sharded.get(5, 6) == 5.0
            assert sharded.get(9, 1) == 2.5
            assert sharded.materialize().nvals == 2

    @mode_param()
    def test_ipv6_shape_served_via_fallback(self, mode):
        """Full 64-bit shapes work in every mode (shm falls back to queue)."""
        rng = np.random.default_rng(11)
        batches = [
            (
                rng.integers(0, 2 ** 63, 60, dtype=np.uint64) * np.uint64(2),
                rng.integers(0, 2 ** 63, 60, dtype=np.uint64) * np.uint64(2),
                rng.integers(1, 5, 60).astype(np.float64),
            )
            for _ in range(2)
        ]
        run_battery(
            mode, batches, nshards=2, partition="hash", nrows=2 ** 64, ncols=2 ** 64
        )


class TestRebalanceConformance:
    """Live slab migration must never be observable in results (PR 5).

    A sharded matrix that rebalances mid-stream — any schedule, either
    partition, every transport — must stay bit-identical to the flat
    reference on materialize/get/reductions/incremental stats, because each
    coordinate still lands on exactly one shard in stream order (migration
    commands are barrier-ordered against in-flight batches, and the new map
    epoch is published only after a slab has fully moved).
    """

    @mode_param()
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        batches=batches_strategy(),
        nshards=st.integers(2, 4),
        partition=st.sampled_from(["hash", "range"]),
        engine=st.sampled_from(["packed", "lexsort"]),
        data=st.data(),
    )
    def test_bit_identical_across_random_rebalances(
        self, mode, batches, nshards, partition, engine, data
    ):
        rebalance_after = set(
            data.draw(
                st.lists(
                    st.integers(0, len(batches) - 1), min_size=1, max_size=3
                ),
                label="rebalance_after",
            )
        )
        with engine_context(engine):
            run_rebalance_battery(
                mode,
                batches,
                nshards=nshards,
                partition=partition,
                rebalance_after=rebalance_after,
            )

    @mode_param()
    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_pinned_multi_rebalance_stream(self, mode, partition):
        """Deterministic grid: several migrations over a busier stream."""
        rng = np.random.default_rng(4321)
        batches = [
            (
                rng.integers(0, 2 ** 18, 400, dtype=np.uint64),
                rng.integers(0, 2 ** 18, 400, dtype=np.uint64),
                rng.integers(1, 8, 400).astype(np.float64),
            )
            for _ in range(6)
        ]
        migrations = run_rebalance_battery(
            mode,
            batches,
            nshards=3,
            partition=partition,
            rebalance_after={1, 3, 4},
        )
        assert migrations >= 1

    def test_repeated_rebalance_converges_in_proc(self):
        """The auto policy drives a skewed range partition toward balance."""
        rng = np.random.default_rng(99)
        # Rows < 2**12 with a 2**32-square shape: the uniform range map puts
        # every key on shard 0 — the worst case the policy must fix.
        with ShardedHierarchicalMatrix(4, cuts=CUTS, partition="range") as sharded:
            for _ in range(5):
                sharded.update(
                    rng.integers(0, 2 ** 12, 500, dtype=np.uint64),
                    rng.integers(0, 2 ** 12, 500, dtype=np.uint64),
                    np.ones(500),
                )
            assert sharded.imbalance() == pytest.approx(4.0)
            for _ in range(8):
                if sharded.rebalance(threshold=1.3) is None:
                    break
            assert sharded.imbalance() < 2.0
            assert sharded.map_epoch >= 2

    def test_rebalance_noops(self):
        """Single shard, balanced loads under threshold, empty source."""
        with ShardedHierarchicalMatrix(1, cuts=CUTS) as single:
            single.update([1, 2], [3, 4], 1.0)
            assert single.rebalance() is None
        with ShardedHierarchicalMatrix(2, cuts=CUTS) as empty:
            assert empty.rebalance() is None
        with ShardedHierarchicalMatrix(2, cuts=CUTS, partition="hash") as sharded:
            rng = np.random.default_rng(1)
            sharded.update(
                rng.integers(0, 2 ** 20, 2_000, dtype=np.uint64),
                rng.integers(0, 2 ** 20, 2_000, dtype=np.uint64),
                np.ones(2_000),
            )
            # Hash-partitioned uniform keys are already near-even: a high
            # threshold must refuse to churn.
            assert sharded.rebalance(threshold=1.5) is None
            assert sharded.map_epoch == 0

    def test_traffic_policy_moves_weight_not_whole_shards(self):
        """Regression: by="traffic" targets are in traffic units, and the
        slab cut weighs entries by |value| in the same units — a heavily
        weighted shard must shed roughly half its excess, not its entire
        contents (which would ping-pong forever)."""
        with ShardedHierarchicalMatrix(2, cuts=CUTS, partition="range") as sharded:
            rows = np.arange(1_000, dtype=np.uint64)
            sharded.update(rows, rows, np.full(1_000, 1000.0))
            assert sharded.shard_loads("traffic") == [1_000_000.0, 0.0]
            report = sharded.rebalance(by="traffic")
            assert report is not None
            loads = sharded.shard_loads("traffic")
            # ~half the excess moved; both shards now hold real weight.
            assert 0 < loads[0] and 0 < loads[1]
            assert sharded._imbalance(loads) < 2.0
            # Converges rather than oscillating the full dataset.
            for _ in range(4):
                if sharded.rebalance(by="traffic", threshold=1.2) is None:
                    break
            assert sharded.imbalance("traffic") <= 1.2
            assert sharded.nvals == 1_000

    def test_extract_slab_picks_interval_by_weight(self):
        """Under the traffic policy the cut targets the *heaviest* owned
        interval, not the most crowded one: a few huge-value entries must
        outrank a crowd of light ones."""
        from repro.distributed.worker import ShardState

        state = ShardState(0, {"nrows": 2 ** 16, "ncols": 2 ** 16, "cuts": CUTS})
        light = np.arange(500, dtype=np.uint64)  # 500 entries, weight 1 each
        state.handle("ingest", (light, light, np.ones(500)))
        heavy = np.arange(40_000, 40_010, dtype=np.uint64)  # 10 entries, 1e6 each
        state.handle("ingest", (heavy, heavy, np.full(10, 1e6)))
        spec = state.spec
        key = lambda r: (int(r) << spec.col_bits) | int(r)
        intervals = [(0, key(20_000)), (key(20_000), 2 ** 16 << spec.col_bits)]
        reply = state.handle(
            "extract_slab",
            {
                "partition": "range",
                "intervals": intervals,
                "target": 5e6,
                "weight": "value",
            },
        )
        # The slab comes from the heavy interval and carries ~target weight.
        assert reply["lo"] >= key(20_000)
        assert 1 <= reply["count"] <= 10
        _, keys, bits = reply["slab"]
        assert keys.size == reply["count"]

    def test_manual_source_dest_and_validation(self):
        from repro.graphblas.errors import InvalidValue

        with ShardedHierarchicalMatrix(3, cuts=CUTS, partition="range") as sharded:
            rng = np.random.default_rng(2)
            sharded.update(
                rng.integers(0, 2 ** 16, 1_000, dtype=np.uint64),
                rng.integers(0, 2 ** 16, 1_000, dtype=np.uint64),
                np.ones(1_000),
            )
            report = sharded.rebalance(source=0, dest=2)
            assert report is not None and (report.source, report.dest) == (0, 2)
            assert sharded.partition_map.shard_intervals(2)
            with pytest.raises(InvalidValue):
                sharded.rebalance(source=1, dest=1)
            with pytest.raises(InvalidValue):
                sharded.rebalance(fraction=0.0)
            with pytest.raises(InvalidValue):
                sharded.shard_loads(by="vibes")


def run_replicated_fault_battery(
    mode,
    batches,
    *,
    nshards,
    partition,
    replicas,
    rebalance_after,
    kill_after,
    kill_step=None,
):
    """Replicated conformance: rebalances + injected primary kills, zero loss.

    Feeds ``batches`` with migrations attempted after the ``rebalance_after``
    indices, the acting primary of shard ``i % nshards`` SIGKILLed after each
    ``kill_after`` index, and (optionally) a one-shot primary kill armed to
    fire at the dispatch of migration step ``kill_step`` — a kill *during*
    the migration.  The matrix must end bit-identical to the flat reference
    with its full failure budget restored, and the test never calls
    ``resync_replicas()``: all repair is done by the migration's own budget
    check and by driving the :class:`~repro.service.AutoRejoiner` supervisor.
    """
    from repro.service import AutoRejoiner

    flat = flat_reference(batches)
    flat_matrix = flat.materialize()
    with ShardedHierarchicalMatrix(
        nshards,
        cuts=CUTS,
        partition=partition,
        replicas=replicas,
        **mode_kwargs(mode),
    ) as sharded:
        pool = sharded._pool
        rejoiner = AutoRejoiner(sharded, interval=1.0, clock=lambda: 0.0)
        epoch0 = sharded.map_epoch
        migrations = 0
        original_submit = pool.submit
        armed = {"step": kill_step}

        def killing_submit(worker, cmd, payload=None):
            if armed["step"] is not None and cmd == armed["step"]:
                armed["step"] = None
                slot = pool.primary_slot(worker)
                pool.processes[slot].kill()
                pool.processes[slot].join(timeout=10)
            original_submit(worker, cmd, payload)

        pool.submit = killing_submit
        try:
            for i, (rows, cols, vals) in enumerate(batches):
                sharded.update(rows, cols, vals)
                if i in kill_after:
                    victim = pool.primary_slot(i % nshards)
                    pool.processes[victim].kill()
                    pool.processes[victim].join(timeout=10)
                    # Surface the death (promote) and let the supervisor
                    # restore the budget before the stream continues, so
                    # every later fault again has a full mirror set to spend.
                    assert sharded.nvals >= 0
                    rejoiner.step(now=float(i))
                    assert sharded.missing_replicas() == 0
                if i in rebalance_after and sharded.nshards > 1:
                    report = sharded.rebalance()
                    if report is not None:
                        migrations += 1
        finally:
            pool.submit = original_submit
        # materialize first: it surfaces any still-undetected death, then the
        # supervisor's next step repairs whatever that failover spent.
        assert sharded.materialize().isequal(flat_matrix)
        rejoiner.step(now=float(len(batches)))
        assert sharded.missing_replicas() == 0
        assert sharded.map_epoch >= epoch0 + migrations
        assert sharded.nvals == flat_matrix.nvals
        assert sharded.reduce_rowwise("plus").isequal(flat_matrix.reduce_rowwise("plus"))
        assert sharded.reduce_columnwise("plus").isequal(
            flat_matrix.reduce_columnwise("plus")
        )
        return migrations


class TestReplicatedRebalanceConformance:
    """The rebalance conformance contract, re-proved at ``replicas=2``.

    Mirrored-mutation migrations (every ``extract_slab`` / ``install_slab``
    / ``discard_slab`` leg applied to primary *and* replicas, barrier-
    ordered) mean a replicated matrix under randomized mid-stream rebalance
    schedules — with primaries SIGKILLed between batches and even at the
    dispatch of each migration step — still ends bit-identical to the flat
    reference, with every shard holding its full mirror budget and no manual
    ``resync_replicas()`` anywhere.
    """

    #: Process-backed wires only: replication needs workers that can die.
    REPLICA_MODES = ["queue", "shm", "socket"]

    @pytest.mark.parametrize("mode", REPLICA_MODES)
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        batches=batches_strategy(),
        nshards=st.integers(2, 3),
        partition=st.sampled_from(["hash", "range"]),
        data=st.data(),
    )
    def test_bit_identical_with_replicas_and_kills(
        self, mode, batches, nshards, partition, data
    ):
        rebalance_after = set(
            data.draw(
                st.lists(st.integers(0, len(batches) - 1), min_size=1, max_size=2),
                label="rebalance_after",
            )
        )
        kill_after = set(
            data.draw(
                st.lists(st.integers(0, len(batches) - 1), max_size=2),
                label="kill_after",
            )
        )
        kill_step = data.draw(
            st.sampled_from([None, "extract_slab", "install_slab", "discard_slab"]),
            label="kill_step",
        )
        run_replicated_fault_battery(
            mode,
            batches,
            nshards=nshards,
            partition=partition,
            replicas=2,
            rebalance_after=rebalance_after,
            kill_after=kill_after,
            kill_step=kill_step,
        )

    @pytest.mark.parametrize("mode", REPLICA_MODES)
    @pytest.mark.parametrize(
        "kill_step", ["extract_slab", "install_slab", "discard_slab"]
    )
    def test_pinned_mid_step_kill_grid(self, mode, kill_step):
        """Deterministic grid: a busier skewed stream, a forced migration,
        and a primary killed at the dispatch of each migration step."""
        rng = np.random.default_rng(2718)
        batches = [
            (
                rng.integers(0, 2 ** 14, 400, dtype=np.uint64),
                rng.integers(0, 2 ** 14, 400, dtype=np.uint64),
                rng.integers(1, 8, 400).astype(np.float64),
            )
            for _ in range(5)
        ]
        migrations = run_replicated_fault_battery(
            mode,
            batches,
            nshards=2,
            partition="range",
            replicas=2,
            rebalance_after={2},
            kill_after={4},
            kill_step=kill_step,
        )
        assert migrations >= 1


class TestKeyOnlyFrames:
    """All-ones batches ship without value payloads, bit-identically."""

    @mode_param()
    def test_all_ones_streams_bit_identical(self, mode):
        """Scalar-1 defaults and all-ones arrays match the flat reference."""
        rng = np.random.default_rng(17)
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        with ShardedHierarchicalMatrix(2, cuts=CUTS, **mode_kwargs(mode)) as sharded:
            for i in range(3):
                rows = rng.integers(0, 2 ** 16, 200, dtype=np.uint64)
                cols = rng.integers(0, 2 ** 16, 200, dtype=np.uint64)
                for values in (1, np.ones(200), 2.5):
                    flat.update(rows, cols, values)
                    sharded.update(rows, cols, values)
            assert sharded.materialize().isequal(flat.materialize())

    @pytest.mark.skipif(not shm_supported(None), reason="shm unavailable")
    def test_ones_batches_take_the_key_only_wire(self):
        """The shm transport actually elides the value payload for ones."""
        rng = np.random.default_rng(23)
        rows = rng.integers(0, 2 ** 16, 100, dtype=np.uint64)
        cols = rng.integers(0, 2 ** 16, 100, dtype=np.uint64)
        with ShardedHierarchicalMatrix(
            1, cuts=CUTS, use_processes=True, transport="shm"
        ) as sharded:
            transport = sharded._pool._transport
            sharded.update(rows, cols)  # default scalar 1
            assert transport.key_only_batches == 1
            sharded.update(rows, cols, np.ones(100))  # all-ones array
            assert transport.key_only_batches == 2
            sharded.update(rows, cols, 2.0)  # not ones: full frame
            sharded.update(rows, cols, np.full(100, 3.0))
            assert transport.key_only_batches == 2
            assert sharded.get(int(rows[0]), int(cols[0])) is not None

    @pytest.mark.skipif(not shm_supported(None), reason="shm unavailable")
    def test_integer_dtype_ones_elide_too(self):
        """The ones test is dtype-aware: int64 shards elide exactly as fp64."""
        rows = np.arange(50, dtype=np.uint64)
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, "int64", cuts=CUTS)
        with ShardedHierarchicalMatrix(
            2, dtype="int64", cuts=CUTS, use_processes=True, transport="shm"
        ) as sharded:
            transport = sharded._pool._transport
            flat.update(rows, rows, 1)
            sharded.update(rows, rows, 1)
            flat.update(rows, rows, np.ones(50, dtype=np.int64))
            sharded.update(rows, rows, np.ones(50, dtype=np.int64))
            # 2 ones-updates x (however many of the 2 shards each batch hit)
            assert transport.key_only_batches >= 2
            assert sharded.materialize().isequal(flat.materialize())


class TestTransportSelection:
    def test_requested_transport_in_force(self):
        # On weakly-ordered ISAs (shm_supported False) a shm request runs on
        # the queue wire by design; the expectation follows the predicate.
        expected_shm = "shm" if shm_supported(None) else "queue"
        with ShardedHierarchicalMatrix(2, cuts=CUTS, use_processes=False) as s:
            assert s.transport == "inproc"
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, use_processes=True, transport="queue"
        ) as s:
            assert s.transport == "queue"
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, use_processes=True, transport="shm"
        ) as s:
            assert s.transport == expected_shm

    def test_shm_falls_back_to_queue_for_ipv6(self):
        with ShardedHierarchicalMatrix(
            2, 2 ** 64, 2 ** 64, cuts=CUTS, use_processes=True, transport="shm"
        ) as s:
            assert s.transport == "queue"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            ShardWorkerPool(1, use_processes=True, transport="carrier-pigeon")

    def test_socket_requires_nodes(self):
        with pytest.raises(ValueError):
            make_transport("socket", 1, {"cuts": CUTS})

    def test_socket_transport_in_force(self):
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, use_processes=True, transport="socket",
            nodes=_socket_nodes(),
        ) as s:
            assert s.transport == "socket"

    def test_shm_supported_predicate(self):
        assert shm_supported({"nrows": 2 ** 32, "ncols": 2 ** 32})
        assert shm_supported(None)
        assert not shm_supported({"nrows": 2 ** 64, "ncols": 2 ** 64})

    def test_make_transport_fallback_object(self):
        t = make_transport("shm", 1, {"nrows": 2 ** 64, "ncols": 2 ** 64})
        try:
            assert t.name == "queue"
        finally:
            t.close()


def _pool_kwargs(transport):
    """ShardWorkerPool kwargs per wire (socket needs the agent endpoints)."""
    kwargs = {"use_processes": True, "transport": transport}
    if transport == "socket":
        kwargs["nodes"] = _socket_nodes()
    return kwargs


class TestBarrierSemantics:
    """A reply-bearing command is a barrier for every earlier ingest."""

    @pytest.mark.parametrize("transport", ["queue", "shm", "socket"])
    def test_reads_observe_all_prior_batches(self, transport):
        with ShardWorkerPool(
            1,
            matrix_kwargs={"cuts": CUTS},
            **_pool_kwargs(transport),
        ) as pool:
            total = 0
            for b in range(20):
                rows = np.arange(b * 50, b * 50 + 50, dtype=np.uint64)
                pool.submit(0, "ingest", (rows, rows, np.ones(50)))
                total += 50
            stats = pool.request(0, "stats")
            assert stats["updates"] == total
            assert pool.request(0, "finalize")["total_updates"] == total

    @pytest.mark.parametrize("transport", ["queue", "shm", "socket"])
    def test_clear_then_reingest(self, transport):
        with ShardWorkerPool(
            1,
            matrix_kwargs={"cuts": CUTS},
            **_pool_kwargs(transport),
        ) as pool:
            rows = np.arange(10, dtype=np.uint64)
            pool.submit(0, "ingest", (rows, rows, np.ones(10)))
            assert pool.request(0, "clear") is True
            pool.submit(0, "ingest", (rows, rows, np.full(10, 2.0)))
            assert pool.request(0, "get", (3, 3)) == 2.0

    @pytest.mark.parametrize("transport", ["queue", "shm", "socket"])
    def test_control_interleaved_with_ingest_preserves_fifo(self, transport):
        """Commands submitted *between* batches must not see later batches.

        Regression test: submit ingest A, then ``clear``, then ingest B —
        all fire-and-forget, no reply collected in between.  A wire that
        drains eagerly would apply both A and B before the clear and lose B;
        strict per-worker FIFO keeps exactly B.
        """
        with ShardWorkerPool(
            1,
            matrix_kwargs={"cuts": CUTS},
            **_pool_kwargs(transport),
        ) as pool:
            rows = np.arange(10, dtype=np.uint64)
            pool.submit(0, "ingest", (rows, rows, np.ones(10)))
            pool.submit(0, "clear")
            pool.submit(0, "ingest", (rows, rows, np.full(10, 2.0)))
            pool.submit(0, "get", (3, 3))
            pool.submit(0, "stats")
            assert pool.collect(0) is True  # clear: saw A, not B
            assert pool.collect(0) == 2.0  # get: exactly batch B survived
            assert pool.collect(0)["updates"] == 10  # stats: B only

    @pytest.mark.parametrize("transport", ["queue", "shm", "socket"])
    def test_many_interleaved_controls_stay_ordered(self, transport):
        """A stats burst between every batch observes exact running counts."""
        with ShardWorkerPool(
            1,
            matrix_kwargs={"cuts": CUTS},
            **_pool_kwargs(transport),
        ) as pool:
            for b in range(8):
                rows = np.arange(b * 20, b * 20 + 20, dtype=np.uint64)
                pool.submit(0, "ingest", (rows, rows, np.ones(20)))
                pool.submit(0, "stats")
            counts = [pool.collect(0)["updates"] for _ in range(8)]
            assert counts == [20 * (b + 1) for b in range(8)]


class TestValueCodec:
    @pytest.mark.parametrize(
        "np_type",
        [np.float64, np.float32, np.int64, np.uint64, np.int32, np.uint8, np.bool_],
    )
    def test_roundtrip_is_bit_exact(self, np_type):
        codec = ValueCodec(np_type)
        rng = np.random.default_rng(3)
        if np.dtype(np_type) == np.bool_:
            values = rng.integers(0, 2, 64).astype(np.bool_)
        elif np.issubdtype(np_type, np.integer):
            info = np.iinfo(np_type)
            values = rng.integers(info.min, info.max, 64, dtype=np.int64 if info.min < 0 else np.uint64).astype(np_type)
        else:
            values = rng.normal(scale=1e6, size=64).astype(np_type)
        decoded = codec.decode(codec.encode(values, values.size))
        assert decoded.dtype == np.dtype(np_type)
        assert np.array_equal(decoded, values)

    def test_float64_bit_patterns_survive(self):
        codec = ValueCodec(np.float64)
        tricky = np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 2 ** -1074, 1e308])
        decoded = codec.decode(codec.encode(tricky, tricky.size))
        assert np.array_equal(
            decoded.view(np.uint64), tricky.view(np.uint64)
        ), "NaN payloads and signed zeros must cross bit-exactly"

    def test_float32_signalling_nan_not_quieted(self):
        """Narrow floats cross as raw bytes: widening through float64 would
        set the quiet bit on a signalling NaN and break queue/shm parity."""
        codec = ValueCodec(np.float32)
        patterns = np.array(
            [0x7F800001, 0xFF800001, 0x7FC00000, 0x80000000], dtype=np.uint32
        )  # sNaN, -sNaN, qNaN, -0.0
        tricky = patterns.view(np.float32)
        decoded = codec.decode(codec.encode(tricky, tricky.size))
        assert np.array_equal(decoded.view(np.uint32), patterns)

    def test_scalar_broadcast_matches_update_semantics(self):
        codec = ValueCodec(np.float32)
        decoded = codec.decode(codec.encode(1.5, 4))
        assert np.array_equal(decoded, np.full(4, 1.5, dtype=np.float32))

    def test_wide_types_rejected(self):
        with pytest.raises(ValueError):
            ValueCodec(np.complex128)
