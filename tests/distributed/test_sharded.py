"""Tests for the sharded streaming engine and the PR-2 measurement bugfixes.

Covers the four regression fixes (remainder batch, timed final flush, scalar
hierarchical update, extract with duplicate selections) plus the
sharded-equivalence property suite: a :class:`ShardedHierarchicalMatrix` fed a
random stream must materialize/get/reduce bit-identically to a single flat
:class:`HierarchicalMatrix` fed the same stream, across shard counts,
partition strategies, and both coordinate engines.
"""

import time

import numpy as np
import pytest

from repro.core import HierarchicalMatrix
from repro.distributed import (
    ParallelIngestEngine,
    ShardRouter,
    ShardWorkerPool,
    ShardedHierarchicalMatrix,
    WorkerCrash,
    ingest_worker,
    stream_powerlaw,
)
from repro.graphblas import Matrix, coords
from repro.workloads import synthetic_packets

CUTS = [500, 5_000]


def random_stream(seed, nbatches=8, batch=400, space=2 ** 18):
    """Random integer-valued batches with plenty of duplicate coordinates.

    Values are small integers (exact in fp64), so any grouping of the
    additions yields bit-identical sums and the sharded-vs-flat comparison is
    exact rather than tolerance-based.
    """
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(nbatches):
        rows = rng.integers(0, space, batch, dtype=np.uint64)
        cols = rng.integers(0, space, batch, dtype=np.uint64)
        vals = rng.integers(1, 8, batch).astype(np.float64)
        out.append((rows, cols, vals))
    return out


# --------------------------------------------------------------------------- #
# satellite regression tests
# --------------------------------------------------------------------------- #


class TestRemainderBatchFix:
    def test_remainder_batch_streams_exactly(self):
        """25k updates at batch 10k used to stream only 20k."""
        report = ingest_worker(0, 25_000, 10_000, CUTS, seed=1)
        assert report.total_updates == 25_000

    def test_small_request_not_rounded_up(self):
        """total < batch_size used to stream a full batch *more* than asked."""
        report = ingest_worker(0, 3_000, 10_000, CUTS, seed=1)
        assert report.total_updates == 3_000

    def test_exact_multiple_unchanged(self):
        report = ingest_worker(0, 20_000, 5_000, CUTS, seed=1)
        assert report.total_updates == 20_000


class TestTimedFinalFlushFix:
    def test_final_flush_inside_timed_section(self, monkeypatch):
        """The deferred layer-1 flush must be paid by the measured elapsed time."""
        original_wait = HierarchicalMatrix.wait

        def slow_wait(self):
            result = original_wait(self)
            time.sleep(0.05)  # detectable only if wait() runs inside the timer
            return result

        monkeypatch.setattr(HierarchicalMatrix, "wait", slow_wait)
        matrix = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=[10 ** 9])
        done, elapsed = stream_powerlaw(matrix, 0, 2_000, 1_000, seed=3)
        assert done == 2_000
        assert elapsed >= 0.05

    def test_no_pending_left_after_measured_stream(self):
        """With huge cuts everything stays pending unless the flush is forced."""
        matrix = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=[10 ** 9])
        stream_powerlaw(matrix, 0, 5_000, 1_000, seed=3)
        assert not matrix.layers[0].has_pending

    def test_hierarchical_wait_is_noop_when_eager(self):
        matrix = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS, defer_ingest=False)
        matrix.update([1, 2], [3, 4], [1.0, 1.0])
        assert matrix.wait() is matrix
        assert matrix.get(1, 3) == 1.0

    def test_wait_triggers_cascade_when_over_cut(self):
        matrix = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=[4, 1000])
        rows = np.arange(10, dtype=np.uint64)
        matrix.update(rows, rows + 1, np.ones(10))
        matrix.wait()
        assert matrix.layer_nvals[0] <= 4
        assert matrix.nvals == 10


class TestScalarUpdateFix:
    def test_scalar_coordinates(self):
        """H.update(5, 6) used to raise TypeError in batch-size counting."""
        H = HierarchicalMatrix(cuts=[4, 16])
        H.update(5, 6)
        assert H.get(5, 6) == 1.0

    def test_scalar_with_value_accumulates(self):
        H = HierarchicalMatrix(cuts=[4, 16])
        H.update(5, 6, 2.0)
        H.update(5, 6, 3.0)
        assert H.get(5, 6) == 5.0

    def test_zero_d_arrays(self):
        H = HierarchicalMatrix(cuts=[4, 16])
        H.update(np.uint64(7), np.uint64(8), np.float64(1.5))
        assert H.get(7, 8) == 1.5

    def test_stats_count_scalar_as_one(self):
        H = HierarchicalMatrix(cuts=[4, 16])
        H.update(1, 2)
        H.update([3, 4], [5, 6])
        assert H.stats.total_updates == 3


class TestExtractDuplicateIndicesFix:
    @pytest.fixture()
    def dense(self):
        return np.arange(1.0, 13.0).reshape(3, 4)

    @pytest.fixture()
    def matrix(self, dense):
        return Matrix.from_dense(dense)

    def test_duplicate_row_selection_replicates(self, matrix):
        """M.extract([1, 1], [1]) must have 2 entries (GraphBLAS semantics)."""
        sub = matrix.extract([1, 1], [1])
        assert sub.nvals == 2
        assert sub[0, 0] == sub[1, 0] == matrix[1, 1]

    @pytest.mark.parametrize(
        "rsel,csel",
        [
            ([1, 1], [1]),
            ([0, 2, 0], [3, 1]),
            ([2, 2, 2], [0, 0]),
            ([0, 1], [1, 2]),
            ([1], [2]),
        ],
    )
    def test_matches_dense_fancy_indexing(self, matrix, dense, rsel, csel):
        sub = matrix.extract(rsel, csel)
        assert np.array_equal(sub.to_dense(), dense[np.ix_(rsel, csel)])

    def test_duplicate_rows_all_columns(self, matrix, dense):
        sub = matrix.extract([1, 1])
        assert sub.nvals == 8
        assert np.array_equal(sub.to_dense(), dense[[1, 1], :])

    def test_reindex_false_keeps_set_semantics(self, matrix):
        """Original coordinates are preserved, so duplicates cannot replicate."""
        sub = matrix.extract([1, 1], [1], reindex=False)
        assert sub.nvals == 1


# --------------------------------------------------------------------------- #
# shard routing
# --------------------------------------------------------------------------- #


class TestShardRouter:
    def test_routing_is_deterministic(self):
        router = ShardRouter(4, nrows=2 ** 32, ncols=2 ** 32)
        rows = np.arange(1000, dtype=np.uint64) * 977
        cols = np.arange(1000, dtype=np.uint64) * 131
        assert np.array_equal(router.shard_of(rows, cols), router.shard_of(rows, cols))

    def test_routing_independent_of_packing_toggle(self):
        router = ShardRouter(3, nrows=2 ** 32, ncols=2 ** 32)
        rng = np.random.default_rng(5)
        rows = rng.integers(0, 2 ** 32, 500, dtype=np.uint64)
        cols = rng.integers(0, 2 ** 32, 500, dtype=np.uint64)
        packed = router.shard_of(rows, cols)
        with coords.packing_disabled():
            fallback = router.shard_of(rows, cols)
        assert np.array_equal(packed, fallback)

    def test_hash_partition_balances(self):
        router = ShardRouter(4, nrows=2 ** 32, ncols=2 ** 32, partition="hash")
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 2 ** 32, 8_000, dtype=np.uint64)
        cols = rng.integers(0, 2 ** 32, 8_000, dtype=np.uint64)
        counts = np.bincount(router.shard_of(rows, cols), minlength=4)
        assert counts.min() > 0.5 * counts.mean()

    def test_range_partition_is_contiguous_in_rows(self):
        """Uniform rows land in contiguous, ordered slabs."""
        router = ShardRouter(4, nrows=2 ** 32, ncols=2 ** 32, partition="range")
        rows = np.linspace(0, 2 ** 32 - 1, 10_000).astype(np.uint64)
        cols = np.zeros(10_000, dtype=np.uint64)
        shard = router.shard_of(rows, cols)
        assert np.all(np.diff(shard) >= 0)
        assert set(np.unique(shard)) == {0, 1, 2, 3}

    def test_single_shard_always_zero(self):
        router = ShardRouter(1)
        rows = np.arange(10, dtype=np.uint64)
        assert not router.shard_of(rows, rows).any()

    def test_ipv6_shape_falls_back(self):
        """Full 64-bit shapes have no packed split but still route."""
        router = ShardRouter(2, nrows=2 ** 64, ncols=2 ** 64)
        assert router.spec is None
        rows = np.array([0, 2 ** 63, 2 ** 64 - 1], dtype=np.uint64)
        shard = router.shard_of(rows, rows)
        assert shard.shape == (3,) and set(shard) <= {0, 1}

    def test_range_partition_unpackable_shape_uses_all_shards(self):
        """A 2^33 x 2^33 shape (no 64-bit split) must still slab its rows
        across every shard, not degenerate to shard 0."""
        router = ShardRouter(4, nrows=2 ** 33, ncols=2 ** 33, partition="range")
        assert router.spec is None
        rows = np.linspace(0, 2 ** 33 - 1, 10_000).astype(np.uint64)
        cols = np.zeros(10_000, dtype=np.uint64)
        shard = router.shard_of(rows, cols)
        assert set(np.unique(shard)) == {0, 1, 2, 3}
        assert np.all(np.diff(shard) >= 0)

    def test_invalid_arguments(self):
        from repro.graphblas.errors import InvalidValue

        with pytest.raises(InvalidValue):
            ShardRouter(0)
        with pytest.raises(InvalidValue):
            ShardRouter(2, partition="modulo")


# --------------------------------------------------------------------------- #
# sharded-vs-flat equivalence
# --------------------------------------------------------------------------- #


def flat_from_batches(batches, cuts=CUTS):
    flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=list(cuts))
    for rows, cols, vals in batches:
        flat.update(rows, cols, vals)
    return flat


class TestShardedEquivalence:
    @pytest.mark.parametrize("nshards", [2, 3, 5])
    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_materialize_bit_identical(self, nshards, partition):
        batches = random_stream(seed=nshards * 10 + len(partition))
        flat = flat_from_batches(batches)
        with ShardedHierarchicalMatrix(
            nshards, cuts=CUTS, partition=partition
        ) as sharded:
            for rows, cols, vals in batches:
                sharded.update(rows, cols, vals)
            assert sharded.materialize().isequal(flat.materialize())

    @pytest.mark.parametrize("nshards", [2, 4])
    def test_materialize_bit_identical_lexsort_engine(self, nshards):
        """The equivalence must hold on the fallback coordinate engine too."""
        with coords.packing_disabled():
            batches = random_stream(seed=77)
            flat = flat_from_batches(batches)
            with ShardedHierarchicalMatrix(nshards, cuts=CUTS) as sharded:
                for rows, cols, vals in batches:
                    sharded.update(rows, cols, vals)
                assert sharded.materialize().isequal(flat.materialize())

    def test_get_matches_flat(self):
        batches = random_stream(seed=21)
        flat = flat_from_batches(batches)
        with ShardedHierarchicalMatrix(3, cuts=CUTS) as sharded:
            for rows, cols, vals in batches:
                sharded.update(rows, cols, vals)
            rows0, cols0, _ = batches[0]
            for i in range(0, 50):
                r, c = int(rows0[i]), int(cols0[i])
                assert sharded.get(r, c) == flat.get(r, c)
            assert sharded.get(2 ** 31 + 1, 2 ** 31 + 5, default=-1.0) == -1.0

    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_reductions_match_flat(self, partition):
        batches = random_stream(seed=31)
        flat_matrix = flat_from_batches(batches).materialize()
        with ShardedHierarchicalMatrix(3, cuts=CUTS, partition=partition) as sharded:
            for rows, cols, vals in batches:
                sharded.update(rows, cols, vals)
            assert sharded.reduce_rowwise("plus").isequal(
                flat_matrix.reduce_rowwise("plus")
            )
            assert sharded.reduce_columnwise("plus").isequal(
                flat_matrix.reduce_columnwise("plus")
            )
            assert sharded.reduce_rowwise("max").isequal(
                flat_matrix.reduce_rowwise("max")
            )

    def test_scalar_and_tuple_updates(self):
        with ShardedHierarchicalMatrix(2, cuts=CUTS) as sharded:
            sharded.update(5, 6)
            sharded.update(5, 6, 2.0)
            assert sharded.get(5, 6) == 3.0
            assert sharded[5, 6] == 3.0
            assert (5, 6) in sharded

    def test_packet_stream_ingest(self):
        """External traffic streams shard via the shared batch protocol."""
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for batch in synthetic_packets(2_000, 3, seed=9):
            flat.update(batch.sources, batch.destinations, 1.0)
        with ShardedHierarchicalMatrix(4, cuts=CUTS) as sharded:
            n = sharded.ingest(synthetic_packets(2_000, 3, seed=9))
            assert n == 6_000
            assert sharded.total_updates == 6_000
            assert sharded.batches_ingested == 3
            assert sharded.materialize().isequal(flat.materialize())

    def test_process_backed_shards(self):
        """The same equivalence through real worker processes and queues."""
        batches = random_stream(seed=55, nbatches=4)
        flat = flat_from_batches(batches)
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, use_processes=True
        ) as sharded:
            for rows, cols, vals in batches:
                sharded.update(rows, cols, vals)
            stats = sharded.finalize()
            assert sum(s["total_updates"] for s in stats) == 4 * 400
            assert sharded.materialize().isequal(flat.materialize())
            rows0, cols0, _ = batches[0]
            assert sharded.get(int(rows0[0]), int(cols0[0])) == flat.get(
                int(rows0[0]), int(cols0[0])
            )

    def test_clear_resets(self):
        with ShardedHierarchicalMatrix(2, cuts=CUTS) as sharded:
            sharded.update([1, 2], [3, 4], [1.0, 1.0])
            sharded.clear()
            assert sharded.total_updates == 0
            assert sharded.materialize().nvals == 0

    def test_reports_and_rates(self):
        with ShardedHierarchicalMatrix(2, cuts=CUTS) as sharded:
            batches = random_stream(seed=3, nbatches=3)
            for rows, cols, vals in batches:
                sharded.update(rows, cols, vals)
            sharded.finalize()
            reports = sharded.reports()
            assert len(reports) == 2
            assert sum(r.total_updates for r in reports) == 3 * 400
            assert all(r.updates_per_second > 0 for r in reports)
            assert sharded.aggregate_rate_sum > 0

    def test_dimension_mismatch_raises(self):
        from repro.graphblas.errors import DimensionMismatch

        with ShardedHierarchicalMatrix(2, cuts=CUTS) as sharded:
            with pytest.raises(DimensionMismatch):
                sharded.update([1, 2], [3])
            with pytest.raises(DimensionMismatch):
                sharded.update([1, 2], [3, 4], [1.0])


# --------------------------------------------------------------------------- #
# worker pool protocol
# --------------------------------------------------------------------------- #


class TestShardWorkerPool:
    def test_worker_crash_surfaces_in_parent(self):
        with ShardWorkerPool(
            1, matrix_kwargs={"cuts": CUTS}, use_processes=True
        ) as pool:
            with pytest.raises(WorkerCrash):
                pool.request(0, "reduce", ("bogus-axis", "not-an-op"))
            # The worker survives the crash and keeps serving.
            assert pool.request(0, "get", (1, 2)) is None

    def test_inprocess_errors_raise_immediately(self):
        with ShardWorkerPool(
            1, matrix_kwargs={"cuts": CUTS}, use_processes=False
        ) as pool:
            with pytest.raises(Exception):
                pool.request(0, "no-such-command", None)

    def test_selfgen_remainder_through_pool(self):
        """The pool's self-generated source uses the fixed exact-count loop."""
        with ShardWorkerPool(
            1, matrix_kwargs={"cuts": CUTS}, use_processes=False
        ) as pool:
            report = pool.request(
                0, "selfgen", {"total_updates": 7_500, "batch_size": 2_000, "seed": 2}
            )
            assert report.total_updates == 7_500
            assert report.updates_per_second > 0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ShardWorkerPool(0)


class TestEngineOnPool:
    def test_engine_total_updates_includes_remainder(self):
        engine = ParallelIngestEngine(nworkers=2, cuts=CUTS, use_processes=False)
        result = engine.run(updates_per_worker=2_500, batch_size=1_000)
        assert result.total_updates == 5_000
        assert all(w.total_updates == 2_500 for w in result.workers)
