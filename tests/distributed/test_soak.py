"""Soak test: long randomized op interleaving over the zero-pickle wires.

Marked ``slow``: a single long scenario rather than a property battery.  A
process-backed sharded matrix on the shared-memory wire — and, since PR 7,
on the socket wire through local :class:`~repro.distributed.NodeAgent`
endpoints — absorbs a randomized interleaving of ``ingest`` / ``stats`` /
``materialize`` / ``reduce_incremental`` / ``finalize`` / point reads, and
after *every* read the incrementally maintained tracker statistics must
agree bit-for-bit with the materialize path and with a flat reference fed
the same stream — i.e. the packed-key wire never drops, duplicates,
reorders-across-a-barrier, or corrupts a batch no matter how reads and
writes interleave with the transport's backpressure.

Deselect with ``-m "not slow"`` when iterating locally.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest

from repro.core import HierarchicalMatrix
from repro.distributed import (
    ShardedHierarchicalMatrix,
    shm_supported,
    spawn_local_agents,
)

pytestmark = pytest.mark.slow

CUTS = [300, 3_000]
NSHARDS = 3
OPS = 120
MAX_BATCH = 400

#: The wires under soak.  shm additionally needs the host to support
#: shared-memory rings; socket runs everywhere a loopback TCP stack exists.
WIRES = [
    pytest.param(
        "shm",
        marks=pytest.mark.skipif(
            not shm_supported(None),
            reason="shm transport unavailable on this host",
        ),
    ),
    pytest.param("socket"),
]


@contextlib.contextmanager
def _soak_matrix(wire, partition):
    kwargs = {"use_processes": True, "transport": wire}
    if wire == "shm":
        # Small rings so the soak exercises backpressure.
        kwargs["ring_slots"] = 1 << 10
    with contextlib.ExitStack() as stack:
        if wire == "socket":
            addresses, _procs = stack.enter_context(spawn_local_agents(2))
            kwargs["nodes"] = addresses
        sharded = stack.enter_context(
            ShardedHierarchicalMatrix(
                NSHARDS, cuts=CUTS, partition=partition, **kwargs
            )
        )
        assert sharded.transport == wire
        yield sharded


@pytest.mark.parametrize("wire", WIRES)
@pytest.mark.parametrize("partition", ["hash", "range"])
def test_soak_interleaved_ops_stay_bit_identical(wire, partition):
    rng = np.random.default_rng(2024)
    flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
    total = 0
    with _soak_matrix(wire, partition) as sharded:
        for step in range(OPS):
            op = rng.choice(
                ["ingest", "ingest", "ingest", "stats", "materialize", "reduce", "get"]
            )
            if op == "ingest":
                n = int(rng.integers(1, MAX_BATCH))
                rows = rng.integers(0, 2 ** 20, n, dtype=np.uint64)
                cols = rng.integers(0, 2 ** 20, n, dtype=np.uint64)
                vals = rng.integers(1, 10, n).astype(np.float64)
                sharded.update(rows, cols, vals)
                flat.update(rows, cols, vals)
                total += n
            elif op == "stats":
                inc = sharded.incremental
                assert inc.supported and inc.fan_supported
                merged = sharded.materialize()
                assert inc.nnz() == merged.nvals, f"step {step}"
                assert inc.total() == float(merged.reduce_scalar("plus")), f"step {step}"
            elif op == "materialize":
                assert sharded.materialize().isequal(flat.materialize()), f"step {step}"
            elif op == "reduce":
                assert sharded.incremental.row_traffic().isequal(
                    flat.materialize().reduce_rowwise("plus")
                ), f"step {step}"
                assert sharded.reduce_columnwise("plus").isequal(
                    flat.materialize().reduce_columnwise("plus")
                ), f"step {step}"
            else:  # get
                r = int(rng.integers(0, 2 ** 20))
                c = int(rng.integers(0, 2 ** 20))
                assert sharded.get(r, c, default=None) == flat.get(r, c, None)
        # Final barrier and full agreement after the storm.
        reports = sharded.finalize()
        assert sum(s["total_updates"] for s in reports) == total
        assert sharded.materialize().isequal(flat.materialize())
        assert sharded.incremental.nnz() == flat.materialize().nvals


# --------------------------------------------------------------------------- #
# Gateway soak: many concurrent clients through the full service stack
# --------------------------------------------------------------------------- #

NCLIENTS = 32
BATCHES_PER_CLIENT = 16


def _gateway_client_batches(seed):
    """One client's randomized stream: skewed rows (to force migrations),
    mixed batch sizes, integer-valued floats (exact under regrouped plus)."""
    rng = np.random.default_rng(seed)
    for _ in range(BATCHES_PER_CLIENT):
        n = int(rng.integers(1, MAX_BATCH))
        # Rows concentrated in the first range shard; the auto-rebalancer
        # must migrate slabs off it while all 32 clients keep streaming.
        rows = rng.integers(0, 2 ** 12, n, dtype=np.uint64)
        cols = rng.integers(0, 2 ** 20, n, dtype=np.uint64)
        vals = rng.integers(1, 10, n).astype(np.float64)
        yield rows, cols, vals


def test_gateway_soak_concurrent_clients_bit_identical():
    """The acceptance scenario: ≥32 concurrent clients through real
    socket-backed shards, snapshot reads and auto-rebalances interleaved
    mid-stream, and the final state bit-identical to a flat reference fed
    the merged stream."""
    import threading

    from repro.service import AutoRebalancer, GatewayClient, IngestGateway

    failures = []
    with contextlib.ExitStack() as stack:
        addresses, _procs = stack.enter_context(spawn_local_agents(2))
        sharded = stack.enter_context(
            ShardedHierarchicalMatrix(
                NSHARDS, cuts=CUTS, partition="range",
                use_processes=True, transport="socket", nodes=addresses,
            )
        )
        assert sharded.transport == "socket"
        policy = AutoRebalancer(
            sharded, trigger=1.2, interval=0.05, cooldown=0.05
        )
        gw = IngestGateway(
            sharded, coalesce_updates=2048, flush_interval=0.01,
            rebalancer=policy,
        )
        gw.start()
        stack.callback(gw.close)

        def run_client(seed):
            try:
                rng = np.random.default_rng(1000 + seed)
                with GatewayClient(gw.address, client_id=f"soak-{seed}") as client:
                    sent = 0
                    for rows, cols, vals in _gateway_client_batches(seed):
                        client.update(rows, cols, vals)
                        sent += rows.size
                        # Interleave snapshot reads with everyone's ingest:
                        # epoch-consistent answers, never an error or hang.
                        read = rng.choice(["none", "none", "stats", "nnz", "get", "sync"])
                        if read == "stats":
                            summary = client.stats()
                            assert summary["nnz"] >= 0
                        elif read == "nnz":
                            assert client.nnz() >= 0
                        elif read == "get":
                            client.get(int(rng.integers(0, 2 ** 12)), int(rng.integers(0, 2 ** 20)))
                        elif read == "sync":
                            assert client.sync()["acked"] <= sent
                    assert client.sync()["acked"] == sent == client.sent_updates
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append((seed, exc))

        threads = [
            threading.Thread(target=run_client, args=(seed,), name=f"soak-client-{seed}")
            for seed in range(NCLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not any(t.is_alive() for t in threads)
        assert failures == []

        # The skewed stream must have forced at least one live migration.
        assert sharded.map_epoch >= 1
        assert len(policy.events) >= 1

        # Flat reference fed the merged stream (order-independent under
        # plus with exactly representable values — see workloads.interleave).
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for seed in range(NCLIENTS):
            for rows, cols, vals in _gateway_client_batches(seed):
                flat.update(rows, cols, vals)
        gw.close()  # drain + stop before the final materialize
        assert sharded.materialize().isequal(flat.materialize())
        assert sharded.incremental.nnz() == flat.materialize().nvals
        metrics = gw.metrics()
        assert metrics["clients_total"] == NCLIENTS
        assert metrics["routed_updates"] == metrics["received_updates"]
