"""Node-agent unit tests: addresses, wire framing, handshake, worker handles.

The conformance and fault batteries already exercise the socket transport
end-to-end through :class:`~repro.distributed.ShardedHierarchicalMatrix`;
these tests pin the layers *underneath* — the ``host:port`` address helpers,
the length-prefixed frame codec, the agent's HELLO handshake as seen by a raw
client socket, the pid-based :class:`~repro.distributed.RemoteWorkerHandle`
surface the fault suite relies on, and the transport ``respawn`` contract
that replica resync depends on (a replacement worker must get *fresh*
channels, never the dead worker's half-read ones).
"""

from __future__ import annotations

import os
import pickle
import signal
import socket

import numpy as np
import pytest

from repro.core import HierarchicalMatrix
from repro.distributed import ShardWorkerPool, WorkerCrash, shm_supported
from repro.distributed.node import (
    F_CONTROL,
    F_DATA,
    F_HELLO,
    F_HELLO_ACK,
    F_REPLY,
    NodeAgent,
    RemoteWorkerHandle,
    format_address,
    parse_address,
    recv_frame,
    send_frame,
    send_pickled,
    spawn_local_agents,
)
from repro.distributed.partition import partition_keyspace
from repro.distributed.ringbuf import ValueCodec
from repro.distributed.worker import ShardState
from repro.graphblas import coords

from .conftest import deadline

CUTS = [300, 3_000]

#: Transports whose respawn contract is testable on this host.
RESPAWN_TRANSPORTS = ["queue"] + (["shm"] if shm_supported(None) else [])


class TestAddresses:
    def test_parse_string(self):
        assert parse_address("10.0.0.7:9100") == ("10.0.0.7", 9100)

    def test_parse_pair_normalises_types(self):
        assert parse_address(("localhost", np.int64(80))) == ("localhost", 80)

    def test_parse_keeps_colons_in_host(self):
        # rpartition: only the *last* colon separates the port.
        assert parse_address("::1:9000") == ("::1", 9000)

    @pytest.mark.parametrize("bad", ["nohost", "host:", ":123", "host:port"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_format_round_trips(self):
        assert format_address(("127.0.0.1", 6000)) == "127.0.0.1:6000"
        assert parse_address(format_address("a:1")) == ("a", 1)


class TestFraming:
    def test_frame_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, F_DATA, b"\x01\x02\x03")
            send_pickled(a, F_CONTROL, ("stats", None))
            assert recv_frame(b) == (F_DATA, bytearray(b"\x01\x02\x03"))
            ftype, payload = recv_frame(b)
            assert ftype == F_CONTROL
            assert pickle.loads(bytes(payload)) == ("stats", None)
        finally:
            a.close()
            b.close()

    def test_empty_payload_frame(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, F_HELLO_ACK, b"")
            assert recv_frame(b) == (F_HELLO_ACK, bytearray(b""))
        finally:
            a.close()
            b.close()

    def test_eof_at_boundary_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_returns_none(self):
        a, b = socket.socketpair()
        try:
            # Header promises 100 payload bytes; only 10 arrive before EOF.
            import struct

            a.sendall(struct.pack("<BQ", F_DATA, 100) + b"x" * 10)
            a.close()
            assert recv_frame(b) is None
        finally:
            b.close()


class TestNodeAgent:
    def test_binds_before_serving(self):
        agent = NodeAgent()
        try:
            host, port = agent.address
            assert host == "127.0.0.1" and port > 0
        finally:
            agent.close()

    def test_two_agents_get_distinct_ports(self):
        a, b = NodeAgent(), NodeAgent()
        try:
            assert a.port != b.port
        finally:
            a.close()
            b.close()

    def _connect(self, address):
        conn = socket.create_connection(address, timeout=10)
        conn.settimeout(10)
        return conn

    def test_hello_handshake_and_packed_ingest(self):
        """A raw client speaks the documented wire: HELLO -> ACK -> DATA ->
        CONTROL, with the control reply observing every prior ingest frame."""
        with spawn_local_agents(1) as (addresses, _procs):
            conn = self._connect(addresses[0])
            try:
                send_pickled(
                    conn, F_HELLO, {"slot": 0, "matrix_kwargs": {"cuts": CUTS}}
                )
                ftype, payload = recv_frame(conn)
                assert ftype == F_HELLO_ACK
                pid = pickle.loads(bytes(payload))["pid"]
                assert pid > 0 and RemoteWorkerHandle(pid).is_alive()

                n = 64
                rows = np.arange(n, dtype=np.uint64)
                cols = rows + 7
                vals = np.linspace(1.0, 4.0, n)
                spec = coords.shape_split(2 ** 32, 2 ** 32)
                keys = coords.pack(rows, cols, spec)
                bits = ValueCodec(np.dtype(np.float64)).encode(vals, n)
                send_frame(conn, F_DATA, keys.tobytes() + bits.tobytes())
                send_pickled(conn, F_CONTROL, ("stats", None))
                with deadline(30):
                    ftype, payload = recv_frame(conn)
                assert ftype == F_REPLY
                status, stats = pickle.loads(bytes(payload))
                assert status == "ok"
                assert stats["updates"] == n
                assert stats["total"] == pytest.approx(vals.sum())

                # "stop" ends the worker loop: the connection reaches EOF.
                send_pickled(conn, F_CONTROL, ("stop", None))
                with deadline(30):
                    assert recv_frame(conn) is None
                RemoteWorkerHandle(pid).join(timeout=10)
                assert not RemoteWorkerHandle(pid).is_alive()
            finally:
                conn.close()

    def test_non_hello_first_frame_is_dropped(self):
        with spawn_local_agents(1) as (addresses, _procs):
            conn = self._connect(addresses[0])
            try:
                send_pickled(conn, F_CONTROL, ("stats", None))
                with deadline(30):
                    assert recv_frame(conn) is None
            finally:
                conn.close()


class TestRemoteWorkerHandle:
    def _spawned_worker_pid(self, address):
        conn = socket.create_connection(address, timeout=10)
        conn.settimeout(10)
        send_pickled(conn, F_HELLO, {"slot": 0, "matrix_kwargs": {"cuts": CUTS}})
        ftype, payload = recv_frame(conn)
        assert ftype == F_HELLO_ACK
        return conn, pickle.loads(bytes(payload))["pid"]

    def test_kill_is_observable(self):
        with spawn_local_agents(1) as (addresses, _procs):
            conn, pid = self._spawned_worker_pid(addresses[0])
            try:
                handle = RemoteWorkerHandle(pid)
                assert handle.is_alive()
                assert handle.exitcode is None
                handle.kill()
                handle.join(timeout=10)
                assert not handle.is_alive()
                assert handle.exitcode == -signal.SIGKILL
                # kill() on an already-dead pid must not raise.
                handle.kill()
                handle.terminate()
            finally:
                conn.close()

    def test_dead_pid_reads_dead(self):
        # Fork a child that exits immediately and reap it: its pid is gone.
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        assert not RemoteWorkerHandle(pid).is_alive()


class TestRespawnReplacesChannels:
    """Respawn after SIGKILL must hand the replacement *fresh* channels.

    A worker killed mid-read can leave a partial message in its old task
    pipe (which would hang the replacement's first read) and commands the
    dead worker never consumed would produce replies nobody is waiting for.
    This pins the contract replica resync depends on: after ``respawn`` the
    slot serves requests from a clean, empty state.
    """

    @pytest.mark.parametrize("transport", RESPAWN_TRANSPORTS)
    def test_slot_usable_after_respawn(self, transport):
        with ShardWorkerPool(
            1, matrix_kwargs={"cuts": CUTS}, use_processes=True, transport=transport
        ) as pool:
            rows = np.arange(200, dtype=np.uint64)
            pool.submit(0, "ingest", (rows, rows + 1, np.ones(200)))
            # Kill while a long command is mid-flight so the death lands
            # with the wire in the dirtiest reachable state.
            pool.submit(
                0, "selfgen", {"total_updates": 500_000, "batch_size": 10_000, "seed": 3}
            )
            pool.processes[0].kill()
            pool.processes[0].join(timeout=10)
            with deadline(30):
                with pytest.raises(WorkerCrash):
                    pool.collect(0)
            pool._transport.respawn(0)
            with deadline(30):
                stats = pool.request(0, "stats")
            assert stats["updates"] == 0
            # And the slot streams normally again.
            pool.submit(0, "ingest", (rows, rows + 1, np.ones(200)))
            with deadline(30):
                assert pool.request(0, "stats")["updates"] == 200


class TestMaterializeFreeSlabExtraction:
    """``extract_slab`` must never materialise the shard (PR-7 satellite).

    The slab is gathered per layer and combined at slab size; a full
    multi-layer merge of the shard would make every migration cost O(shard)
    regardless of slab size.  Patching ``materialize`` to raise proves the
    fast path is the only path.
    """

    def test_extract_slab_never_materialises(self, monkeypatch):
        state = ShardState(0, {"cuts": CUTS})
        rng = np.random.default_rng(7)
        for _ in range(4):
            rows = rng.integers(0, 2 ** 20, 500, dtype=np.uint64)
            cols = rng.integers(0, 2 ** 20, 500, dtype=np.uint64)
            state.handle("ingest", (rows, cols, np.ones(500)))
        ref_rows, ref_cols, ref_vals = state.matrix.materialize().extract_tuples()
        keyspace = partition_keyspace("hash", state.spec, state.matrix.nrows)

        def _boom(self):
            raise AssertionError("extract_slab materialised the shard")

        monkeypatch.setattr(HierarchicalMatrix, "materialize", _boom)
        result = state.handle(
            "extract_slab", {"partition": "hash", "lo": 0, "hi": keyspace}
        )
        assert result["count"] == ref_rows.size
        rows, cols, vals = state._decode_slab(result["slab"])
        order = np.lexsort((cols, rows))
        ref_order = np.lexsort((ref_cols, ref_rows))
        np.testing.assert_array_equal(rows[order], ref_rows[ref_order])
        np.testing.assert_array_equal(cols[order], ref_cols[ref_order])
        np.testing.assert_array_equal(vals[order], ref_vals[ref_order])

        # The target-driven cut (coordinator asks the worker to choose the
        # interval) takes the same materialise-free path.
        chosen = state.handle(
            "extract_slab",
            {
                "partition": "hash",
                "intervals": [(0, keyspace)],
                "target": ref_rows.size // 4,
            },
        )
        assert 0 < chosen["count"] <= ref_rows.size
