"""Unit and property tests for the epoch-versioned partition map (PR 5).

The map is the new ownership ground truth, so its invariants are pinned
directly: the epoch-0 uniform map reproduces the closed-form PR-2 routing,
``assign`` covers the keyspace with non-overlapping intervals at every epoch,
and :func:`repro.distributed.partition.partition_keys` — the function the
router *and* the workers share — is toggle-independent and consistent with
routing, which is what keeps slab membership and routing from ever
disagreeing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    PartitionMap,
    ShardRouter,
    partition_keys,
    partition_keyspace,
)
from repro.distributed.partition import interval_mask
from repro.graphblas import coords
from repro.graphblas.errors import InvalidValue


class TestPartitionMap:
    def test_uniform_map_matches_closed_form_chunks(self):
        keyspace = 1000
        m = PartitionMap.uniform(4, keyspace)
        chunk = -(-keyspace // 4)
        pkeys = np.arange(keyspace, dtype=np.uint64)
        expected = np.minimum(pkeys // np.uint64(chunk), 3).astype(np.int64)
        assert np.array_equal(m.owner_of(pkeys), expected)
        assert m.epoch == 0
        assert m.interval_count == 4

    def test_full_keyspace_is_representable(self):
        m = PartitionMap.uniform(3, 2 ** 64)
        top = np.array([0, 2 ** 63, 2 ** 64 - 1], dtype=np.uint64)
        owners = m.owner_of(top)
        assert owners[0] == 0 and owners[-1] == 2

    def test_assign_moves_exactly_the_interval(self):
        m = PartitionMap.uniform(2, 100)
        m2 = m.assign(10, 30, 1)
        assert m2.epoch == 1
        pkeys = np.arange(100, dtype=np.uint64)
        owners = m2.owner_of(pkeys)
        assert (owners[10:30] == 1).all()
        assert (owners[:10] == 0).all()
        assert (owners[30:50] == 0).all()
        assert (owners[50:] == 1).all()
        # The original map is untouched (maps are immutable).
        assert m.epoch == 0 and m.owner_of_point(15) == 0

    def test_assign_coalesces_adjacent_intervals(self):
        m = PartitionMap.uniform(2, 100)  # [0,50)->0, [50,100)->1
        m2 = m.assign(40, 50, 1)          # extends shard 1's slab leftward
        assert m2.interval_count == 2
        assert m2.shard_intervals(1) == [(40, 100)]
        m3 = m2.assign(0, 40, 1)          # everything owned by shard 1
        assert m3.interval_count == 1
        assert m3.shard_intervals(0) == []

    def test_assign_validates(self):
        m = PartitionMap.uniform(2, 100)
        with pytest.raises(InvalidValue):
            m.assign(30, 30, 1)
        with pytest.raises(InvalidValue):
            m.assign(0, 101, 1)
        with pytest.raises(InvalidValue):
            m.assign(0, 10, 2)

    def test_intervals_partition_the_keyspace(self):
        m = PartitionMap.uniform(3, 1000)
        for lo, hi, shard in ((0, 100, 2), (500, 900, 0), (250, 750, 1)):
            m = m.assign(lo, hi, shard)
        spans = m.intervals()
        assert spans[0][0] == 0 and spans[-1][1] == 1000
        for (_, hi_a, _), (lo_b, _, _) in zip(spans, spans[1:]):
            assert hi_a == lo_b

    @settings(max_examples=50, deadline=None)
    @given(
        nshards=st.integers(2, 6),
        moves=st.lists(
            st.tuples(st.integers(0, 999), st.integers(1, 1000), st.integers(0, 5)),
            max_size=8,
        ),
        probes=st.integers(1, 200),
    )
    def test_every_key_owned_by_exactly_one_shard(self, nshards, moves, probes):
        """Any assign sequence keeps the map a total function onto shards."""
        keyspace = 1000
        m = PartitionMap.uniform(nshards, keyspace)
        epoch = 0
        for lo, hi, shard in moves:
            if lo >= hi or shard >= nshards:
                continue
            m = m.assign(lo, hi, shard)
            epoch += 1
            assert m.epoch == epoch
        pkeys = np.linspace(0, keyspace - 1, probes).astype(np.uint64)
        owners = m.owner_of(pkeys)
        assert ((owners >= 0) & (owners < nshards)).all()
        # owner_of agrees with the interval listing.
        for lo, hi, shard in m.intervals():
            inside = pkeys[interval_mask(pkeys, lo, hi)]
            if inside.size:
                assert (m.owner_of(inside) == shard).all()


class TestPartitionKeys:
    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_toggle_independent(self, partition):
        spec = coords.shape_split(2 ** 32, 2 ** 32)
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 2 ** 32, 300, dtype=np.uint64)
        cols = rng.integers(0, 2 ** 32, 300, dtype=np.uint64)
        on = partition_keys(rows, cols, partition, spec)
        with coords.packing_disabled():
            off = partition_keys(rows, cols, partition, spec)
        assert np.array_equal(on, off)

    def test_precomputed_keys_shortcut_agrees(self):
        spec = coords.shape_split(2 ** 32, 2 ** 32)
        rng = np.random.default_rng(5)
        rows = rng.integers(0, 2 ** 32, 100, dtype=np.uint64)
        cols = rng.integers(0, 2 ** 32, 100, dtype=np.uint64)
        keys = coords.pack(rows, cols, spec)
        for partition in ("hash", "range"):
            assert np.array_equal(
                partition_keys(rows, cols, partition, spec, keys=keys),
                partition_keys(rows, cols, partition, spec),
            )

    def test_router_and_worker_agree_on_membership(self):
        """The core no-disagreement invariant: for every stored coordinate,
        the shard the router picks owns the partition key the worker would
        compute — across partitions and engines."""
        for partition in ("hash", "range"):
            router = ShardRouter(4, nrows=2 ** 32, ncols=2 ** 32, partition=partition)
            rng = np.random.default_rng(11)
            rows = rng.integers(0, 2 ** 20, 2_000, dtype=np.uint64)
            cols = rng.integers(0, 2 ** 20, 2_000, dtype=np.uint64)
            shard = router.shard_of(rows, cols)
            pkeys = partition_keys(rows, cols, partition, router.spec)
            assert np.array_equal(router.map.owner_of(pkeys), shard)
            # ...including after a migration.
            lo, hi = router.map.shard_intervals(int(shard[0]))[0]
            mid = lo + (hi - lo) // 2
            router.install(router.map.assign(mid, hi, (int(shard[0]) + 1) % 4))
            assert np.array_equal(
                router.map.owner_of(pkeys), router.shard_of(rows, cols)
            )

    def test_keyspace_domains(self):
        spec = coords.shape_split(2 ** 32, 2 ** 32)
        assert partition_keyspace("hash", spec, 2 ** 32) == 2 ** 64
        assert partition_keyspace("range", spec, 2 ** 32) == 2 ** 64
        small = coords.shape_split(2 ** 10, 2 ** 10)
        assert partition_keyspace("range", small, 2 ** 10) == 2 ** 10 << small.col_bits
        assert partition_keyspace("range", None, 2 ** 33) == 2 ** 33

    def test_interval_mask_full_keyspace_bound(self):
        pkeys = np.array([0, 1, 2 ** 63, 2 ** 64 - 1], dtype=np.uint64)
        assert interval_mask(pkeys, 0, 2 ** 64).all()
        assert np.array_equal(
            interval_mask(pkeys, 1, 2 ** 63), np.array([False, True, False, False])
        )


class TestRouterEpochs:
    def test_install_rejects_stale_or_mismatched_maps(self):
        router = ShardRouter(2, nrows=2 ** 32, ncols=2 ** 32, partition="range")
        with pytest.raises(InvalidValue):
            router.install(router.map)  # same epoch: stale
        with pytest.raises(InvalidValue):
            router.install(PartitionMap.uniform(3, router.keyspace))  # wrong shards
        fresh = router.map.assign(0, 100, 1)
        router.install(fresh)
        assert router.epoch == 1

    def test_epoch_zero_routing_unchanged_by_construction(self):
        """A router that never rebalances routes like the closed-form PR-2
        partition (the uniform map reproduces ceil-division slabs)."""
        router = ShardRouter(4, nrows=2 ** 32, ncols=2 ** 32, partition="range")
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 2 ** 32, 1_000, dtype=np.uint64)
        cols = rng.integers(0, 2 ** 32, 1_000, dtype=np.uint64)
        keys = coords.pack(rows, cols, router.spec)
        chunk = -(-router.keyspace // 4)
        expected = np.minimum(keys // np.uint64(chunk), 3).astype(np.int64)
        assert np.array_equal(router.shard_of(rows, cols), expected)
