"""Fault-injection tests: dead or crashing workers must surface, never hang.

The contract (pinned per transport): a worker that *raises* delivers the
traceback as :class:`~repro.distributed.WorkerCrash` at the next reply and
keeps serving; a worker that *dies* (SIGKILL here — the OOM-killer case) is
detected by liveness polling and surfaces as :class:`WorkerCrash` at the next
reply, or at the next ring push once the dead shard's buffer fills.  Every
wait under test runs inside a tight :func:`deadline` guard, so a regression
fails with a ``TimeoutError`` pointing at the blocked call instead of
deadlocking the suite (the directory-wide guard in ``conftest.py`` backstops
everything else).
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.core import HierarchicalMatrix
from repro.distributed import (
    RingClosed,
    ShardedHierarchicalMatrix,
    ShardWorkerPool,
    WorkerCrash,
    WorkerDied,
    shm_supported,
    spawn_local_agents,
)

from .conftest import deadline

CUTS = [500, 5_000]
TRANSPORTS = ["queue", "shm", "socket"]

#: Tests that reach into the ring itself need the shm wire actually in force.
requires_shm = pytest.mark.skipif(
    not shm_supported(None), reason="shm transport unavailable on this host"
)

#: Localhost NodeAgent pair shared by the socket legs of the batteries that
#: only kill *workers* (the agents themselves survive those tests).  Node-kill
#: tests spawn their own disposable agents instead.
_SOCKET_AGENTS = None


def _socket_nodes():
    global _SOCKET_AGENTS
    if _SOCKET_AGENTS is None:
        cm = spawn_local_agents(2)
        addresses, _procs = cm.__enter__()
        _SOCKET_AGENTS = (cm, addresses)
    return list(_SOCKET_AGENTS[1])


@pytest.fixture(scope="module", autouse=True)
def _socket_agent_teardown():
    yield
    global _SOCKET_AGENTS
    if _SOCKET_AGENTS is not None:
        _SOCKET_AGENTS[0].__exit__(None, None, None)
        _SOCKET_AGENTS = None


def _transport_kwargs(transport, **extra):
    kwargs = {"use_processes": True, "transport": transport, **extra}
    if transport == "socket":
        kwargs["nodes"] = _socket_nodes()
    return kwargs


def make_pool(transport, nworkers=1):
    return ShardWorkerPool(
        nworkers,
        matrix_kwargs={"cuts": CUTS},
        **_transport_kwargs(transport),
    )


def ingest_some(pool, worker=0, nbatches=3):
    for b in range(nbatches):
        rows = np.arange(b * 100, b * 100 + 100, dtype=np.uint64)
        pool.submit(worker, "ingest", (rows, rows + 1, np.ones(100)))


class TestKilledWorker:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_kill_mid_stream_surfaces_at_next_reply(self, transport):
        with make_pool(transport) as pool:
            ingest_some(pool)
            proc = pool.processes[0]
            proc.kill()
            proc.join(timeout=10)
            with deadline(30):
                with pytest.raises(WorkerCrash):
                    pool.request(0, "report")

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_death_is_distinguishable_from_a_raise(self, transport):
        """Death surfaces as WorkerDied; a surviving worker's raise does not.

        The failover logic keys on this distinction (it must never poll pid
        liveness — a dying worker closes its wire before its pid disappears,
        so a poll taken at crash time can still read alive and would turn a
        recoverable node death into a propagated error).
        """
        with make_pool(transport) as pool:
            with deadline(30):
                with pytest.raises(WorkerCrash) as raised:
                    pool.request(0, "reduce_incremental", "bogus_kind")
            assert not isinstance(raised.value, WorkerDied)
            # ...and the worker survived the raise (pre-replication contract).
            assert pool.request(0, "stats")["updates"] == 0
            pool.processes[0].kill()
            pool.processes[0].join(timeout=10)
            with deadline(30):
                with pytest.raises(WorkerDied):
                    pool.request(0, "report")

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_kill_while_reply_pending_does_not_hang(self, transport):
        """Die *after* the command is submitted, while the parent waits.

        ``selfgen`` streams long enough that the SIGKILL always lands before
        the reply is produced; a worker killed before even dequeuing the
        command surfaces identically.
        """
        with make_pool(transport) as pool:
            pool.submit(
                0, "selfgen", {"total_updates": 500_000, "batch_size": 10_000, "seed": 1}
            )
            pool.processes[0].kill()
            with deadline(30):
                with pytest.raises(WorkerCrash):
                    pool.collect(0)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_other_workers_keep_serving(self, transport):
        with make_pool(transport, nworkers=2) as pool:
            ingest_some(pool, worker=0)
            ingest_some(pool, worker=1)
            pool.processes[0].kill()
            with deadline(30):
                with pytest.raises(WorkerCrash):
                    pool.request(0, "stats")
                assert pool.request(1, "stats")["updates"] == 300

    @requires_shm
    def test_shm_push_into_dead_worker_raises(self):
        """A full ring with a dead consumer must fail the push, not spin."""
        pool = ShardWorkerPool(
            1,
            matrix_kwargs={"cuts": CUTS},
            use_processes=True,
            transport="shm",
            ring_slots=64,
        )
        try:
            proc = pool.processes[0]
            proc.kill()
            proc.join(timeout=10)
            rows = np.arange(200, dtype=np.uint64)  # > ring capacity
            with deadline(30):
                with pytest.raises(WorkerCrash):
                    # Keep pushing until the dead shard's ring fills.
                    for _ in range(10):
                        pool.submit(0, "ingest", (rows, rows, np.ones(rows.size)))
        finally:
            pool.close()

    def test_sharded_matrix_surfaces_crash(self):
        """End to end: a killed shard fails the next global read loudly."""
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, use_processes=True, transport="shm"
        ) as sharded:
            rng = np.random.default_rng(5)
            sharded.update(
                rng.integers(0, 2 ** 16, 500, dtype=np.uint64),
                rng.integers(0, 2 ** 16, 500, dtype=np.uint64),
                np.ones(500),
            )
            sharded._pool.processes[0].kill()
            with deadline(30):
                with pytest.raises(WorkerCrash):
                    sharded.materialize()


class TestRaisingWorker:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_error_delivered_and_worker_survives(self, transport):
        with make_pool(transport) as pool:
            with deadline(30):
                with pytest.raises(WorkerCrash) as excinfo:
                    pool.request(0, "reduce", ("bogus-axis", "not-an-op"))
                assert "shard worker 0 failed" in str(excinfo.value)
                # The worker survives the crash and keeps serving.
                assert pool.request(0, "get", (1, 2)) is None

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_unknown_command_is_an_error_not_a_hang(self, transport):
        """A typo'd command fails fast in the parent (it may never reply)."""
        with make_pool(transport) as pool:
            with deadline(30):
                with pytest.raises(ValueError):
                    pool.request(0, "materialise-with-an-s")
                # The pool is not corrupted by the rejection.
                assert pool.request(0, "stats")["updates"] == 0

    def test_shm_worker_error_after_ingest_then_recovers(self):
        """A worker-side error after consumed batches reports, then serves."""
        with make_pool("shm") as pool:
            rows = np.arange(10, dtype=np.uint64)
            pool.submit(0, "ingest", (rows, rows, np.ones(10)))
            with deadline(30):
                with pytest.raises(WorkerCrash):
                    pool.request(0, "reduce_incremental", "not-a-kind")
                assert pool.request(0, "stats")["updates"] == 10

    def test_shm_out_of_range_coordinates_raise_immediately(self):
        """The ring refuses coordinates that would alias under packing."""
        from repro.graphblas.errors import InvalidIndex

        with ShardedHierarchicalMatrix(
            2, 2 ** 16, 2 ** 16, cuts=CUTS, use_processes=True, transport="shm"
        ) as sharded:
            with pytest.raises(InvalidIndex):
                sharded.update([2 ** 20], [1], [1.0])


class TestMigrationFaults:
    """A crash at any migration step leaves the old epoch fully consistent.

    The rebalance protocol is copy -> install -> discard -> publish: until
    the discard completes the source still holds the authoritative slab, and
    the new map epoch is published only after all three worker steps
    succeeded.  SIGKILLing the source mid-``extract_slab`` (or the
    destination mid-``install_slab``) must therefore surface
    :class:`WorkerCrash` with the map epoch unchanged and no coordinate
    orphaned or double-owned under the still-installed map.
    """

    #: Skewed stream: every coordinate keys into shard 0's range slab, so the
    #: auto policy always picks source=0, dest=1 — deterministic kill targets.
    @staticmethod
    def _loaded_matrix(transport, nshards=2):
        sharded = ShardedHierarchicalMatrix(
            nshards,
            cuts=CUTS,
            partition="range",
            **_transport_kwargs(transport),
        )
        rng = np.random.default_rng(31)
        for _ in range(3):
            sharded.update(
                rng.integers(0, 2 ** 14, 400, dtype=np.uint64),
                rng.integers(0, 2 ** 14, 400, dtype=np.uint64),
                np.ones(400),
            )
        return sharded

    @staticmethod
    def _kill_on(pool, command, monkeypatch, worker_filter=None):
        """SIGKILL the targeted worker at the moment ``command`` is
        dispatched to it — dead before it can execute or reply, so the
        parent deterministically observes the death while awaiting this
        command's reply.  (Killing *after* the dispatch would race the
        worker: on the in-band socket wire a fast worker can finish the
        command and reply before the signal lands.)  ``worker_filter``
        restricts the kill to one worker index (so a compensation command
        to another worker is not also shot down)."""
        original_submit = pool.submit

        def killing_submit(worker, cmd, payload=None):
            if cmd == command and (worker_filter is None or worker == worker_filter):
                pool.processes[worker].kill()
                pool.processes[worker].join(timeout=10)
            original_submit(worker, cmd, payload)

        monkeypatch.setattr(pool, "submit", killing_submit)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_kill_source_mid_extract(self, transport, monkeypatch):
        with self._loaded_matrix(transport) as sharded:
            epoch = sharded.map_epoch
            dest_nnz = sharded._pool.request(1, "stats")["nnz"]
            self._kill_on(sharded._pool, "extract_slab", monkeypatch)
            with deadline(30):
                with pytest.raises(WorkerCrash):
                    sharded.rebalance()
            assert sharded.map_epoch == epoch
            # The destination never received anything: nothing double-owned.
            assert sharded._pool.request(1, "stats")["nnz"] == dest_nnz

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_kill_dest_mid_install(self, transport, monkeypatch):
        with self._loaded_matrix(transport) as sharded:
            epoch = sharded.map_epoch
            source_nnz = sharded._pool.request(0, "stats")["nnz"]
            self._kill_on(sharded._pool, "install_slab", monkeypatch)
            with deadline(30):
                with pytest.raises(WorkerCrash):
                    sharded.rebalance()
            assert sharded.map_epoch == epoch
            # extract_slab only copied: the surviving source still owns the
            # complete slab under the unchanged map — no coordinate orphaned.
            assert sharded._pool.request(0, "stats")["nnz"] == source_nnz

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_kill_source_mid_discard_is_compensated(self, transport, monkeypatch):
        """Source dies after the install: the installed copy is rolled back
        so the old map (slab -> dead source) stays the single-owner truth."""
        with self._loaded_matrix(transport) as sharded:
            epoch = sharded.map_epoch
            dest_nnz = sharded._pool.request(1, "stats")["nnz"]
            self._kill_on(sharded._pool, "discard_slab", monkeypatch, worker_filter=0)
            with deadline(30):
                with pytest.raises(WorkerCrash):
                    sharded.rebalance()
            assert sharded.map_epoch == epoch
            # Compensation removed the installed copy from the live dest.
            assert sharded._pool.request(1, "stats")["nnz"] == dest_nnz

    def test_install_error_compensated_bit_identical(self, monkeypatch):
        """A *raising* (surviving) destination rolls back to exact state.

        In-process mode so the whole matrix remains readable afterwards: the
        rebalance fails, the compensation discards the partial install, and
        the full materialize is still bit-identical to the flat reference —
        the strongest no-orphan/no-double-own statement available.
        """
        from repro.core import HierarchicalMatrix
        from repro.distributed.worker import ShardState

        rng = np.random.default_rng(41)
        batches = [
            (
                rng.integers(0, 2 ** 14, 400, dtype=np.uint64),
                rng.integers(0, 2 ** 14, 400, dtype=np.uint64),
                np.ones(400),
            )
            for _ in range(3)
        ]
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        with ShardedHierarchicalMatrix(2, cuts=CUTS, partition="range") as sharded:
            for rows, cols, vals in batches:
                flat.update(rows, cols, vals)
                sharded.update(rows, cols, vals)
            dest_state = sharded._pool._states[1]
            original_handle = ShardState.handle

            def failing_handle(self, cmd, payload):
                if cmd == "install_slab" and self is dest_state:
                    raise RuntimeError("injected install failure")
                return original_handle(self, cmd, payload)

            monkeypatch.setattr(ShardState, "handle", failing_handle)
            epoch = sharded.map_epoch
            # The in-process pool re-raises the worker exception directly
            # (process wires would wrap it as WorkerCrash, covered above).
            with pytest.raises(RuntimeError, match="injected install failure"):
                sharded.rebalance()
            monkeypatch.setattr(ShardState, "handle", original_handle)
            assert sharded.map_epoch == epoch
            assert sharded.materialize().isequal(flat.materialize())
            # ...and the next rebalance (no fault) succeeds cleanly.
            assert sharded.rebalance() is not None
            assert sharded.materialize().isequal(flat.materialize())


def _sorted_triples(matrix):
    rows, cols, vals = matrix.extract_tuples()
    order = np.lexsort((cols, rows))
    return rows[order], cols[order], vals[order]


def _assert_bit_identical(sharded, flat_matrix):
    sr, sc, sv = _sorted_triples(sharded.materialize())
    fr, fc, fv = _sorted_triples(flat_matrix)
    assert np.array_equal(sr, fr) and np.array_equal(sc, fc)
    assert np.array_equal(sv, fv), "values diverged from the flat reference"


class TestReplicaFailover:
    """A dead primary with a live replica fails over with zero lost updates.

    Every ingest batch is mirrored to the replica *before* the primary's
    failure is even detectable, so after a SIGKILL mid-stream the promoted
    replica must hold every update the stream ever routed — asserted as
    bit-identity (triples and reductions) against an uninterrupted flat
    reference, plus the map-epoch bump that fences the promotion.
    """

    @staticmethod
    def _streams(seed=71, nbatches=6, n=300):
        rng = np.random.default_rng(seed)
        return [
            (
                rng.integers(0, 2 ** 16, n, dtype=np.uint64),
                rng.integers(0, 2 ** 16, n, dtype=np.uint64),
                rng.integers(1, 9, n).astype(np.float64),
            )
            for _ in range(nbatches)
        ]

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_kill_primary_mid_stream_loses_nothing(self, transport):
        batches = self._streams()
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for rows, cols, vals in batches:
            flat.update(rows, cols, vals)
        flat_matrix = flat.materialize()
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, **_transport_kwargs(transport, replicas=1)
        ) as sharded:
            epoch0 = sharded.map_epoch
            for rows, cols, vals in batches[:3]:
                sharded.update(rows, cols, vals)
            victim = sharded._pool.primary_slot(0)
            sharded._pool.processes[victim].kill()
            sharded._pool.processes[victim].join(timeout=10)
            for rows, cols, vals in batches[3:]:
                sharded.update(rows, cols, vals)
            with deadline(60):
                _assert_bit_identical(sharded, flat_matrix)
                assert sharded.map_epoch == epoch0 + 1
                assert sharded.nvals == flat_matrix.nvals
                assert sharded.reduce_rowwise("plus").isequal(
                    flat_matrix.reduce_rowwise("plus")
                )
                inc = sharded.incremental
                if inc.supported and inc.fan_supported:
                    assert inc.row_traffic().isequal(
                        flat_matrix.reduce_rowwise("plus")
                    )

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_failed_promotion_keeps_old_epoch(self, transport):
        """Primary *and* replica dead: WorkerCrash, epoch untouched."""
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, **_transport_kwargs(transport, replicas=1)
        ) as sharded:
            rng = np.random.default_rng(3)
            sharded.update(
                rng.integers(0, 2 ** 16, 400, dtype=np.uint64),
                rng.integers(0, 2 ** 16, 400, dtype=np.uint64),
                np.ones(400),
            )
            epoch0 = sharded.map_epoch
            pool = sharded._pool
            for slot in (pool.primary_slot(0), *pool.replica_slots(0)):
                pool.processes[slot].kill()
                pool.processes[slot].join(timeout=10)
            with deadline(60):
                with pytest.raises(WorkerCrash):
                    sharded.materialize()
            assert sharded.map_epoch == epoch0
            assert not pool.shard_alive(0) and not pool.has_live_replica(0)

    def test_resync_restores_the_failure_budget(self):
        """After a failover, resync_replicas() re-arms a second failover."""
        batches = self._streams(seed=97, nbatches=4)
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, use_processes=True, transport="queue", replicas=1
        ) as sharded:
            for rows, cols, vals in batches[:2]:
                flat.update(rows, cols, vals)
                sharded.update(rows, cols, vals)
            pool = sharded._pool
            first = pool.primary_slot(0)
            pool.processes[first].kill()
            pool.processes[first].join(timeout=10)
            with deadline(60):
                assert sharded.nvals == flat.materialize().nvals  # failover 1
                assert sharded.resync_replicas() == 1
                second = pool.primary_slot(0)
                assert second != first
                pool.processes[second].kill()
                pool.processes[second].join(timeout=10)
                for rows, cols, vals in batches[2:]:
                    flat.update(rows, cols, vals)
                    sharded.update(rows, cols, vals)
                _assert_bit_identical(sharded, flat.materialize())  # failover 2
            assert sharded.map_epoch == 2

    def test_rebalance_with_replicas_stays_consistent(self):
        """Mirrored install/discard: a migration then a failover must agree
        with the flat reference — the replica tracked the slab moves."""
        batches = self._streams(seed=13, nbatches=5)
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, partition="range",
            use_processes=True, transport="queue", replicas=1,
        ) as sharded:
            for rows, cols, vals in batches:
                flat.update(rows, cols, vals)
                sharded.update(rows, cols, vals)
            report = sharded.rebalance()
            assert report is not None
            victim = sharded._pool.primary_slot(report.dest)
            sharded._pool.processes[victim].kill()
            sharded._pool.processes[victim].join(timeout=10)
            with deadline(60):
                _assert_bit_identical(sharded, flat.materialize())

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_two_replicas_survive_sequential_double_kill(self, transport):
        """replicas=2: a second primary kill after the first promotion still
        fails over with zero lost updates (verified promotion picks a live,
        fully mirrored candidate both times)."""
        batches = self._streams(seed=59, nbatches=8)
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for rows, cols, vals in batches:
            flat.update(rows, cols, vals)
        flat_matrix = flat.materialize()
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, **_transport_kwargs(transport, replicas=2)
        ) as sharded:
            epoch0 = sharded.map_epoch
            pool = sharded._pool
            for rows, cols, vals in batches[:3]:
                sharded.update(rows, cols, vals)
            first = pool.primary_slot(0)
            pool.processes[first].kill()
            pool.processes[first].join(timeout=10)
            for rows, cols, vals in batches[3:5]:
                sharded.update(rows, cols, vals)
            # A reply-bearing command surfaces the death and promotes.
            assert sharded.nvals >= 0
            second = pool.primary_slot(0)
            assert second != first
            pool.processes[second].kill()
            pool.processes[second].join(timeout=10)
            for rows, cols, vals in batches[5:]:
                sharded.update(rows, cols, vals)
            with deadline(60):
                _assert_bit_identical(sharded, flat_matrix)
                assert sharded.map_epoch == epoch0 + 2
                assert sharded.nvals == flat_matrix.nvals

    def test_two_replicas_survive_simultaneous_double_kill(self):
        """replicas=2: primary AND first replica die in the same instant;
        verified promotion must skip the dead candidate and promote the
        surviving mirror — zero lost updates, one epoch bump."""
        batches = self._streams(seed=67, nbatches=6)
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for rows, cols, vals in batches:
            flat.update(rows, cols, vals)
        flat_matrix = flat.materialize()
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, use_processes=True, transport="queue", replicas=2
        ) as sharded:
            epoch0 = sharded.map_epoch
            pool = sharded._pool
            for rows, cols, vals in batches[:3]:
                sharded.update(rows, cols, vals)
            victims = [pool.primary_slot(0), pool.replica_slots(0)[0]]
            for slot in victims:
                pool.processes[slot].kill()
            for slot in victims:
                pool.processes[slot].join(timeout=10)
            for rows, cols, vals in batches[3:]:
                sharded.update(rows, cols, vals)
            with deadline(60):
                _assert_bit_identical(sharded, flat_matrix)
                assert sharded.map_epoch == epoch0 + 1


class TestNodeFailover:
    """SIGKILL a whole NodeAgent: every worker it hosts dies with it
    (PR_SET_PDEATHSIG), and each shard whose primary lived there must fail
    over to its replica on the surviving node — zero lost updates."""

    def test_agent_kill_fails_over(self):
        batches = TestReplicaFailover._streams(seed=29, nbatches=6)
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for rows, cols, vals in batches:
            flat.update(rows, cols, vals)
        flat_matrix = flat.materialize()
        with spawn_local_agents(2) as (addresses, procs):
            with ShardedHierarchicalMatrix(
                2, cuts=CUTS, use_processes=True,
                transport="socket", nodes=addresses, replicas=1,
            ) as sharded:
                epoch0 = sharded.map_epoch
                for rows, cols, vals in batches[:3]:
                    sharded.update(rows, cols, vals)
                # The placement staggers replicas across nodes, so killing
                # agent 0 takes shard 0's primary and shard 1's replica.
                os.kill(procs[0].pid, signal.SIGKILL)
                procs[0].join(timeout=10)
                for rows, cols, vals in batches[3:]:
                    sharded.update(rows, cols, vals)
                with deadline(60):
                    _assert_bit_identical(sharded, flat_matrix)
                    assert sharded.nvals == flat_matrix.nvals
                    assert sharded.map_epoch == epoch0 + 1
                    assert sharded.reduce_columnwise("plus").isequal(
                        flat_matrix.reduce_columnwise("plus")
                    )

    def test_both_agents_dead_raises_epoch_intact(self):
        with spawn_local_agents(2) as (addresses, procs):
            with ShardedHierarchicalMatrix(
                2, cuts=CUTS, use_processes=True,
                transport="socket", nodes=addresses, replicas=1,
            ) as sharded:
                sharded.update([1, 2], [3, 4], 1.0)
                epoch0 = sharded.map_epoch
                for proc in procs:
                    os.kill(proc.pid, signal.SIGKILL)
                    proc.join(timeout=10)
                with deadline(60):
                    with pytest.raises(WorkerCrash):
                        sharded.materialize()
                assert sharded.map_epoch == epoch0


class TestReplicaTrueRebalance:
    """Migrations are replica-true: every step is mirrored, so with a replica
    in hand a SIGKILL at ANY step fails over and the migration still
    *completes* (the abort-and-compensate contract of
    :class:`TestMigrationFaults` is the replicas=0 degradation), and the
    touched shards leave the call with their full failure budget — retired
    mirrors are resynchronised in place, or the call raises loudly.
    """

    MIGRATION_STEPS = ["extract_slab", "install_slab", "discard_slab"]

    @staticmethod
    def _loaded_with_flat(transport, replicas=1, seed=31, nbatches=3):
        """Skewed range-partition stream (everything in shard 0's slab) plus
        the flat reference it must stay bit-identical to."""
        sharded = ShardedHierarchicalMatrix(
            2, cuts=CUTS, partition="range",
            **_transport_kwargs(transport, replicas=replicas),
        )
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        rng = np.random.default_rng(seed)
        for _ in range(nbatches):
            rows = rng.integers(0, 2 ** 14, 400, dtype=np.uint64)
            cols = rng.integers(0, 2 ** 14, 400, dtype=np.uint64)
            vals = rng.integers(1, 9, 400).astype(np.float64)
            flat.update(rows, cols, vals)
            sharded.update(rows, cols, vals)
        return sharded, flat

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("step", MIGRATION_STEPS)
    def test_kill_primary_mid_step_migration_completes(
        self, transport, step, monkeypatch
    ):
        """Kill the acting primary at the dispatch of each migration step:
        the step's failover promotes a mirror that already executed its legs,
        the migration completes, and the budget check respawns the dead slot
        — no resync_replicas() from the caller, no lost or duplicated slab."""
        sharded, flat = self._loaded_with_flat(transport)
        with sharded:
            epoch0 = sharded.map_epoch
            victim_shard = 1 if step == "install_slab" else 0
            TestMigrationFaults._kill_on(
                sharded._pool, step, monkeypatch,
                worker_filter=sharded._pool.primary_slot(victim_shard),
            )
            with deadline(60):
                report = sharded.rebalance()
                assert report is not None
                assert (report.source, report.dest) == (0, 1)
                # One epoch bump for the failover fence, one for the install.
                assert sharded.map_epoch == epoch0 + 2
                # The budget check already restored the retired slot.
                assert sharded.missing_replicas() == 0
                _assert_bit_identical(sharded, flat.materialize())

    def test_kill_primary_right_after_migration_loses_nothing(self):
        """Satellite regression: because the discard was mirrored, the
        replica promoted right after the migration holds exactly the
        post-migration slab set — nothing lost, nothing double-owned."""
        sharded, flat = self._loaded_with_flat("queue")
        with sharded:
            report = sharded.rebalance()
            assert report is not None
            pool = sharded._pool
            assert pool.has_live_replica(report.source)
            victim = pool.primary_slot(report.source)
            pool.processes[victim].kill()
            pool.processes[victim].join(timeout=10)
            rng = np.random.default_rng(77)
            for _ in range(2):
                rows = rng.integers(0, 2 ** 14, 300, dtype=np.uint64)
                cols = rng.integers(0, 2 ** 14, 300, dtype=np.uint64)
                flat.update(rows, cols, np.ones(300))
                sharded.update(rows, cols, np.ones(300))
            with deadline(60):
                _assert_bit_identical(sharded, flat.materialize())

    def test_dead_replica_is_resynced_during_rebalance(self):
        """A mirror retired before the migration (its slot SIGKILLed) is
        respawned and resynced by the migration itself; the restored budget
        then survives a primary kill with zero loss."""
        sharded, flat = self._loaded_with_flat("queue")
        with sharded:
            pool = sharded._pool
            replica = pool.replica_slots(0)[0]
            pool.processes[replica].kill()
            pool.processes[replica].join(timeout=10)
            with deadline(60):
                report = sharded.rebalance()
                assert report is not None
                assert sharded.missing_replicas() == 0
                # The freshly resynced mirror is now the failure budget.
                victim = pool.primary_slot(0)
                pool.processes[victim].kill()
                pool.processes[victim].join(timeout=10)
                _assert_bit_identical(sharded, flat.materialize())

    def test_unrestorable_budget_fails_loudly(self, monkeypatch):
        """If the retired slot cannot be respawned (agent still down), the
        migration raises WorkerCrash instead of silently returning success
        over an under-replicated shard — and the published epoch stays
        valid.  Once the 'agent' returns, the AutoRejoiner restores the
        budget hands-off."""
        from repro.service import AutoRejoiner

        sharded, flat = self._loaded_with_flat("queue")
        with sharded:
            epoch0 = sharded.map_epoch
            pool = sharded._pool
            replica = pool.replica_slots(0)[0]
            pool.processes[replica].kill()
            pool.processes[replica].join(timeout=10)
            original_respawn = pool._transport.respawn

            def refusing_respawn(slot):
                raise OSError("connection refused: agent still down")

            monkeypatch.setattr(pool._transport, "respawn", refusing_respawn)
            with deadline(60):
                with pytest.raises(WorkerCrash, match="under-replicated"):
                    sharded.rebalance()
            # The migration itself completed before the budget check failed.
            assert sharded.map_epoch == epoch0 + 1
            assert sharded.missing_replicas() == 1
            # The 'agent' comes back: the supervisor repairs the budget.
            monkeypatch.setattr(pool._transport, "respawn", original_respawn)
            rejoiner = AutoRejoiner(sharded, interval=1.0, clock=lambda: 0.0)
            with deadline(60):
                events = rejoiner.step(now=0.0)
            assert len(events) == 1 and sharded.missing_replicas() == 0
            with deadline(60):
                _assert_bit_identical(sharded, flat.materialize())


class TestAgentRejoin:
    """The restart-rejoin battery: SIGKILL a NodeAgent, restart it on the
    same endpoint, and the AutoRejoiner restores every mirror hands-off —
    after which a primary kill still fails over with zero lost updates."""

    def test_restarted_agent_rejoins_and_rearms_failover(self):
        import time

        from repro.distributed import restart_local_agent
        from repro.service import AutoRejoiner

        batches = TestReplicaFailover._streams(seed=37, nbatches=9)
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for rows, cols, vals in batches:
            flat.update(rows, cols, vals)
        flat_matrix = flat.materialize()
        with spawn_local_agents(2) as (addresses, procs):
            with ShardedHierarchicalMatrix(
                2, cuts=CUTS, use_processes=True,
                transport="socket", nodes=addresses, replicas=1,
            ) as sharded:
                rejoiner = AutoRejoiner(
                    sharded, interval=1.0, max_backoff=4, clock=lambda: 0.0
                )
                epoch0 = sharded.map_epoch
                for rows, cols, vals in batches[:3]:
                    sharded.update(rows, cols, vals)
                # Agent 0 hosts shard 0's primary and shard 1's replica:
                # killing it costs shard 0 a failover and shard 1 its mirror.
                os.kill(procs[0].pid, signal.SIGKILL)
                procs[0].join(timeout=10)
                for rows, cols, vals in batches[3:5]:
                    sharded.update(rows, cols, vals)
                assert sharded.map_epoch == epoch0 + 1
                assert sharded.missing_replicas() >= 1
                # While the endpoint refuses, attempts fail and back off.
                with deadline(60):
                    assert rejoiner.step(now=0.0) == []
                assert rejoiner.failed_attempts == 1
                assert rejoiner.last_error is not None
                # Restart an agent on the SAME endpoint; the retired slots
                # re-dial it through the placement they were born with.
                restarted = restart_local_agent(addresses[0])
                try:
                    fed = 5
                    now = 2.0
                    with deadline(90):
                        while True:
                            rejoiner.maybe_step(now=now)
                            now += 4.0  # always past the back-off horizon
                            if fed < 7:
                                rows, cols, vals = batches[fed]
                                sharded.update(rows, cols, vals)
                                fed += 1
                            elif sharded.missing_replicas() == 0:
                                break
                            time.sleep(0.02)
                    assert len(rejoiner.events) >= 1
                    for s in range(sharded.nshards):
                        assert sharded._pool.has_live_replica(s)
                    # The restored budget arms another failover: kill the
                    # promoted primary of shard 0 and keep streaming.
                    victim = sharded._pool.primary_slot(0)
                    sharded._pool.processes[victim].kill()
                    sharded._pool.processes[victim].join(timeout=10)
                    for rows, cols, vals in batches[fed:]:
                        sharded.update(rows, cols, vals)
                    with deadline(60):
                        _assert_bit_identical(sharded, flat_matrix)
                        assert sharded.map_epoch == epoch0 + 2
                finally:
                    restarted.terminate()
                    restarted.join(timeout=5)


class TestGatewayFaults:
    """Gateway-grade fault battery: the service layer inherits every backend
    fault contract end to end.

    A SIGKILLed backend worker becomes a client-visible :class:`GatewayError`
    at the next read (replicas=0) or an invisible failover with zero lost
    acknowledged updates (replicas=1); a gateway closed mid-stream drains
    everything it accepted into the matrix and hangs up cleanly; a slow
    backend wire bounds the gateway's buffering instead of growing it.
    """

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_gateway_backend_kill_is_client_visible(self, transport):
        from repro.service import GatewayClient, GatewayError, IngestGateway

        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, **_transport_kwargs(transport)
        ) as sharded:
            gw = IngestGateway(sharded, coalesce_updates=256, flush_interval=0.01)
            gw.start()
            try:
                with GatewayClient(gw.address) as client:
                    rows = np.arange(500, dtype=np.uint64)
                    client.update(rows, rows, np.ones(500))
                    assert client.sync()["acked"] == 500
                    assert client.nnz() == 500
                    sharded._pool.processes[0].kill()
                    sharded._pool.processes[0].join(timeout=10)
                    with deadline(30):
                        # Un-replicated: the death surfaces as a loud reply
                        # error on this connection, never a hang.
                        with pytest.raises(GatewayError, match="Worker"):
                            for _ in range(20):
                                client.update(rows, rows, np.ones(500))
                                client.nnz()
            finally:
                gw.close()

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_gateway_backend_kill_fails_over_zero_loss(self, transport):
        """replicas=1: every acknowledged update survives a primary SIGKILL."""
        from repro.service import GatewayClient, IngestGateway

        batches = TestReplicaFailover._streams(seed=83, nbatches=6)
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for rows, cols, vals in batches:
            flat.update(rows, cols, vals)
        flat_matrix = flat.materialize()
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, **_transport_kwargs(transport, replicas=1)
        ) as sharded:
            epoch0 = sharded.map_epoch
            gw = IngestGateway(sharded, coalesce_updates=256, flush_interval=0.01)
            gw.start()
            try:
                with GatewayClient(gw.address) as client:
                    sent = 0
                    for i, (rows, cols, vals) in enumerate(batches):
                        if i == 3:
                            victim = sharded._pool.primary_slot(0)
                            sharded._pool.processes[victim].kill()
                            sharded._pool.processes[victim].join(timeout=10)
                        client.update(rows, cols, vals)
                        sent += rows.size
                        # Acknowledge every batch: each ack is a promise the
                        # updates were applied (mirrored to the replica).
                        assert client.sync()["acked"] == sent
                    with deadline(60):
                        assert client.nnz() == flat_matrix.nvals
                        assert client.epoch() == epoch0 + 1
            finally:
                gw.close()
            with deadline(60):
                _assert_bit_identical(sharded, flat_matrix)

    def test_gateway_hosted_rejoiner_restores_budget(self):
        """The gateway hosts the rejoin supervisor on its event loop: after
        a primary kill the spent failure budget is restored hands-off, the
        client can watch it through ``missing_replicas()``/``rejoin_events()``,
        and the restored mirror arms a second zero-loss failover."""
        import time as time_mod

        from repro.service import AutoRejoiner, GatewayClient, IngestGateway

        batches = TestReplicaFailover._streams(seed=91, nbatches=6)
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for rows, cols, vals in batches:
            flat.update(rows, cols, vals)
        flat_matrix = flat.materialize()
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, use_processes=True, transport="queue", replicas=1
        ) as sharded:
            rejoiner = AutoRejoiner(sharded, interval=0.05)
            gw = IngestGateway(
                sharded, coalesce_updates=256, flush_interval=0.01,
                rejoiner=rejoiner,
            )
            gw.start()
            try:
                with GatewayClient(gw.address) as client:
                    assert client.missing_replicas() == 0
                    sent = 0
                    for rows, cols, vals in batches[:3]:
                        client.update(rows, cols, vals)
                        sent += rows.size
                        assert client.sync()["acked"] == sent
                    victim = sharded._pool.primary_slot(0)
                    sharded._pool.processes[victim].kill()
                    sharded._pool.processes[victim].join(timeout=10)
                    for rows, cols, vals in batches[3:5]:
                        client.update(rows, cols, vals)
                        sent += rows.size
                        assert client.sync()["acked"] == sent
                    # A reply-bearing read surfaces the death: the failover
                    # spends the budget, and the hosted supervisor notices.
                    assert client.nnz() > 0
                    with deadline(60):
                        while client.missing_replicas() > 0:
                            time_mod.sleep(0.02)
                    assert len(client.rejoin_events()) >= 1
                    # The hands-off resync re-armed failover: kill again.
                    victim = sharded._pool.primary_slot(0)
                    sharded._pool.processes[victim].kill()
                    sharded._pool.processes[victim].join(timeout=10)
                    rows, cols, vals = batches[5]
                    client.update(rows, cols, vals)
                    sent += rows.size
                    with deadline(60):
                        assert client.sync()["acked"] == sent
            finally:
                gw.close()
            with deadline(60):
                _assert_bit_identical(sharded, flat_matrix)

    def test_gateway_close_mid_stream_drains_cleanly(self):
        """Shutdown with a client mid-stream: everything accepted lands."""
        import threading

        from repro.service import GatewayClient, GatewayError, IngestGateway

        with ShardedHierarchicalMatrix(2, cuts=CUTS) as sharded:
            gw = IngestGateway(sharded, coalesce_updates=1 << 14, flush_interval=30.0)
            gw.start()
            streamed = threading.Event()
            stopped = threading.Event()

            def stream():
                rng = np.random.default_rng(11)
                try:
                    with GatewayClient(gw.address) as client:
                        while not stopped.is_set():
                            n = int(rng.integers(50, 200))
                            client.update(
                                rng.integers(0, 2 ** 16, n, dtype=np.uint64),
                                rng.integers(0, 2 ** 16, n, dtype=np.uint64),
                                np.ones(n),
                            )
                            streamed.set()
                except GatewayError:
                    pass  # the clean hang-up path: EOF/RST surfaces as this

            producer = threading.Thread(target=stream)
            producer.start()
            try:
                assert streamed.wait(timeout=30)
                while gw.metrics()["received_updates"] < 1000:
                    streamed.wait(0.005)
                gw.close()  # mid-stream: drains the coalescer, hangs up
            finally:
                stopped.set()
                producer.join(timeout=30)
            assert not producer.is_alive()
            metrics = gw.metrics()
            # Drained: every update parsed off a socket reached the matrix
            # (nothing stranded in the coalescer), and the totals agree.
            assert metrics["buffered_updates"] == 0
            assert metrics["routed_updates"] == metrics["received_updates"] >= 1000
            assert sharded.incremental.total() == float(metrics["routed_updates"])

    @requires_shm
    def test_gateway_slow_wire_bounds_buffering(self):
        """A congested backend ring backpressures; gateway memory stays
        one coalescer window, and nothing is lost or duplicated."""
        from repro.service import GatewayClient, IngestGateway

        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, use_processes=True, transport="shm", ring_slots=256
        ) as sharded:
            gw = IngestGateway(sharded, coalesce_updates=256, flush_interval=0.01)
            gw.start()
            try:
                with GatewayClient(gw.address) as client:
                    rng = np.random.default_rng(19)
                    sent = 0
                    for _ in range(60):
                        n = int(rng.integers(100, 400))
                        rows = rng.integers(0, 2 ** 16, n, dtype=np.uint64)
                        cols = rng.integers(0, 2 ** 16, n, dtype=np.uint64)
                        vals = rng.integers(1, 9, n).astype(np.float64)
                        client.update(rows, cols, vals)
                        flat.update(rows, cols, vals)
                        sent += n
                    with deadline(60):
                        assert client.sync()["acked"] == sent
            finally:
                gw.close()
            metrics = gw.metrics()
            # Bounded: the buffer never exceeded one coalescer window plus
            # the one in-flight batch that tipped it over the bound.
            assert metrics["max_buffered_updates"] < 256 + 400
            with deadline(60):
                _assert_bit_identical(sharded, flat.materialize())


class TestRingLiveness:
    @requires_shm
    def test_ring_closed_error_names_the_worker(self):
        with make_pool("shm") as pool:
            transport = pool._transport
            transport._rings[0].mark_closed()
            with deadline(30):
                with pytest.raises(WorkerCrash) as excinfo:
                    rows = np.arange(10, dtype=np.uint64)
                    pool.submit(0, "ingest", (rows, rows, np.ones(10)))
            assert "worker 0" in str(excinfo.value)

    def test_ring_closed_is_ring_specific(self):
        from repro.distributed import ShmRing

        ring = ShmRing(8)
        try:
            ring.mark_closed()
            with pytest.raises(RingClosed):
                ring.push(np.arange(4, dtype=np.uint64), np.arange(4, dtype=np.uint64))
        finally:
            ring.destroy()
