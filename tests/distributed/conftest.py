"""Shared fixtures for the distributed suite: a hang-proofing deadline guard.

The fault-injection contract (PR 4) is that a dead worker surfaces as
:class:`~repro.distributed.WorkerCrash` *instead of a hang* — so a regression
in that contract would, by definition, hang the test.  Every test in this
directory therefore runs under a SIGALRM deadline: a deadlocked test fails
with a :class:`TimeoutError` and a traceback pointing at the blocked wait,
rather than stalling CI until the job-level timeout kills it with no
diagnostics.  Fault tests additionally use :func:`deadline` with a tight
bound around the specific wait under test.
"""

from __future__ import annotations

import contextlib
import signal
import threading

import pytest

#: Generous per-test ceiling; any distributed test that takes this long is
#: deadlocked, not slow.
SUITE_DEADLINE_SECONDS = 120.0


def _guard_available() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextlib.contextmanager
def deadline(seconds: float):
    """Raise :class:`TimeoutError` in the calling thread after ``seconds``.

    SIGALRM-based (POSIX main thread only; a no-op elsewhere), so it fires
    even while the test is blocked inside an uninterruptible-by-pytest wait
    such as ``Queue.get()`` — which is exactly where a transport regression
    would deadlock.  Nestable: the previous handler and timer are restored on
    exit.
    """
    if not _guard_available():
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds:g}s deadline (deadlock guard)"
        )

    previous_handler = signal.signal(signal.SIGALRM, _timed_out)
    previous_delay, _ = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, previous_delay)
        signal.signal(signal.SIGALRM, previous_handler)


@pytest.fixture(autouse=True)
def _hang_guard():
    """Fail any distributed test that blocks past the suite-wide deadline."""
    with deadline(SUITE_DEADLINE_SECONDS):
        yield
