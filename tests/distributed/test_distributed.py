"""Tests for the SuperCloud model, the parallel ingest engine, and Figure 2 assembly."""

import numpy as np
import pytest

from repro.distributed import (
    ClusterConfig,
    Figure2Row,
    ParallelIngestEngine,
    SuperCloudModel,
    build_figure2_table,
    format_table,
    ingest_worker,
)


class TestClusterConfig:
    def test_paper_configuration(self):
        cfg = ClusterConfig.paper_configuration()
        assert cfg.max_nodes == 1100
        assert cfg.instances_for(1100) == 30800  # ~31,000 instances, as in the abstract
        assert abs(cfg.instances_for(1100) - 31_000) / 31_000 < 0.01

    def test_instances_scale_linearly(self):
        cfg = ClusterConfig(processes_per_node=10)
        assert cfg.instances_for(7) == 70


class TestSuperCloudModel:
    def test_aggregate_rate_point(self):
        model = SuperCloudModel()
        point = model.aggregate_rate(1.0e6, 10)
        assert point.nodes == 10
        assert point.instances == 280
        assert 0 < point.aggregate_rate <= 280 * 1.0e6
        assert 0 < point.efficiency <= 1.0

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            SuperCloudModel().aggregate_rate(1e6, 0)

    def test_scaling_is_nearly_linear(self):
        model = SuperCloudModel()
        series = model.scaling_series(1.0e6, node_counts=(1, 10, 100, 1100))
        rates = [p.aggregate_rate for p in series]
        assert rates == sorted(rates)
        # Weak scaling: 1100 nodes deliver at least 500x one node's rate.
        assert rates[-1] / rates[0] > 500

    def test_efficiency_decreases_with_scale(self):
        model = SuperCloudModel()
        e1 = model.aggregate_rate(1e6, 1).efficiency
        e1100 = model.aggregate_rate(1e6, 1100).efficiency
        assert e1100 <= e1

    def test_headline_projection_reaches_tens_of_billions(self):
        """Headline B shape check: a >1M updates/s instance rate projects to
        tens of billions of aggregate updates/s at the paper's scale."""
        model = SuperCloudModel()
        proj = model.headline_projection(2.4e6)
        assert proj["aggregate_rate"] > 5e10
        assert proj["nodes"] == 1100
        assert 0.5 < proj["ratio_to_paper"] < 2.0

    def test_nodes_needed_for(self):
        model = SuperCloudModel()
        n = model.nodes_needed_for(1e9, per_instance_rate=1.2e6)
        assert 1 <= n <= 1100
        assert model.aggregate_rate(1.2e6, n).aggregate_rate >= 1e9
        with pytest.raises(ValueError):
            model.nodes_needed_for(1e15, per_instance_rate=1e6)

    def test_scaling_point_as_dict(self):
        point = SuperCloudModel().aggregate_rate(1e6, 4)
        d = point.as_dict()
        assert d["nodes"] == 4 and "aggregate_rate" in d


class TestIngestWorker:
    def test_worker_report(self):
        report = ingest_worker(0, total_updates=20_000, batch_size=5_000, cuts=[1000, 10_000], seed=1)
        assert report.total_updates == 20_000
        assert report.updates_per_second > 0
        assert report.final_nvals > 0
        assert len(report.cascades) == 3

    def test_workers_with_different_ids_get_different_data(self):
        a = ingest_worker(0, 5_000, 1_000, [500], seed=1)
        b = ingest_worker(1, 5_000, 1_000, [500], seed=1)
        assert a.final_nvals != b.final_nvals or a.elapsed_seconds != b.elapsed_seconds


class TestParallelIngestEngine:
    def test_sequential_mode_aggregates(self):
        engine = ParallelIngestEngine(nworkers=2, cuts=[1000, 10_000], use_processes=False)
        result = engine.run(updates_per_worker=10_000, batch_size=2_000)
        assert result.nworkers == 2
        assert result.total_updates == 20_000
        assert result.aggregate_rate_sum > 0
        assert result.aggregate_rate_wall > 0
        assert result.mean_worker_rate > 0
        assert result.aggregate_rate_sum >= result.mean_worker_rate

    def test_multiprocessing_mode(self):
        engine = ParallelIngestEngine(nworkers=2, cuts=[1000], use_processes=True)
        result = engine.run(updates_per_worker=5_000, batch_size=1_000)
        assert result.total_updates == 10_000
        assert all(w.updates_per_second > 0 for w in result.workers)

    def test_measure_single_instance_rate(self):
        engine = ParallelIngestEngine(nworkers=1, cuts=[1000, 10_000], use_processes=False)
        rate = engine.measure_single_instance_rate(updates=20_000, batch_size=5_000)
        assert rate > 0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelIngestEngine(nworkers=0)


class TestFigure2Assembly:
    def test_table_contains_measured_and_published(self):
        rows = build_figure2_table({"Hierarchical GraphBLAS (measured)": 1.5e6}, server_counts=(1, 1100))
        systems = {r.system for r in rows}
        assert "Hierarchical GraphBLAS (measured)" in systems
        assert "Hierarchical D4M" in systems
        assert "Accumulo D4M" in systems
        measured = [r for r in rows if r.source == "measured+model"]
        assert len(measured) == 2

    def test_database_systems_not_extrapolated_beyond_publication(self):
        rows = build_figure2_table({}, server_counts=(1, 1100))
        cratedb_servers = [r.servers for r in rows if r.system == "CrateDB"]
        assert 1100 not in cratedb_servers

    def test_measured_series_scales_with_servers(self):
        rows = build_figure2_table({"X": 1e6}, server_counts=(1, 8, 64), include_published=False)
        rates = [r.updates_per_second for r in sorted(rows, key=lambda r: r.servers)]
        assert rates == sorted(rates)

    def test_format_table(self):
        rows = build_figure2_table({"X": 1e6}, server_counts=(1,), include_published=False)
        text = format_table(rows)
        assert "system" in text and "X" in text

    def test_row_as_dict(self):
        row = Figure2Row("X", 4, 1e6, "published")
        assert row.as_dict()["servers"] == 4
