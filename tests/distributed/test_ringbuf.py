"""Single-process property tests for the shared-memory ring buffer.

The ring is the shm transport's hot path, so its invariants are pinned down
here without any worker processes: one :class:`~repro.distributed.ShmRing`
handle plays producer and consumer (plus a thread for the blocking cases),
which makes wraparound, backpressure, and sequence-number agreement cheap to
exercise exhaustively and deterministic to debug.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import RingClosed, RingTimeout, ShmRing

from .conftest import deadline


def make_batch(start: int, n: int):
    """A recognisable (keys, bits) batch: consecutive keys, shifted bits."""
    keys = np.arange(start, start + n, dtype=np.uint64)
    bits = keys + np.uint64(10_000_000)
    return keys, bits


@pytest.fixture()
def ring():
    r = ShmRing(16)
    yield r
    r.destroy()


class TestFraming:
    def test_empty_pop_returns_none(self, ring):
        assert ring.pop() is None
        assert ring.batches_read == 0

    def test_roundtrip_one_batch(self, ring):
        keys, bits = make_batch(0, 5)
        assert ring.push(keys, bits) == 1
        out = ring.pop()
        assert out is not None
        assert np.array_equal(out[0], keys)
        assert np.array_equal(out[1], bits)
        assert out[2] == 0
        assert ring.pop() is None

    def test_frame_flags_roundtrip(self, ring):
        """The per-frame flags word (the transport's barrier marker) survives."""
        ring.push(*make_batch(0, 3), flags=0)
        ring.push(*make_batch(0, 0), flags=1)
        assert ring.pop()[2] == 0
        empty = ring.pop()
        assert empty[2] == 1 and empty[0].size == 0

    def test_empty_batch_is_a_frame(self, ring):
        """A zero-length batch still crosses as one (empty) frame."""
        keys, bits = make_batch(0, 0)
        assert ring.push(keys, bits) == 1
        out = ring.pop()
        assert out is not None and out[0].size == 0
        assert ring.batches_written == ring.batches_read == 1

    def test_key_only_frame_roundtrip(self, ring):
        """``bits=None`` publishes a key-only frame; pop hands back None."""
        keys = np.arange(6, dtype=np.uint64)
        assert ring.push(keys) == 1
        out_keys, out_bits, flags = ring.pop()
        assert out_bits is None
        assert np.array_equal(out_keys, keys)
        assert flags == 0
        assert ring.pop() is None

    def test_key_only_and_data_frames_interleave(self, ring):
        """Key-only frames coexist with data frames and keep FIFO order."""
        keys, bits = make_batch(0, 4)
        ring.push(keys)
        ring.push(keys, bits, flags=3)
        ring.push(keys[:2])
        first = ring.pop()
        assert first[1] is None and np.array_equal(first[0], keys)
        second = ring.pop()
        assert np.array_equal(second[1], bits) and second[2] == 3
        third = ring.pop()
        assert third[1] is None and third[0].size == 2

    def test_key_only_empty_frame(self, ring):
        """A zero-length key-only frame still crosses as a frame."""
        assert ring.push(np.empty(0, dtype=np.uint64), flags=1) == 1
        out = ring.pop()
        assert out[0].size == 0 and out[1] is None and out[2] == 1

    def test_key_only_capacity_accounting_unchanged(self, ring):
        """Key-only frames reserve the same slots (the copy is saved, not
        the capacity — the ring is a pair of parallel arrays)."""
        keys = np.arange(5, dtype=np.uint64)
        before = ring.write_seq
        ring.push(keys)
        assert ring.write_seq - before == keys.size + 1

    def test_key_only_split_and_wraparound(self, ring):
        """Oversized key-only batches split; every sub-frame stays key-only."""
        ring.push(*make_batch(0, 9))
        ring.pop()  # advance past the seam
        big = np.arange(40, dtype=np.uint64)
        popped = []

        def consume():
            got = 0
            while got < big.size:
                frame = ring.pop()
                if frame is None:
                    time.sleep(0.001)
                    continue
                assert frame[1] is None
                popped.append(frame[0])
                got += frame[0].size

        consumer = threading.Thread(target=consume)
        consumer.start()
        frames = ring.push(big, timeout=10)
        consumer.join()
        assert frames == len(popped) >= 3
        assert np.array_equal(np.concatenate(popped), big)

    def test_mismatched_lengths_raise(self, ring):
        with pytest.raises(ValueError):
            ring.push(np.zeros(3, dtype=np.uint64), np.zeros(2, dtype=np.uint64))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ShmRing(1)
        with pytest.raises(ValueError):
            ShmRing.attach(None)  # type: ignore[arg-type]


class TestWraparound:
    def test_frames_wrap_the_buffer_many_times(self, ring):
        """Push/pop far more slots than the capacity; data stays intact."""
        start = 0
        for i in range(50):
            n = (i % 7) + 1  # frame sizes 1..7 against capacity 16
            keys, bits = make_batch(start, n)
            assert ring.push(keys, bits) == 1
            out = ring.pop()
            assert np.array_equal(out[0], keys)
            assert np.array_equal(out[1], bits)
            start += n
        assert ring.write_seq == ring.read_seq > ring.capacity

    def test_payload_split_across_the_seam(self, ring):
        """Fill to an offset so the next payload provably wraps mid-array."""
        ring.push(*make_batch(0, 11))
        ring.pop()
        keys, bits = make_batch(100, 10)  # slots 12..22 mod 16: wraps
        ring.push(keys, bits)
        out = ring.pop()
        assert np.array_equal(out[0], keys)
        assert np.array_equal(out[1], bits)

    def test_oversized_batch_splits_into_frames(self, ring):
        """A batch larger than capacity-1 crosses as multiple frames."""
        keys, bits = make_batch(0, 40)  # capacity 16 -> frames of <= 15

        popped_keys, popped_bits = [], []

        def consume():
            got = 0
            with deadline(10):
                while got < 40:
                    out = ring.pop()
                    if out is None:
                        time.sleep(0.0005)
                        continue
                    popped_keys.append(out[0])
                    popped_bits.append(out[1])
                    got += out[0].size

        consumer = threading.Thread(target=consume)
        # The producer blocks for space mid-split, so the consumer must run
        # concurrently; SIGALRM guards live in the main thread only, hence
        # the producer runs here under the suite deadline.
        consumer.start()
        frames = ring.push(keys, bits, timeout=10)
        consumer.join(timeout=10)
        assert not consumer.is_alive()
        assert frames == len(popped_keys) == 3  # 15 + 15 + 10
        assert np.array_equal(np.concatenate(popped_keys), keys)
        assert np.array_equal(np.concatenate(popped_bits), bits)
        assert ring.batches_written == ring.batches_read == frames

    def test_odd_sized_final_chunk(self, ring):
        """Exact-multiple splits must not emit a phantom empty frame."""
        keys, bits = make_batch(0, 15)  # exactly max payload
        assert ring.push(keys, bits) == 1
        assert np.array_equal(ring.pop()[0], keys)


class TestBackpressure:
    def test_full_ring_blocks_until_consumer_drains(self, ring):
        ring.push(*make_batch(0, 14))  # 15 of 16 slots used
        state = {"done": False}

        def blocked_push():
            ring.push(*make_batch(100, 4), timeout=10)
            state["done"] = True

        producer = threading.Thread(target=blocked_push)
        producer.start()
        time.sleep(0.05)
        assert not state["done"], "push must block while the ring lacks space"
        out = ring.pop()
        assert np.array_equal(out[0], make_batch(0, 14)[0])
        producer.join(timeout=10)
        assert state["done"]
        assert np.array_equal(ring.pop()[0], make_batch(100, 4)[0])

    def test_bounded_wait_times_out(self, ring):
        ring.push(*make_batch(0, 14))
        with pytest.raises(RingTimeout):
            ring.push(*make_batch(100, 4), timeout=0.05)

    def test_closed_ring_refuses_pushes(self, ring):
        ring.push(*make_batch(0, 14))
        ring.mark_closed()
        with pytest.raises(RingClosed):
            ring.push(*make_batch(100, 4), timeout=5)
        # ...but the consumer can still drain what was already published.
        assert np.array_equal(ring.pop()[0], make_batch(0, 14)[0])

    def test_dead_consumer_detected_during_wait(self, ring):
        ring.push(*make_batch(0, 14))
        with pytest.raises(RingClosed):
            ring.push(*make_batch(100, 4), timeout=5, still_alive=lambda: False)


class TestSequenceAgreement:
    @settings(max_examples=40, deadline=None)
    @given(
        # <= 15 (one frame at capacity 16): a single thread both produces and
        # consumes, so a frame must never need concurrent draining to fit.
        sizes=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=40),
        schedule=st.lists(st.booleans(), min_size=1, max_size=120),
    )
    def test_randomized_schedule_preserves_fifo_and_counters(self, sizes, schedule):
        """Interleaved pushes/pops agree on sequence numbers and content.

        ``schedule`` drives which side acts next; pushes that would block
        (ring full) bounce to the consumer instead, so the schedule explores
        full-buffer and empty-buffer states without ever deadlocking.
        """
        ring = ShmRing(16)
        try:
            pushed, popped = [], []
            to_push = list(sizes)
            start = 0
            step = 0

            def push_next():
                nonlocal start
                n = to_push.pop(0)
                keys, bits = make_batch(start, n)
                start += n
                ring.push(keys, bits, timeout=5)
                pushed.append((keys, bits))

            while to_push or ring.used:
                want_push = bool(to_push) and schedule[step % len(schedule)]
                step += 1
                if want_push and ring.free >= min(to_push[0], 15) + 1:
                    push_next()
                    continue
                out = ring.pop()
                if out is not None:
                    popped.append(out)
                elif to_push:
                    # Ring empty and the schedule stalled: force progress.
                    push_next()
            # Producer and consumer agree: every frame written was read.
            assert ring.batches_written == ring.batches_read
            assert ring.write_seq == ring.read_seq
            assert ring.used == 0
            # ...and FIFO content survived, as one concatenated stream (the
            # transport reassembles split frames the same way).
            all_pushed = np.concatenate([k for k, _ in pushed]) if pushed else np.empty(0)
            all_popped = np.concatenate([f[0] for f in popped]) if popped else np.empty(0)
            assert np.array_equal(all_pushed, all_popped)
        finally:
            ring.destroy()

    def test_watermarks_monotone_and_attached_view_agrees(self, ring):
        """A second handle attached by name sees the same counters and data."""
        view = ShmRing.attach(ring.name)
        try:
            for i in range(5):
                ring.push(*make_batch(i * 10, 3))
                assert view.batches_written == i + 1
                out = view.pop()
                assert np.array_equal(out[0], make_batch(i * 10, 3)[0])
                assert ring.batches_read == i + 1
                assert ring.read_seq == ring.write_seq == (i + 1) * 4
        finally:
            view.close()
