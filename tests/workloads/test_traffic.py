"""Tests for synthetic traffic generation and traffic-matrix building."""

import numpy as np
import pytest

from repro.workloads import (
    PacketBatch,
    TrafficMatrixBuilder,
    int_to_ipv4,
    int_to_ipv6,
    ipv4_to_int,
    ipv6_to_int,
    subnet_of,
    synthetic_packets,
)
from repro.workloads.traffic import ipv6_upper64


class TestAddressConversions:
    def test_ipv4_roundtrip(self):
        addrs = ["192.168.1.1", "10.0.0.255", "0.0.0.0", "255.255.255.255"]
        ints = ipv4_to_int(addrs)
        assert int_to_ipv4(ints) == addrs

    def test_ipv4_known_value(self):
        assert ipv4_to_int("1.0.0.0")[0] == 2**24
        assert ipv4_to_int(["0.0.0.1"])[0] == 1

    def test_ipv4_invalid(self):
        with pytest.raises(ValueError):
            ipv4_to_int(["1.2.3"])
        with pytest.raises(ValueError):
            ipv4_to_int(["1.2.3.400"])

    def test_ipv6_roundtrip(self):
        addrs = ["2001:db8::1", "::1"]
        ints = ipv6_to_int(addrs)
        assert int_to_ipv6(ints) == ["2001:db8::1", "::1"]

    def test_ipv6_upper64_fits_uint64(self):
        vals = ipv6_upper64(["2001:db8::1"])
        assert vals.dtype == np.uint64
        assert vals[0] == (ipv6_to_int(["2001:db8::1"])[0] >> 64)

    def test_subnet_of(self):
        ip = ipv4_to_int(["10.1.2.3"])
        assert subnet_of(ip, 16)[0] == (10 << 8) | 1
        assert subnet_of(ip, 8)[0] == 10


class TestSyntheticPackets:
    def test_window_structure(self):
        batches = list(synthetic_packets(1000, 3, seed=0))
        assert len(batches) == 3
        assert all(isinstance(b, PacketBatch) for b in batches)
        assert all(b.npackets == 1000 for b in batches)
        assert [b.window for b in batches] == [0, 1, 2]

    def test_addresses_are_ipv4_range(self):
        batch = next(iter(synthetic_packets(500, seed=1)))
        assert batch.sources.max() < 2**32
        assert batch.destinations.max() < 2**32

    def test_reproducible(self):
        a = next(iter(synthetic_packets(100, seed=7)))
        b = next(iter(synthetic_packets(100, seed=7)))
        assert np.array_equal(a.sources, b.sources)

    def test_supernode_concentration(self):
        batch = next(iter(synthetic_packets(5000, supernode_fraction=0.3, seed=2)))
        _, counts = np.unique(batch.sources, return_counts=True)
        assert counts.max() > 0.25 * 5000  # the hot pair dominates

    def test_no_supernode_fraction(self):
        batch = next(iter(synthetic_packets(1000, supernode_fraction=0.0, seed=3)))
        assert batch.npackets == 1000

    def test_bytes_positive(self):
        batch = next(iter(synthetic_packets(100, seed=4)))
        assert np.all(batch.bytes > 0)


class TestTrafficMatrixBuilder:
    def test_counts_packets(self):
        builder = TrafficMatrixBuilder(cuts=[100, 1000])
        for batch in synthetic_packets(500, 4, seed=0):
            builder.observe(batch)
        assert builder.total_packets == 2000
        assert builder.windows_observed == 4
        snap = builder.snapshot()
        assert float(snap.reduce_scalar()) == 2000.0

    def test_bytes_mode(self):
        builder = TrafficMatrixBuilder(value="bytes", cuts=[100, 1000])
        batch = next(iter(synthetic_packets(100, seed=1)))
        builder.observe(batch)
        assert float(builder.snapshot().reduce_scalar()) == pytest.approx(batch.bytes.sum())

    def test_invalid_value_mode(self):
        with pytest.raises(ValueError):
            TrafficMatrixBuilder(value="flows")

    def test_observe_arrays(self):
        builder = TrafficMatrixBuilder(cuts=[10])
        builder.observe_arrays([1, 2], [3, 4], 2.0)
        assert builder.total_packets == 2
        assert builder.matrix.get(1, 3) == 2.0

    def test_updates_per_second_positive(self):
        builder = TrafficMatrixBuilder(cuts=[1000])
        builder.observe_arrays(np.arange(100), np.arange(100))
        assert builder.updates_per_second > 0

    def test_default_policy_used_when_no_cuts(self):
        builder = TrafficMatrixBuilder()
        assert builder.matrix.nlevels == 4
