"""Tests for the power-law and Kronecker workload generators."""

import numpy as np
import pytest

from repro.workloads import (
    EdgeBatch,
    degree_distribution,
    kronecker_edges,
    paper_stream,
    powerlaw_edges,
)


class TestPowerlawEdges:
    def test_shapes_and_dtype(self):
        rows, cols = powerlaw_edges(1000, seed=0)
        assert rows.shape == (1000,) and cols.shape == (1000,)
        assert rows.dtype == np.uint64 and cols.dtype == np.uint64

    def test_reproducible_with_seed(self):
        a = powerlaw_edges(500, seed=42)
        b = powerlaw_edges(500, seed=42)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        c = powerlaw_edges(500, seed=43)
        assert not np.array_equal(a[0], c[0])

    def test_coordinates_within_node_space(self):
        rows, cols = powerlaw_edges(2000, nnodes=10_000, seed=1)
        assert rows.max() < 10_000 and cols.max() < 10_000

    def test_heavy_tail(self):
        """A power-law stream concentrates many edges on few vertices."""
        rows, _ = powerlaw_edges(20_000, alpha=1.3, distinct_nodes=5000, seed=3, scatter=False)
        _, counts = np.unique(rows, return_counts=True)
        top_share = np.sort(counts)[::-1][:10].sum() / counts.sum()
        assert top_share > 0.2  # top-10 vertices carry a large share
        assert counts.size < 5000  # far fewer distinct vertices than edges

    def test_scatter_spreads_ids(self):
        raw = powerlaw_edges(100, seed=0, scatter=False)[0]
        scattered = powerlaw_edges(100, seed=0, scatter=True, nnodes=2**32)[0]
        assert scattered.max() > raw.max()

    def test_alpha_one_supported(self):
        rows, _ = powerlaw_edges(100, alpha=1.0, seed=0)
        assert rows.size == 100


class TestKronecker:
    def test_edge_count_and_range(self):
        rows, cols = kronecker_edges(scale=8, edgefactor=4, seed=0)
        assert rows.size == 4 * 256
        assert rows.max() < 256 and cols.max() < 256

    def test_reproducible(self):
        a = kronecker_edges(6, 2, seed=5)
        b = kronecker_edges(6, 2, seed=5)
        assert np.array_equal(a[0], b[0])

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            kronecker_edges(0)
        with pytest.raises(ValueError):
            kronecker_edges(63)

    def test_skewed_degree_distribution(self):
        rows, _ = kronecker_edges(scale=10, edgefactor=8, seed=1, permute=False)
        _, counts = np.unique(rows, return_counts=True)
        assert counts.max() > 5 * counts.mean()

    def test_permutation_changes_labels_not_count(self):
        a_rows, _ = kronecker_edges(6, 4, seed=7, permute=False)
        b_rows, _ = kronecker_edges(6, 4, seed=7, permute=True)
        assert a_rows.size == b_rows.size


class TestPaperStream:
    def test_batch_structure(self):
        batches = list(paper_stream(scale=0.00001, seed=0))
        assert len(batches) == 1000
        assert all(isinstance(b, EdgeBatch) for b in batches)
        assert batches[0].nedges == 1  # 1000 entries / 1000 batches
        assert batches[5].index == 5

    def test_total_entries_scaled(self):
        batches = list(paper_stream(total_entries=10_000, nbatches=10, scale=1.0, seed=0))
        assert sum(b.nedges for b in batches) == 10_000
        assert len(batches) == 10

    def test_values_are_unit(self):
        batch = next(iter(paper_stream(scale=0.00001, seed=0)))
        assert np.all(batch.values == 1.0)

    def test_deterministic_with_seed(self):
        a = [b.rows for b in paper_stream(total_entries=1000, nbatches=5, seed=9)]
        b = [b.rows for b in paper_stream(total_entries=1000, nbatches=5, seed=9)]
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_batches_differ_from_each_other(self):
        batches = list(paper_stream(total_entries=2000, nbatches=2, seed=0))
        assert not np.array_equal(batches[0].rows, batches[1].rows)


class TestDegreeDistribution:
    def test_counts_sum_to_vertices(self):
        rows = np.array([1, 1, 1, 2, 3], dtype=np.uint64)
        cols = np.zeros(5, dtype=np.uint64)
        degree, count = degree_distribution(rows, cols)
        assert degree.tolist() == [1, 3]
        assert count.tolist() == [2, 1]
