"""Tests for streaming/batching utilities and the ingest session harness."""

import numpy as np
import pytest

from repro.core import HierarchicalMatrix
from repro.workloads import IngestResult, IngestSession, RateMeter, batched, paper_stream, synthetic_packets


class TestBatched:
    def test_even_split(self):
        rows = np.arange(10, dtype=np.uint64)
        out = list(batched(rows, rows, batch_size=5))
        assert len(out) == 2
        assert out[0][0].size == 5

    def test_ragged_last_batch(self):
        rows = np.arange(7, dtype=np.uint64)
        out = list(batched(rows, rows, batch_size=3))
        assert [b[0].size for b in out] == [3, 3, 1]

    def test_default_values_are_ones(self):
        rows = np.arange(4, dtype=np.uint64)
        _, _, vals = next(iter(batched(rows, rows, batch_size=4)))
        assert np.all(vals == 1.0)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(batched(np.arange(3), np.arange(3), batch_size=0))


class TestRateMeter:
    def test_accumulates(self):
        m = RateMeter()
        m.record(100, 0.5)
        m.record(300, 0.5)
        assert m.total_updates == 400
        assert m.total_seconds == 1.0
        assert m.updates_per_second == 400.0
        assert m.per_batch_rates == [200.0, 600.0]

    def test_zero_time(self):
        m = RateMeter()
        assert m.updates_per_second == 0.0
        m.record(10, 0.0)
        assert m.per_batch_rates == [0.0]

    def test_repr(self):
        m = RateMeter()
        m.record(10, 0.1)
        assert "rate=" in repr(m)


class TestIngestSession:
    def test_run_with_edge_batches(self):
        H = HierarchicalMatrix(cuts=[1000, 10000])
        session = IngestSession(H, "hier")
        result = session.run(paper_stream(total_entries=5000, nbatches=5, seed=0))
        assert isinstance(result, IngestResult)
        assert result.total_updates == 5000
        assert result.batches == 5
        assert result.updates_per_second > 0
        assert result.system == "hier"
        assert "cascades" in result.metadata

    def test_run_with_packet_batches(self):
        H = HierarchicalMatrix(cuts=[1000])
        result = IngestSession(H, "traffic").run(synthetic_packets(200, 3, seed=1))
        assert result.total_updates == 600

    def test_run_with_plain_tuples(self):
        H = HierarchicalMatrix(cuts=[100])
        tuples = [(np.arange(10), np.arange(10), np.ones(10)) for _ in range(3)]
        result = IngestSession(H, "tuples").run(tuples)
        assert result.total_updates == 30

    def test_max_batches(self):
        H = HierarchicalMatrix(cuts=[100])
        result = IngestSession(H, "h").run(
            paper_stream(total_entries=10_000, nbatches=10, seed=0), max_batches=3
        )
        assert result.batches == 3

    def test_ingest_returns_elapsed(self):
        H = HierarchicalMatrix(cuts=[100])
        session = IngestSession(H)
        elapsed = session.ingest(np.arange(10), np.arange(10))
        assert elapsed >= 0
        assert session.meter.total_updates == 10
        assert session.ingestor is H

    def test_as_row_flattens(self):
        H = HierarchicalMatrix(cuts=[100])
        result = IngestSession(H, "x").run(paper_stream(total_entries=1000, nbatches=2, seed=0))
        row = result.as_row()
        assert row["system"] == "x"
        assert row["total_updates"] == 1000

    def test_works_with_baseline_without_stats(self):
        from repro.baselines import FlatGraphBLASIngestor

        result = IngestSession(FlatGraphBLASIngestor(), "flat").run(
            paper_stream(total_entries=1000, nbatches=2, seed=0)
        )
        assert result.metadata == {}
        assert result.total_updates == 1000
