"""Tests for D4M associative arrays."""

import numpy as np
import pytest

from repro.d4m import Assoc
from repro.graphblas import Matrix


class TestConstruction:
    def test_basic_triples(self):
        A = Assoc(["r1", "r2"], ["c1", "c2"], [1.0, 2.0])
        assert A.nnz == 2
        assert A.shape == (2, 2)
        assert A["r1", "c1"] == 1.0

    def test_duplicates_sum(self):
        A = Assoc(["r", "r"], ["c", "c"], [1.0, 2.0])
        assert A.nnz == 1
        assert A.getval("r", "c") == 3.0

    def test_scalar_value_broadcast(self):
        A = Assoc(["a", "b"], ["x", "y"], 1.0)
        assert A.getval("b", "y") == 1.0

    def test_numeric_keys(self):
        A = Assoc([10, 2], [1, 1], [1.0, 2.0])
        assert A.getval(10, 1) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Assoc(["a"], ["x", "y"], [1.0])
        with pytest.raises(ValueError):
            Assoc(["a", "b"], ["x", "y"], [1.0])

    def test_empty(self):
        A = Assoc.empty()
        assert A.nnz == 0
        assert not A

    def test_from_matrix(self):
        M = Matrix.from_coo([0, 1], [0, 1], [1.0, 2.0], nrows=2, ncols=2)
        A = Assoc.from_matrix(M, ["a", "b"], ["x", "y"])
        assert A.getval("b", "y") == 2.0
        with pytest.raises(ValueError):
            Assoc.from_matrix(M, ["a"], ["x", "y"])

    def test_single_key_access_missing(self):
        A = Assoc(["a"], ["x"], [1.0])
        assert A.getval("q", "x") is None
        assert A.getval("a", "q") is None
        assert ("a", "x") in A and ("q", "x") not in A


class TestFindAndIteration:
    def test_find_returns_keys(self):
        A = Assoc(["r2", "r1"], ["c2", "c1"], [2.0, 1.0])
        rk, ck, v = A.find()
        assert rk.tolist() == ["r1", "r2"]
        assert ck.tolist() == ["c1", "c2"]
        assert v.tolist() == [1.0, 2.0]

    def test_iteration(self):
        A = Assoc(["a"], ["x"], [3.0])
        assert list(A) == [("a", "x", 3.0)]

    def test_display(self):
        A = Assoc(["a", "b"], ["x", "y"], [1.0, 2.0])
        text = A.display(max_triples=1)
        assert "2 triples" in text and "more" in text


class TestAlgebra:
    def test_addition_union_of_keys(self):
        A = Assoc(["a", "b"], ["x", "y"], [1.0, 2.0])
        B = Assoc(["b", "c"], ["y", "z"], [10.0, 3.0])
        C = A + B
        assert C.nnz == 3
        assert C.getval("b", "y") == 12.0
        assert C.getval("a", "x") == 1.0
        assert C.getval("c", "z") == 3.0
        assert sorted(C.row) == ["a", "b", "c"]

    def test_addition_identity_like(self):
        A = Assoc(["a"], ["x"], [1.0])
        B = A + Assoc.empty()
        assert B.getval("a", "x") == 1.0

    def test_and_or(self):
        A = Assoc(["a", "b"], ["x", "y"], [5.0, 2.0])
        B = Assoc(["a", "c"], ["x", "z"], [3.0, 9.0])
        assert (A & B).getval("a", "x") == 3.0
        assert (A & B).nnz == 1
        assert (A | B).getval("a", "x") == 5.0
        assert (A | B).nnz == 3

    def test_multiply_elementwise(self):
        A = Assoc(["a"], ["x"], [4.0])
        B = Assoc(["a"], ["x"], [2.5])
        assert A.multiply(B).getval("a", "x") == 10.0

    def test_equality(self):
        A = Assoc(["a"], ["x"], [1.0])
        B = Assoc(["a"], ["x"], [1.0])
        C = Assoc(["a"], ["x"], [2.0])
        assert A == B
        assert A != C

    def test_transpose(self):
        A = Assoc(["a"], ["x"], [1.0])
        assert A.T.getval("x", "a") == 1.0
        assert A.transpose().transpose() == A

    def test_sqin_sqout(self):
        A = Assoc(["s1", "s1", "s2"], ["d1", "d2", "d1"], [1.0, 1.0, 1.0])
        sq_in = A.sqin()   # column-column correlation
        assert sq_in.getval("d1", "d1") == 2.0
        assert sq_in.getval("d1", "d2") == 1.0
        sq_out = A.sqout()  # row-row correlation
        assert sq_out.getval("s1", "s1") == 2.0
        assert sq_out.getval("s1", "s2") == 1.0

    def test_sums(self):
        A = Assoc(["a", "a", "b"], ["x", "y", "x"], [1.0, 2.0, 3.0])
        col_sums = A.sum_rows()
        assert col_sums.getval("sum", "x") == 4.0
        row_sums = A.sum_cols()
        assert row_sums.getval("a", "sum") == 3.0

    def test_logical(self):
        A = Assoc(["a", "b"], ["x", "y"], [5.0, 9.0])
        L = A.logical()
        assert L.getval("a", "x") == 1.0
        assert L.getval("b", "y") == 1.0

    def test_memory_usage(self):
        assert Assoc(["a"], ["x"], [1.0]).memory_usage > 0


class TestSubscripting:
    @pytest.fixture
    def traffic(self):
        return Assoc(
            ["10.0.0.1", "10.0.0.2", "192.168.1.1", "10.0.0.1"],
            ["8.8.8.8", "8.8.4.4", "8.8.8.8", "1.1.1.1"],
            [5.0, 3.0, 2.0, 7.0],
        )

    def test_subsref_by_key_list(self, traffic):
        sub = traffic.subsref(["10.0.0.1"], None)
        assert sub.nnz == 2
        assert sub.getval("10.0.0.1", "1.1.1.1") == 7.0

    def test_subsref_prefix_pattern(self, traffic):
        sub = traffic["10.0.0.*", :]
        assert sub.nnz == 3
        assert "192.168.1.1" not in sub.row

    def test_subsref_range(self, traffic):
        sub = traffic.subsref(("10.0.0.1", "10.0.0.2"), None)
        assert sub.nnz == 3

    def test_subsref_columns(self, traffic):
        sub = traffic.subsref(None, ["8.8.8.8"])
        assert sub.nnz == 2

    def test_subsref_no_match(self, traffic):
        sub = traffic.subsref(["7.7.7.7"], None)
        assert sub.nnz == 0

    def test_getitem_slice_everything(self, traffic):
        sub = traffic[:, :]
        assert sub.nnz == traffic.nnz
