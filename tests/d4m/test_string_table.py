"""Tests for the sorted string key table."""

import numpy as np
import pytest

from repro.d4m import StringTable


class TestBasics:
    def test_sorted_and_deduplicated(self):
        t = StringTable(["b", "a", "b", "c"])
        assert list(t) == ["a", "b", "c"]
        assert len(t) == 3

    def test_empty(self):
        t = StringTable()
        assert len(t) == 0
        assert "x" not in t
        assert t.lookup(["x"])[0] == -1

    def test_numeric_keys_stringified(self):
        t = StringTable([3, 1, 2])
        assert list(t) == ["1", "2", "3"]
        assert 2 in t

    def test_contains_and_getitem(self):
        t = StringTable(["x", "y"])
        assert "x" in t and "z" not in t
        assert t[0] == "x"

    def test_equality(self):
        assert StringTable(["a", "b"]) == StringTable(["b", "a"])
        assert StringTable(["a"]) != StringTable(["b"])

    def test_repr(self):
        assert "n=2" in repr(StringTable(["a", "b"]))


class TestLookup:
    def test_lookup_found_and_missing(self):
        t = StringTable(["alpha", "beta", "gamma"])
        out = t.lookup(["beta", "delta", "alpha"])
        assert out.tolist() == [1, -1, 0]

    def test_require_raises_on_missing(self):
        t = StringTable(["a"])
        assert t.require(["a"]).tolist() == [0]
        with pytest.raises(KeyError):
            t.require(["a", "zzz"])


class TestUnion:
    def test_union_maps_are_correct(self):
        a = StringTable(["a", "c"])
        b = StringTable(["b", "c"])
        merged, amap, bmap = a.union(b)
        assert list(merged) == ["a", "b", "c"]
        assert merged.keys[amap].tolist() == ["a", "c"]
        assert merged.keys[bmap].tolist() == ["b", "c"]

    def test_union_with_empty(self):
        a = StringTable(["a"])
        e = StringTable()
        merged, amap, emap = a.union(e)
        assert merged == a and amap.tolist() == [0] and emap.size == 0
        merged2, emap2, amap2 = e.union(a)
        assert merged2 == a and amap2.tolist() == [0]


class TestSelection:
    def test_select_range_inclusive(self):
        t = StringTable(["a", "b", "c", "d"])
        assert t.keys[t.select_range("b", "c")].tolist() == ["b", "c"]

    def test_startswith(self):
        t = StringTable(["10.0.0.1", "10.0.0.2", "10.1.0.1", "192.168.0.1"])
        idx = t.startswith("10.0.")
        assert t.keys[idx].tolist() == ["10.0.0.1", "10.0.0.2"]

    def test_startswith_no_match(self):
        t = StringTable(["abc"])
        assert t.startswith("zzz").size == 0

    def test_take(self):
        t = StringTable(["a", "b", "c"])
        assert list(t.take([2, 0])) == ["a", "c"]
