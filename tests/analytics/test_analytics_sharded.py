"""Analytics on sharded matrices fed through the stream protocol.

The analytics suites previously only exercised flat matrices; these tests feed
a :class:`ShardedHierarchicalMatrix` real packet streams via the shared batch
protocol (``ingest``/``normalize_batch``) and assert that every analysis —
degree summaries, supernode reports, gravity/background models, anomaly
scoring — matches the flat reference exactly, on both the incremental fast
path and the forced-materialize path.
"""

import numpy as np
import pytest

from repro.analytics import (
    anomaly_scores,
    degree_summary,
    fan_out,
    gravity_model,
    in_degree,
    out_degree,
    residual_matrix,
    supernode_report,
    top_anomalies,
    top_destinations,
    top_sources,
    total_traffic,
    traffic_share,
)
from repro.core import HierarchicalMatrix
from repro.distributed import ShardedHierarchicalMatrix
from repro.graphblas.errors import InvalidValue
from repro.workloads import synthetic_packets

CUTS = [500, 5_000]


@pytest.fixture(scope="module")
def stream_pair():
    """A sharded matrix fed via the stream protocol plus its flat reference."""
    flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
    for batch in synthetic_packets(2_000, 3, seed=9):
        flat.update(batch.sources, batch.destinations, 1.0)
    sharded = ShardedHierarchicalMatrix(3, cuts=CUTS)
    n = sharded.ingest(synthetic_packets(2_000, 3, seed=9))
    assert n == 6_000
    yield sharded, flat
    sharded.close()


class TestDegreesOnSharded:
    def test_degree_summary_matches_flat(self, stream_pair):
        sharded, flat = stream_pair
        assert degree_summary(sharded) == degree_summary(flat)

    def test_degree_vectors_match(self, stream_pair):
        sharded, flat = stream_pair
        assert out_degree(sharded).isequal(out_degree(flat))
        assert in_degree(sharded).isequal(in_degree(flat))
        assert fan_out(sharded).isequal(fan_out(flat))

    def test_total_traffic(self, stream_pair):
        sharded, _ = stream_pair
        assert total_traffic(sharded) == 6_000.0

    def test_incremental_equals_materialized_path(self, stream_pair):
        sharded, _ = stream_pair
        fast = out_degree(sharded, materialized=False)
        slow = out_degree(sharded, materialized=True)
        assert fast.isequal(slow)
        assert degree_summary(sharded, materialized=False) == degree_summary(
            sharded, materialized=True
        )

    def test_materialized_false_raises_on_plain_matrix(self, stream_pair):
        _, flat = stream_pair
        with pytest.raises(InvalidValue):
            out_degree(flat.materialize(), materialized=False)


class TestSupernodesOnSharded:
    def test_report_matches_flat(self, stream_pair):
        sharded, flat = stream_pair
        assert supernode_report(sharded, 5) == supernode_report(flat, 5)

    def test_top_k_both_paths(self, stream_pair):
        sharded, _ = stream_pair
        assert top_sources(sharded, 3, materialized=False) == top_sources(
            sharded, 3, materialized=True
        )
        assert top_destinations(sharded, 3) == top_destinations(
            sharded, 3, materialized=True
        )

    def test_share_is_concentrated(self, stream_pair):
        sharded, _ = stream_pair
        src_share, dst_share = traffic_share(sharded, 10)
        assert 0 < src_share <= 1.0 and 0 < dst_share <= 1.0


class TestBackgroundOnSharded:
    def test_gravity_model_matches_flat(self, stream_pair):
        sharded, flat = stream_pair
        assert gravity_model(sharded).isequal(gravity_model(flat))

    def test_gravity_incremental_marginals_equal_materialized(self, stream_pair):
        sharded, _ = stream_pair
        assert gravity_model(sharded, materialized=False).isequal(
            gravity_model(sharded, materialized=True)
        )

    def test_residuals_and_anomalies_match_flat(self, stream_pair):
        sharded, flat = stream_pair
        assert residual_matrix(sharded).isequal(residual_matrix(flat))
        assert anomaly_scores(sharded).isequal(anomaly_scores(flat))
        assert top_anomalies(sharded, 5) == top_anomalies(flat, 5)


class TestProcessBackedAnalytics:
    def test_stats_through_worker_processes(self):
        flat = HierarchicalMatrix(2 ** 32, 2 ** 32, cuts=CUTS)
        for batch in synthetic_packets(1_000, 2, seed=4):
            flat.update(batch.sources, batch.destinations, 1.0)
        with ShardedHierarchicalMatrix(
            2, cuts=CUTS, use_processes=True
        ) as sharded:
            sharded.ingest(synthetic_packets(1_000, 2, seed=4))
            assert degree_summary(sharded) == degree_summary(flat)
            assert supernode_report(sharded, 3) == supernode_report(flat, 3)
