"""Tests for the traffic-matrix analytics (degrees, supernodes, background models, windows)."""

import numpy as np
import pytest

from repro.analytics import (
    WindowedAnalyzer,
    anomaly_scores,
    degree_summary,
    fan_in,
    fan_out,
    gravity_model,
    in_degree,
    out_degree,
    residual_matrix,
    supernode_report,
    top_anomalies,
    top_destinations,
    top_sources,
    total_traffic,
    traffic_share,
)
from repro.core import HierarchicalMatrix
from repro.graphblas import Matrix
from repro.workloads import synthetic_packets


@pytest.fixture
def traffic_matrix():
    # Source 10 sends 6 packets to two destinations; source 20 sends 1.
    return Matrix.from_coo(
        [10, 10, 20],
        [100, 200, 100],
        [4.0, 2.0, 1.0],
        nrows=2**32,
        ncols=2**32,
    )


class TestDegrees:
    def test_out_degree_weighted(self, traffic_matrix):
        deg = out_degree(traffic_matrix)
        assert deg[10] == 6.0
        assert deg[20] == 1.0

    def test_out_degree_unweighted_is_fanout(self, traffic_matrix):
        assert fan_out(traffic_matrix)[10] == 2.0
        assert out_degree(traffic_matrix, weighted=False)[20] == 1.0

    def test_in_degree(self, traffic_matrix):
        assert in_degree(traffic_matrix)[100] == 5.0
        assert fan_in(traffic_matrix)[100] == 2.0

    def test_total_traffic(self, traffic_matrix):
        assert total_traffic(traffic_matrix) == 7.0

    def test_degree_summary_fields(self, traffic_matrix):
        s = degree_summary(traffic_matrix)
        assert s["nnz"] == 3
        assert s["total_traffic"] == 7.0
        assert s["active_sources"] == 2
        assert s["active_destinations"] == 2
        assert s["max_out_degree"] == 6.0
        assert s["max_in_degree"] == 5.0

    def test_accepts_hierarchical_matrix(self):
        H = HierarchicalMatrix(cuts=[2, 10])
        H.update([1, 2, 3], [4, 5, 6], [1.0, 2.0, 3.0])
        assert total_traffic(H) == 6.0
        assert out_degree(H)[3] == 3.0

    def test_empty_matrix(self):
        empty = Matrix("fp64", 100, 100)
        s = degree_summary(empty)
        assert s["nnz"] == 0 and s["max_out_degree"] == 0.0


class TestSupernodes:
    def test_top_sources_ordering(self, traffic_matrix):
        top = top_sources(traffic_matrix, 2)
        assert top[0].identifier == 10
        assert top[0].traffic == 6.0
        assert top[0].fan == 2
        assert top[0].side == "source"
        assert top[1].identifier == 20

    def test_top_destinations(self, traffic_matrix):
        top = top_destinations(traffic_matrix, 1)
        assert top[0].identifier == 100
        assert top[0].traffic == 5.0

    def test_traffic_share(self, traffic_matrix):
        src_share, dst_share = traffic_share(traffic_matrix, 1)
        assert src_share == pytest.approx(6.0 / 7.0)
        assert dst_share == pytest.approx(5.0 / 7.0)

    def test_empty_matrix_share(self):
        assert traffic_share(Matrix("fp64", 10, 10)) == (0.0, 0.0)
        assert top_sources(Matrix("fp64", 10, 10)) == []

    def test_report_structure(self, traffic_matrix):
        report = supernode_report(traffic_matrix, 2)
        assert len(report["top_sources"]) == 2
        assert 0 < report["top_source_share"] <= 1.0

    def test_powerlaw_traffic_is_concentrated(self):
        H = HierarchicalMatrix(cuts=[10_000])
        for batch in synthetic_packets(5000, 2, alpha=1.3, seed=0):
            H.update(batch.sources, batch.destinations, 1.0)
        src_share, _ = traffic_share(H, 10)
        assert src_share > 0.2


class TestBackgroundModel:
    def test_gravity_model_preserves_marginals_shape(self, traffic_matrix):
        G = gravity_model(traffic_matrix)
        assert G.nvals == traffic_matrix.nvals
        # Rank-1 model: expected(10,100) = 6*5/7
        assert G[10, 100] == pytest.approx(30.0 / 7.0)

    def test_gravity_model_total_leq_observed_total(self, traffic_matrix):
        G = gravity_model(traffic_matrix)
        assert float(G.reduce_scalar()) <= total_traffic(traffic_matrix) + 1e-9

    def test_residuals_sum_structure(self, traffic_matrix):
        R = residual_matrix(traffic_matrix)
        assert R[10, 100] == pytest.approx(4.0 - 30.0 / 7.0)

    def test_anomaly_scores_flag_unexpected_pair(self):
        # Traffic that exactly follows the gravity (product-form) model ...
        rows, cols, vals = [], [], []
        for i in range(5):
            for j in range(5):
                rows.append(i)
                cols.append(j)
                vals.append(float((i + 1) * (j + 1)))
        # ... plus one pair carrying far more than the model predicts.
        vals[2 * 5 + 3] += 20.0  # pair (2, 3)
        M = Matrix.from_coo(rows, cols, vals, nrows=100, ncols=100)
        top = top_anomalies(M, 1)
        assert top[0][:2] == (2, 3)
        scores = anomaly_scores(M)
        assert scores[2, 3] > 0

    def test_empty_matrix(self):
        empty = Matrix("fp64", 10, 10)
        assert gravity_model(empty).nvals == 0
        assert anomaly_scores(empty).nvals == 0
        assert top_anomalies(empty) == []

    def test_accepts_hierarchical(self):
        H = HierarchicalMatrix(cuts=[2])
        H.update([1, 2], [3, 4], [1.0, 2.0])
        assert gravity_model(H).nvals == 2


class TestWindowedAnalyzer:
    def test_snapshots_every_interval(self):
        analyzer = WindowedAnalyzer(cuts=[500, 5000], analysis_interval=2, top_k=3)
        snaps = []
        for batch in synthetic_packets(300, 6, seed=1):
            snap = analyzer.ingest(batch)
            if snap is not None:
                snaps.append(snap)
        assert len(snaps) == 3
        assert analyzer.packets_ingested == 1800
        assert snaps[-1].packets_ingested == 1800
        assert len(snaps[-1].supernodes["top_sources"]) <= 3
        assert snaps[0].summary["total_traffic"] == pytest.approx(600.0)

    def test_explicit_analyze(self):
        analyzer = WindowedAnalyzer(cuts=[100], analysis_interval=100)
        for batch in synthetic_packets(100, 2, seed=2):
            analyzer.ingest(batch)
        snap = analyzer.analyze()
        assert snap.packets_ingested == 200
        assert len(analyzer.snapshots) == 1

    def test_streaming_continues_after_analysis(self):
        analyzer = WindowedAnalyzer(cuts=[50], analysis_interval=1)
        batches = list(synthetic_packets(100, 3, seed=3))
        for batch in batches:
            analyzer.ingest(batch)
        totals = [s.summary["total_traffic"] for s in analyzer.snapshots]
        assert totals == sorted(totals)
        assert totals[-1] == pytest.approx(300.0)
