"""Synthetic IP network traffic and origin-destination traffic matrices.

The paper's motivating application is building origin-destination traffic
matrices from streaming network data: for IPv4 the matrix is
:math:`2^{32} \\times 2^{32}`, for IPv6 :math:`2^{64} \\times 2^{64}`, so a
hypersparse representation is mandatory.  Real traffic captures are not
available offline, so this module synthesises packet streams with the
statistical features that matter for the benchmark — heavy-tailed source and
destination popularity (supernodes), a small set of "background" flows, and
Poisson-like per-window volumes — and provides the conversions between dotted
IP strings, integers and subnets used by the analytics layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..core import HierarchicalMatrix
from .powerlaw import _splitmix64, _zipf_ranks

__all__ = [
    "ipv4_to_int",
    "int_to_ipv4",
    "ipv6_to_int",
    "int_to_ipv6",
    "subnet_of",
    "PacketBatch",
    "synthetic_packets",
    "TrafficMatrixBuilder",
]


# --------------------------------------------------------------------------- #
# address conversions
# --------------------------------------------------------------------------- #


def ipv4_to_int(addresses) -> np.ndarray:
    """Convert dotted-quad IPv4 strings to uint64 integers (vectorised)."""
    if isinstance(addresses, str):
        addresses = [addresses]
    out = np.empty(len(addresses), dtype=np.uint64)
    for i, addr in enumerate(addresses):
        parts = addr.split(".")
        if len(parts) != 4:
            raise ValueError(f"not an IPv4 address: {addr!r}")
        value = 0
        for p in parts:
            octet = int(p)
            if octet < 0 or octet > 255:
                raise ValueError(f"invalid octet in {addr!r}")
            value = (value << 8) | octet
        out[i] = value
    return out


def int_to_ipv4(values) -> list:
    """Convert uint64 integers back to dotted-quad IPv4 strings."""
    arr = np.asarray(values, dtype=np.uint64).ravel()
    out = []
    for v in arr.tolist():
        out.append(".".join(str((v >> shift) & 0xFF) for shift in (24, 16, 8, 0)))
    return out


def ipv6_to_int(addresses) -> list:
    """Convert IPv6 strings to Python ints (128-bit values do not fit uint64).

    The traffic-matrix convention of the paper folds IPv6 into a
    :math:`2^{64} \\times 2^{64}` matrix by using the upper 64 bits (the routing
    prefix + subnet) as the coordinate; :func:`ipv6_upper64` does that fold.
    """
    import ipaddress

    if isinstance(addresses, str):
        addresses = [addresses]
    return [int(ipaddress.IPv6Address(a)) for a in addresses]


def int_to_ipv6(values) -> list:
    """Convert Python ints back to IPv6 strings."""
    import ipaddress

    return [str(ipaddress.IPv6Address(int(v))) for v in np.asarray(values, dtype=object).ravel()]


def ipv6_upper64(addresses) -> np.ndarray:
    """Fold IPv6 addresses to their upper 64 bits as uint64 coordinates."""
    ints = ipv6_to_int(addresses)
    return np.asarray([v >> 64 for v in ints], dtype=np.uint64)


def subnet_of(values, prefix_len: int = 16) -> np.ndarray:
    """Map IPv4 integer addresses to their /prefix_len subnet identifier."""
    arr = np.asarray(values, dtype=np.uint64)
    shift = np.uint64(32 - prefix_len)
    return (arr >> shift).astype(np.uint64)


# --------------------------------------------------------------------------- #
# synthetic packet streams
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PacketBatch:
    """One observation window of synthetic traffic.

    Attributes
    ----------
    window:
        0-based window index.
    sources, destinations:
        Per-packet IPv4 addresses as uint64 integers.
    bytes:
        Per-packet byte counts.
    """

    window: int
    sources: np.ndarray
    destinations: np.ndarray
    bytes: np.ndarray

    @property
    def npackets(self) -> int:
        """Number of packets in the window."""
        return int(self.sources.size)


def synthetic_packets(
    npackets: int,
    nwindows: int = 1,
    *,
    nsources: int = 2 ** 20,
    ndestinations: int = 2 ** 20,
    alpha: float = 1.2,
    supernode_fraction: float = 0.1,
    seed: Optional[int] = None,
) -> Iterator[PacketBatch]:
    """Generate a stream of synthetic packet windows.

    Source and destination popularity follow a power law (so a handful of
    "supernodes" dominate, as in real Internet traffic); a configurable
    fraction of packets is concentrated onto the single most popular pair to
    emulate background flows; byte counts are drawn from a log-normal.

    Parameters
    ----------
    npackets:
        Packets per window.
    nwindows:
        Number of windows to yield.
    nsources, ndestinations:
        Distinct address pools for each side.
    alpha:
        Power-law exponent of address popularity.
    supernode_fraction:
        Fraction of packets redirected to the top source/destination pair.
    seed:
        RNG seed.
    """
    rng = np.random.default_rng(seed)
    for w in range(nwindows):
        src_rank = _zipf_ranks(rng, npackets, alpha, nsources)
        dst_rank = _zipf_ranks(rng, npackets, alpha, ndestinations)
        if supernode_fraction > 0:
            hot = rng.random(npackets) < supernode_fraction
            src_rank[hot] = 0
            dst_rank[hot] = 0
        sources = _splitmix64(src_rank) % np.uint64(2 ** 32)
        destinations = _splitmix64(dst_rank + np.uint64(nsources)) % np.uint64(2 ** 32)
        nbytes = np.exp(rng.normal(6.0, 1.0, npackets)).astype(np.float64)
        yield PacketBatch(w, sources, destinations, nbytes)


# --------------------------------------------------------------------------- #
# traffic-matrix construction
# --------------------------------------------------------------------------- #


class TrafficMatrixBuilder:
    """Builds an origin-destination traffic matrix from packet streams.

    The builder owns a :class:`~repro.core.HierarchicalMatrix` over the IPv4
    address space (or any space the caller chooses) and exposes the two
    operations a network-monitoring pipeline needs: ``observe`` to ingest a
    window of packets at streaming rates, and ``snapshot`` to materialise the
    matrix for analysis.

    Parameters
    ----------
    value:
        What to accumulate per packet: ``"packets"`` adds 1 per packet,
        ``"bytes"`` adds the packet's byte count.
    cuts / policy / nrows / ncols:
        Forwarded to :class:`HierarchicalMatrix`.

    Examples
    --------
    >>> builder = TrafficMatrixBuilder(cuts=[1000, 100000])
    >>> for batch in synthetic_packets(10000, 3, seed=1):
    ...     builder.observe(batch)
    >>> builder.total_packets
    30000
    """

    def __init__(
        self,
        *,
        value: str = "packets",
        nrows: int = 2 ** 32,
        ncols: int = 2 ** 32,
        cuts: Optional[Sequence[int]] = None,
        policy=None,
    ):
        if value not in ("packets", "bytes"):
            raise ValueError(f"value must be 'packets' or 'bytes', got {value!r}")
        self._value = value
        kwargs = {}
        if cuts is not None:
            kwargs["cuts"] = cuts
        if policy is not None:
            kwargs["policy"] = policy
        self._matrix = HierarchicalMatrix(nrows, ncols, "fp64", **kwargs)
        self._total_packets = 0
        self._windows = 0

    @property
    def matrix(self) -> HierarchicalMatrix:
        """The underlying hierarchical hypersparse matrix."""
        return self._matrix

    @property
    def total_packets(self) -> int:
        """Number of packets observed so far."""
        return self._total_packets

    @property
    def windows_observed(self) -> int:
        """Number of windows ingested."""
        return self._windows

    def observe(self, batch: PacketBatch) -> None:
        """Ingest one window of packets into the traffic matrix."""
        values = 1.0 if self._value == "packets" else batch.bytes
        self._matrix.update(batch.sources, batch.destinations, values)
        self._total_packets += batch.npackets
        self._windows += 1

    def observe_arrays(self, sources, destinations, values=1.0) -> None:
        """Ingest raw coordinate arrays (for callers not using PacketBatch)."""
        src = np.asarray(sources)
        self._matrix.update(src, destinations, values)
        self._total_packets += int(src.size)
        self._windows += 1

    def snapshot(self):
        """Materialise the traffic matrix for analysis (layers stay intact)."""
        return self._matrix.materialize()

    @property
    def updates_per_second(self) -> float:
        """Measured ingest rate so far."""
        stats = self._matrix.stats
        return stats.updates_per_second if stats is not None else 0.0
