"""Streaming utilities: batching, rate measurement, and ingest sessions.

The benchmark harness measures "updates per second" the way the paper does:
total element updates divided by the wall-clock time spent updating, for any
object exposing an ``update(rows, cols, values)`` method (hierarchical
matrices, flat matrices, D4M baselines, database emulations).  The
:class:`IngestSession` wraps that protocol so every system is measured
identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Protocol, Tuple

import numpy as np

__all__ = [
    "batched",
    "interleave",
    "normalize_batch",
    "RateMeter",
    "IngestResult",
    "IngestSession",
    "Ingestor",
]


class Ingestor(Protocol):
    """Anything that can absorb a batch of coordinate updates."""

    def update(self, rows, cols, values=1) -> object:  # pragma: no cover - protocol
        ...


def batched(
    rows: np.ndarray,
    cols: np.ndarray,
    values: Optional[np.ndarray] = None,
    *,
    batch_size: int,
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Split coordinate arrays into contiguous batches of ``batch_size``.

    The last batch may be smaller.  Views (not copies) are yielded.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    n = rows.size
    if values is None:
        values = np.ones(n, dtype=np.float64)
    for start in range(0, n, batch_size):
        stop = min(start + batch_size, n)
        yield rows[start:stop], cols[start:stop], values[start:stop]


def interleave(*streams: Iterable, seed: Optional[int] = None) -> Iterator:
    """Merge several batch streams into one, round-robin or randomized.

    Models many independent clients feeding one ingest point (the gateway's
    workload shape): without ``seed`` the streams are drained round-robin;
    with it, each batch comes from a uniformly random still-live stream.
    Exhausted streams drop out until all are drained.  For an associative,
    commutative accumulator (``plus`` over exactly representable values) the
    ingested result is independent of the interleaving — which is exactly why
    the soak tests can compare any concurrent client schedule against a flat
    reference fed this merged stream.
    """
    iterators: List[Iterator] = [iter(s) for s in streams]
    rng = np.random.default_rng(seed) if seed is not None else None
    while iterators:
        if rng is None:
            for it in list(iterators):
                try:
                    yield next(it)
                except StopIteration:
                    iterators.remove(it)
        else:
            it = iterators[int(rng.integers(len(iterators)))]
            try:
                yield next(it)
            except StopIteration:
                iterators.remove(it)


def normalize_batch(batch) -> Tuple[np.ndarray, np.ndarray, object]:
    """Coerce any supported stream batch to ``(rows, cols, values)``.

    Accepts :class:`~repro.workloads.powerlaw.EdgeBatch` (``rows``/``cols``),
    :class:`~repro.workloads.traffic.PacketBatch` (``sources`` count as rows,
    each packet adds 1), or plain ``(rows, cols[, values])`` tuples — the one
    batch protocol shared by :class:`IngestSession` and the sharded engine.
    """
    if hasattr(batch, "rows"):
        return batch.rows, batch.cols, batch.values
    if hasattr(batch, "sources"):
        return batch.sources, batch.destinations, 1.0
    if len(batch) == 2:
        rows, cols = batch
        return rows, cols, 1.0
    rows, cols, values = batch
    return rows, cols, values


class RateMeter:
    """Accumulates (updates, seconds) observations and reports rates."""

    def __init__(self) -> None:
        self._updates = 0
        self._seconds = 0.0
        self._samples: List[Tuple[int, float]] = []

    def record(self, nupdates: int, seconds: float) -> None:
        """Add one observation."""
        self._updates += int(nupdates)
        self._seconds += float(seconds)
        self._samples.append((int(nupdates), float(seconds)))

    @property
    def total_updates(self) -> int:
        """Total updates across all observations."""
        return self._updates

    @property
    def total_seconds(self) -> float:
        """Total wall-clock seconds across all observations."""
        return self._seconds

    @property
    def updates_per_second(self) -> float:
        """Aggregate updates per second (0.0 before any time has elapsed)."""
        if self._seconds <= 0:
            return 0.0
        return self._updates / self._seconds

    @property
    def per_batch_rates(self) -> List[float]:
        """Updates/second of each individual observation."""
        return [n / s if s > 0 else 0.0 for n, s in self._samples]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RateMeter(updates={self._updates}, seconds={self._seconds:.3f}, "
            f"rate={self.updates_per_second:,.0f}/s)"
        )


@dataclass
class IngestResult:
    """Outcome of one ingest session.

    Attributes
    ----------
    system:
        Label of the system under test (e.g. ``"hierarchical-graphblas"``).
    total_updates:
        Number of element updates streamed.
    elapsed_seconds:
        Wall-clock time spent inside ``update`` calls.
    updates_per_second:
        ``total_updates / elapsed_seconds``.
    batches:
        Number of batches streamed.
    metadata:
        Free-form extra information (cut values, layer sizes, ...).
    """

    system: str
    total_updates: int
    elapsed_seconds: float
    updates_per_second: float
    batches: int
    metadata: dict = field(default_factory=dict)

    def as_row(self) -> dict:
        """Flat dict convenient for tabular reports."""
        row = {
            "system": self.system,
            "total_updates": self.total_updates,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "updates_per_second": round(self.updates_per_second, 1),
            "batches": self.batches,
        }
        row.update({k: v for k, v in self.metadata.items() if np.isscalar(v)})
        return row


class IngestSession:
    """Streams batches into any :class:`Ingestor` and measures the update rate.

    Parameters
    ----------
    ingestor:
        The system under test.
    system:
        Label recorded in the result.

    Examples
    --------
    >>> from repro.core import HierarchicalMatrix
    >>> from repro.workloads import paper_stream
    >>> session = IngestSession(HierarchicalMatrix(cuts=[1000, 100000]), "hier")
    >>> result = session.run(paper_stream(scale=0.0001))
    >>> result.total_updates
    10000
    """

    def __init__(self, ingestor: Ingestor, system: str = "unnamed"):
        self._ingestor = ingestor
        self._system = system
        self._meter = RateMeter()

    @property
    def ingestor(self) -> Ingestor:
        """The wrapped system under test."""
        return self._ingestor

    @property
    def meter(self) -> RateMeter:
        """The rate meter accumulating observations."""
        return self._meter

    def ingest(self, rows, cols, values=1) -> float:
        """Stream one batch; returns the seconds spent in ``update``."""
        n = np.asarray(rows).size
        start = time.perf_counter()
        self._ingestor.update(rows, cols, values)
        elapsed = time.perf_counter() - start
        self._meter.record(n, elapsed)
        return elapsed

    def run(self, batches: Iterable, *, max_batches: Optional[int] = None) -> IngestResult:
        """Stream an entire workload.

        ``batches`` may yield :class:`~repro.workloads.powerlaw.EdgeBatch`,
        :class:`~repro.workloads.traffic.PacketBatch`, or plain
        ``(rows, cols, values)`` tuples.
        """
        count = 0
        for batch in batches:
            if max_batches is not None and count >= max_batches:
                break
            self.ingest(*normalize_batch(batch))
            count += 1
        metadata = {}
        stats = getattr(self._ingestor, "stats", None)
        if stats is not None:
            metadata = {
                "cascades": list(stats.cascades),
                "fast_memory_fraction": stats.fast_memory_fraction,
                "slow_memory_writes": stats.slow_memory_writes,
            }
        return IngestResult(
            system=self._system,
            total_updates=self._meter.total_updates,
            elapsed_seconds=self._meter.total_seconds,
            updates_per_second=self._meter.updates_per_second,
            batches=count,
            metadata=metadata,
        )
