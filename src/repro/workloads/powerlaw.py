"""Power-law edge stream generators.

The paper's scalability experiment streams "a power-law graph of 100,000,000
entries divided up into 1,000 sets of 100,000 entries" into each hierarchical
hypersparse matrix instance.  This module provides vectorised generators for
that workload:

* :func:`powerlaw_edges` — heavy-tailed (Zipf-like) endpoint sampling over a
  hypersparse vertex space, the statistical shape of real network traffic;
* :func:`kronecker_edges` — Graph500-style R-MAT/Kronecker edges, the standard
  synthetic power-law graph in the GraphBLAS literature;
* :func:`paper_stream` — the exact batching of the paper (total entries split
  into equal-size sets), scaled by a ``scale`` factor so laptops can run it.

All generators return ``uint64`` coordinate arrays ready for
``HierarchicalMatrix.update``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "powerlaw_edges",
    "kronecker_edges",
    "EdgeBatch",
    "paper_stream",
    "degree_distribution",
]

#: Multiplier of the splitmix64 finaliser, used to scatter ranks over the id space.
_SPLITMIX_MULT = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser: a cheap, high-quality 64-bit mixer."""
    with np.errstate(over="ignore"):
        z = (x + _SPLITMIX_MULT).astype(np.uint64)
        z = ((z ^ (z >> np.uint64(30))) * _MIX1).astype(np.uint64)
        z = ((z ^ (z >> np.uint64(27))) * _MIX2).astype(np.uint64)
        return (z ^ (z >> np.uint64(31))).astype(np.uint64)


def _zipf_ranks(rng: np.random.Generator, n: int, alpha: float, max_rank: int) -> np.ndarray:
    """Sample ``n`` ranks from an (approximately) Zipf(alpha) law, clipped to ``max_rank``.

    Uses the standard rejection-free approximation: inverse-transform sampling
    of the continuous Pareto envelope, which for graph workloads reproduces the
    heavy tail accurately and is fully vectorised.
    """
    u = rng.random(n)
    # Inverse CDF of a bounded Pareto on [1, max_rank].
    if alpha == 1.0:
        ranks = np.exp(u * np.log(max_rank))
    else:
        one_m_a = 1.0 - alpha
        lo, hi = 1.0, float(max_rank) ** one_m_a
        ranks = (lo + u * (hi - lo)) ** (1.0 / one_m_a)
    return np.minimum(ranks.astype(np.uint64), np.uint64(max_rank - 1))


def powerlaw_edges(
    nedges: int,
    *,
    alpha: float = 1.3,
    nnodes: int = 2 ** 32,
    distinct_nodes: int = 2 ** 22,
    seed: Optional[int] = None,
    scatter: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``nedges`` edges with power-law distributed endpoints.

    Parameters
    ----------
    nedges:
        Number of edges (coordinate pairs) to generate.
    alpha:
        Power-law exponent of the endpoint popularity distribution.
    nnodes:
        Size of the logical vertex space (e.g. 2**32 for IPv4).
    distinct_nodes:
        Number of distinct vertices that can appear; ranks are drawn in
        ``[0, distinct_nodes)`` and then scattered over ``nnodes``.
    seed:
        RNG seed for reproducibility.
    scatter:
        When True (default) vertex ranks are hashed over the full ``nnodes``
        space so coordinates look like real hypersparse identifiers; when
        False the raw ranks are returned (useful for inspecting degree laws).

    Returns
    -------
    (rows, cols):
        ``uint64`` arrays of length ``nedges``.
    """
    rng = np.random.default_rng(seed)
    max_rank = min(int(distinct_nodes), int(nnodes))
    src = _zipf_ranks(rng, nedges, alpha, max_rank)
    dst = _zipf_ranks(rng, nedges, alpha, max_rank)
    if scatter:
        src = _splitmix64(src) % np.uint64(nnodes)
        dst = _splitmix64(dst + np.uint64(max_rank)) % np.uint64(nnodes)
    return src.astype(np.uint64), dst.astype(np.uint64)


def kronecker_edges(
    scale: int,
    edgefactor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
    permute: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a Graph500-style R-MAT / stochastic-Kronecker edge list.

    Parameters
    ----------
    scale:
        log2 of the number of vertices.
    edgefactor:
        Average edges per vertex; the result has ``edgefactor * 2**scale`` edges.
    a, b, c:
        Kronecker initiator probabilities (the fourth, ``d``, is 1-a-b-c).
    seed:
        RNG seed.
    permute:
        Randomly relabel vertices (removes the locality artefact of R-MAT).

    Returns
    -------
    (rows, cols):
        ``uint64`` arrays of length ``edgefactor * 2**scale``.
    """
    if scale < 1 or scale > 62:
        raise ValueError(f"scale must be in [1, 62], got {scale}")
    rng = np.random.default_rng(seed)
    nverts = 1 << scale
    nedges = edgefactor * nverts
    rows = np.zeros(nedges, dtype=np.uint64)
    cols = np.zeros(nedges, dtype=np.uint64)
    ab = a + b
    c_norm = c / max(1.0 - ab, 1e-12)
    a_norm = a / max(ab, 1e-12)
    for bit in range(scale):
        # For each edge decide which quadrant of the 2x2 initiator it falls in.
        ii = rng.random(nedges) > ab
        jj = rng.random(nedges) > np.where(ii, c_norm, a_norm)
        rows |= ii.astype(np.uint64) << np.uint64(bit)
        cols |= jj.astype(np.uint64) << np.uint64(bit)
    if permute:
        perm = rng.permutation(nverts).astype(np.uint64)
        rows = perm[rows.astype(np.int64)]
        cols = perm[cols.astype(np.int64)]
    return rows, cols


@dataclass(frozen=True)
class EdgeBatch:
    """One batch of a streaming edge workload.

    Attributes
    ----------
    index:
        0-based batch number within the stream.
    rows, cols:
        Edge endpoints (``uint64``).
    values:
        Per-edge values (all ones for simple counting workloads).
    """

    index: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    @property
    def nedges(self) -> int:
        """Number of edges in this batch."""
        return int(self.rows.size)


def paper_stream(
    total_entries: int = 100_000_000,
    nbatches: int = 1000,
    *,
    scale: float = 1.0,
    alpha: float = 1.3,
    nnodes: int = 2 ** 32,
    distinct_nodes: int = 2 ** 22,
    seed: Optional[int] = 0,
) -> Iterator[EdgeBatch]:
    """The paper's workload: a power-law graph streamed in equal-size batches.

    With the defaults this is exactly the experiment of Section III —
    100,000,000 entries in 1,000 sets of 100,000 — but ``scale`` shrinks both
    numbers proportionally (e.g. ``scale=0.01`` gives 1,000,000 entries in
    1,000 batches of 1,000) so the same code path runs on a laptop in seconds.

    Yields
    ------
    EdgeBatch
        Batches with unit values, ready for ``HierarchicalMatrix.update``.
    """
    total = max(int(total_entries * scale), 1)
    batches = max(int(nbatches), 1)
    batch_size = max(total // batches, 1)
    rng_seed = seed
    for i in range(batches):
        batch_seed = None if rng_seed is None else rng_seed + i
        rows, cols = powerlaw_edges(
            batch_size,
            alpha=alpha,
            nnodes=nnodes,
            distinct_nodes=distinct_nodes,
            seed=batch_seed,
        )
        yield EdgeBatch(i, rows, cols, np.ones(batch_size, dtype=np.float64))


def degree_distribution(rows: np.ndarray, cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical out-degree distribution of an edge list.

    Returns ``(degree, count)`` pairs: ``count[i]`` vertices have out-degree
    ``degree[i]``.  Used by tests to check the generators are actually
    heavy-tailed.
    """
    _, per_vertex = np.unique(rows, return_counts=True)
    degree, count = np.unique(per_vertex, return_counts=True)
    return degree, count
