"""Workload generators and streaming utilities.

Provides the paper's power-law edge stream (:func:`paper_stream`), Graph500
Kronecker graphs, synthetic IP packet traffic with supernodes, the
origin-destination :class:`TrafficMatrixBuilder`, and the
:class:`IngestSession` harness every benchmark uses to measure updates/second
identically across systems.
"""

from .powerlaw import (
    EdgeBatch,
    degree_distribution,
    kronecker_edges,
    paper_stream,
    powerlaw_edges,
)
from .stream import (
    IngestResult,
    IngestSession,
    RateMeter,
    batched,
    interleave,
    normalize_batch,
)
from .traffic import (
    PacketBatch,
    TrafficMatrixBuilder,
    int_to_ipv4,
    int_to_ipv6,
    ipv4_to_int,
    ipv6_to_int,
    subnet_of,
    synthetic_packets,
)

__all__ = [
    "EdgeBatch",
    "powerlaw_edges",
    "kronecker_edges",
    "paper_stream",
    "degree_distribution",
    "PacketBatch",
    "synthetic_packets",
    "TrafficMatrixBuilder",
    "ipv4_to_int",
    "int_to_ipv4",
    "ipv6_to_int",
    "int_to_ipv6",
    "subnet_of",
    "IngestSession",
    "IngestResult",
    "RateMeter",
    "batched",
    "interleave",
    "normalize_batch",
]
