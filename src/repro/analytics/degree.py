"""Degree analytics on hypersparse traffic matrices.

The paper's introduction motivates traffic matrices by the analyses they
enable: "observation of temporal fluctuations of network supernodes, computing
background models, and inferring the presence of unobserved traffic".  The
functions here compute the degree-style statistics those analyses start from,
expressed as GraphBLAS reductions so they work directly on hypersparse
matrices and on materialised hierarchical matrices.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

from ..core import HierarchicalMatrix
from ..graphblas import Matrix, Vector, monoid

__all__ = [
    "out_degree",
    "in_degree",
    "fan_out",
    "fan_in",
    "total_traffic",
    "degree_summary",
]

MatrixLike = Union[Matrix, HierarchicalMatrix]


def _as_matrix(matrix: MatrixLike) -> Matrix:
    if isinstance(matrix, HierarchicalMatrix):
        return matrix.materialize()
    return matrix


def out_degree(matrix: MatrixLike, *, weighted: bool = True) -> Vector:
    """Per-source totals: row sums (weighted) or row nonzero counts (unweighted).

    For a traffic matrix the weighted out-degree of a source IP is the number
    of packets (or bytes) it sent; the unweighted out-degree is its fan-out
    (number of distinct destinations).
    """
    m = _as_matrix(matrix)
    if weighted:
        return m.reduce_rowwise(monoid.plus)
    return m.apply("one").reduce_rowwise(monoid.plus)


def in_degree(matrix: MatrixLike, *, weighted: bool = True) -> Vector:
    """Per-destination totals: column sums or column nonzero counts."""
    m = _as_matrix(matrix)
    if weighted:
        return m.reduce_columnwise(monoid.plus)
    return m.apply("one").reduce_columnwise(monoid.plus)


def fan_out(matrix: MatrixLike) -> Vector:
    """Number of distinct destinations contacted by each source."""
    return out_degree(matrix, weighted=False)


def fan_in(matrix: MatrixLike) -> Vector:
    """Number of distinct sources contacting each destination."""
    return in_degree(matrix, weighted=False)


def total_traffic(matrix: MatrixLike) -> float:
    """Sum of every entry (total packets/bytes observed)."""
    return float(_as_matrix(matrix).reduce_scalar(monoid.plus))


def degree_summary(matrix: MatrixLike) -> Dict[str, float]:
    """Summary statistics of the traffic matrix used in monitoring dashboards.

    Returns the entry count, total traffic, number of active sources and
    destinations, and the maximum weighted out-/in-degree (the supernode
    magnitudes).
    """
    m = _as_matrix(matrix)
    out_deg = out_degree(m)
    in_deg = in_degree(m)
    _, out_vals = out_deg.to_coo()
    _, in_vals = in_deg.to_coo()
    return {
        "nnz": float(m.nvals),
        "total_traffic": total_traffic(m),
        "active_sources": float(out_deg.nvals),
        "active_destinations": float(in_deg.nvals),
        "max_out_degree": float(out_vals.max()) if out_vals.size else 0.0,
        "max_in_degree": float(in_vals.max()) if in_vals.size else 0.0,
        "mean_out_degree": float(out_vals.mean()) if out_vals.size else 0.0,
        "mean_in_degree": float(in_vals.mean()) if in_vals.size else 0.0,
    }
