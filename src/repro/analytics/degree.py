"""Degree analytics on hypersparse traffic matrices.

The paper's introduction motivates traffic matrices by the analyses they
enable: "observation of temporal fluctuations of network supernodes, computing
background models, and inferring the presence of unobserved traffic".  The
functions here compute the degree-style statistics those analyses start from.

Every function accepts a flat :class:`~repro.graphblas.matrix.Matrix`, a
:class:`~repro.core.HierarchicalMatrix`, or a
:class:`~repro.distributed.ShardedHierarchicalMatrix` and serves the result
from the cheapest exact source:

* **Incremental fast path** (``materialized=False`` or the auto default):
  hierarchical and sharded matrices maintain running reduction vectors during
  ingest (:mod:`repro.core.reductions`), so degree queries are answered from
  those — no layer merge, no materialize, and crucially *no forced flush* of
  the deferred layer-1 pending buffer, which keeps streaming undisturbed.
* **Materialize fallback** (``materialized=True``, plain matrices, or
  configurations the tracker cannot serve exactly — non-``plus``
  accumulators, or fan/nnz on unpackable IPv6 shapes): the classic GraphBLAS
  reduction over the materialised matrix.

Both paths produce the same stored index sets and bit-identical values for
exactly representable data (integer packet/byte counts), which the property
suite in ``tests/core/test_reductions.py`` asserts across shard counts,
partitions, and coordinate engines.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..core import HierarchicalMatrix
from ..graphblas import Matrix, Vector, monoid
from ..graphblas.errors import InvalidValue

__all__ = [
    "out_degree",
    "in_degree",
    "fan_out",
    "fan_in",
    "total_traffic",
    "degree_summary",
]

MatrixLike = Union[Matrix, HierarchicalMatrix]


def _as_matrix(matrix: MatrixLike) -> Matrix:
    """Materialise any supported matrix type into one flat hypersparse Matrix."""
    if isinstance(matrix, Matrix):
        return matrix
    # HierarchicalMatrix and ShardedHierarchicalMatrix (duck-typed so the
    # analytics layer does not import the distributed machinery).
    return matrix.materialize()


def _incremental_view(matrix, materialized: Optional[bool], *, fan: bool = False):
    """The matrix's incremental-reduction view, or None to use materialize.

    ``materialized=None`` auto-selects (incremental whenever it can serve the
    query exactly), ``True`` forces the materialize path, and ``False``
    *requires* the incremental path, raising :class:`InvalidValue` when the
    matrix cannot serve it (plain Matrix, non-plus accumulator, or fan/nnz on
    an unpackable shape).
    """
    # Check the forced-materialize escape hatch before touching the matrix:
    # on sharded inputs the support flags cost a cross-shard stats round.
    inc = None if materialized is True else getattr(matrix, "incremental", None)
    usable = (
        inc is not None
        and inc.supported
        and (not fan or inc.fan_supported)
    )
    if materialized is False and not usable:
        raise InvalidValue(
            "materialized=False requested but this matrix cannot serve the "
            "query from incremental reductions"
        )
    return inc if usable else None


def out_degree(
    matrix: MatrixLike, *, weighted: bool = True, materialized: Optional[bool] = None
) -> Vector:
    """Per-source totals: row sums (weighted) or row nonzero counts (unweighted).

    For a traffic matrix the weighted out-degree of a source IP is the number
    of packets (or bytes) it sent; the unweighted out-degree is its fan-out
    (number of distinct destinations).

    Parameters
    ----------
    matrix:
        Flat, hierarchical, or sharded traffic matrix.
    weighted:
        Sum stored values (True) or count stored entries (False) per row.
    materialized:
        ``None`` (default) serves from the incremental reduction vectors when
        available; ``True`` forces the materialize-based reduction; ``False``
        requires the incremental path (raises if unavailable).
    """
    inc = _incremental_view(matrix, materialized, fan=not weighted)
    if inc is not None:
        return inc.row_traffic() if weighted else inc.row_fan()
    m = _as_matrix(matrix)
    if weighted:
        return m.reduce_rowwise(monoid.plus)
    return m.apply("one").reduce_rowwise(monoid.plus)


def in_degree(
    matrix: MatrixLike, *, weighted: bool = True, materialized: Optional[bool] = None
) -> Vector:
    """Per-destination totals: column sums or column nonzero counts.

    Parameters as :func:`out_degree`.
    """
    inc = _incremental_view(matrix, materialized, fan=not weighted)
    if inc is not None:
        return inc.col_traffic() if weighted else inc.col_fan()
    m = _as_matrix(matrix)
    if weighted:
        return m.reduce_columnwise(monoid.plus)
    return m.apply("one").reduce_columnwise(monoid.plus)


def fan_out(matrix: MatrixLike, *, materialized: Optional[bool] = None) -> Vector:
    """Number of distinct destinations contacted by each source."""
    return out_degree(matrix, weighted=False, materialized=materialized)


def fan_in(matrix: MatrixLike, *, materialized: Optional[bool] = None) -> Vector:
    """Number of distinct sources contacting each destination."""
    return in_degree(matrix, weighted=False, materialized=materialized)


def total_traffic(matrix: MatrixLike, *, materialized: Optional[bool] = None) -> float:
    """Sum of every entry (total packets/bytes observed)."""
    inc = _incremental_view(matrix, materialized)
    if inc is not None:
        return float(inc.total())
    return float(_as_matrix(matrix).reduce_scalar(monoid.plus))


def degree_summary(
    matrix: MatrixLike, *, materialized: Optional[bool] = None
) -> Dict[str, float]:
    """Summary statistics of the traffic matrix used in monitoring dashboards.

    Returns the entry count, total traffic, number of active sources and
    destinations, and the maximum/mean weighted out-/in-degree (the supernode
    magnitudes).  Served entirely from the incremental reduction vectors when
    available — including the exact ``nnz`` from the distinct-coordinate
    cascade — so a monitoring loop can poll it without ever interrupting
    ingest.
    """
    inc = _incremental_view(matrix, materialized, fan=True)
    if inc is not None:
        out_deg = inc.row_traffic()
        in_deg = inc.col_traffic()
        nnz = float(inc.nnz())
        total = float(inc.total())
    else:
        m = _as_matrix(matrix)
        out_deg = m.reduce_rowwise(monoid.plus)
        in_deg = m.reduce_columnwise(monoid.plus)
        nnz = float(m.nvals)
        total = float(m.reduce_scalar(monoid.plus))
    _, out_vals = out_deg.to_coo()
    _, in_vals = in_deg.to_coo()
    return {
        "nnz": nnz,
        "total_traffic": total,
        "active_sources": float(out_deg.nvals),
        "active_destinations": float(in_deg.nvals),
        "max_out_degree": float(out_vals.max()) if out_vals.size else 0.0,
        "max_in_degree": float(in_vals.max()) if in_vals.size else 0.0,
        "mean_out_degree": float(out_vals.mean()) if out_vals.size else 0.0,
        "mean_in_degree": float(in_vals.mean()) if in_vals.size else 0.0,
    }
