"""Windowed streaming analytics over hierarchical hypersparse matrices.

The paper notes that "in a real analysis application, each process would also
compute various network statistics on each of the streams as they are
updated".  :class:`WindowedAnalyzer` is that loop: it ingests packet windows
into a hierarchical traffic matrix and, every ``analysis_interval`` windows,
materialises the matrix and records the summary statistics / supernode reports
that a monitoring pipeline would export — demonstrating that queries coexist
with streaming because materialisation never disturbs the layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core import HierarchicalMatrix
from ..workloads.traffic import PacketBatch
from .degree import degree_summary
from .supernodes import supernode_report

__all__ = ["WindowSnapshot", "WindowedAnalyzer"]


@dataclass(frozen=True)
class WindowSnapshot:
    """Statistics exported after one analysis interval.

    Attributes
    ----------
    window:
        Index of the last ingested window.
    packets_ingested:
        Total packets ingested so far.
    summary:
        Output of :func:`~repro.analytics.degree.degree_summary`.
    supernodes:
        Output of :func:`~repro.analytics.supernodes.supernode_report`.
    """

    window: int
    packets_ingested: int
    summary: dict
    supernodes: dict


class WindowedAnalyzer:
    """Ingest packet windows and periodically export traffic statistics.

    Parameters
    ----------
    cuts:
        Hierarchical cut configuration of the traffic matrix.
    analysis_interval:
        Materialise and analyse after every this many windows.
    top_k:
        Number of supernodes reported per snapshot.
    """

    def __init__(
        self,
        *,
        cuts: Optional[Sequence[int]] = None,
        analysis_interval: int = 10,
        top_k: int = 5,
        nrows: int = 2 ** 32,
        ncols: int = 2 ** 32,
    ):
        kwargs = {"cuts": list(cuts)} if cuts is not None else {}
        self._matrix = HierarchicalMatrix(nrows, ncols, "fp64", **kwargs)
        self.analysis_interval = int(analysis_interval)
        self.top_k = int(top_k)
        self._packets = 0
        self._windows = 0
        self._snapshots: List[WindowSnapshot] = []

    @property
    def matrix(self) -> HierarchicalMatrix:
        """The hierarchical traffic matrix being maintained."""
        return self._matrix

    @property
    def snapshots(self) -> List[WindowSnapshot]:
        """Snapshots exported so far."""
        return list(self._snapshots)

    @property
    def packets_ingested(self) -> int:
        """Total packets ingested."""
        return self._packets

    def ingest(self, batch: PacketBatch) -> Optional[WindowSnapshot]:
        """Ingest one packet window; returns a snapshot when an analysis interval completes."""
        self._matrix.update(batch.sources, batch.destinations, 1.0)
        self._packets += batch.npackets
        self._windows += 1
        if self._windows % self.analysis_interval == 0:
            return self.analyze()
        return None

    def analyze(self) -> WindowSnapshot:
        """Materialise the matrix and export a snapshot immediately."""
        materialised = self._matrix.materialize()
        snapshot = WindowSnapshot(
            window=self._windows - 1,
            packets_ingested=self._packets,
            summary=degree_summary(materialised),
            supernodes=supernode_report(materialised, self.top_k),
        )
        self._snapshots.append(snapshot)
        return snapshot
