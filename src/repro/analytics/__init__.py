"""Network analytics on hypersparse traffic matrices.

Implements the three analyses the paper's introduction motivates traffic
matrices with: supernode observation, background (gravity) models, and
residual/anomaly inference — plus the windowed streaming-analysis loop that
combines them with hierarchical ingest.

Every function accepts flat, hierarchical, and sharded matrices, and serves
its result from the incrementally maintained reduction vectors
(:mod:`repro.core.reductions`) whenever those are exact for the input —
avoiding a full materialize and leaving deferred ingest undisturbed.  A
``materialized=None|False|True`` keyword on each function auto-selects,
requires, or bypasses the incremental fast path.
"""

from .background import anomaly_scores, gravity_model, residual_matrix, top_anomalies
from .degree import (
    degree_summary,
    fan_in,
    fan_out,
    in_degree,
    out_degree,
    total_traffic,
)
from .supernodes import Supernode, supernode_report, top_destinations, top_sources, traffic_share
from .windows import WindowedAnalyzer, WindowSnapshot

__all__ = [
    "out_degree",
    "in_degree",
    "fan_out",
    "fan_in",
    "total_traffic",
    "degree_summary",
    "Supernode",
    "top_sources",
    "top_destinations",
    "traffic_share",
    "supernode_report",
    "gravity_model",
    "residual_matrix",
    "anomaly_scores",
    "top_anomalies",
    "WindowedAnalyzer",
    "WindowSnapshot",
]
