"""Background traffic models and anomaly scoring.

"Computing background models" is the second motivating analysis in the paper's
introduction.  The standard approach for origin-destination matrices is a
low-rank/gravity model: the expected traffic between source ``i`` and
destination ``j`` is proportional to (total out-traffic of ``i``) x (total
in-traffic of ``j``) / (total traffic) — the rank-1 model of Zhang et al.
Deviation of the observed matrix from that expectation flags unusual pairs
(inferring "the presence of unobserved traffic" or the injection of new
traffic).  Everything is computed with GraphBLAS operations on the hypersparse
pattern only, so it scales with ``nnz`` rather than the address space.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..core import HierarchicalMatrix
from ..graphblas import Matrix, binary
from .degree import in_degree, out_degree, total_traffic

__all__ = ["gravity_model", "residual_matrix", "anomaly_scores", "top_anomalies"]

MatrixLike = Union[Matrix, HierarchicalMatrix]


def _as_matrix(matrix: MatrixLike) -> Matrix:
    if isinstance(matrix, HierarchicalMatrix):
        return matrix.materialize()
    return matrix


def gravity_model(matrix: MatrixLike) -> Matrix:
    """Rank-1 gravity (background) model evaluated on the observed pattern.

    For every stored coordinate ``(i, j)`` the expected traffic is
    ``row_sum(i) * col_sum(j) / total``.  The expectation is only materialised
    where traffic was observed, keeping the result hypersparse.
    """
    m = _as_matrix(matrix)
    total = total_traffic(m)
    out = Matrix(m.dtype, m.nrows, m.ncols)
    if m.nvals == 0 or total == 0:
        return out
    rows, cols, _ = m.extract_tuples()
    out_deg = out_degree(m)
    in_deg = in_degree(m)
    # Dense lookup over only the active rows/columns.
    od_idx, od_vals = out_deg.to_coo()
    id_idx, id_vals = in_deg.to_coo()
    row_pos = np.searchsorted(od_idx, rows)
    col_pos = np.searchsorted(id_idx, cols)
    expected = od_vals[row_pos] * id_vals[col_pos] / total
    out.build(rows, cols, expected, dup_op=binary.second)
    return out


def residual_matrix(matrix: MatrixLike) -> Matrix:
    """Observed minus expected traffic on the observed pattern."""
    m = _as_matrix(matrix)
    expected = gravity_model(m)
    return m.ewise_add(expected.apply("ainv"), binary.plus)


def anomaly_scores(matrix: MatrixLike) -> Matrix:
    """Normalised anomaly scores ``(observed - expected) / sqrt(expected)`` per pair.

    The Poisson-like normalisation makes scores comparable across pairs with
    very different volumes; large positive scores flag unexpectedly heavy
    flows.
    """
    m = _as_matrix(matrix)
    expected = gravity_model(m)
    if m.nvals == 0:
        return Matrix(m.dtype, m.nrows, m.ncols)
    rows, cols, observed = m.extract_tuples()
    _, _, exp_vals = expected.extract_tuples()
    denom = np.sqrt(np.maximum(exp_vals, 1e-12))
    scores = (observed - exp_vals) / denom
    out = Matrix("fp64", m.nrows, m.ncols)
    out.build(rows, cols, scores, dup_op=binary.second)
    return out


def top_anomalies(matrix: MatrixLike, k: int = 10) -> list:
    """The ``k`` (source, destination, score) pairs with the highest anomaly scores."""
    scores = anomaly_scores(matrix)
    rows, cols, vals = scores.extract_tuples()
    if vals.size == 0:
        return []
    order = np.argsort(vals)[::-1][:k]
    return [(int(rows[i]), int(cols[i]), float(vals[i])) for i in order]
