"""Background traffic models and anomaly scoring.

"Computing background models" is the second motivating analysis in the paper's
introduction.  The standard approach for origin-destination matrices is a
low-rank/gravity model: the expected traffic between source ``i`` and
destination ``j`` is proportional to (total out-traffic of ``i``) x (total
in-traffic of ``j``) / (total traffic) — the rank-1 model of Zhang et al.
Deviation of the observed matrix from that expectation flags unusual pairs
(inferring "the presence of unobserved traffic" or the injection of new
traffic).  Everything is computed with GraphBLAS operations on the hypersparse
pattern only, so it scales with ``nnz`` rather than the address space.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..core import HierarchicalMatrix
from ..graphblas import Matrix, binary
from .degree import _as_matrix, _incremental_view, in_degree, out_degree, total_traffic

__all__ = ["gravity_model", "residual_matrix", "anomaly_scores", "top_anomalies"]

MatrixLike = Union[Matrix, HierarchicalMatrix]


def gravity_model(matrix: MatrixLike, *, materialized: Optional[bool] = None) -> Matrix:
    """Rank-1 gravity (background) model evaluated on the observed pattern.

    For every stored coordinate ``(i, j)`` the expected traffic is
    ``row_sum(i) * col_sum(j) / total``.  The expectation is only materialised
    where traffic was observed, keeping the result hypersparse.

    The marginals (row/column sums and the total) are taken from the
    incrementally maintained reduction vectors when the input matrix carries
    them (hierarchical/sharded matrices with a ``plus`` accumulator; see
    :mod:`repro.core.reductions`), so only the observed *pattern* requires a
    materialize.  ``materialized=True`` forces the classic all-materialize
    path; both produce identical models for exactly representable traffic.
    """
    return _gravity_on_pattern(_as_matrix(matrix), matrix, materialized)


def _gravity_on_pattern(
    m: Matrix, source: MatrixLike, materialized: Optional[bool]
) -> Matrix:
    """Gravity model over the already-materialised pattern ``m`` of ``source``.

    Marginals come from ``source``'s incremental reduction vectors when it
    carries usable ones, and from ``m`` otherwise (avoiding a second
    materialize of hierarchical/sharded inputs).
    """
    marginal_src = source if _incremental_view(source, materialized) is not None else m
    total = total_traffic(marginal_src, materialized=materialized)
    out_deg = out_degree(marginal_src, materialized=materialized)
    in_deg = in_degree(marginal_src, materialized=materialized)
    out = Matrix(m.dtype, m.nrows, m.ncols)
    if m.nvals == 0 or total == 0:
        return out
    rows, cols, _ = m.extract_tuples()
    # Dense lookup over only the active rows/columns.
    od_idx, od_vals = out_deg.to_coo()
    id_idx, id_vals = in_deg.to_coo()
    row_pos = np.searchsorted(od_idx, rows)
    col_pos = np.searchsorted(id_idx, cols)
    expected = od_vals[row_pos] * id_vals[col_pos] / total
    out.build(rows, cols, expected, dup_op=binary.second)
    return out


def residual_matrix(matrix: MatrixLike, *, materialized: Optional[bool] = None) -> Matrix:
    """Observed minus expected traffic on the observed pattern."""
    m = _as_matrix(matrix)
    expected = _gravity_on_pattern(m, matrix, materialized)
    return m.ewise_add(expected.apply("ainv"), binary.plus)


def anomaly_scores(matrix: MatrixLike, *, materialized: Optional[bool] = None) -> Matrix:
    """Normalised anomaly scores ``(observed - expected) / sqrt(expected)`` per pair.

    The Poisson-like normalisation makes scores comparable across pairs with
    very different volumes; large positive scores flag unexpectedly heavy
    flows.
    """
    m = _as_matrix(matrix)
    expected = _gravity_on_pattern(m, matrix, materialized)
    if m.nvals == 0:
        return Matrix(m.dtype, m.nrows, m.ncols)
    rows, cols, observed = m.extract_tuples()
    _, _, exp_vals = expected.extract_tuples()
    denom = np.sqrt(np.maximum(exp_vals, 1e-12))
    scores = (observed - exp_vals) / denom
    out = Matrix("fp64", m.nrows, m.ncols)
    out.build(rows, cols, scores, dup_op=binary.second)
    return out


def top_anomalies(
    matrix: MatrixLike, k: int = 10, *, materialized: Optional[bool] = None
) -> list:
    """The ``k`` (source, destination, score) pairs with the highest anomaly scores."""
    scores = anomaly_scores(matrix, materialized=materialized)
    rows, cols, vals = scores.extract_tuples()
    if vals.size == 0:
        return []
    order = np.argsort(vals)[::-1][:k]
    return [(int(rows[i]), int(cols[i]), float(vals[i])) for i in order]
