"""Supernode detection on hypersparse traffic matrices.

Network supernodes are the handful of sources/destinations responsible for a
disproportionate share of the traffic (popular services, scanners, botnet
controllers).  Observing their temporal fluctuations is one of the three
motivating analyses in the paper's introduction.  Detection reduces to finding
the top-k rows/columns of the traffic matrix by (weighted or unweighted)
degree, plus simple share-of-traffic statistics.

All functions ride the incremental reduction vectors when the input matrix
maintains them (see :mod:`repro.analytics.degree`), so a supernode watch loop
polling ``top_sources``/``supernode_report`` on a streaming hierarchical or
sharded matrix never materialises it and never forces its deferred flush.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from ..core import HierarchicalMatrix
from ..graphblas import Matrix, Vector
from .degree import in_degree, out_degree, total_traffic

__all__ = ["Supernode", "top_sources", "top_destinations", "supernode_report", "traffic_share"]

MatrixLike = Union[Matrix, HierarchicalMatrix]


@dataclass(frozen=True)
class Supernode:
    """One detected supernode.

    Attributes
    ----------
    identifier:
        The row/column coordinate (e.g. the integer IP address).
    traffic:
        Total packets/bytes attributed to it.
    fan:
        Number of distinct counterparties.
    side:
        ``"source"`` or ``"destination"``.
    """

    identifier: int
    traffic: float
    fan: int
    side: str


def _top_k(values: Vector, counts: Vector, k: int, side: str) -> List[Supernode]:
    idx, vals = values.to_coo()
    if idx.size == 0:
        return []
    order = np.argsort(vals)[::-1][:k]
    out = []
    for pos in order:
        ident = int(idx[pos])
        fan = counts.extractElement(ident, 0)
        out.append(Supernode(ident, float(vals[pos]), int(fan), side))
    return out


def top_sources(
    matrix: MatrixLike, k: int = 10, *, materialized: Optional[bool] = None
) -> List[Supernode]:
    """The ``k`` sources with the most outbound traffic.

    Parameters
    ----------
    matrix:
        Flat, hierarchical, or sharded traffic matrix.
    k:
        Number of supernodes to return (fewer when fewer sources are active).
    materialized:
        Forwarded to :func:`~repro.analytics.degree.out_degree`: ``None``
        auto-selects the incremental fast path, ``True`` forces materialize,
        ``False`` requires incremental.
    """
    return _top_k(
        out_degree(matrix, weighted=True, materialized=materialized),
        out_degree(matrix, weighted=False, materialized=materialized),
        k,
        "source",
    )


def top_destinations(
    matrix: MatrixLike, k: int = 10, *, materialized: Optional[bool] = None
) -> List[Supernode]:
    """The ``k`` destinations with the most inbound traffic.

    Parameters as :func:`top_sources`.
    """
    return _top_k(
        in_degree(matrix, weighted=True, materialized=materialized),
        in_degree(matrix, weighted=False, materialized=materialized),
        k,
        "destination",
    )


def traffic_share(
    matrix: MatrixLike, k: int = 10, *, materialized: Optional[bool] = None
) -> Tuple[float, float]:
    """Fraction of total traffic carried by the top-k sources and destinations.

    A heavy-tailed (power-law) traffic matrix concentrates most traffic in a
    few supernodes, so these fractions are large — the property the workload
    generators are tested against.
    """
    total = total_traffic(matrix, materialized=materialized)
    if total == 0:
        return 0.0, 0.0
    src_share = sum(
        s.traffic for s in top_sources(matrix, k, materialized=materialized)
    ) / total
    dst_share = sum(
        d.traffic for d in top_destinations(matrix, k, materialized=materialized)
    ) / total
    return src_share, dst_share


def supernode_report(
    matrix: MatrixLike, k: int = 10, *, materialized: Optional[bool] = None
) -> dict:
    """A compact supernode report for one observation window."""
    sources = top_sources(matrix, k, materialized=materialized)
    destinations = top_destinations(matrix, k, materialized=materialized)
    src_share, dst_share = traffic_share(matrix, k, materialized=materialized)
    return {
        "top_sources": [(s.identifier, s.traffic, s.fan) for s in sources],
        "top_destinations": [(d.identifier, d.traffic, d.fan) for d in destinations],
        "top_source_share": src_share,
        "top_destination_share": dst_share,
    }
