"""A model of the machine's memory hierarchy.

The paper's argument is architectural: "streaming updates of hypersparse
matrices put enormous pressure on the memory hierarchy", and the hierarchical
layering keeps most updates in fast memory.  To make that argument measurable
without hardware counters, this module models a memory hierarchy as a list of
levels (capacity, bandwidth, latency) and maps data structures to the smallest
level they fit in.  The cost model in :mod:`repro.memory.cost_model` combines
this with the per-layer write counts recorded by
:class:`~repro.core.stats.UpdateStats` to estimate the memory traffic of flat
versus hierarchical ingest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["MemoryLevel", "MemoryHierarchy", "default_hierarchy"]


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the memory hierarchy.

    Attributes
    ----------
    name:
        Human-readable name ("L2", "DRAM", ...).
    capacity_bytes:
        Usable capacity of the level.
    bandwidth_gbps:
        Sustained bandwidth in GiB/s for streaming access.
    latency_ns:
        Access latency for a dependent (random) access in nanoseconds.
    """

    name: str
    capacity_bytes: int
    bandwidth_gbps: float
    latency_ns: float

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to stream ``nbytes`` through this level."""
        return nbytes / (self.bandwidth_gbps * 2 ** 30)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryLevel({self.name}, {self.capacity_bytes / 2**20:.1f} MiB, "
            f"{self.bandwidth_gbps} GiB/s, {self.latency_ns} ns)"
        )


class MemoryHierarchy:
    """An ordered list of memory levels, fastest (smallest) first.

    Examples
    --------
    >>> h = default_hierarchy()
    >>> h.level_for(16 * 1024).name
    'L1'
    >>> h.level_for(10 * 2**30).name
    'DRAM'
    """

    def __init__(self, levels: Sequence[MemoryLevel]):
        if not levels:
            raise ValueError("a memory hierarchy needs at least one level")
        caps = [lvl.capacity_bytes for lvl in levels]
        if any(b < a for a, b in zip(caps, caps[1:])):
            raise ValueError("levels must be ordered from smallest to largest capacity")
        self._levels = list(levels)

    @property
    def levels(self) -> List[MemoryLevel]:
        """The levels, fastest first."""
        return list(self._levels)

    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self):
        return iter(self._levels)

    def __getitem__(self, index: int) -> MemoryLevel:
        return self._levels[index]

    @property
    def fastest(self) -> MemoryLevel:
        """The first (fastest) level."""
        return self._levels[0]

    @property
    def slowest(self) -> MemoryLevel:
        """The last (slowest) level."""
        return self._levels[-1]

    def level_for(self, working_set_bytes: int) -> MemoryLevel:
        """The fastest level whose capacity holds ``working_set_bytes``.

        Working sets larger than every level map to the slowest level (i.e.
        they spill to it).
        """
        for level in self._levels:
            if working_set_bytes <= level.capacity_bytes:
                return level
        return self._levels[-1]

    def placement_level(self, used_bytes: int, capacity_bytes: int = None) -> MemoryLevel:
        """The level a container must be *placed* in, given its footprint split.

        Preallocated arenas distinguish live data (``used_bytes``) from
        resident allocation (``capacity_bytes``, always >= used).  Placement
        and spill decisions must follow the **resident** footprint — a layer
        whose arena preallocated past a cache capacity no longer fits that
        cache, no matter how little of the arena is filled — while traffic
        estimates keep following the live bytes actually streamed
        (:meth:`access_seconds`).  Summing pending fragments, as the
        pre-arena code did, conflated the two and understated placement.

        Parameters
        ----------
        used_bytes:
            Live bytes (stored arrays plus the filled arena prefix).
        capacity_bytes:
            Resident bytes (stored arrays plus full arena capacity).
            Defaults to ``used_bytes`` for containers without preallocation.
        """
        resident = used_bytes if capacity_bytes is None else capacity_bytes
        return self.level_for(max(int(used_bytes), int(resident)))

    def level_index_for(self, working_set_bytes: int) -> int:
        """Index of :meth:`level_for` within the hierarchy."""
        for i, level in enumerate(self._levels):
            if working_set_bytes <= level.capacity_bytes:
                return i
        return len(self._levels) - 1

    def access_seconds(self, working_set_bytes: int, nbytes_touched: int, *, random: bool = False) -> float:
        """Estimated time to touch ``nbytes_touched`` of a working set of the given size.

        Streaming access is bandwidth-bound; random access pays the level's
        latency once per 64-byte cache line touched.
        """
        level = self.level_for(working_set_bytes)
        if random:
            lines = max(nbytes_touched // 64, 1)
            return lines * level.latency_ns * 1e-9
        return level.transfer_seconds(nbytes_touched)


def default_hierarchy() -> MemoryHierarchy:
    """A generic contemporary server-node hierarchy (Xeon-class, as on the MIT SuperCloud).

    Capacities and speeds are round numbers typical of the 2019-2020 Intel
    Xeon Platinum nodes the paper used; the cost model only depends on their
    relative magnitudes.
    """
    return MemoryHierarchy(
        [
            MemoryLevel("L1", 32 * 2 ** 10, 1600.0, 1.2),
            MemoryLevel("L2", 1 * 2 ** 20, 800.0, 4.0),
            MemoryLevel("L3", 32 * 2 ** 20, 400.0, 14.0),
            MemoryLevel("DRAM", 192 * 2 ** 30, 90.0, 90.0),
        ]
    )
