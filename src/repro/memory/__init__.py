"""Memory-hierarchy model and ingest cost model.

Used by the "memory pressure" ablation benchmark to quantify the paper's
architectural claim that hierarchical hypersparse matrices keep the vast
majority of element writes in fast memory.
"""

from .cost_model import BYTES_PER_ENTRY, CostModel, TrafficEstimate
from .hierarchy import MemoryHierarchy, MemoryLevel, default_hierarchy

__all__ = [
    "MemoryLevel",
    "MemoryHierarchy",
    "default_hierarchy",
    "CostModel",
    "TrafficEstimate",
    "BYTES_PER_ENTRY",
]
