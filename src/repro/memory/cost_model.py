"""Memory-traffic cost model for flat versus hierarchical ingest.

The model answers the paper's architectural question quantitatively: for a
given stream (total updates, batch size) and a given hierarchical
configuration (cuts), how many element-writes land in each level of the memory
hierarchy, and what is the estimated time spent moving data?

Two inputs are supported:

* *analytic* — closed-form counts derived from the cascade structure (every
  ``c_i / c_{i-1}`` cascades of layer ``i-1`` produce one write of ``c_i``
  elements into layer ``i``), useful for parameter sweeps without running
  anything; and
* *measured* — the :class:`~repro.core.stats.UpdateStats` recorded by an
  actual ingest, mapped onto the hierarchy by each layer's working-set size.

Both express the headline comparison: the flat baseline rewrites its entire
(large, DRAM-resident) matrix on every batch, while the hierarchy performs the
vast majority of its element-writes in cache-sized layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.stats import UpdateStats
from .hierarchy import MemoryHierarchy, MemoryLevel, default_hierarchy

__all__ = ["TrafficEstimate", "CostModel"]

#: Bytes per stored entry: two uint64 coordinates plus one float64 value.
BYTES_PER_ENTRY = 24


@dataclass
class TrafficEstimate:
    """Estimated memory traffic of one ingest strategy.

    Attributes
    ----------
    strategy:
        ``"flat"`` or ``"hierarchical"``.
    writes_per_level:
        Element-writes attributed to each memory-hierarchy level
        (same order as the hierarchy, fastest first).
    bytes_per_level:
        The same traffic expressed in bytes.
    estimated_seconds:
        Bandwidth-model estimate of the time spent on this traffic.
    slow_fraction:
        Fraction of element-writes that hit the slowest level.
    """

    strategy: str
    writes_per_level: List[int]
    bytes_per_level: List[int]
    estimated_seconds: float
    slow_fraction: float

    def as_dict(self) -> dict:
        """Flat dict for tabular reports."""
        return {
            "strategy": self.strategy,
            "writes_per_level": list(self.writes_per_level),
            "bytes_per_level": list(self.bytes_per_level),
            "estimated_seconds": self.estimated_seconds,
            "slow_fraction": self.slow_fraction,
        }


class CostModel:
    """Maps ingest write-counts onto a memory hierarchy.

    Parameters
    ----------
    hierarchy:
        The machine model (default: :func:`~repro.memory.hierarchy.default_hierarchy`).
    bytes_per_entry:
        Storage cost of one matrix entry (default 24 bytes: row, col, value).
    """

    def __init__(self, hierarchy: Optional[MemoryHierarchy] = None, *, bytes_per_entry: int = BYTES_PER_ENTRY):
        self.hierarchy = hierarchy if hierarchy is not None else default_hierarchy()
        self.bytes_per_entry = int(bytes_per_entry)

    # ------------------------------------------------------------------ #
    # analytic counts
    # ------------------------------------------------------------------ #

    def flat_write_counts(self, total_updates: int, batch_size: int, *, distinct_fraction: float = 1.0) -> int:
        """Element-writes of the flat strategy.

        Batch ``k`` merges ``batch_size`` new entries into an accumulated
        matrix of roughly ``k * batch_size * distinct_fraction`` entries and
        rewrites all of it, so total writes grow quadratically in the number of
        batches.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        nbatches = max(int(total_updates // batch_size), 1)
        k = np.arange(1, nbatches + 1, dtype=np.float64)
        accumulated = k * batch_size * distinct_fraction
        return int(np.sum(accumulated))

    def hierarchical_write_counts(
        self, total_updates: int, batch_size: int, cuts: Sequence[int], *, distinct_fraction: float = 1.0
    ) -> List[int]:
        """Element-writes per layer for a hierarchy with the given cuts.

        Layer 1 absorbs every raw update (re-merging its working set, bounded
        by ``c_1``); layer ``i`` receives one merge of ``~c_{i-1}`` entries each
        time layer ``i-1`` overflows, and re-merges its own working set
        (bounded by ``c_i``); the unbounded last layer grows towards the number
        of distinct entries.
        """
        cuts = [int(c) for c in cuts]
        nlevels = len(cuts) + 1
        writes = [0] * nlevels
        nbatches = max(int(total_updates // batch_size), 1)
        # Layer 1: each batch merges into a working set bounded by c_1.
        writes[0] = int(nbatches * min(cuts[0], batch_size * distinct_fraction + cuts[0] / 2))
        # Intermediate layers: overflows of the previous layer.
        spill_events = nbatches  # how many times the previous layer spills
        for i in range(1, nlevels):
            prev_cut = cuts[i - 1]
            spill_events = int(total_updates * distinct_fraction // max(prev_cut, 1))
            if spill_events == 0:
                break
            if i < nlevels - 1:
                working = min(cuts[i], total_updates * distinct_fraction)
            else:
                working = total_updates * distinct_fraction
            # Each spill merges prev_cut new entries into a working set of ~working/2 average.
            writes[i] = int(spill_events * (prev_cut + working / 2))
        return writes

    # ------------------------------------------------------------------ #
    # mapping onto the hierarchy
    # ------------------------------------------------------------------ #

    def _attribute(self, writes_per_layer: Sequence[int], layer_working_sets: Sequence[int]) -> TrafficEstimate:
        nlevels_mem = len(self.hierarchy)
        writes_per_level = [0] * nlevels_mem
        for writes, working_set in zip(writes_per_layer, layer_working_sets):
            level_idx = self.hierarchy.level_index_for(working_set * self.bytes_per_entry)
            writes_per_level[level_idx] += int(writes)
        bytes_per_level = [w * self.bytes_per_entry for w in writes_per_level]
        seconds = sum(
            self.hierarchy[i].transfer_seconds(b) for i, b in enumerate(bytes_per_level)
        )
        total_writes = sum(writes_per_level)
        slow = writes_per_level[-1] / total_writes if total_writes else 0.0
        return TrafficEstimate(
            strategy="",
            writes_per_level=writes_per_level,
            bytes_per_level=bytes_per_level,
            estimated_seconds=seconds,
            slow_fraction=slow,
        )

    def placement_for(self, breakdown: dict) -> MemoryLevel:
        """Placement level for a container's ``memory_breakdown`` dict.

        Accepts the dict shape :attr:`Matrix.memory_breakdown
        <repro.graphblas.matrix.Matrix.memory_breakdown>` /
        :attr:`HierarchicalMatrix.memory_breakdown
        <repro.core.HierarchicalMatrix.memory_breakdown>` report: placement
        follows the resident footprint (stored + pending *capacity*), while
        traffic estimates elsewhere keep following live bytes (stored +
        pending *used*).  See
        :meth:`~repro.memory.hierarchy.MemoryHierarchy.placement_level`.
        """
        stored = int(breakdown.get("stored_bytes", 0))
        used = stored + int(breakdown.get("pending_used_bytes", 0))
        resident = stored + int(breakdown.get("pending_capacity_bytes", 0))
        return self.hierarchy.placement_level(used, resident)

    def estimate_flat(self, total_updates: int, batch_size: int, *, distinct_fraction: float = 1.0) -> TrafficEstimate:
        """Traffic estimate for the flat strategy (whole matrix lives in slow memory)."""
        writes = self.flat_write_counts(total_updates, batch_size, distinct_fraction=distinct_fraction)
        working_set = int(total_updates * distinct_fraction)
        est = self._attribute([writes], [working_set])
        est.strategy = "flat"
        return est

    def estimate_hierarchical(
        self, total_updates: int, batch_size: int, cuts: Sequence[int], *, distinct_fraction: float = 1.0
    ) -> TrafficEstimate:
        """Traffic estimate for a hierarchy with the given cuts."""
        writes = self.hierarchical_write_counts(
            total_updates, batch_size, cuts, distinct_fraction=distinct_fraction
        )
        working_sets = [int(c) for c in cuts] + [int(total_updates * distinct_fraction)]
        est = self._attribute(writes, working_sets)
        est.strategy = "hierarchical"
        return est

    def estimate_from_stats(self, stats: UpdateStats, cuts: Sequence[int], *, total_distinct: Optional[int] = None) -> TrafficEstimate:
        """Traffic estimate from measured :class:`UpdateStats` of a real ingest."""
        working_sets = [int(c) for c in cuts] + [
            int(total_distinct if total_distinct is not None else stats.total_updates)
        ]
        est = self._attribute(stats.element_writes, working_sets)
        est.strategy = "hierarchical(measured)"
        return est

    def speedup_estimate(self, total_updates: int, batch_size: int, cuts: Sequence[int], *, distinct_fraction: float = 1.0) -> float:
        """Ratio of estimated flat time to estimated hierarchical time (> 1 means the hierarchy wins)."""
        flat = self.estimate_flat(total_updates, batch_size, distinct_fraction=distinct_fraction)
        hier = self.estimate_hierarchical(total_updates, batch_size, cuts, distinct_fraction=distinct_fraction)
        if hier.estimated_seconds <= 0:
            return float("inf")
        return flat.estimated_seconds / hier.estimated_seconds
