"""repro — hierarchical hypersparse GraphBLAS matrices for streaming network updates.

A from-scratch Python reproduction of Kepner et al., "75,000,000,000 Streaming
Inserts/Second Using Hierarchical Hypersparse GraphBLAS Matrices" (2020):

* :mod:`repro.graphblas` — a hypersparse GraphBLAS substrate (matrices,
  vectors, semirings, the full update algebra) built on NumPy;
* :mod:`repro.core` — the paper's contribution: N-level hierarchical
  hypersparse matrices with tunable cuts, plus hierarchical D4M arrays;
* :mod:`repro.d4m` — D4M associative arrays (the prior-work baseline);
* :mod:`repro.workloads` — power-law edge streams, synthetic IP traffic, and
  the ingest measurement harness;
* :mod:`repro.baselines` — flat GraphBLAS/D4M ingest, Accumulo-style LSM and
  SciDB-style chunked-array emulations, and published Figure 2 reference curves;
* :mod:`repro.distributed` — the SuperCloud scaling model and a local
  multiprocessing ingest engine;
* :mod:`repro.memory` — memory-hierarchy cost model for the memory-pressure
  ablation;
* :mod:`repro.analytics` — supernode, background-model and anomaly analytics.

Quickstart
----------
>>> from repro import HierarchicalMatrix
>>> from repro.workloads import paper_stream
>>> H = HierarchicalMatrix(2**32, 2**32, cuts=[2**17, 2**20, 2**23])
>>> for batch in paper_stream(scale=0.0001):
...     H.update(batch.rows, batch.cols, batch.values)
>>> H.stats.updates_per_second > 0
True
"""

from .core import (
    AdaptiveCuts,
    FixedCuts,
    GeometricCuts,
    HierarchicalAssoc,
    HierarchicalMatrix,
    UpdateStats,
)
from .d4m import Assoc
from .graphblas import Matrix, Vector

__version__ = "1.0.0"

__all__ = [
    "HierarchicalMatrix",
    "HierarchicalAssoc",
    "Matrix",
    "Vector",
    "Assoc",
    "FixedCuts",
    "GeometricCuts",
    "AdaptiveCuts",
    "UpdateStats",
    "__version__",
]
