"""Graph algorithms in the language of sparse linear algebra.

SuiteSparse:GraphBLAS exists to run graph algorithms as matrix algebra (Davis,
"Algorithm 1000"; the GraphBLAS.org standard the paper builds on), and the
network analyses the paper motivates — reachability of botnet controllers,
ranking of supernodes, triangle/clustering structure of traffic graphs — are
exactly these algorithms.  Each function below is written purely in terms of
the :class:`~repro.graphblas.matrix.Matrix` / :class:`~repro.graphblas.vector.Vector`
API (semiring mxv/mxm, eWise ops, select, reduce), so they run unchanged on a
materialised hierarchical hypersparse traffic matrix.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .matrix import Matrix
from .semiring import semiring
from .vector import Vector

__all__ = [
    "bfs_levels",
    "pagerank",
    "triangle_count",
    "connected_components",
    "katz_centrality",
    "degree_centrality",
]


def bfs_levels(graph: Matrix, source: int, *, max_iterations: Optional[int] = None) -> Vector:
    """Breadth-first search levels from ``source``.

    Returns a sparse vector whose entry ``v`` is the BFS level of vertex ``v``
    (source = 0); unreached vertices are not stored.  Uses the classic
    GraphBLAS frontier iteration with the ``any_pair`` semiring (structure
    only, no values).

    Parameters
    ----------
    graph:
        Adjacency matrix; an edge ``(u, v)`` means ``u -> v``.
    source:
        Starting vertex id.
    max_iterations:
        Safety bound on the number of frontier expansions (default: no bound
        beyond frontier exhaustion).
    """
    n = graph.nrows
    levels = Vector("int64", n)
    frontier = Vector("bool", n)
    frontier.setElement(int(source), True)
    level = 0
    iterations = 0
    while frontier.nvals:
        # Mark the newly discovered vertices with the current level.
        idx, _ = frontier.to_coo()
        levels.build(idx, np.full(idx.size, level, dtype=np.int64), dup_op=None)
        # Expand: next = frontier^T * A, keeping only unvisited vertices.
        nxt = frontier.vxm(graph, semiring.any_pair)
        visited_idx, _ = levels.to_coo()
        nxt_idx, nxt_vals = nxt.to_coo()
        keep = ~np.isin(nxt_idx, visited_idx)
        frontier = Vector("bool", n)
        if np.any(keep):
            frontier.build(nxt_idx[keep], np.ones(int(keep.sum()), dtype=bool))
        level += 1
        iterations += 1
        if max_iterations is not None and iterations >= max_iterations:
            break
    return levels


def _vector_pattern(v: Vector) -> Tuple[np.ndarray, np.ndarray]:
    idx, _ = v.to_coo()
    return idx, np.zeros(idx.size, dtype=np.int64)


def pagerank(
    graph: Matrix,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    max_iterations: int = 100,
) -> Vector:
    """PageRank over the vertices that appear in the graph's pattern.

    Hypersparse-aware: the rank vector is defined only on the *active* vertex
    set (vertices with at least one in- or out-edge), so the full 2^32/2^64
    logical space is never materialised.  Dangling vertices (no out-edges)
    redistribute their rank uniformly over the active set.
    """
    rows, cols, _ = graph.extract_tuples()
    active = np.union1d(rows, cols)
    n_active = int(active.size)
    if n_active == 0:
        return Vector("fp64", graph.nrows)

    out_degree = graph.apply("one").reduce_rowwise()
    od_idx, od_vals = out_degree.to_coo()
    rank = Vector.from_coo(active, np.full(n_active, 1.0 / n_active), size=graph.nrows)

    for _ in range(max_iterations):
        # Scale each vertex's rank by 1/out_degree (dangling vertices excluded).
        r_idx, r_vals = rank.to_coo()
        pos = np.searchsorted(od_idx, r_idx)
        pos_c = np.minimum(pos, max(od_idx.size - 1, 0))
        has_out = od_idx.size > 0
        if has_out:
            matched = od_idx[pos_c] == r_idx
        else:
            matched = np.zeros(r_idx.size, dtype=bool)
        scaled_vals = np.where(matched, r_vals / np.where(matched, od_vals[pos_c], 1.0), 0.0)
        scaled = Vector.from_coo(r_idx, scaled_vals, size=graph.nrows)
        contrib = scaled.vxm(graph, semiring.plus_times)
        # Dangling mass: rank held by vertices with no out-edges.
        dangling_mass = float(r_vals[~matched].sum()) if r_idx.size else 0.0
        teleport = (1.0 - damping) / n_active + damping * dangling_mass / n_active
        c_idx, c_vals = contrib.to_coo()
        new_dense: Dict[int, float] = {int(v): teleport for v in active}
        for i, v in zip(c_idx.tolist(), c_vals.tolist()):
            new_dense[int(i)] = new_dense.get(int(i), teleport) + damping * v
        new_idx = np.fromiter(new_dense.keys(), dtype=np.uint64, count=len(new_dense))
        new_vals = np.fromiter(new_dense.values(), dtype=np.float64, count=len(new_dense))
        order = np.argsort(new_idx)
        new_rank = Vector.from_coo(new_idx[order], new_vals[order], size=graph.nrows)
        # Convergence: L1 distance between successive rank vectors.
        diff = new_rank.ewise_add(rank.apply("ainv")).apply("abs").reduce()
        rank = new_rank
        if float(diff) < tolerance:
            break
    return rank


def triangle_count(graph: Matrix) -> int:
    """Number of triangles in an undirected graph (Burkhardt / Cohen formula).

    Uses the GraphBLAS idiom ``sum(L .* (L @ L))`` with the ``plus_pair``
    semiring on the strictly lower-triangular part, counting each triangle
    exactly once.  The input may be directed; it is symmetrised first.
    """
    sym = graph.ewise_add(graph.transpose(), "max").apply("one")
    lower = sym.select("tril", -1)
    product = lower.mxm(lower, semiring.plus_pair, mask=lower)
    return int(product.reduce_scalar())


def connected_components(graph: Matrix, *, max_iterations: int = 1000) -> Vector:
    """Connected components via label propagation (minimum-label semiring).

    Returns a sparse vector mapping every active vertex to the smallest vertex
    id in its (weakly) connected component.
    """
    sym = graph.ewise_add(graph.transpose(), "max")
    rows, cols, _ = sym.extract_tuples()
    active = np.union1d(rows, cols)
    if active.size == 0:
        return Vector("uint64", graph.nrows)
    labels = Vector.from_coo(active, active.astype(np.uint64), size=graph.nrows, dtype="uint64")
    for _ in range(max_iterations):
        # min_second: take the neighbour's label (the vector operand), keep the minimum.
        propagated = labels.vxm(sym, semiring.min_second)
        new_labels = labels.ewise_add(propagated, "min")
        if new_labels.isequal(labels):
            break
        labels = new_labels
    return labels


def katz_centrality(
    graph: Matrix,
    *,
    alpha: float = 0.01,
    beta: float = 1.0,
    tolerance: float = 1e-6,
    max_iterations: int = 100,
) -> Vector:
    """Katz centrality ``x = alpha * A^T x + beta`` over the active vertex set."""
    rows, cols, _ = graph.extract_tuples()
    active = np.union1d(rows, cols)
    if active.size == 0:
        return Vector("fp64", graph.nrows)
    x = Vector.from_coo(active, np.full(active.size, beta), size=graph.nrows)
    at = graph.transpose()
    for _ in range(max_iterations):
        ax = at.mxv(x, semiring.plus_times)
        new_x = ax.apply("times", right=alpha).ewise_add(
            Vector.from_coo(active, np.full(active.size, beta), size=graph.nrows), "plus"
        )
        diff = new_x.ewise_add(x.apply("ainv")).apply("abs").reduce()
        x = new_x
        if float(diff) < tolerance:
            break
    return x


def degree_centrality(graph: Matrix, *, mode: str = "out") -> Vector:
    """Degree centrality: out-, in-, or total-degree of every active vertex."""
    if mode not in ("out", "in", "total"):
        raise ValueError(f"mode must be 'out', 'in' or 'total', got {mode!r}")
    ones = graph.apply("one")
    if mode == "out":
        return ones.reduce_rowwise()
    if mode == "in":
        return ones.reduce_columnwise()
    return ones.reduce_rowwise().ewise_add(ones.reduce_columnwise(), "plus")
