"""GraphBLAS unary operators.

A :class:`UnaryOp` is a named, vectorised function of one NumPy array, used by
``Matrix.apply`` / ``Vector.apply``.  The registry implements the GraphBLAS
built-ins (identity, additive/multiplicative inverse, absolute value, logical
not, one) plus the common SuiteSparse math extensions (sqrt, log, exp, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from .types import BOOL, DataType, FP64

__all__ = ["UnaryOp", "unary", "UNARY_OPS"]


@dataclass(frozen=True)
class UnaryOp:
    """A unary operator ``z = f(x)`` applied element-wise.

    Attributes
    ----------
    name:
        Canonical lower-case name, e.g. ``"abs"``.
    func:
        Vectorised implementation.
    bool_result:
        True when the result type is always BOOL.
    float_result:
        True when the result type is always FP64 (transcendental functions).
    """

    name: str
    func: Callable[[np.ndarray], np.ndarray] = field(compare=False)
    bool_result: bool = False
    float_result: bool = False

    def __call__(self, x):
        return self.func(np.asarray(x))

    def output_type(self, a: DataType) -> DataType:
        if self.bool_result:
            return BOOL
        if self.float_result:
            return FP64
        return a

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnaryOp({self.name})"


def _minv(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x)
    if np.issubdtype(x.dtype, np.integer):
        with np.errstate(divide="ignore"):
            return np.where(x == 0, 0, 1 // np.where(x == 0, 1, x))
    with np.errstate(divide="ignore"):
        return 1.0 / x


def _one(x: np.ndarray) -> np.ndarray:
    return np.ones_like(np.asarray(x))


def _ainv(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x)
    if x.dtype == np.bool_:
        return x.copy()
    if np.issubdtype(x.dtype, np.unsignedinteger):
        # Two's-complement negation within the unsigned domain, as SuiteSparse does.
        return (-x.astype(np.int64)).astype(x.dtype)
    return np.negative(x)


_REGISTRY: Dict[str, UnaryOp] = {}


def _register(op: UnaryOp) -> UnaryOp:
    _REGISTRY[op.name] = op
    return op


IDENTITY = _register(UnaryOp("identity", lambda x: np.array(x, copy=True)))
AINV = _register(UnaryOp("ainv", _ainv))
MINV = _register(UnaryOp("minv", _minv))
ABS = _register(UnaryOp("abs", np.abs))
LNOT = _register(UnaryOp("lnot", np.logical_not, bool_result=True))
ONE = _register(UnaryOp("one", _one))
SQRT = _register(UnaryOp("sqrt", lambda x: np.sqrt(x.astype(np.float64)), float_result=True))
LOG = _register(UnaryOp("log", lambda x: np.log(x.astype(np.float64)), float_result=True))
LOG2 = _register(UnaryOp("log2", lambda x: np.log2(x.astype(np.float64)), float_result=True))
LOG10 = _register(UnaryOp("log10", lambda x: np.log10(x.astype(np.float64)), float_result=True))
LOG1P = _register(UnaryOp("log1p", lambda x: np.log1p(x.astype(np.float64)), float_result=True))
EXP = _register(UnaryOp("exp", lambda x: np.exp(x.astype(np.float64)), float_result=True))
SIN = _register(UnaryOp("sin", lambda x: np.sin(x.astype(np.float64)), float_result=True))
COS = _register(UnaryOp("cos", lambda x: np.cos(x.astype(np.float64)), float_result=True))
TANH = _register(UnaryOp("tanh", lambda x: np.tanh(x.astype(np.float64)), float_result=True))
FLOOR = _register(UnaryOp("floor", np.floor))
CEIL = _register(UnaryOp("ceil", np.ceil))
ROUND = _register(UnaryOp("round", np.round))
SIGNUM = _register(UnaryOp("signum", np.sign))
BNOT = _register(UnaryOp("bnot", np.invert))

UNARY_OPS: Dict[str, UnaryOp] = dict(_REGISTRY)


class _UnaryNamespace:
    """Attribute-style access to the built-in unary operators."""

    def __init__(self, registry: Dict[str, UnaryOp]):
        self._registry = registry
        for key, op in registry.items():
            setattr(self, key, op)

    def __getitem__(self, name: str) -> UnaryOp:
        return self._registry[name.lower()]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._registry

    def __iter__(self):
        return iter(self._registry.values())

    def register(self, name: str, func, **kwargs) -> UnaryOp:
        """Register a user-defined unary operator and return it."""
        op = UnaryOp(name.lower(), func, **kwargs)
        self._registry[op.name] = op
        setattr(self, op.name, op)
        UNARY_OPS[op.name] = op
        return op


unary = _UnaryNamespace(_REGISTRY)
