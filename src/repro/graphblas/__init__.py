"""A from-scratch hypersparse GraphBLAS substrate in NumPy.

This package re-implements the subset of the SuiteSparse:GraphBLAS
functionality that the paper's hierarchical hypersparse matrices rely on:

* hypersparse :class:`Matrix` and sparse :class:`Vector` containers whose
  storage cost depends only on the number of stored values (``nvals``), never
  on the logical dimensions — so a :math:`2^{64} \\times 2^{64}` IPv6 traffic
  matrix is a perfectly ordinary object;
* the GraphBLAS algebra: binary/unary operators, monoids, semirings,
  element-wise add/multiply, matrix multiply, reductions, apply, select,
  extract, assign, transpose and Kronecker products;
* SuiteSparse-style *pending tuples* so that streams of scalar insertions are
  buffered and merged lazily.

Example
-------
>>> from repro.graphblas import Matrix, semiring
>>> A = Matrix.from_coo([0, 1], [1, 2], [1.0, 2.0], nrows=3, ncols=3)
>>> B = Matrix.from_coo([1, 2], [2, 0], [3.0, 4.0], nrows=3, ncols=3)
>>> C = A.mxm(B, semiring.plus_times)
>>> sorted(C)
[(0, 2, 3.0), (1, 0, 8.0)]
"""

from . import algorithms, coords
from .binaryop import BinaryOp, binary
from .descriptor import Descriptor, descriptor
from .errors import (
    DimensionMismatch,
    DomainMismatch,
    EmptyObject,
    GraphBLASError,
    IndexOutOfBound,
    InvalidIndex,
    InvalidValue,
    NotImplementedException,
    OutputNotEmpty,
)
from .io import mmread, mmwrite, random_hypersparse, read_triples, write_triples
from .mask import ComplementMask, Mask, StructuralMask, ValueMask
from .matrix import Matrix
from .monoid import Monoid, monoid
from .select import SelectOp, select_op
from .semiring import Semiring, semiring
from .types import (
    BOOL,
    FP32,
    FP64,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    DataType,
    lookup_dtype,
    unify,
)
from .unaryop import UnaryOp, unary
from .vector import Vector

__all__ = [
    "algorithms",
    "coords",
    "Matrix",
    "Vector",
    "BinaryOp",
    "UnaryOp",
    "Monoid",
    "Semiring",
    "SelectOp",
    "Descriptor",
    "Mask",
    "StructuralMask",
    "ValueMask",
    "ComplementMask",
    "binary",
    "unary",
    "monoid",
    "semiring",
    "select_op",
    "descriptor",
    "DataType",
    "lookup_dtype",
    "unify",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FP32",
    "FP64",
    "GraphBLASError",
    "DimensionMismatch",
    "DomainMismatch",
    "EmptyObject",
    "IndexOutOfBound",
    "InvalidIndex",
    "InvalidValue",
    "NotImplementedException",
    "OutputNotEmpty",
    "mmread",
    "mmwrite",
    "read_triples",
    "write_triples",
    "random_hypersparse",
]
