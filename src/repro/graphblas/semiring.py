"""GraphBLAS semirings: an additive monoid paired with a multiplicative binary op.

Semirings drive matrix-matrix and matrix-vector multiplication.  The registry
provides the classic algebraic semirings used in graph algorithms:
``plus_times`` (conventional linear algebra), ``min_plus`` / ``max_plus``
(shortest/longest paths), ``lor_land`` (reachability), ``plus_pair`` (triangle
counting), and the ``*_first`` / ``*_second`` selection semirings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .binaryop import BinaryOp, binary
from .monoid import Monoid, monoid
from .types import BOOL, DataType, unify

__all__ = ["Semiring", "semiring", "SEMIRINGS"]


@dataclass(frozen=True)
class Semiring:
    """A GraphBLAS semiring ``(add_monoid, multiply_op)``.

    Attributes
    ----------
    name:
        Canonical name, e.g. ``"plus_times"``.
    add:
        The additive :class:`Monoid` used to combine products.
    multiply:
        The multiplicative :class:`BinaryOp` applied to matched entries.
    """

    name: str
    add: Monoid = field(compare=False)
    multiply: BinaryOp = field(compare=False)

    def output_type(self, a: DataType, b: DataType) -> DataType:
        """Result type of multiplying types ``a`` and ``b`` under this semiring."""
        if self.multiply.bool_result or self.add.op.bool_result:
            return BOOL
        return unify(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


_REGISTRY: Dict[str, Semiring] = {}


def _register(s: Semiring) -> Semiring:
    _REGISTRY[s.name] = s
    return s


PLUS_TIMES = _register(Semiring("plus_times", monoid.plus, binary.times))
PLUS_PLUS = _register(Semiring("plus_plus", monoid.plus, binary.plus))
PLUS_MIN = _register(Semiring("plus_min", monoid.plus, binary.min))
PLUS_MAX = _register(Semiring("plus_max", monoid.plus, binary.max))
PLUS_FIRST = _register(Semiring("plus_first", monoid.plus, binary.first))
PLUS_SECOND = _register(Semiring("plus_second", monoid.plus, binary.second))
PLUS_PAIR = _register(Semiring("plus_pair", monoid.plus, binary.pair))
MIN_PLUS = _register(Semiring("min_plus", monoid.min, binary.plus))
MIN_TIMES = _register(Semiring("min_times", monoid.min, binary.times))
MIN_FIRST = _register(Semiring("min_first", monoid.min, binary.first))
MIN_SECOND = _register(Semiring("min_second", monoid.min, binary.second))
MIN_MAX = _register(Semiring("min_max", monoid.min, binary.max))
MAX_PLUS = _register(Semiring("max_plus", monoid.max, binary.plus))
MAX_TIMES = _register(Semiring("max_times", monoid.max, binary.times))
MAX_FIRST = _register(Semiring("max_first", monoid.max, binary.first))
MAX_SECOND = _register(Semiring("max_second", monoid.max, binary.second))
MAX_MIN = _register(Semiring("max_min", monoid.max, binary.min))
LOR_LAND = _register(Semiring("lor_land", monoid.lor, binary.land))
LAND_LOR = _register(Semiring("land_lor", monoid.land, binary.lor))
LXOR_LAND = _register(Semiring("lxor_land", monoid.lxor, binary.land))
ANY_PAIR = _register(Semiring("any_pair", monoid.any, binary.pair))
ANY_FIRST = _register(Semiring("any_first", monoid.any, binary.first))
ANY_SECOND = _register(Semiring("any_second", monoid.any, binary.second))
TIMES_TIMES = _register(Semiring("times_times", monoid.times, binary.times))
TIMES_PLUS = _register(Semiring("times_plus", monoid.times, binary.plus))

SEMIRINGS: Dict[str, Semiring] = dict(_REGISTRY)


class _SemiringNamespace:
    """Attribute-style access to the built-in semirings (``semiring.plus_times`` ...)."""

    def __init__(self, registry: Dict[str, Semiring]):
        self._registry = registry
        for key, s in registry.items():
            setattr(self, key, s)

    def __getitem__(self, name: str) -> Semiring:
        return self._registry[name.lower()]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._registry

    def __iter__(self):
        return iter(self._registry.values())

    def register(self, name: str, add: Monoid, multiply: BinaryOp) -> Semiring:
        """Register a user-defined semiring and return it."""
        s = Semiring(name.lower(), add, multiply)
        self._registry[s.name] = s
        setattr(self, s.name, s)
        SEMIRINGS[s.name] = s
        return s


semiring = _SemiringNamespace(_REGISTRY)
