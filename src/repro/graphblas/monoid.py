"""GraphBLAS monoids: associative, commutative binary operators with identity.

Monoids drive reductions (``Matrix.reduce_rowwise``, ``reduce_scalar``) and the
additive half of semirings.  Each monoid references a :class:`BinaryOp`, its
identity element, and (where one exists) a *terminal* value that permits early
exit — exactly mirroring SuiteSparse's monoid descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from .binaryop import BinaryOp, binary
from .errors import DomainMismatch
from .types import BOOL, DataType, lookup_dtype

__all__ = ["Monoid", "monoid", "MONOIDS"]


@dataclass(frozen=True)
class Monoid:
    """An associative, commutative binary operator together with its identity.

    Attributes
    ----------
    name:
        Canonical lower-case name, e.g. ``"plus"``.
    op:
        The underlying :class:`BinaryOp`.
    identity:
        The identity element (may be a callable of the dtype for
        type-dependent identities such as ``min``'s +inf / INT_MAX).
    terminal:
        Optional absorbing element permitting early-exit during reduction.
    """

    name: str
    op: BinaryOp
    identity: Any = field(compare=False)
    terminal: Optional[Any] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.op.associative:
            raise DomainMismatch(
                f"Binary op {self.op.name!r} is not associative; cannot form a monoid"
            )

    def identity_for(self, dtype) -> np.generic:
        """The identity element cast into ``dtype``'s domain."""
        dt = lookup_dtype(dtype)
        ident = self.identity
        if callable(ident):
            ident = ident(dt)
        return dt.np_type.type(ident)

    def terminal_for(self, dtype) -> Optional[np.generic]:
        """The terminal (absorbing) element in ``dtype``'s domain, if any."""
        if self.terminal is None:
            return None
        dt = lookup_dtype(dtype)
        term = self.terminal
        if callable(term):
            term = term(dt)
        return dt.np_type.type(term)

    def __call__(self, x, y):
        return self.op(x, y)

    def reduce(self, values: np.ndarray, dtype=None):
        """Reduce a 1-D array of values with this monoid.

        Returns the monoid identity when ``values`` is empty.
        """
        values = np.asarray(values)
        dt = lookup_dtype(dtype if dtype is not None else values.dtype)
        if values.size == 0:
            return self.identity_for(dt)
        if self.op.ufunc is not None:
            return dt.np_type.type(self.op.ufunc.reduce(values.astype(dt.np_type)))
        out = values[0]
        for v in values[1:]:
            out = self.op(out, v)
        return dt.np_type.type(out)

    def reduce_groups(self, values: np.ndarray, group_starts: np.ndarray) -> np.ndarray:
        """Reduce contiguous groups of ``values`` delimited by ``group_starts``.

        ``group_starts`` are the starting offsets of each group (as produced by
        a sort-and-unique pass); the fast path uses ``ufunc.reduceat``.
        """
        values = np.asarray(values)
        group_starts = np.asarray(group_starts, dtype=np.intp)
        if group_starts.size == 0:
            return values[:0]
        if self.op.ufunc is not None and self.op.ufunc.nin == 2:
            return self.op.ufunc.reduceat(values, group_starts)
        # Generic fallback: python loop over groups (rare; only non-ufunc ops).
        ends = np.append(group_starts[1:], values.size)
        out = np.empty(group_starts.size, dtype=values.dtype)
        for i, (s, e) in enumerate(zip(group_starts, ends)):
            acc = values[s]
            for j in range(s + 1, e):
                acc = self.op(acc, values[j])
            out[i] = acc
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Monoid({self.name})"


def _min_identity(dt: DataType):
    if dt.is_float:
        return np.inf
    if dt.is_bool:
        return True
    return np.iinfo(dt.np_type).max


def _max_identity(dt: DataType):
    if dt.is_float:
        return -np.inf
    if dt.is_bool:
        return False
    return np.iinfo(dt.np_type).min


_REGISTRY: Dict[str, Monoid] = {}


def _register(m: Monoid) -> Monoid:
    _REGISTRY[m.name] = m
    return m


PLUS = _register(Monoid("plus", binary.plus, 0))
TIMES = _register(Monoid("times", binary.times, 1, terminal=0))
MIN = _register(Monoid("min", binary.min, _min_identity, terminal=_max_identity))
MAX = _register(Monoid("max", binary.max, _max_identity, terminal=_min_identity))
ANY = _register(Monoid("any", binary.any, 0))
LOR = _register(Monoid("lor", binary.lor, False, terminal=True))
LAND = _register(Monoid("land", binary.land, True, terminal=False))
LXOR = _register(Monoid("lxor", binary.lxor, False))
BOR = _register(Monoid("bor", binary.bor, 0))
BAND = _register(Monoid("band", binary.band, lambda dt: np.iinfo(dt.np_type).max if dt.is_integer else 1))
BXOR = _register(Monoid("bxor", binary.bxor, 0))

MONOIDS: Dict[str, Monoid] = dict(_REGISTRY)


class _MonoidNamespace:
    """Attribute-style access to the built-in monoids (``monoid.plus`` ...)."""

    def __init__(self, registry: Dict[str, Monoid]):
        self._registry = registry
        for key, m in registry.items():
            setattr(self, key, m)

    def __getitem__(self, name: str) -> Monoid:
        return self._registry[name.lower()]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._registry

    def __iter__(self):
        return iter(self._registry.values())

    def register(self, name: str, op: BinaryOp, identity, terminal=None) -> Monoid:
        """Register a user-defined monoid and return it."""
        m = Monoid(name.lower(), op, identity, terminal)
        self._registry[m.name] = m
        setattr(self, m.name, m)
        MONOIDS[m.name] = m
        return m


monoid = _MonoidNamespace(_REGISTRY)
