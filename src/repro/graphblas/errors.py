"""Exception hierarchy mirroring the GraphBLAS C API error codes.

The GraphBLAS specification defines a set of API and execution errors
(``GrB_DIMENSION_MISMATCH``, ``GrB_INDEX_OUT_OF_BOUNDS`` and friends).  The
pure-Python substrate in :mod:`repro.graphblas` raises the exceptions below in
the corresponding situations so that user code written against this library
reads like code written against a conventional GraphBLAS binding.
"""

from __future__ import annotations

__all__ = [
    "GraphBLASError",
    "DimensionMismatch",
    "IndexOutOfBound",
    "EmptyObject",
    "DomainMismatch",
    "InvalidValue",
    "InvalidIndex",
    "OutputNotEmpty",
    "NotImplementedException",
]


class GraphBLASError(Exception):
    """Base class for every error raised by :mod:`repro.graphblas`."""


class DimensionMismatch(GraphBLASError):
    """Operands have incompatible shapes (``GrB_DIMENSION_MISMATCH``)."""


class IndexOutOfBound(GraphBLASError):
    """A row or column index exceeds the matrix dimensions."""


class EmptyObject(GraphBLASError):
    """An operation required a non-empty object (e.g. reduce of empty)."""


class DomainMismatch(GraphBLASError):
    """Operand value types are incompatible with the requested operator."""


class InvalidValue(GraphBLASError):
    """A scalar argument is outside its permitted range."""


class InvalidIndex(GraphBLASError):
    """An index array is malformed (negative, non-integer, wrong length)."""


class OutputNotEmpty(GraphBLASError):
    """An output object was expected to be empty but was not."""


class NotImplementedException(GraphBLASError):
    """The requested combination of operator/type is not supported."""
