"""Low-level NumPy kernels for hypersparse (sorted-COO) matrices.

Every kernel operates on parallel ``(rows, cols, vals)`` arrays where the
coordinates are stored as ``uint64`` (so that 2^64 x 2^64 IPv6 traffic matrices
never overflow) and the tuples are sorted lexicographically by ``(row, col)``
with no duplicate coordinates.  This is the "hypersparse" invariant: storage is
proportional to the number of stored entries only, never to the matrix
dimensions.

The kernels are deliberately free of Python-level loops on the hot paths
(sorting, duplicate collapse, union/intersection merges) per the
vectorisation guidance in the HPC-Python guides; the only loops that remain are
fallbacks for non-ufunc duplicate operators.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .binaryop import BinaryOp, binary
from .errors import InvalidIndex

__all__ = [
    "INDEX_DTYPE",
    "as_index_array",
    "sort_coo",
    "collapse_duplicates",
    "union_merge",
    "intersect_merge",
    "difference_mask",
    "membership_mask",
    "search_sorted_coo",
    "group_starts",
]

#: dtype used for row/column coordinates throughout the library.
INDEX_DTYPE = np.dtype(np.uint64)

Triple = Tuple[np.ndarray, np.ndarray, np.ndarray]


def as_index_array(idx, name: str = "index") -> np.ndarray:
    """Validate and convert ``idx`` to a 1-D uint64 coordinate array.

    Negative values and non-integer arrays raise :class:`InvalidIndex`.
    """
    if not isinstance(idx, np.ndarray) and (
        not hasattr(idx, "__len__")
        or len(idx) == 0
        or isinstance(idx[0], (int, np.integer))
    ):
        # Python sequences of large ints (> 2**63) would be lossily promoted to
        # float64 by plain asarray (NumPy 2.x); convert straight to uint64 so
        # full 64-bit IPv6 coordinates survive exactly.
        try:
            arr = np.asarray(idx, dtype=INDEX_DTYPE)
        except (OverflowError, ValueError, TypeError):
            arr = np.asarray(idx)
        else:
            if arr.ndim == 0:
                arr = arr.reshape(1)
            if arr.ndim != 1:
                raise InvalidIndex(
                    f"{name} must be one-dimensional, got shape {arr.shape}"
                )
            return arr
    else:
        arr = np.asarray(idx)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise InvalidIndex(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.dtype == INDEX_DTYPE:
        return arr
    if arr.dtype.kind == "f":
        if not np.all(arr == np.floor(arr)):
            raise InvalidIndex(f"{name} contains non-integer values")
        arr = arr.astype(np.int64)
    if arr.dtype.kind == "i":
        if arr.size and arr.min() < 0:
            raise InvalidIndex(f"{name} contains negative values")
        return arr.astype(INDEX_DTYPE)
    if arr.dtype.kind == "u":
        return arr.astype(INDEX_DTYPE)
    if arr.dtype.kind == "b":
        return arr.astype(INDEX_DTYPE)
    raise InvalidIndex(f"{name} has non-integer dtype {arr.dtype}")


def sort_coo(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> Triple:
    """Sort COO triples lexicographically by (row, col).

    Returns new arrays; the inputs are not modified.  Already-sorted input is
    detected and returned without copying work beyond the monotonicity check.
    """
    if rows.size <= 1:
        return rows, cols, vals
    # Cheap monotonicity check before paying for a lexsort: already strictly
    # sorted input (the common case when merging clean matrices) passes through.
    if np.all(rows[1:] >= rows[:-1]):
        same_row = rows[1:] == rows[:-1]
        if not np.any(same_row) or np.all(cols[1:][same_row] > cols[:-1][same_row]):
            return rows, cols, vals
    order = np.lexsort((cols, rows))
    return rows[order], cols[order], vals[order]


def group_starts(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Start offsets of each run of identical (row, col) pairs in sorted COO."""
    if rows.size == 0:
        return np.empty(0, dtype=np.intp)
    new_group = np.empty(rows.size, dtype=bool)
    new_group[0] = True
    np.not_equal(rows[1:], rows[:-1], out=new_group[1:])
    np.logical_or(new_group[1:], cols[1:] != cols[:-1], out=new_group[1:])
    return np.flatnonzero(new_group)


def collapse_duplicates(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    dup_op: Optional[BinaryOp] = None,
) -> Triple:
    """Collapse duplicate coordinates in *sorted* COO triples.

    ``dup_op`` combines duplicate values (default: ``plus``, matching
    ``GrB_Matrix_build``'s most common usage).  The ``second`` operator keeps
    the last value written, ``first`` the first.  ufunc-backed operators use a
    single ``reduceat`` call; everything else falls back to a loop over only
    the duplicated groups.
    """
    if rows.size <= 1:
        return rows, cols, vals
    if dup_op is None:
        dup_op = binary.plus
    starts = group_starts(rows, cols)
    if starts.size == rows.size:  # no duplicates at all
        return rows, cols, vals
    out_rows = rows[starts]
    out_cols = cols[starts]
    if dup_op.name == "first":
        return out_rows, out_cols, vals[starts]
    if dup_op.name == "second":
        ends = np.append(starts[1:], rows.size) - 1
        return out_rows, out_cols, vals[ends]
    if dup_op.ufunc is not None:
        out_vals = dup_op.ufunc.reduceat(vals, starts)
        if out_vals.dtype != vals.dtype:
            out_vals = out_vals.astype(vals.dtype)
        return out_rows, out_cols, out_vals
    # Generic fallback: reduce each group with a Python loop.
    ends = np.append(starts[1:], rows.size)
    out_vals = np.empty(starts.size, dtype=vals.dtype)
    for i in range(starts.size):
        acc = vals[starts[i]]
        for j in range(starts[i] + 1, ends[i]):
            acc = dup_op(acc, vals[j])
        out_vals[i] = acc
    return out_rows, out_cols, out_vals


def union_merge(
    a: Triple,
    b: Triple,
    op: Optional[BinaryOp] = None,
    out_dtype: Optional[np.dtype] = None,
) -> Triple:
    """Element-wise union (``eWiseAdd``) of two sorted, duplicate-free COO sets.

    Coordinates present in only one operand copy through unchanged; matching
    coordinates are combined with ``op`` (default ``plus``).  The result is
    sorted and duplicate-free.
    """
    if op is None:
        op = binary.plus
    ra, ca, va = a
    rb, cb, vb = b
    if out_dtype is None:
        out_dtype = np.promote_types(va.dtype, vb.dtype)
    if ra.size == 0:
        return rb.copy(), cb.copy(), vb.astype(out_dtype, copy=True)
    if rb.size == 0:
        return ra.copy(), ca.copy(), va.astype(out_dtype, copy=True)

    rows = np.concatenate([ra, rb])
    cols = np.concatenate([ca, cb])
    # Tag the provenance of each tuple so matched pairs apply op(a_val, b_val)
    # in the correct argument order even after the sort.
    src = np.empty(rows.size, dtype=np.uint8)
    src[: ra.size] = 0
    src[ra.size:] = 1
    vals = np.concatenate(
        [va.astype(out_dtype, copy=False), vb.astype(out_dtype, copy=False)]
    )

    order = np.lexsort((src, cols, rows))
    rows = rows[order]
    cols = cols[order]
    vals = vals[order]
    src = src[order]

    # Because each input is duplicate-free, any duplicate group has exactly two
    # members: one from `a` (src=0) followed by one from `b` (src=1).
    dup_with_next = np.zeros(rows.size, dtype=bool)
    if rows.size > 1:
        dup_with_next[:-1] = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
    keep = ~np.roll(dup_with_next, 1) if rows.size else np.ones(0, dtype=bool)
    if rows.size:
        keep[0] = True

    if not np.any(dup_with_next):
        return rows, cols, vals

    matched_first = np.flatnonzero(dup_with_next)
    combined = op(vals[matched_first], vals[matched_first + 1])
    out_vals = vals[keep].copy()
    # Positions of the matched pairs within the kept array.
    kept_positions = np.cumsum(keep) - 1
    out_vals[kept_positions[matched_first]] = combined.astype(out_dtype, copy=False)
    return rows[keep], cols[keep], out_vals


def intersect_merge(
    a: Triple,
    b: Triple,
    op: Optional[BinaryOp] = None,
    out_dtype: Optional[np.dtype] = None,
) -> Triple:
    """Element-wise intersection (``eWiseMult``) of two sorted COO sets.

    Only coordinates present in both operands are retained; values combine via
    ``op`` (default ``times``).
    """
    if op is None:
        op = binary.times
    ra, ca, va = a
    rb, cb, vb = b
    if out_dtype is None:
        out_dtype = np.promote_types(va.dtype, vb.dtype)
    empty = (
        np.empty(0, dtype=INDEX_DTYPE),
        np.empty(0, dtype=INDEX_DTYPE),
        np.empty(0, dtype=out_dtype),
    )
    if ra.size == 0 or rb.size == 0:
        return empty

    rows = np.concatenate([ra, rb])
    cols = np.concatenate([ca, cb])
    src = np.empty(rows.size, dtype=np.uint8)
    src[: ra.size] = 0
    src[ra.size:] = 1
    vals = np.concatenate(
        [va.astype(out_dtype, copy=False), vb.astype(out_dtype, copy=False)]
    )
    order = np.lexsort((src, cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]

    dup_with_next = np.zeros(rows.size, dtype=bool)
    dup_with_next[:-1] = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
    matched_first = np.flatnonzero(dup_with_next)
    if matched_first.size == 0:
        return empty
    combined = op(vals[matched_first], vals[matched_first + 1]).astype(
        out_dtype, copy=False
    )
    if op.bool_result:
        combined = combined.astype(np.bool_)
    return rows[matched_first], cols[matched_first], combined


def membership_mask(
    rows: np.ndarray,
    cols: np.ndarray,
    other_rows: np.ndarray,
    other_cols: np.ndarray,
) -> np.ndarray:
    """Boolean mask marking which (rows, cols) pairs appear in the other set.

    Both coordinate sets must be sorted lexicographically and duplicate-free.
    """
    if rows.size == 0:
        return np.zeros(0, dtype=bool)
    if other_rows.size == 0:
        return np.zeros(rows.size, dtype=bool)
    all_rows = np.concatenate([rows, other_rows])
    all_cols = np.concatenate([cols, other_cols])
    src = np.empty(all_rows.size, dtype=np.uint8)
    src[: rows.size] = 0
    src[rows.size:] = 1
    original_pos = np.concatenate(
        [np.arange(rows.size, dtype=np.intp), np.zeros(other_rows.size, dtype=np.intp)]
    )
    order = np.lexsort((src, all_cols, all_rows))
    sr, sc, ss = all_rows[order], all_cols[order], src[order]
    spos = original_pos[order]
    dup_with_next = np.zeros(sr.size, dtype=bool)
    dup_with_next[:-1] = (sr[1:] == sr[:-1]) & (sc[1:] == sc[:-1]) & (ss[:-1] == 0) & (
        ss[1:] == 1
    )
    mask = np.zeros(rows.size, dtype=bool)
    hit = np.flatnonzero(dup_with_next)
    mask[spos[hit]] = True
    return mask


def difference_mask(
    rows: np.ndarray,
    cols: np.ndarray,
    other_rows: np.ndarray,
    other_cols: np.ndarray,
) -> np.ndarray:
    """Boolean mask marking (rows, cols) pairs *not* present in the other set."""
    return ~membership_mask(rows, cols, other_rows, other_cols)


def search_sorted_coo(
    rows: np.ndarray,
    cols: np.ndarray,
    query_rows: np.ndarray,
    query_cols: np.ndarray,
) -> np.ndarray:
    """Locate query coordinates in a sorted COO set.

    Returns an int64 array of positions; ``-1`` marks coordinates not present.
    """
    qr = as_index_array(query_rows, "query rows")
    qc = as_index_array(query_cols, "query cols")
    out = np.full(qr.size, -1, dtype=np.int64)
    if rows.size == 0 or qr.size == 0:
        return out
    # Narrow each query to the row's slice, then binary search the columns.
    row_lo = np.searchsorted(rows, qr, side="left")
    row_hi = np.searchsorted(rows, qr, side="right")
    for i in range(qr.size):
        lo, hi = row_lo[i], row_hi[i]
        if lo == hi:
            continue
        j = lo + np.searchsorted(cols[lo:hi], qc[i], side="left")
        if j < hi and cols[j] == qc[i]:
            out[i] = j
    return out
