"""Low-level NumPy kernels for hypersparse (sorted-COO) matrices.

Every kernel operates on parallel ``(rows, cols, vals)`` arrays where the
coordinates are stored as ``uint64`` (so that 2^64 x 2^64 IPv6 traffic matrices
never overflow) and the tuples are sorted lexicographically by ``(row, col)``
with no duplicate coordinates.  This is the "hypersparse" invariant: storage is
proportional to the number of stored entries only, never to the matrix
dimensions.

Performance architecture
------------------------
Each kernel runs on one of two interchangeable engines:

* **Packed engine** — when the observed coordinates fit a 64-bit split (see
  :mod:`repro.graphblas.coords`), ``(row, col)`` pairs are packed into single
  ``uint64`` sort keys.  Sorting becomes a single-key stable ``np.argsort``,
  merging becomes ``np.searchsorted``-driven vectorised merges with no
  concatenate-then-lexsort, and membership/point queries become one binary
  search per batch.  This is the hot path for the paper's IPv4
  :math:`2^{32} \\times 2^{32}` traffic matrices and anything smaller.
* **Lexsort fallback** — full 64-bit IPv6 coordinate sets keep the original
  dual-key ``np.lexsort`` paths.  The two engines are bit-identical in output
  (property-tested), so callers never need to know which one ran.

The kernels are deliberately free of Python-level loops on the hot paths
(sorting, duplicate collapse, union/intersection merges, batched point
queries) per the vectorisation guidance in the HPC-Python guides; the only
loop that remains is the fallback for non-ufunc duplicate operators.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import coords
from .binaryop import BinaryOp, binary
from .errors import InvalidIndex

__all__ = [
    "INDEX_DTYPE",
    "as_index_array",
    "sort_coo",
    "build_triples",
    "collapse_duplicates",
    "union_merge",
    "intersect_merge",
    "difference_mask",
    "membership_mask",
    "sorted_membership",
    "search_sorted_coo",
    "group_starts",
    "key_group_starts",
]

#: dtype used for row/column coordinates throughout the library.
INDEX_DTYPE = np.dtype(np.uint64)

Triple = Tuple[np.ndarray, np.ndarray, np.ndarray]


def as_index_array(idx, name: str = "index") -> np.ndarray:
    """Validate and convert ``idx`` to a 1-D uint64 coordinate array.

    Negative values and non-integer arrays raise :class:`InvalidIndex`.
    """
    if isinstance(idx, np.ndarray) and idx.dtype == INDEX_DTYPE and idx.ndim == 1:
        # Hot path: streaming workloads hand us ready-made uint64 arrays.
        return idx
    if not isinstance(idx, np.ndarray) and (
        not hasattr(idx, "__len__")
        or len(idx) == 0
        or isinstance(idx[0], (int, np.integer))
    ):
        # Python sequences of large ints (> 2**63) would be lossily promoted to
        # float64 by plain asarray (NumPy 2.x); convert straight to uint64 so
        # full 64-bit IPv6 coordinates survive exactly.
        try:
            arr = np.asarray(idx, dtype=INDEX_DTYPE)
        except (OverflowError, ValueError, TypeError):
            arr = np.asarray(idx)
        else:
            if arr.ndim == 0:
                arr = arr.reshape(1)
            if arr.ndim != 1:
                raise InvalidIndex(
                    f"{name} must be one-dimensional, got shape {arr.shape}"
                )
            return arr
    else:
        arr = np.asarray(idx)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise InvalidIndex(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.dtype == INDEX_DTYPE:
        return arr
    if arr.dtype.kind == "f":
        if not np.all(arr == np.floor(arr)):
            raise InvalidIndex(f"{name} contains non-integer values")
        arr = arr.astype(np.int64)
    if arr.dtype.kind == "i":
        if arr.size and arr.min() < 0:
            raise InvalidIndex(f"{name} contains negative values")
        return arr.astype(INDEX_DTYPE)
    if arr.dtype.kind == "u":
        return arr.astype(INDEX_DTYPE)
    if arr.dtype.kind == "b":
        return arr.astype(INDEX_DTYPE)
    raise InvalidIndex(f"{name} has non-integer dtype {arr.dtype}")


# --------------------------------------------------------------------------- #
# sorting and duplicate collapse
# --------------------------------------------------------------------------- #


def _lexsort_coo(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> Triple:
    """Dual-key fallback sort (strictly-sorted input passes through)."""
    if np.all(rows[1:] >= rows[:-1]):
        same_row = rows[1:] == rows[:-1]
        if not np.any(same_row) or np.all(cols[1:][same_row] > cols[:-1][same_row]):
            return rows, cols, vals
    order = np.lexsort((cols, rows))
    return rows[order], cols[order], vals[order]


def sort_coo(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> Triple:
    """Sort COO triples lexicographically by (row, col).

    Returns new arrays; the inputs are not modified.  Already-sorted input is
    detected and returned without copying work beyond the monotonicity check.
    Stable for duplicate coordinates (insertion order is preserved), which the
    ``first``/``second`` duplicate operators rely on.
    """
    if rows.size <= 1:
        return rows, cols, vals
    spec = coords.plan_pack((rows, cols))
    if spec is None:
        return _lexsort_coo(rows, cols, vals)
    keys = coords.pack(rows, cols, spec)
    if np.all(keys[1:] > keys[:-1]):  # already strictly sorted: pass through
        return rows, cols, vals
    order = np.argsort(keys, kind="stable")
    return rows[order], cols[order], vals[order]


def group_starts(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Start offsets of each run of identical (row, col) pairs in sorted COO."""
    if rows.size == 0:
        return np.empty(0, dtype=np.intp)
    new_group = np.empty(rows.size, dtype=bool)
    new_group[0] = True
    np.not_equal(rows[1:], rows[:-1], out=new_group[1:])
    np.logical_or(new_group[1:], cols[1:] != cols[:-1], out=new_group[1:])
    return np.flatnonzero(new_group)


def _key_group_starts(keys: np.ndarray) -> np.ndarray:
    """Start offsets of runs of identical packed keys."""
    new_group = np.empty(keys.size, dtype=bool)
    new_group[0] = True
    np.not_equal(keys[1:], keys[:-1], out=new_group[1:])
    return np.flatnonzero(new_group)


#: Public alias: single-key group starts for callers that sort in packed key
#: space themselves (the packed ``mxm`` product path, the tracker catch-up).
key_group_starts = _key_group_starts


def _reduce_groups(
    vals: np.ndarray, starts: np.ndarray, total: int, dup_op: BinaryOp
) -> np.ndarray:
    """Reduce contiguous value groups delimited by ``starts`` with ``dup_op``."""
    if dup_op.name == "first":
        return vals[starts]
    if dup_op.name == "second":
        ends = np.append(starts[1:], total) - 1
        return vals[ends]
    if dup_op.ufunc is not None:
        out_vals = dup_op.ufunc.reduceat(vals, starts)
        if out_vals.dtype != vals.dtype:
            out_vals = out_vals.astype(vals.dtype)
        return out_vals
    # Generic fallback: reduce each group with a Python loop.
    ends = np.append(starts[1:], total)
    out_vals = np.empty(starts.size, dtype=vals.dtype)
    for i in range(starts.size):
        acc = vals[starts[i]]
        for j in range(starts[i] + 1, ends[i]):
            acc = dup_op(acc, vals[j])
        out_vals[i] = acc
    return out_vals


def collapse_duplicates(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    dup_op: Optional[BinaryOp] = None,
) -> Triple:
    """Collapse duplicate coordinates in *sorted* COO triples.

    ``dup_op`` combines duplicate values (default: ``plus``, matching
    ``GrB_Matrix_build``'s most common usage).  The ``second`` operator keeps
    the last value written, ``first`` the first.  ufunc-backed operators use a
    single ``reduceat`` call; everything else falls back to a loop over only
    the duplicated groups.
    """
    if rows.size <= 1:
        return rows, cols, vals
    if dup_op is None:
        dup_op = binary.plus
    starts = group_starts(rows, cols)
    if starts.size == rows.size:  # no duplicates at all
        return rows, cols, vals
    return rows[starts], cols[starts], _reduce_groups(vals, starts, rows.size, dup_op)


def build_triples(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    dup_op: Optional[BinaryOp] = None,
    *,
    with_keys: bool = False,
):
    """Sort raw triples and collapse duplicates in one fused kernel.

    Equivalent to ``collapse_duplicates(*sort_coo(rows, cols, vals), dup_op)``
    but packs the coordinates only once, so the streaming build/ingest path
    pays a single key construction for both stages.

    With ``with_keys=True`` the return value is the 5-tuple ``(rows, cols,
    vals, keys, spec)`` where ``keys`` are the packed sort keys of the
    *output* triples under ``spec`` (``None``/``None`` on the lexsort
    fallback or for trivial inputs).  Callers that immediately merge the
    result — the layer-1 flush feeding :func:`union_merge` — hand the keys
    onward so one flush packs its pending triples exactly once.
    """
    if rows.size <= 1:
        return (rows, cols, vals, None, None) if with_keys else (rows, cols, vals)
    if dup_op is None:
        dup_op = binary.plus
    spec = coords.plan_pack((rows, cols))
    if spec is None:
        rows, cols, vals = _lexsort_coo(rows, cols, vals)
        out = collapse_duplicates(rows, cols, vals, dup_op)
        return (*out, None, None) if with_keys else out
    keys = coords.pack(rows, cols, spec)
    if not np.all(keys[1:] > keys[:-1]):
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = vals[order]
        strictly_sorted = False
    else:
        strictly_sorted = True
    starts = _key_group_starts(keys)
    if starts.size == keys.size:  # duplicate-free
        if strictly_sorted:
            return (rows, cols, vals, keys, spec) if with_keys else (rows, cols, vals)
        out_rows, out_cols = coords.unpack(keys, spec)
        return (
            (out_rows, out_cols, vals, keys, spec)
            if with_keys
            else (out_rows, out_cols, vals)
        )
    out_keys = keys[starts]
    out_rows, out_cols = coords.unpack(out_keys, spec)
    out_vals = _reduce_groups(vals, starts, keys.size, dup_op)
    return (
        (out_rows, out_cols, out_vals, out_keys, spec)
        if with_keys
        else (out_rows, out_cols, out_vals)
    )


# --------------------------------------------------------------------------- #
# merges
# --------------------------------------------------------------------------- #


def _locate_keys(ka: np.ndarray, kb: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Locate each key of ``ka`` in sorted, duplicate-free ``kb``.

    Returns ``(positions, hit)``: ``positions`` are clamped insertion points
    into ``kb`` and ``hit`` marks the ``ka`` entries actually present there.
    ``kb`` must be non-empty.
    """
    idx = np.searchsorted(kb, ka, side="left")
    idx_c = np.minimum(idx, kb.size - 1)
    return idx_c, kb[idx_c] == ka


def _merge_sorted_keys(ka: np.ndarray, kb: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised two-way merge of sorted key arrays (ties: ``a`` before ``b``).

    Returns ``(merged_keys, pos_a, pos_b)`` where ``pos_a``/``pos_b`` are the
    positions of each input element inside the merged array.  Replaces the
    concatenate + lexsort idiom with two binary searches and two scatters.
    """
    pos_a = np.arange(ka.size, dtype=np.intp) + np.searchsorted(kb, ka, side="left")
    pos_b = np.arange(kb.size, dtype=np.intp) + np.searchsorted(ka, kb, side="right")
    merged = np.empty(ka.size + kb.size, dtype=ka.dtype)
    merged[pos_a] = ka
    merged[pos_b] = kb
    return merged, pos_a, pos_b


def union_merge(
    a: Triple,
    b: Triple,
    op: Optional[BinaryOp] = None,
    out_dtype: Optional[np.dtype] = None,
    *,
    b_keys: Optional[np.ndarray] = None,
    b_spec=None,
) -> Triple:
    """Element-wise union (``eWiseAdd``) of two sorted, duplicate-free COO sets.

    Coordinates present in only one operand copy through unchanged; matching
    coordinates are combined with ``op`` (default ``plus``).  The result is
    sorted and duplicate-free.

    ``b_keys``/``b_spec`` optionally carry ``b``'s packed sort keys as
    returned by :func:`build_triples(..., with_keys=True) <build_triples>`.
    They are reused — skipping one key construction over ``b`` — whenever the
    split planned over both operands matches ``b_spec``; a mismatching or
    absent spec simply repacks, so the option is always safe.
    """
    if op is None:
        op = binary.plus
    ra, ca, va = a
    rb, cb, vb = b
    if out_dtype is None:
        out_dtype = np.promote_types(va.dtype, vb.dtype)
    if ra.size == 0:
        return rb.copy(), cb.copy(), vb.astype(out_dtype, copy=True)
    if rb.size == 0:
        return ra.copy(), ca.copy(), va.astype(out_dtype, copy=True)

    spec = coords.plan_pack((ra, ca), (rb, cb))
    if spec is not None:
        kb = (
            b_keys
            if b_keys is not None and b_spec == spec
            else coords.pack(rb, cb, spec)
        )
        keys, pos_a, pos_b = _merge_sorted_keys(coords.pack(ra, ca, spec), kb)
        vals = np.empty(keys.size, dtype=out_dtype)
        vals[pos_a] = va.astype(out_dtype, copy=False)
        vals[pos_b] = vb.astype(out_dtype, copy=False)
        # Each input is duplicate-free, so any duplicate run has exactly two
        # members: the `a` element immediately followed by the `b` element.
        dup_with_next = np.zeros(keys.size, dtype=bool)
        dup_with_next[:-1] = keys[1:] == keys[:-1]
        matched_first = np.flatnonzero(dup_with_next)
        if matched_first.size == 0:
            out_rows, out_cols = coords.unpack(keys, spec)
            return out_rows, out_cols, vals
        keep = np.ones(keys.size, dtype=bool)
        keep[matched_first + 1] = False
        combined = op(vals[matched_first], vals[matched_first + 1])
        out_vals = vals[keep]
        kept_positions = np.cumsum(keep) - 1
        out_vals[kept_positions[matched_first]] = combined.astype(out_dtype, copy=False)
        out_rows, out_cols = coords.unpack(keys[keep], spec)
        return out_rows, out_cols, out_vals

    # Lexsort fallback (full 64-bit coordinate sets).
    rows = np.concatenate([ra, rb])
    cols = np.concatenate([ca, cb])
    # Tag the provenance of each tuple so matched pairs apply op(a_val, b_val)
    # in the correct argument order even after the sort.
    src = np.empty(rows.size, dtype=np.uint8)
    src[: ra.size] = 0
    src[ra.size:] = 1
    vals = np.concatenate(
        [va.astype(out_dtype, copy=False), vb.astype(out_dtype, copy=False)]
    )

    order = np.lexsort((src, cols, rows))
    rows = rows[order]
    cols = cols[order]
    vals = vals[order]

    dup_with_next = np.zeros(rows.size, dtype=bool)
    dup_with_next[:-1] = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
    if not np.any(dup_with_next):
        return rows, cols, vals

    matched_first = np.flatnonzero(dup_with_next)
    keep = np.ones(rows.size, dtype=bool)
    keep[matched_first + 1] = False
    combined = op(vals[matched_first], vals[matched_first + 1])
    out_vals = vals[keep]
    # Positions of the matched pairs within the kept array.
    kept_positions = np.cumsum(keep) - 1
    out_vals[kept_positions[matched_first]] = combined.astype(out_dtype, copy=False)
    return rows[keep], cols[keep], out_vals


def intersect_merge(
    a: Triple,
    b: Triple,
    op: Optional[BinaryOp] = None,
    out_dtype: Optional[np.dtype] = None,
) -> Triple:
    """Element-wise intersection (``eWiseMult``) of two sorted COO sets.

    Only coordinates present in both operands are retained; values combine via
    ``op`` (default ``times``).
    """
    if op is None:
        op = binary.times
    ra, ca, va = a
    rb, cb, vb = b
    if out_dtype is None:
        out_dtype = np.promote_types(va.dtype, vb.dtype)
    empty = (
        np.empty(0, dtype=INDEX_DTYPE),
        np.empty(0, dtype=INDEX_DTYPE),
        np.empty(0, dtype=out_dtype),
    )
    if ra.size == 0 or rb.size == 0:
        return empty

    spec = coords.plan_pack((ra, ca), (rb, cb))
    if spec is not None:
        ka = coords.pack(ra, ca, spec)
        kb = coords.pack(rb, cb, spec)
        idx_c, hit = _locate_keys(ka, kb)
        if not np.any(hit):
            return empty
        combined = op(
            va[hit].astype(out_dtype, copy=False),
            vb[idx_c[hit]].astype(out_dtype, copy=False),
        ).astype(out_dtype, copy=False)
        if op.bool_result:
            combined = combined.astype(np.bool_)
        return ra[hit], ca[hit], combined

    # Lexsort fallback (full 64-bit coordinate sets).
    rows = np.concatenate([ra, rb])
    cols = np.concatenate([ca, cb])
    src = np.empty(rows.size, dtype=np.uint8)
    src[: ra.size] = 0
    src[ra.size:] = 1
    vals = np.concatenate(
        [va.astype(out_dtype, copy=False), vb.astype(out_dtype, copy=False)]
    )
    order = np.lexsort((src, cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]

    dup_with_next = np.zeros(rows.size, dtype=bool)
    dup_with_next[:-1] = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
    matched_first = np.flatnonzero(dup_with_next)
    if matched_first.size == 0:
        return empty
    combined = op(vals[matched_first], vals[matched_first + 1]).astype(
        out_dtype, copy=False
    )
    if op.bool_result:
        combined = combined.astype(np.bool_)
    return rows[matched_first], cols[matched_first], combined


# --------------------------------------------------------------------------- #
# membership and point queries
# --------------------------------------------------------------------------- #


def membership_mask(
    rows: np.ndarray,
    cols: np.ndarray,
    other_rows: np.ndarray,
    other_cols: np.ndarray,
) -> np.ndarray:
    """Boolean mask marking which (rows, cols) pairs appear in the other set.

    Both coordinate sets must be sorted lexicographically and duplicate-free.
    """
    if rows.size == 0:
        return np.zeros(0, dtype=bool)
    if other_rows.size == 0:
        return np.zeros(rows.size, dtype=bool)

    spec = coords.plan_pack((rows, cols), (other_rows, other_cols))
    if spec is not None:
        keys = coords.pack(rows, cols, spec)
        other_keys = coords.pack(other_rows, other_cols, spec)
        return _locate_keys(keys, other_keys)[1]

    # Lexsort fallback (full 64-bit coordinate sets).
    all_rows = np.concatenate([rows, other_rows])
    all_cols = np.concatenate([cols, other_cols])
    src = np.empty(all_rows.size, dtype=np.uint8)
    src[: rows.size] = 0
    src[rows.size:] = 1
    original_pos = np.concatenate(
        [np.arange(rows.size, dtype=np.intp), np.zeros(other_rows.size, dtype=np.intp)]
    )
    order = np.lexsort((src, all_cols, all_rows))
    sr, sc, ss = all_rows[order], all_cols[order], src[order]
    spos = original_pos[order]
    dup_with_next = np.zeros(sr.size, dtype=bool)
    dup_with_next[:-1] = (sr[1:] == sr[:-1]) & (sc[1:] == sc[:-1]) & (ss[:-1] == 0) & (
        ss[1:] == 1
    )
    mask = np.zeros(rows.size, dtype=bool)
    hit = np.flatnonzero(dup_with_next)
    mask[spos[hit]] = True
    return mask


def difference_mask(
    rows: np.ndarray,
    cols: np.ndarray,
    other_rows: np.ndarray,
    other_cols: np.ndarray,
) -> np.ndarray:
    """Boolean mask marking (rows, cols) pairs *not* present in the other set."""
    return ~membership_mask(rows, cols, other_rows, other_cols)


def sorted_membership(values: np.ndarray, selection: np.ndarray) -> np.ndarray:
    """Boolean mask of which ``values`` appear in ``selection`` (any order).

    Sorts the (typically small) selection once and binary-searches every
    value against it — O((n + s) log s) with no hash set or per-value scan.
    This is the join underneath the ``extract`` fast path, replacing
    ``np.isin`` over the stored coordinate columns; the reference engine
    (``coords.packing_disabled``) keeps the ``np.isin`` path for the
    two-engine conformance tests.
    """
    if values.size == 0 or selection.size == 0:
        return np.zeros(values.size, dtype=bool)
    sel = np.sort(selection, kind="stable")
    pos = np.searchsorted(sel, values)
    pos = np.minimum(pos, sel.size - 1)
    return sel[pos] == values


def search_sorted_coo(
    rows: np.ndarray,
    cols: np.ndarray,
    query_rows: np.ndarray,
    query_cols: np.ndarray,
) -> np.ndarray:
    """Locate query coordinates in a sorted COO set.

    Returns an int64 array of positions; ``-1`` marks coordinates not present.
    Small query batches (single-element ``extractElement`` calls) use a
    per-query row-slice binary search costing O(q log n) with no O(n) scan of
    the stored set.  Bulk batches are fully vectorised on both engines: the
    packed path is one binary search over the whole query batch, the fallback
    ranks stored tuples and queries in a single merged lexsort — no per-query
    Python loop, so 10k+ point queries cost O((n + q) log (n + q)) total.
    """
    qr = as_index_array(query_rows, "query rows")
    qc = as_index_array(query_cols, "query cols")
    out = np.full(qr.size, -1, dtype=np.int64)
    if rows.size == 0 or qr.size == 0:
        return out

    if qr.size <= 32:
        # Point-query fast path: binary-search each query's row slice, then
        # its column.  Avoids packing/ranking the whole stored set, keeping
        # extractElement at O(log n) per call.
        row_lo = np.searchsorted(rows, qr, side="left")
        row_hi = np.searchsorted(rows, qr, side="right")
        for i in range(qr.size):
            lo, hi = row_lo[i], row_hi[i]
            if lo == hi:
                continue
            j = lo + np.searchsorted(cols[lo:hi], qc[i], side="left")
            if j < hi and cols[j] == qc[i]:
                out[i] = j
        return out

    spec = coords.plan_pack((rows, cols), (qr, qc))
    if spec is not None:
        keys = coords.pack(rows, cols, spec)
        query_keys = coords.pack(qr, qc, spec)
        idx_c, hit = _locate_keys(query_keys, keys)
        out[hit] = idx_c[hit]
        return out

    # Fallback: rank queries against stored tuples via one merged lexsort.
    # With src as the final key, a query sorts after an equal stored tuple, so
    # the count of stored tuples at-or-before each query is its side="right"
    # insertion point; the candidate match is the stored tuple just before it.
    n = rows.size
    all_rows = np.concatenate([rows, qr])
    all_cols = np.concatenate([cols, qc])
    src = np.empty(all_rows.size, dtype=np.uint8)
    src[:n] = 0
    src[n:] = 1
    order = np.lexsort((src, all_cols, all_rows))
    is_query = order >= n
    stored_before = np.cumsum(~is_query)
    query_positions = np.flatnonzero(is_query)
    query_idx = order[query_positions] - n
    j_right = stored_before[query_positions]
    has_candidate = j_right > 0
    candidate = np.where(has_candidate, j_right - 1, 0)
    hit = (
        has_candidate
        & (rows[candidate] == qr[query_idx])
        & (cols[candidate] == qc[query_idx])
    )
    out[query_idx[hit]] = candidate[hit]
    return out
