"""Packed-coordinate codec for hypersparse COO kernels.

The kernel engine in :mod:`repro.graphblas._kernels` operates on parallel
``(rows, cols)`` ``uint64`` coordinate arrays sorted lexicographically.  A
two-key ``np.lexsort`` (and the concatenate-then-lexsort merge idiom built on
it) is 2-4x slower than a single-key ``np.sort``/``np.searchsorted``, so this
module provides a *codec* that packs a coordinate pair into one ``uint64``
sort key whenever the coordinates fit a 64-bit split:

``key = (row << col_bits) | col``   with ``row < 2**row_bits``,
``col < 2**col_bits`` and ``row_bits + col_bits == 64``.

Because the row occupies the high bits, packing is strictly monotone with
respect to the lexicographic ``(row, col)`` order for *any* valid split, so a
lex-sorted coordinate set has sorted keys and vice versa.  The canonical
split is 32/32 — the paper's IPv4 :math:`2^{32} \\times 2^{32}` traffic
matrix packs losslessly — but :func:`plan_split` will give the columns only
the bits they need so that, e.g., a :math:`2^{40} \\times 2^{20}` set still
packs.  Full 64-bit IPv6 coordinate sets (where ``bit_length(max_row) +
bit_length(max_col) > 64``) do not fit one key; the kernels then fall back
transparently to the dual-key lexsort paths, which remain bit-identical in
results (property-tested in ``tests/graphblas/test_coords.py``).

Packing is planned *per kernel call* from the observed maximum coordinates —
an O(n) scan that is trivially cheap next to the O(n log n) sort it
accelerates — so no global configuration is required.  For testing and
benchmarking, :func:`packing_disabled` forces every kernel onto the fallback
path.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, NamedTuple, Optional, Tuple

import numpy as np

__all__ = [
    "KEY_DTYPE",
    "DEFAULT_ROW_BITS",
    "PackedSpec",
    "plan_split",
    "plan_pack",
    "shape_split",
    "pack",
    "unpack",
    "pack_calls",
    "packing_enabled",
    "set_packing_enabled",
    "packing_disabled",
]

#: dtype of packed sort keys.
KEY_DTYPE = np.dtype(np.uint64)

#: Canonical row-bit count: the IPv4 32/32 traffic-matrix split.
DEFAULT_ROW_BITS = 32

_KEY_BITS = 64

# Module-level switch so tests and benchmarks can force the lexsort fallback.
_PACKING_ENABLED = True


class PackedSpec(NamedTuple):
    """A 64-bit coordinate split: ``row_bits`` high bits, ``col_bits`` low bits."""

    row_bits: int
    col_bits: int

    @property
    def col_mask(self) -> np.uint64:
        """Bit mask selecting the column bits of a packed key."""
        return np.uint64((1 << self.col_bits) - 1)

    @property
    def max_row(self) -> int:
        """Largest row coordinate representable under this split."""
        return (1 << self.row_bits) - 1

    @property
    def max_col(self) -> int:
        """Largest column coordinate representable under this split."""
        return (1 << self.col_bits) - 1


#: The canonical IPv4 split, shared so empty coordinate sets plan consistently.
IPV4_SPEC = PackedSpec(DEFAULT_ROW_BITS, _KEY_BITS - DEFAULT_ROW_BITS)


def packing_enabled() -> bool:
    """Whether the packed-key fast path is currently allowed."""
    return _PACKING_ENABLED


def set_packing_enabled(flag: bool) -> None:
    """Globally enable/disable the packed-key fast path (fallback still correct)."""
    global _PACKING_ENABLED
    _PACKING_ENABLED = bool(flag)


@contextlib.contextmanager
def packing_disabled() -> Iterator[None]:
    """Context manager forcing every kernel onto the dual-key lexsort fallback.

    Used by the property-test suite to assert the two paths are bit-identical
    and by the benchmark harness to measure the packed speedup.
    """
    previous = _PACKING_ENABLED
    set_packing_enabled(False)
    try:
        yield
    finally:
        set_packing_enabled(previous)


def plan_split(
    max_row: int, max_col: int, *, prefer_row_bits: int = DEFAULT_ROW_BITS
) -> Optional[PackedSpec]:
    """Choose a bit split covering ``max_row``/``max_col``, or None if impossible.

    The canonical ``prefer_row_bits`` split (default 32/32, the IPv4 case) is
    used whenever both coordinates fit it; otherwise the columns get exactly
    the bits they need and the rows the remainder.  Returns ``None`` when
    ``bit_length(max_row) + bit_length(max_col) > 64`` (the full IPv6 case) or
    when packing is globally disabled.
    """
    if not _PACKING_ENABLED:
        return None
    row_bits_needed = max(int(max_row).bit_length(), 1)
    col_bits_needed = max(int(max_col).bit_length(), 1)
    if row_bits_needed + col_bits_needed > _KEY_BITS:
        return None
    prefer_col_bits = _KEY_BITS - prefer_row_bits
    if row_bits_needed <= prefer_row_bits and col_bits_needed <= prefer_col_bits:
        return PackedSpec(prefer_row_bits, prefer_col_bits)
    return PackedSpec(_KEY_BITS - col_bits_needed, col_bits_needed)


def plan_pack(*coord_pairs: Tuple[np.ndarray, np.ndarray]) -> Optional[PackedSpec]:
    """Plan one split covering every supplied ``(rows, cols)`` array pair.

    All pairs must use the same split so their keys are mutually comparable
    (the merge/search kernels rely on this).  Returns ``None`` when any pair
    pushes the combined bit requirement past 64 bits or packing is disabled.
    """
    if not _PACKING_ENABLED:
        return None
    max_row = 0
    max_col = 0
    for rows, cols in coord_pairs:
        if rows.size:
            max_row = max(max_row, int(rows.max()))
            max_col = max(max_col, int(cols.max()))
    return plan_split(max_row, max_col)


def shape_split(nrows: int, ncols: int) -> Optional[PackedSpec]:
    """Choose a split covering a fixed ``nrows x ncols`` shape, or None.

    Unlike :func:`plan_split` this ignores the global packing toggle: the
    result is a pure function of the shape.  Shard routing uses it so that the
    shard owning a coordinate never depends on a per-process performance flag
    — the packed kernels may be disabled for benchmarking while the routing
    keys stay byte-for-byte identical.
    """
    row_bits = max(int(nrows - 1).bit_length(), 1)
    col_bits = max(int(ncols - 1).bit_length(), 1)
    if row_bits + col_bits > _KEY_BITS:
        return None
    if row_bits <= DEFAULT_ROW_BITS and col_bits <= _KEY_BITS - DEFAULT_ROW_BITS:
        return IPV4_SPEC
    return PackedSpec(_KEY_BITS - col_bits, col_bits)


# Monotone counter of pack() invocations.  Purely observational: the kernel
# benchmark asserts key-reuse levers (e.g. one _wait flush packing its pending
# triples exactly once) by differencing this counter around the hot path.
_PACK_CALLS = 0


def pack_calls() -> int:
    """Total :func:`pack` invocations so far (benchmark/test instrumentation)."""
    return _PACK_CALLS


def pack(rows: np.ndarray, cols: np.ndarray, spec: PackedSpec) -> np.ndarray:
    """Pack coordinate arrays into single ``uint64`` sort keys.

    The caller is responsible for having planned ``spec`` over these arrays;
    out-of-range coordinates would silently alias, which is why every kernel
    plans before packing.
    """
    global _PACK_CALLS
    _PACK_CALLS += 1
    shift = np.uint64(spec.col_bits)
    return (rows.astype(KEY_DTYPE, copy=False) << shift) | cols.astype(
        KEY_DTYPE, copy=False
    )


def unpack(keys: np.ndarray, spec: PackedSpec) -> Tuple[np.ndarray, np.ndarray]:
    """Invert :func:`pack`: recover ``(rows, cols)`` from packed keys."""
    shift = np.uint64(spec.col_bits)
    return keys >> shift, keys & spec.col_mask
