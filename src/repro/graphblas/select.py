"""GraphBLAS select operators (``GrB_select`` / ``GxB_SelectOp``).

A :class:`SelectOp` decides, per stored entry, whether that entry survives into
the output.  Each operator receives the entry coordinates, the values, and an
optional scalar *thunk*, and returns a boolean keep-mask.  The built-ins cover
the standard positional operators (``tril``, ``triu``, ``diag``, ``offdiag``,
row/column comparisons) and the value comparisons (``valuene``, ``valuegt`` ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

__all__ = ["SelectOp", "select_op", "SELECT_OPS"]


@dataclass(frozen=True)
class SelectOp:
    """A predicate over stored entries.

    Attributes
    ----------
    name:
        Canonical lower-case name, e.g. ``"tril"``.
    func:
        ``func(rows, cols, vals, thunk) -> bool ndarray`` marking entries kept.
    needs_thunk:
        True when the operator requires a scalar thunk argument.
    """

    name: str
    func: Callable[[np.ndarray, np.ndarray, np.ndarray, object], np.ndarray] = field(
        compare=False
    )
    needs_thunk: bool = False

    def __call__(self, rows, cols, vals, thunk=None) -> np.ndarray:
        return self.func(rows, cols, vals, thunk)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SelectOp({self.name})"


def _signed(rows: np.ndarray, cols: np.ndarray, thunk):
    """Column-minus-row offset as signed integers, guarding uint64 wraparound."""
    t = 0 if thunk is None else int(thunk)
    r = rows.astype(np.float64)
    c = cols.astype(np.float64)
    return r, c, t


_REGISTRY: Dict[str, SelectOp] = {}


def _register(op: SelectOp) -> SelectOp:
    _REGISTRY[op.name] = op
    return op


def _tril(rows, cols, vals, thunk):
    r, c, t = _signed(rows, cols, thunk)
    return (c - r) <= t


def _triu(rows, cols, vals, thunk):
    r, c, t = _signed(rows, cols, thunk)
    return (c - r) >= t


def _diag(rows, cols, vals, thunk):
    r, c, t = _signed(rows, cols, thunk)
    return (c - r) == t


def _offdiag(rows, cols, vals, thunk):
    r, c, t = _signed(rows, cols, thunk)
    return (c - r) != t


TRIL = _register(SelectOp("tril", _tril))
TRIU = _register(SelectOp("triu", _triu))
DIAG = _register(SelectOp("diag", _diag))
OFFDIAG = _register(SelectOp("offdiag", _offdiag))

ROWLE = _register(
    SelectOp("rowle", lambda r, c, v, t: r <= np.uint64(int(t)), needs_thunk=True)
)
ROWGT = _register(
    SelectOp("rowgt", lambda r, c, v, t: r > np.uint64(int(t)), needs_thunk=True)
)
COLLE = _register(
    SelectOp("colle", lambda r, c, v, t: c <= np.uint64(int(t)), needs_thunk=True)
)
COLGT = _register(
    SelectOp("colgt", lambda r, c, v, t: c > np.uint64(int(t)), needs_thunk=True)
)

VALUENE = _register(
    SelectOp("valuene", lambda r, c, v, t: v != (0 if t is None else t))
)
VALUEEQ = _register(
    SelectOp("valueeq", lambda r, c, v, t: v == (0 if t is None else t))
)
VALUEGT = _register(
    SelectOp("valuegt", lambda r, c, v, t: v > (0 if t is None else t))
)
VALUEGE = _register(
    SelectOp("valuege", lambda r, c, v, t: v >= (0 if t is None else t))
)
VALUELT = _register(
    SelectOp("valuelt", lambda r, c, v, t: v < (0 if t is None else t))
)
VALUELE = _register(
    SelectOp("valuele", lambda r, c, v, t: v <= (0 if t is None else t))
)
NONZERO = _register(SelectOp("nonzero", lambda r, c, v, t: v != 0))

SELECT_OPS: Dict[str, SelectOp] = dict(_REGISTRY)


class _SelectNamespace:
    """Attribute-style access to the built-in select operators."""

    def __init__(self, registry: Dict[str, SelectOp]):
        self._registry = registry
        for key, op in registry.items():
            setattr(self, key, op)

    def __getitem__(self, name: str) -> SelectOp:
        return self._registry[name.lower()]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._registry

    def __iter__(self):
        return iter(self._registry.values())

    def register(self, name: str, func, needs_thunk: bool = False) -> SelectOp:
        """Register a user-defined select operator and return it."""
        op = SelectOp(name.lower(), func, needs_thunk)
        self._registry[op.name] = op
        setattr(self, op.name, op)
        SELECT_OPS[op.name] = op
        return op


select_op = _SelectNamespace(_REGISTRY)
