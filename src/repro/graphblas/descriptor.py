"""GraphBLAS descriptors: modifiers applied to an operation call.

A :class:`Descriptor` bundles the standard GraphBLAS flags — transpose either
input, complement or use only the structure of the mask, and replace the output
instead of merging.  Common combinations are pre-built (``T0``, ``T1``,
``T0T1``, ``C``, ``S``, ``RSC`` ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Descriptor", "descriptor", "NULL_DESCRIPTOR"]


@dataclass(frozen=True)
class Descriptor:
    """Operation modifiers.

    Attributes
    ----------
    transpose_a:
        Use the transpose of the first input (``GrB_INP0``/``GrB_TRAN``).
    transpose_b:
        Use the transpose of the second input (``GrB_INP1``/``GrB_TRAN``).
    mask_complement:
        Complement the mask (``GrB_COMP``).
    mask_structure:
        Use only the structure (pattern) of the mask, not its values
        (``GrB_STRUCTURE``).
    replace:
        Clear the output object before writing results (``GrB_REPLACE``).
    """

    transpose_a: bool = False
    transpose_b: bool = False
    mask_complement: bool = False
    mask_structure: bool = False
    replace: bool = False

    def __or__(self, other: "Descriptor") -> "Descriptor":
        """Combine two descriptors (union of their flags)."""
        return Descriptor(
            transpose_a=self.transpose_a or other.transpose_a,
            transpose_b=self.transpose_b or other.transpose_b,
            mask_complement=self.mask_complement or other.mask_complement,
            mask_structure=self.mask_structure or other.mask_structure,
            replace=self.replace or other.replace,
        )


NULL_DESCRIPTOR = Descriptor()

_PREBUILT: Dict[str, Descriptor] = {
    "null": NULL_DESCRIPTOR,
    "t0": Descriptor(transpose_a=True),
    "t1": Descriptor(transpose_b=True),
    "t0t1": Descriptor(transpose_a=True, transpose_b=True),
    "c": Descriptor(mask_complement=True),
    "s": Descriptor(mask_structure=True),
    "sc": Descriptor(mask_structure=True, mask_complement=True),
    "r": Descriptor(replace=True),
    "rc": Descriptor(replace=True, mask_complement=True),
    "rs": Descriptor(replace=True, mask_structure=True),
    "rsc": Descriptor(replace=True, mask_structure=True, mask_complement=True),
}


class _DescriptorNamespace:
    """Attribute-style access to pre-built descriptors (``descriptor.t0`` ...)."""

    def __init__(self, registry: Dict[str, Descriptor]):
        self._registry = registry
        for key, d in registry.items():
            setattr(self, key, d)

    def __getitem__(self, name: str) -> Descriptor:
        return self._registry[name.lower()]

    def __iter__(self):
        return iter(self._registry.values())


descriptor = _DescriptorNamespace(_PREBUILT)
