"""Masks controlling which output entries an operation may write.

GraphBLAS operations accept an optional mask.  A *structural* mask keeps output
entries whose coordinates are present in the mask object regardless of value; a
*value* mask additionally requires the stored value to be truthy.  Either kind
can be complemented.  These wrappers simply record the masking mode around a
matrix or vector; the containers interpret them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Mask", "StructuralMask", "ValueMask", "ComplementMask", "resolve_mask"]


@dataclass(frozen=True)
class Mask:
    """Base mask wrapper.

    Attributes
    ----------
    parent:
        The Matrix or Vector supplying the mask pattern/values.
    structure:
        Use only the stored pattern (ignore values).
    complement:
        Invert the mask sense.
    """

    parent: Any
    structure: bool = False
    complement: bool = False

    @property
    def S(self) -> "Mask":
        """Structural view of this mask (``mask.S`` mirrors python-graphblas)."""
        return Mask(self.parent, structure=True, complement=self.complement)

    @property
    def V(self) -> "Mask":
        """Value view of this mask."""
        return Mask(self.parent, structure=False, complement=self.complement)

    def __invert__(self) -> "Mask":
        return Mask(self.parent, structure=self.structure, complement=not self.complement)


def StructuralMask(parent) -> Mask:
    """Convenience constructor for a structural mask over ``parent``."""
    return Mask(parent, structure=True)


def ValueMask(parent) -> Mask:
    """Convenience constructor for a value mask over ``parent``."""
    return Mask(parent, structure=False)


def ComplementMask(parent, structure: bool = False) -> Mask:
    """Convenience constructor for a complemented mask over ``parent``."""
    return Mask(parent, structure=structure, complement=True)


def resolve_mask(mask, descriptor=None) -> "Mask | None":
    """Normalise a user-provided mask argument.

    Accepts ``None``, a :class:`Mask`, or a bare Matrix/Vector (treated as a
    value mask, the GraphBLAS default).  Descriptor flags (``mask_structure``,
    ``mask_complement``) are folded in.
    """
    if mask is None:
        return None
    if not isinstance(mask, Mask):
        mask = Mask(mask)
    if descriptor is not None:
        structure = mask.structure or descriptor.mask_structure
        complement = mask.complement ^ descriptor.mask_complement
        mask = Mask(mask.parent, structure=structure, complement=complement)
    return mask
