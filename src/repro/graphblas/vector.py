"""Sparse GraphBLAS vectors.

A :class:`Vector` stores only its nonzero entries as sorted ``uint64`` indices
plus values, so it supports the same hypersparse dimensions as
:class:`~repro.graphblas.matrix.Matrix` (e.g. a degree vector over the full
IPv4 address space).  The API mirrors the GraphBLAS vector operations: build,
setElement/extractElement, eWiseAdd/eWiseMult, apply, select, reduce, and
vector-matrix multiply.

Like :class:`~repro.graphblas.matrix.Matrix`, vectors support deferred
(``lazy=True``) builds — batches append to a pending buffer in O(n) and the
sort + duplicate-collapse + merge is postponed until the next read — plus an
O(n) :meth:`Vector.merge_sorted` fast path for callers that already hold
sorted, duplicate-free pairs.  The incremental reduction trackers in
:mod:`repro.core.reductions` merge their fused group-reductions through
``merge_sorted``, so maintaining per-endpoint degree/traffic profiles never
re-sorts against the growing stored vectors.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple, Union

import numpy as np

from . import _kernels as K
from . import arena
from .binaryop import BinaryOp, binary
from .errors import DimensionMismatch, IndexOutOfBound, InvalidValue, NotImplementedException
from .monoid import Monoid, monoid
from .select import SelectOp, select_op
from .semiring import Semiring, semiring
from .types import DataType, lookup_dtype

__all__ = ["Vector"]

MAX_DIM = 2 ** 64


class Vector:
    """A sparse vector over a GraphBLAS scalar type.

    Parameters
    ----------
    dtype:
        GraphBLAS type of stored values.
    size:
        Logical length; may be as large as ``2**64``.

    Examples
    --------
    >>> v = Vector("int64", size=2**32)
    >>> v.build([3, 5, 5], [1, 1, 1])
    >>> v.nvals, v[5]
    (2, 2)
    """

    __slots__ = (
        "_size",
        "_dtype",
        "_indices",
        "_vals",
        "_pend",
        "_pend_op",
        "name",
    )

    def __init__(self, dtype="fp64", size: int = MAX_DIM, *, name: str = ""):
        self._dtype = lookup_dtype(dtype)
        size = int(size)
        if size <= 0 or size > MAX_DIM:
            raise InvalidValue(f"size must be in [1, 2**64], got {size}")
        self._size = size
        self._indices = np.empty(0, dtype=K.INDEX_DTYPE)
        self._vals = np.empty(0, dtype=self._dtype.np_type)
        # Pending (index, value-bits) pairs live in a preallocated arena:
        # appends are memcpys, the flush sorts the used prefix directly.
        self._pend = arena.make_pending(2)
        self._pend_op: Optional[BinaryOp] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_coo(cls, indices, values=1, *, dtype=None, size: int = MAX_DIM,
                 dup_op: Optional[BinaryOp] = None, name: str = "") -> "Vector":
        """Build a vector from (index, value) pairs; duplicates combine with ``dup_op``."""
        idx = K.as_index_array(indices, "indices")
        if np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            v = np.full(idx.size, values)
        else:
            v = np.asarray(values)
        if dtype is not None:
            v = v.astype(lookup_dtype(dtype).np_type)
        out = cls(v.dtype if dtype is None else dtype, size, name=name)
        out.build(idx, v, dup_op=dup_op)
        return out

    @classmethod
    def from_dense(cls, array, *, dtype=None, name: str = "") -> "Vector":
        """Build a vector from a dense 1-D array, dropping explicit zeros."""
        arr = np.asarray(array)
        if arr.ndim != 1:
            raise DimensionMismatch("from_dense expects a 1-D array")
        idx = np.flatnonzero(arr)
        return cls.from_coo(idx, arr[idx], dtype=dtype, size=arr.size, name=name)

    def dup(self, *, dtype=None, name: str = "") -> "Vector":
        """Deep copy (optionally cast to ``dtype``)."""
        self._wait()
        target = lookup_dtype(dtype) if dtype is not None else self._dtype
        out = Vector(target, self._size, name=name or self.name)
        out._indices = self._indices.copy()
        out._vals = self._vals.astype(target.np_type, copy=True)
        return out

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Logical length of the vector."""
        return self._size

    @property
    def dtype(self) -> DataType:
        """The GraphBLAS scalar type of stored values."""
        return self._dtype

    @property
    def nvals(self) -> int:
        """Number of stored entries.  Forces completion of pending updates."""
        self._wait()
        return int(self._indices.size)

    @property
    def nvals_upper_bound(self) -> int:
        """Stored entries plus pending (not yet merged) entries.

        Unlike :attr:`nvals` this does not force a merge, so it is O(1);
        deferred-accumulation callers use it to budget flushes cheaply.
        """
        return int(self._indices.size) + self._pend.used

    @property
    def has_pending(self) -> bool:
        """True when lazily built entries are buffered but not yet merged."""
        return self._pend.used > 0

    @property
    def memory_breakdown(self) -> dict:
        """Resident bytes by role: stored arrays vs pending used/capacity.

        The pending arena preallocates geometrically, so its resident
        footprint (``pending_capacity_bytes``) can exceed the live data
        (``pending_used_bytes``); spill/placement decisions must follow the
        capacity while traffic estimates follow the used bytes (see
        :meth:`repro.memory.hierarchy.MemoryHierarchy.placement_level`).
        """
        return {
            "stored_bytes": int(self._indices.nbytes + self._vals.nbytes),
            "pending_used_bytes": int(self._pend.used_bytes),
            "pending_capacity_bytes": int(self._pend.capacity_bytes),
        }

    @property
    def memory_usage(self) -> int:
        """Approximate resident bytes: stored arrays plus pending *capacity*."""
        b = self.memory_breakdown
        return b["stored_bytes"] + b["pending_capacity_bytes"]

    def _append_pending(self, idx: np.ndarray, v: np.ndarray, op: BinaryOp) -> None:
        """Append validated pairs to the pending buffer under operator ``op``.

        The whole buffer shares one combining operator; switching operators
        flushes first so ordering semantics are preserved exactly (mirrors
        :meth:`Matrix._append_pending <repro.graphblas.matrix.Matrix>`).
        Values are canonicalised to the vector dtype here — as raw bits, so
        the flush never re-casts — and the arena copies, so callers may
        reuse their batch buffers freely.
        """
        if idx.size == 0:
            return
        if self._pend.used and self._pend_op is not None and self._pend_op is not op:
            self._wait()
        self._pend_op = op
        self._pend.append(idx, arena.value_bits(v, self._dtype.np_type))

    def reserve_pending(self, capacity: int) -> "Vector":
        """Preallocate the pending buffer for a known fill bound.

        See :meth:`PendingArena.reserve
        <repro.graphblas.arena.PendingArena.reserve>`: one reservation
        replaces the geometric growth ladder for callers that stream a
        bounded number of lazy entries between flushes (the incremental
        reduction trackers).  No-op on the legacy list backend.
        """
        self._pend.reserve(int(capacity))
        return self

    def _wait(self) -> None:
        """Merge any pending entries into the sorted representation.

        Mirrors ``GrB_wait`` on :class:`Matrix`: pending insertions are sorted
        stably (insertion order survives for ``first``/``second``), duplicate
        indices are collapsed with the buffer's operator, and the result is
        union-merged into the stored arrays with the same operator.  The
        pending arena is read as zero-copy views — no concatenation, no
        dtype conversion — and the argsort gather is the flush's single
        value-array allocation.
        """
        if self._pend.used == 0:
            return
        op = self._pend_op if self._pend_op is not None else binary.second
        idx_view, bits_view = self._pend.views()
        v_view = arena.bits_to_values(bits_view, self._dtype.np_type)
        order = np.argsort(idx_view, kind="stable")
        idx, v = idx_view[order], v_view[order]  # fresh arrays, detached
        self._pend.reset()
        self._pend_op = None
        zeros = np.zeros(idx.size, dtype=K.INDEX_DTYPE)
        idx, _, v = K.collapse_duplicates(idx, zeros, v, op)
        if self._indices.size == 0:
            self._indices, self._vals = idx, v
        else:
            i, _, vv = K.union_merge(
                (self._indices, np.zeros(self._indices.size, dtype=K.INDEX_DTYPE), self._vals),
                (idx, np.zeros(idx.size, dtype=K.INDEX_DTYPE), v),
                op,
                out_dtype=self._dtype.np_type,
            )
            self._indices, self._vals = i, vv

    def wait(self) -> "Vector":
        """Public ``GrB_wait`` equivalent; returns ``self`` for chaining."""
        self._wait()
        return self

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def _check_indices(self, idx: np.ndarray) -> None:
        if idx.size and self._size < MAX_DIM and idx.max() >= np.uint64(self._size):
            raise IndexOutOfBound(
                f"index {int(idx.max())} out of range for size={self._size}"
            )

    def build(self, indices, values=1, *, dup_op: Optional[BinaryOp] = None,
              clear: bool = False, lazy: bool = False, copy: bool = True) -> "Vector":
        """Insert a batch of (index, value) pairs, merging with ``dup_op`` (default plus).

        Parameters
        ----------
        indices, values:
            Parallel arrays of entries; ``values`` may be a scalar broadcast
            over all indices.
        dup_op:
            Operator combining duplicate indices (within the batch and against
            stored entries); default ``plus``.
        clear:
            Drop all stored entries first (strict replace-all semantics).
        lazy:
            Append the pairs to the pending buffer in O(n) and defer the
            sort/collapse/merge until the next read, exactly like
            ``Matrix.build(lazy=True)``.  Requires an associative ``dup_op``
            (deferral regroups batches); non-associative operators ignore
            ``lazy`` and build eagerly.
        copy:
            Accepted for API compatibility.  The pending arena copies every
            batch at append time, so both values are equally safe — callers
            may mutate or reuse their arrays immediately.
        """
        if clear:
            self.clear()
        idx = K.as_index_array(indices, "indices")
        if np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            v = np.full(idx.size, values, dtype=self._dtype.np_type)
        else:
            v = np.asarray(values).astype(self._dtype.np_type, copy=False)
        if v.size != idx.size:
            raise DimensionMismatch(
                f"values length {v.size} does not match index length {idx.size}"
            )
        self._check_indices(idx)
        if dup_op is None:
            dup_op = binary.plus
        if lazy and dup_op.associative:
            self._append_pending(idx, v, dup_op)
            return self
        self._wait()
        order = np.argsort(idx, kind="stable")
        idx, v = idx[order], v[order]
        # Collapse duplicates within the batch.
        zeros = np.zeros(idx.size, dtype=K.INDEX_DTYPE)
        idx, _, v = K.collapse_duplicates(idx, zeros, v, dup_op)
        if self._indices.size == 0:
            self._indices, self._vals = idx.copy(), v.copy()
        else:
            i, _, vv = K.union_merge(
                (self._indices, np.zeros(self._indices.size, dtype=K.INDEX_DTYPE), self._vals),
                (idx, np.zeros(idx.size, dtype=K.INDEX_DTYPE), v),
                dup_op,
                out_dtype=self._dtype.np_type,
            )
            self._indices, self._vals = i, vv
        return self

    def merge_sorted(self, indices: np.ndarray, values: np.ndarray,
                     op: Optional[BinaryOp] = None) -> "Vector":
        """Merge *sorted, duplicate-free* (index, value) arrays in O(n) — no sort.

        The fast path for callers that already hold grouped reductions (the
        incremental degree trackers): stored and incoming entries are combined
        with ``op`` (default ``plus``) by one vectorised two-way merge.
        Behaviour is identical to ``build(indices, values, dup_op=op)`` for
        inputs that are sorted and duplicate-free; anything else corrupts the
        sorted invariant, so callers must guarantee it.
        """
        if op is None:
            op = binary.plus
        idx = K.as_index_array(indices, "indices")
        self._check_indices(idx)
        v = np.asarray(values).astype(self._dtype.np_type, copy=False)
        if v.size != idx.size:
            raise DimensionMismatch(
                f"values length {v.size} does not match index length {idx.size}"
            )
        self._wait()
        if idx.size == 0:
            return self
        if self._indices.size == 0:
            self._indices = idx.astype(K.INDEX_DTYPE, copy=True)
            self._vals = v.copy()
            return self
        i, _, vv = K.union_merge(
            (self._indices, np.zeros(self._indices.size, dtype=K.INDEX_DTYPE), self._vals),
            (idx, np.zeros(idx.size, dtype=K.INDEX_DTYPE), v),
            op,
            out_dtype=self._dtype.np_type,
        )
        self._indices, self._vals = i, vv
        return self

    def setElement(self, index: int, value) -> None:
        """Set a single entry (replaces any existing value)."""
        self.build([index], [value], dup_op=binary.second)

    def extractElement(self, index: int, default=None):
        """Read a single entry; ``default`` when not stored."""
        self._wait()
        pos = np.searchsorted(self._indices, np.uint64(int(index)))
        if pos < self._indices.size and self._indices[pos] == np.uint64(int(index)):
            return self._vals[pos].item()
        return default

    get = extractElement

    def removeElement(self, index: int) -> bool:
        """Delete a single entry; returns True if it was present."""
        self._wait()
        pos = np.searchsorted(self._indices, np.uint64(int(index)))
        if pos < self._indices.size and self._indices[pos] == np.uint64(int(index)):
            keep = np.ones(self._indices.size, dtype=bool)
            keep[pos] = False
            self._indices = self._indices[keep]
            self._vals = self._vals[keep]
            return True
        return False

    def clear(self) -> "Vector":
        """Remove every stored entry (including pending ones)."""
        self._indices = np.empty(0, dtype=K.INDEX_DTYPE)
        self._vals = np.empty(0, dtype=self._dtype.np_type)
        self._pend.clear()
        self._pend_op = None
        return self

    def resize(self, size: int) -> "Vector":
        """Change the logical length, dropping entries that fall outside."""
        size = int(size)
        if size <= 0 or size > MAX_DIM:
            raise InvalidValue(f"size must be in [1, 2**64], got {size}")
        self._wait()
        if self._indices.size and size < MAX_DIM:
            keep = self._indices < np.uint64(size)
            self._indices = self._indices[keep]
            self._vals = self._vals[keep]
        self._size = size
        return self

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, values)`` copies of all stored entries."""
        self._wait()
        return self._indices.copy(), self._vals.copy()

    extract_tuples = to_coo

    # ------------------------------------------------------------------ #
    # element-wise operations
    # ------------------------------------------------------------------ #

    def _coerce_op(self, op, default) -> BinaryOp:
        if op is None:
            return default
        if isinstance(op, str):
            return binary[op]
        if isinstance(op, Monoid):
            return op.op
        return op

    def ewise_add(self, other: "Vector", op=None) -> "Vector":
        """Element-wise union of two vectors."""
        op = self._coerce_op(op, binary.plus)
        if other._size != self._size:
            raise DimensionMismatch(
                f"eWiseAdd requires equal sizes, got {self._size} and {other._size}"
            )
        self._wait()
        other._wait()
        out_type = op.output_type(self._dtype, other._dtype)
        out = Vector(out_type, self._size)
        i, _, v = K.union_merge(
            (self._indices, np.zeros(self._indices.size, dtype=K.INDEX_DTYPE), self._vals),
            (other._indices, np.zeros(other._indices.size, dtype=K.INDEX_DTYPE), other._vals),
            op,
            out_dtype=out_type.np_type,
        )
        out._indices, out._vals = i, v.astype(out_type.np_type, copy=False)
        return out

    def ewise_mult(self, other: "Vector", op=None) -> "Vector":
        """Element-wise intersection of two vectors."""
        op = self._coerce_op(op, binary.times)
        if other._size != self._size:
            raise DimensionMismatch(
                f"eWiseMult requires equal sizes, got {self._size} and {other._size}"
            )
        self._wait()
        other._wait()
        out_type = op.output_type(self._dtype, other._dtype)
        out = Vector(out_type, self._size)
        i, _, v = K.intersect_merge(
            (self._indices, np.zeros(self._indices.size, dtype=K.INDEX_DTYPE), self._vals),
            (other._indices, np.zeros(other._indices.size, dtype=K.INDEX_DTYPE), other._vals),
            op,
            out_dtype=out_type.np_type,
        )
        out._indices, out._vals = i, v.astype(out_type.np_type, copy=False)
        return out

    def __add__(self, other: "Vector") -> "Vector":
        return self.ewise_add(other, binary.plus)

    def __mul__(self, other):
        if isinstance(other, Vector):
            return self.ewise_mult(other, binary.times)
        return self.apply(binary.times, right=other)

    # ------------------------------------------------------------------ #
    # apply / select / reduce / multiply
    # ------------------------------------------------------------------ #

    def apply(self, op, *, left=None, right=None) -> "Vector":
        """Apply a unary operator (or binary bound to a scalar) to every value."""
        from .unaryop import UnaryOp, unary as unary_ns

        self._wait()
        if isinstance(op, str):
            op = unary_ns[op] if op in unary_ns else binary[op]
        if isinstance(op, UnaryOp):
            out_type = op.output_type(self._dtype)
            new_vals = op(self._vals)
        else:
            if (left is None) == (right is None):
                raise InvalidValue("binary apply requires exactly one of left= or right=")
            out_type = op.output_type(self._dtype, self._dtype)
            if left is not None:
                new_vals = op(np.full(self._vals.size, left), self._vals)
            else:
                new_vals = op(self._vals, np.full(self._vals.size, right))
        out = Vector(out_type, self._size)
        out._indices = self._indices.copy()
        out._vals = np.asarray(new_vals).astype(out_type.np_type, copy=False)
        return out

    def select(self, op: Union[SelectOp, str], thunk=None) -> "Vector":
        """Keep only the entries satisfying a select operator."""
        if isinstance(op, str):
            op = select_op[op]
        self._wait()
        keep = np.asarray(
            op(self._indices, np.zeros(self._indices.size, dtype=K.INDEX_DTYPE), self._vals, thunk),
            dtype=bool,
        )
        out = Vector(self._dtype, self._size)
        out._indices = self._indices[keep]
        out._vals = self._vals[keep]
        return out

    def reduce(self, op: Optional[Union[Monoid, str]] = None):
        """Reduce every stored value to a scalar (monoid identity if empty)."""
        m = monoid[op] if isinstance(op, str) else (op or monoid.plus)
        self._wait()
        return m.reduce(self._vals, dtype=self._dtype)

    def vxm(self, matrix, op: Optional[Union[Semiring, str]] = None) -> "Vector":
        """Vector-matrix multiply ``x^T A`` over a semiring (default ``plus_times``)."""
        return matrix.transpose().mxv(self, op)

    def to_dense(self, fill_value=0) -> np.ndarray:
        """Convert to a dense ndarray (guarded against huge logical sizes)."""
        self._wait()
        if self._size > 10 ** 8:
            raise NotImplementedException(
                f"refusing to densify a vector of logical size {self._size}"
            )
        out = np.full(self._size, fill_value, dtype=self._dtype.np_type)
        out[self._indices.astype(np.int64)] = self._vals
        return out

    def isequal(self, other: "Vector", *, check_dtype: bool = False) -> bool:
        """Exact equality of pattern and values."""
        if not isinstance(other, Vector) or self._size != other._size:
            return False
        if check_dtype and self._dtype is not other._dtype:
            return False
        self._wait()
        other._wait()
        return bool(
            np.array_equal(self._indices, other._indices)
            and np.array_equal(self._vals, other._vals)
        )

    def isclose(self, other: "Vector", *, rel_tol: float = 1e-7, abs_tol: float = 0.0) -> bool:
        """Pattern equality with approximately-equal values."""
        if not isinstance(other, Vector) or self._size != other._size:
            return False
        self._wait()
        other._wait()
        if not np.array_equal(self._indices, other._indices):
            return False
        return bool(
            np.allclose(
                self._vals.astype(np.float64),
                other._vals.astype(np.float64),
                rtol=rel_tol,
                atol=abs_tol,
            )
        )

    # ------------------------------------------------------------------ #
    # python protocol
    # ------------------------------------------------------------------ #

    def __getitem__(self, index):
        if np.isscalar(index):
            return self.extractElement(int(index))
        raise TypeError("Vector indexing requires a scalar index")

    def __setitem__(self, index, value):
        self.setElement(int(index), value)

    def __contains__(self, index) -> bool:
        return self.extractElement(int(index)) is not None

    def __iter__(self) -> Iterator[Tuple[int, object]]:
        self._wait()
        for i in range(self._indices.size):
            yield int(self._indices[i]), self._vals[i].item()

    def __bool__(self) -> bool:
        return self.nvals > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Vector{label} size={self._size} {self._dtype.name}, "
            f"nvals={self.nvals_upper_bound}{'+' if self.has_pending else ''}>"
        )
