"""Preallocated pending arenas: the append side of deferred ingest.

Every deferred-ingest consumer in the repo — ``Matrix``/``Vector`` pending
buffers, the layer-1 flush path, and the incremental reduction tracker —
used to buffer batches as Python lists of arrays and pay one
``np.concatenate`` per column at every flush.  At streaming rates that is
pure overhead the hardware never asked for: the flush copies every pending
element once just to make it contiguous, *then* sorts it.

:class:`PendingArena` replaces the list-of-chunks idiom with a growable
preallocated column store: ``ncols`` parallel contiguous ``uint64`` columns
with geometric (doubling) growth and explicit ``used``/``capacity``
accounting.  Appending a batch is one bounds check plus one slice-assign
(a memcpy) per column — O(1) amortized per element — and a flush reads the
used prefix directly as zero-copy views, so steady-state flushes perform
**zero** concatenations and at most one growth per capacity doubling.

Values of any GraphBLAS scalar type ride the same ``uint64`` columns as raw
bit patterns (:func:`value_bits` / :func:`bits_to_values`): values are cast
to the container's canonical dtype once, at append time, and their bits are
stored exactly — NaN payloads round-trip untouched, and the flush never
pays the historical full-copy ``astype`` over mixed-dtype chunks.

:class:`PendingChunks` keeps the legacy list-append backend alive behind the
same interface (with its per-take concatenates counted), so benchmarks can
A/B the two backends in the same process and property tests can assert they
are bit-identical.  :func:`make_pending` picks the backend from a module
toggle mirroring :func:`repro.graphblas.coords.packing_disabled`, and
:func:`grow_calls` / :func:`concat_calls` expose monotone instrumentation
counters in the :func:`repro.graphblas.coords.pack_calls` style.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Tuple, Union

import numpy as np

__all__ = [
    "COLUMN_DTYPE",
    "MIN_CAPACITY",
    "PendingArena",
    "PendingChunks",
    "PendingBuffer",
    "make_pending",
    "value_bits",
    "bits_to_values",
    "grow_calls",
    "concat_calls",
    "arena_enabled",
    "set_arena_enabled",
    "arena_disabled",
]

#: dtype of every arena column (indices and raw value bits alike).
COLUMN_DTYPE = np.dtype(np.uint64)

#: Smallest capacity a growth allocates; below this, doubling is all noise.
MIN_CAPACITY = 1024

# Module-level switch so tests and benchmarks can force the legacy
# list-append backend (mirrors coords.packing_disabled).
_ARENA_ENABLED = True

# Monotone instrumentation counters, differenced around hot paths by the
# kernel benchmarks: arena growths (geometric, so O(log n) for n appended
# elements) and legacy-backend take-time concatenates (zero in steady-state
# arena flushes).
_GROW_CALLS = 0
_CONCAT_CALLS = 0


def arena_enabled() -> bool:
    """Whether :func:`make_pending` currently returns preallocated arenas."""
    return _ARENA_ENABLED


def set_arena_enabled(flag: bool) -> None:
    """Globally select the pending backend for newly created containers."""
    global _ARENA_ENABLED
    _ARENA_ENABLED = bool(flag)


@contextlib.contextmanager
def arena_disabled() -> Iterator[None]:
    """Context manager forcing new pending buffers onto the legacy list backend.

    Containers created inside the context keep their list backend for life
    (the backend is chosen at construction), which is exactly what the A/B
    benchmarks and the bit-identity property tests need.
    """
    previous = _ARENA_ENABLED
    set_arena_enabled(False)
    try:
        yield
    finally:
        set_arena_enabled(previous)


def grow_calls() -> int:
    """Total arena growths so far (benchmark/test instrumentation)."""
    return _GROW_CALLS


def concat_calls() -> int:
    """Total legacy-backend take-time concatenates so far."""
    return _CONCAT_CALLS


def _unsigned_view_dtype(dtype: np.dtype) -> np.dtype:
    """The unsigned integer dtype of the same width, for bit reinterpretation."""
    return np.dtype(f"u{dtype.itemsize}")


def value_bits(values: np.ndarray, dtype) -> np.ndarray:
    """Reinterpret values as unsigned bit patterns of the canonical ``dtype``.

    Values are cast to ``dtype`` first (this is where mixed-dtype pending
    chunks converge — once, at append time), then viewed as the unsigned
    integer of the same width.  No numeric conversion touches the bits, so
    float NaN payloads survive exactly.  For inputs already in the canonical
    dtype this is a zero-copy view; arena column assignment zero-extends
    narrower patterns to ``uint64`` without an intermediate array.
    """
    dtype = np.dtype(dtype)
    v = np.ascontiguousarray(values, dtype=dtype)
    return v.view(_unsigned_view_dtype(dtype))


def bits_to_values(bits: np.ndarray, dtype) -> np.ndarray:
    """Invert :func:`value_bits` on a ``uint64`` column slice.

    For 8-byte dtypes this is a zero-copy reinterpreting view of the arena
    storage (callers must fancy-index or copy before the arena is reused);
    narrower dtypes truncate the zero-extension bytes and then reinterpret.
    """
    dtype = np.dtype(dtype)
    u = _unsigned_view_dtype(dtype)
    if u == COLUMN_DTYPE:
        return bits.view(dtype)
    return bits.astype(u).view(dtype)


class PendingArena:
    """A growable preallocated column store for pending tuples.

    ``ncols`` parallel contiguous ``uint64`` columns share one
    ``used``/``capacity`` pair.  :meth:`append` slice-assigns each batch at
    the used offset (one memcpy per column, zero-extending narrower unsigned
    inputs in place) and doubles the capacity geometrically when full, so n
    appended elements cost O(n) copies total and O(log n) allocations.
    :meth:`views` exposes the used prefix as zero-copy slices — the flush
    sorts those directly, concatenating nothing.
    """

    __slots__ = ("_columns", "_used", "_capacity", "grow_count")

    def __init__(self, ncols: int, capacity: int = 0):
        if ncols <= 0:
            raise ValueError(f"ncols must be positive, got {ncols}")
        self._capacity = int(capacity)
        self._columns: List[np.ndarray] = [
            np.empty(self._capacity, dtype=COLUMN_DTYPE) for _ in range(int(ncols))
        ]
        self._used = 0
        #: Growths performed by this instance (module total: :func:`grow_calls`).
        self.grow_count = 0

    @property
    def ncols(self) -> int:
        return len(self._columns)

    @property
    def used(self) -> int:
        """Elements appended since the last :meth:`reset`."""
        return self._used

    @property
    def capacity(self) -> int:
        """Preallocated elements per column (``>= used``)."""
        return self._capacity

    @property
    def used_bytes(self) -> int:
        """Bytes of live pending data across all columns."""
        return self._used * COLUMN_DTYPE.itemsize * len(self._columns)

    @property
    def capacity_bytes(self) -> int:
        """Resident bytes across all columns (what the process actually holds)."""
        return self._capacity * COLUMN_DTYPE.itemsize * len(self._columns)

    def _grow_to(self, needed: int) -> None:
        global _GROW_CALLS
        new_capacity = max(self._capacity, MIN_CAPACITY)
        while new_capacity < needed:
            new_capacity *= 2
        for i, column in enumerate(self._columns):
            fresh = np.empty(new_capacity, dtype=COLUMN_DTYPE)
            fresh[: self._used] = column[: self._used]
            self._columns[i] = fresh
        self._capacity = new_capacity
        self.grow_count += 1
        _GROW_CALLS += 1

    def reserve(self, capacity: int) -> None:
        """Preallocate to at least ``capacity`` elements per column.

        For callers whose fill is bounded and known up front (e.g. a
        deferred store that drains at a fixed interval), one reservation
        replaces the whole geometric growth ladder — and with it every
        in-stream prefix copy.  ``np.empty`` pages are committed on first
        touch, so an oversized reservation costs address space, not
        resident memory, until the arena actually fills.
        """
        if capacity > self._capacity:
            self._grow_to(int(capacity))

    def append(self, *arrays: np.ndarray) -> None:
        """Copy one batch (one array per column) into the arena.

        Arrays must be parallel and of unsigned (or ``uint64``-castable)
        dtype; the slice assignment zero-extends narrower patterns.  The
        arena owns its storage, so callers may freely reuse or mutate their
        batch buffers afterwards.
        """
        n = int(arrays[0].size)
        if n == 0:
            return
        end = self._used + n
        if end > self._capacity:
            self._grow_to(end)
        for column, a in zip(self._columns, arrays):
            column[self._used : end] = a
        self._used = end

    def views(self) -> Tuple[np.ndarray, ...]:
        """Zero-copy slices of the used prefix, one per column.

        Valid only until the next :meth:`append`/:meth:`reset`; flush code
        must detach (fancy-index or copy) anything it stores.
        """
        return tuple(column[: self._used] for column in self._columns)

    def reset(self) -> None:
        """Forget the contents but keep the capacity (steady-state flush)."""
        self._used = 0

    def clear(self) -> None:
        """Forget the contents and release the storage."""
        self._columns = [np.empty(0, dtype=COLUMN_DTYPE) for _ in self._columns]
        self._capacity = 0
        self._used = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PendingArena ncols={self.ncols} used={self._used}/"
            f"{self._capacity} grows={self.grow_count}>"
        )


class PendingChunks:
    """The legacy list-append pending backend, behind the arena interface.

    Kept as the A/B reference: appends copy each batch into per-column
    Python lists and :meth:`views` concatenates them (counted by
    :func:`concat_calls`) — the exact cost profile the arena removes.
    Capacity equals used; there is no preallocation to report.
    """

    __slots__ = ("_chunks", "_used", "grow_count")

    def __init__(self, ncols: int, capacity: int = 0):
        if ncols <= 0:
            raise ValueError(f"ncols must be positive, got {ncols}")
        self._chunks: List[List[np.ndarray]] = [[] for _ in range(int(ncols))]
        self._used = 0
        self.grow_count = 0  # interface parity; lists never "grow" an arena

    @property
    def ncols(self) -> int:
        return len(self._chunks)

    @property
    def used(self) -> int:
        return self._used

    @property
    def capacity(self) -> int:
        return self._used

    @property
    def used_bytes(self) -> int:
        return self._used * COLUMN_DTYPE.itemsize * len(self._chunks)

    @property
    def capacity_bytes(self) -> int:
        return self.used_bytes

    def reserve(self, capacity: int) -> None:
        """No-op: chunk lists have nothing to preallocate (interface parity)."""

    def append(self, *arrays: np.ndarray) -> None:
        n = int(arrays[0].size)
        if n == 0:
            return
        for chunk_list, a in zip(self._chunks, arrays):
            chunk_list.append(np.array(a, dtype=COLUMN_DTYPE, copy=True))
        self._used += n

    def views(self) -> Tuple[np.ndarray, ...]:
        global _CONCAT_CALLS
        first = self._chunks[0]
        if not first:
            return tuple(np.empty(0, dtype=COLUMN_DTYPE) for _ in self._chunks)
        if len(first) == 1:
            return tuple(chunk_list[0] for chunk_list in self._chunks)
        _CONCAT_CALLS += 1
        return tuple(np.concatenate(chunk_list) for chunk_list in self._chunks)

    def reset(self) -> None:
        for chunk_list in self._chunks:
            chunk_list.clear()
        self._used = 0

    clear = reset

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PendingChunks ncols={self.ncols} used={self._used}>"


PendingBuffer = Union[PendingArena, PendingChunks]


def make_pending(ncols: int) -> PendingBuffer:
    """Create a pending buffer on the currently selected backend."""
    if _ARENA_ENABLED:
        return PendingArena(ncols)
    return PendingChunks(ncols)
