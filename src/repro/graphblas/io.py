"""I/O helpers for hypersparse matrices.

Matrix Market text import/export (the exchange format SuiteSparse itself
ships), TSV triple files (the format the D4M pipelines use for traffic data),
and random-matrix generation utilities used by tests and benchmarks.
"""

from __future__ import annotations

import io as _stdio
from pathlib import Path
from typing import Optional, TextIO, Tuple, Union

import numpy as np

from .binaryop import BinaryOp
from .errors import InvalidValue
from .matrix import Matrix
from .types import FP64, INT64, lookup_dtype

__all__ = [
    "mmwrite",
    "mmread",
    "write_triples",
    "read_triples",
    "read_triples_arrays",
    "random_hypersparse",
]

PathLike = Union[str, Path]


def _open(path_or_file, mode: str):
    if hasattr(path_or_file, "write") or hasattr(path_or_file, "read"):
        return path_or_file, False
    return open(path_or_file, mode), True


def mmwrite(target: Union[PathLike, TextIO], matrix: Matrix, *, comment: str = "") -> None:
    """Write a matrix in MatrixMarket coordinate format.

    Indices are written 1-based per the format specification.  Hypersparse
    dimensions up to 2**64 are written exactly (the header uses plain decimal
    integers).
    """
    rows, cols, vals = matrix.extract_tuples()
    fh, should_close = _open(target, "w")
    try:
        field = "integer" if matrix.dtype.is_integer or matrix.dtype.is_bool else "real"
        fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{matrix.nrows} {matrix.ncols} {rows.size}\n")
        for r, c, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
            if field == "integer":
                fh.write(f"{r + 1} {c + 1} {int(v)}\n")
            else:
                fh.write(f"{r + 1} {c + 1} {float(v)!r}\n")
    finally:
        if should_close:
            fh.close()


def mmread(source: Union[PathLike, TextIO], *, dtype=None) -> Matrix:
    """Read a MatrixMarket coordinate file into a hypersparse Matrix."""
    fh, should_close = _open(source, "r")
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise InvalidValue("not a MatrixMarket file (missing %%MatrixMarket header)")
        tokens = header.strip().split()
        field = tokens[3] if len(tokens) > 3 else "real"
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        nrows_s, ncols_s, nnz_s = line.split()
        nrows, ncols, nnz = int(nrows_s), int(ncols_s), int(nnz_s)
        rows = np.empty(nnz, dtype=np.uint64)
        cols = np.empty(nnz, dtype=np.uint64)
        vals = np.empty(nnz, dtype=np.int64 if field == "integer" else np.float64)
        for i in range(nnz):
            parts = fh.readline().split()
            rows[i] = int(parts[0]) - 1
            cols[i] = int(parts[1]) - 1
            if field == "pattern":
                vals[i] = 1
            elif field == "integer":
                vals[i] = int(parts[2])
            else:
                vals[i] = float(parts[2])
        if dtype is None:
            dtype = INT64 if field in ("integer", "pattern") else FP64
        return Matrix.from_coo(rows, cols, vals, dtype=dtype, nrows=nrows, ncols=ncols)
    finally:
        if should_close:
            fh.close()


def write_triples(target: Union[PathLike, TextIO], matrix: Matrix, *, sep: str = "\t") -> None:
    """Write ``row<sep>col<sep>value`` triples (0-based), the D4M exchange format."""
    rows, cols, vals = matrix.extract_tuples()
    fh, should_close = _open(target, "w")
    try:
        for r, c, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
            fh.write(f"{r}{sep}{c}{sep}{v}\n")
    finally:
        if should_close:
            fh.close()


def read_triples(
    source: Union[PathLike, TextIO],
    *,
    sep: str = "\t",
    dtype="fp64",
    nrows: int = 2 ** 64,
    ncols: int = 2 ** 64,
    dup_op: Optional[BinaryOp] = None,
) -> Matrix:
    """Read ``row<sep>col<sep>value`` triples into a hypersparse Matrix."""
    fh, should_close = _open(source, "r")
    try:
        rows, cols, vals = [], [], []
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            r, c, v = line.split(sep)
            rows.append(int(r))
            cols.append(int(c))
            vals.append(float(v))
        return Matrix.from_coo(
            np.asarray(rows, dtype=np.uint64),
            np.asarray(cols, dtype=np.uint64),
            np.asarray(vals),
            dtype=dtype,
            nrows=nrows,
            ncols=ncols,
            dup_op=dup_op,
        )
    finally:
        if should_close:
            fh.close()


def read_triples_arrays(
    source: Union[PathLike, TextIO], *, sep: str = "\t"
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Read ``row<sep>col<sep>value`` triples as raw coordinate arrays.

    Unlike :func:`read_triples` this performs no duplicate collapse, so a
    recorded traffic capture replays as the original update *stream* —
    duplicates and ordering intact — which is what the sharded ingest CLI
    needs to re-feed a file through the streaming path.
    """
    fh, should_close = _open(source, "r")
    try:
        rows, cols, vals = [], [], []
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            r, c, v = line.split(sep)
            rows.append(int(r))
            cols.append(int(c))
            vals.append(float(v))
        return (
            np.asarray(rows, dtype=np.uint64),
            np.asarray(cols, dtype=np.uint64),
            np.asarray(vals, dtype=np.float64),
        )
    finally:
        if should_close:
            fh.close()


def random_hypersparse(
    nvals: int,
    *,
    nrows: int = 2 ** 32,
    ncols: int = 2 ** 32,
    dtype="fp64",
    seed: Optional[int] = None,
    value_range: Tuple[float, float] = (0.0, 1.0),
) -> Matrix:
    """Generate a random hypersparse matrix with approximately ``nvals`` entries.

    Coordinates are drawn uniformly from the full index space, so for
    hypersparse dimensions collisions are vanishingly rare and the result has
    very nearly ``nvals`` stored entries.
    """
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, nrows, size=nvals, dtype=np.uint64, endpoint=False)
    cols = rng.integers(0, ncols, size=nvals, dtype=np.uint64, endpoint=False)
    dt = lookup_dtype(dtype)
    if dt.is_float:
        vals = rng.uniform(value_range[0], value_range[1], size=nvals)
    elif dt.is_bool:
        vals = np.ones(nvals, dtype=bool)
    else:
        lo, hi = int(value_range[0]), max(int(value_range[1]), int(value_range[0]) + 1)
        vals = rng.integers(lo, hi, size=nvals, endpoint=True)
    return Matrix.from_coo(rows, cols, vals, dtype=dt, nrows=nrows, ncols=ncols)
