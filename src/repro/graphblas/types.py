"""GraphBLAS scalar types backed by NumPy dtypes.

The GraphBLAS standard defines eleven built-in types (``GrB_BOOL``,
``GrB_INT8`` ... ``GrB_UINT64``, ``GrB_FP32``, ``GrB_FP64``).  This module maps
each to a :class:`DataType` descriptor wrapping the equivalent NumPy dtype and
provides the type-promotion rules used when two objects of different types are
combined (mirroring SuiteSparse's behaviour of promoting to the larger of the
two domains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

import numpy as np

__all__ = [
    "DataType",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FP32",
    "FP64",
    "lookup_dtype",
    "unify",
    "BUILTIN_TYPES",
]


@dataclass(frozen=True)
class DataType:
    """A GraphBLAS scalar type.

    Attributes
    ----------
    name:
        The GraphBLAS name, e.g. ``"FP64"``.
    np_type:
        The backing NumPy dtype.
    """

    name: str
    np_type: np.dtype = field(compare=False)

    def __post_init__(self) -> None:  # normalise to np.dtype
        object.__setattr__(self, "np_type", np.dtype(self.np_type))

    @property
    def is_bool(self) -> bool:
        return self.np_type == np.bool_

    @property
    def is_integer(self) -> bool:
        return np.issubdtype(self.np_type, np.integer)

    @property
    def is_signed(self) -> bool:
        return np.issubdtype(self.np_type, np.signedinteger)

    @property
    def is_unsigned(self) -> bool:
        return np.issubdtype(self.np_type, np.unsignedinteger)

    @property
    def is_float(self) -> bool:
        return np.issubdtype(self.np_type, np.floating)

    @property
    def itemsize(self) -> int:
        """Size in bytes of one scalar of this type."""
        return int(self.np_type.itemsize)

    def zero(self):
        """The additive identity in this domain as a NumPy scalar."""
        return self.np_type.type(0)

    def one(self):
        """The multiplicative identity in this domain as a NumPy scalar."""
        return self.np_type.type(1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType({self.name})"


BOOL = DataType("BOOL", np.bool_)
INT8 = DataType("INT8", np.int8)
INT16 = DataType("INT16", np.int16)
INT32 = DataType("INT32", np.int32)
INT64 = DataType("INT64", np.int64)
UINT8 = DataType("UINT8", np.uint8)
UINT16 = DataType("UINT16", np.uint16)
UINT32 = DataType("UINT32", np.uint32)
UINT64 = DataType("UINT64", np.uint64)
FP32 = DataType("FP32", np.float32)
FP64 = DataType("FP64", np.float64)

BUILTIN_TYPES = (
    BOOL,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    FP32,
    FP64,
)

_BY_NAME: Dict[str, DataType] = {t.name: t for t in BUILTIN_TYPES}
_BY_NPDTYPE: Dict[np.dtype, DataType] = {t.np_type: t for t in BUILTIN_TYPES}

DTypeLike = Union[DataType, str, np.dtype, type]


def lookup_dtype(value: DTypeLike) -> DataType:
    """Resolve ``value`` (name, NumPy dtype, Python type, or DataType) to a DataType.

    Examples
    --------
    >>> lookup_dtype("fp64") is FP64
    True
    >>> lookup_dtype(np.int32) is INT32
    True
    >>> lookup_dtype(float) is FP64
    True
    """
    if isinstance(value, DataType):
        return value
    if isinstance(value, str):
        key = value.upper()
        aliases = {
            "FLOAT": "FP32",
            "FLOAT32": "FP32",
            "DOUBLE": "FP64",
            "FLOAT64": "FP64",
            "INT": "INT64",
            "UINT": "UINT64",
        }
        key = aliases.get(key, key)
        if key in _BY_NAME:
            return _BY_NAME[key]
        # Fall through to NumPy name resolution ("float64", "int8", ...).
        try:
            npdt = np.dtype(value)
        except TypeError as exc:  # pragma: no cover - defensive
            raise KeyError(f"Unknown GraphBLAS type name: {value!r}") from exc
        if npdt in _BY_NPDTYPE:
            return _BY_NPDTYPE[npdt]
        raise KeyError(f"Unknown GraphBLAS type name: {value!r}")
    if value is bool:
        return BOOL
    if value is int:
        return INT64
    if value is float:
        return FP64
    npdt = np.dtype(value)
    if npdt in _BY_NPDTYPE:
        return _BY_NPDTYPE[npdt]
    raise KeyError(f"No GraphBLAS type for dtype {npdt!r}")


def unify(a: DTypeLike, b: DTypeLike) -> DataType:
    """Type-promotion of two GraphBLAS types.

    Follows NumPy's promotion rules restricted to the GraphBLAS domains, with
    the special case that BOOL+BOOL stays BOOL.
    """
    ta, tb = lookup_dtype(a), lookup_dtype(b)
    if ta is tb:
        return ta
    promoted = np.promote_types(ta.np_type, tb.np_type)
    if promoted in _BY_NPDTYPE:
        return _BY_NPDTYPE[promoted]
    # e.g. uint64 + int64 promotes to float64 under NumPy; accept that.
    promoted = np.dtype(promoted)
    if promoted.kind == "f":
        return FP64
    raise DomainMismatchError(ta, tb)  # pragma: no cover - unreachable


def DomainMismatchError(ta: DataType, tb: DataType):  # pragma: no cover
    from .errors import DomainMismatch

    return DomainMismatch(f"Cannot unify {ta.name} and {tb.name}")
