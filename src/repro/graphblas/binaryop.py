"""GraphBLAS binary operators.

A :class:`BinaryOp` is a named, vectorised function of two NumPy arrays.  The
registry below implements the standard GraphBLAS built-ins (``GrB_PLUS``,
``GrB_TIMES``, ``GrB_MIN`` ... and the SuiteSparse extensions ``FIRST``,
``SECOND``, ``PAIR``/``ONEB``, ``ANY``).  Operators carry an optional NumPy
ufunc handle so that kernels (duplicate reduction during ``build``, monoid
reductions) can use ``ufunc.reduceat`` fast paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from .errors import DomainMismatch
from .types import BOOL, DataType, lookup_dtype, unify

__all__ = [
    "BinaryOp",
    "binary",
    "BINARY_OPS",
]


@dataclass(frozen=True)
class BinaryOp:
    """A binary operator ``z = f(x, y)`` applied element-wise.

    Attributes
    ----------
    name:
        Canonical lower-case name, e.g. ``"plus"``.
    func:
        Vectorised implementation taking two ndarrays and returning an ndarray.
    ufunc:
        The NumPy ufunc backing ``func`` when one exists (enables ``reduceat``
        fast paths in duplicate-collapse kernels); ``None`` otherwise.
    bool_result:
        True when the operator always returns BOOL (comparison operators).
    commutative:
        Whether ``f(x, y) == f(y, x)`` for all inputs.
    associative:
        Whether the operator is associative (a prerequisite for monoid use).
    """

    name: str
    func: Callable[[np.ndarray, np.ndarray], np.ndarray] = field(compare=False)
    ufunc: Optional[np.ufunc] = field(default=None, compare=False)
    bool_result: bool = False
    commutative: bool = False
    associative: bool = False

    def __call__(self, x, y):
        """Apply the operator element-wise to ``x`` and ``y``."""
        return self.func(np.asarray(x), np.asarray(y))

    def output_type(self, a: DataType, b: DataType) -> DataType:
        """The GraphBLAS type of ``f(a, b)``."""
        if self.bool_result:
            return BOOL
        return unify(a, b)

    def validate(self, a: DataType, b: DataType) -> None:
        """Raise :class:`DomainMismatch` if the operand types cannot be combined."""
        try:
            unify(a, b)
        except Exception as exc:  # pragma: no cover - defensive
            raise DomainMismatch(
                f"Operator {self.name!r} cannot combine {a.name} and {b.name}"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinaryOp({self.name})"


def _first(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.array(x, copy=True)


def _second(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.array(y, copy=True)


def _pair(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    out = np.ones_like(np.asarray(x))
    return out


def _safe_div(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    x = np.asarray(x)
    y = np.asarray(y)
    if np.issubdtype(x.dtype, np.integer) and np.issubdtype(y.dtype, np.integer):
        # GraphBLAS integer division truncates toward zero; guard div-by-zero.
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(y == 0, 0, x // np.where(y == 0, 1, y))
        return out
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.true_divide(x, y)


def _rdiv(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return _safe_div(y, x)


def _rminus(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.subtract(y, x)


def _iseq(x, y):
    return np.equal(x, y)


_REGISTRY: Dict[str, BinaryOp] = {}


def _register(op: BinaryOp) -> BinaryOp:
    _REGISTRY[op.name] = op
    return op


PLUS = _register(
    BinaryOp("plus", np.add, ufunc=np.add, commutative=True, associative=True)
)
MINUS = _register(BinaryOp("minus", np.subtract, ufunc=np.subtract))
RMINUS = _register(BinaryOp("rminus", _rminus))
TIMES = _register(
    BinaryOp(
        "times", np.multiply, ufunc=np.multiply, commutative=True, associative=True
    )
)
DIV = _register(BinaryOp("div", _safe_div))
RDIV = _register(BinaryOp("rdiv", _rdiv))
MIN = _register(
    BinaryOp("min", np.minimum, ufunc=np.minimum, commutative=True, associative=True)
)
MAX = _register(
    BinaryOp("max", np.maximum, ufunc=np.maximum, commutative=True, associative=True)
)
FIRST = _register(BinaryOp("first", _first, associative=True))
SECOND = _register(BinaryOp("second", _second, associative=True))
PAIR = _register(BinaryOp("pair", _pair, commutative=True, associative=True))
ONEB = _register(BinaryOp("oneb", _pair, commutative=True, associative=True))
ANY = _register(BinaryOp("any", _first, commutative=True, associative=True))
POW = _register(BinaryOp("pow", np.power, ufunc=np.power))
HYPOT = _register(BinaryOp("hypot", np.hypot, ufunc=np.hypot, commutative=True))
FMOD = _register(BinaryOp("fmod", np.fmod, ufunc=np.fmod))

LAND = _register(
    BinaryOp(
        "land",
        lambda x, y: np.logical_and(x, y),
        ufunc=np.logical_and,
        bool_result=True,
        commutative=True,
        associative=True,
    )
)
LOR = _register(
    BinaryOp(
        "lor",
        lambda x, y: np.logical_or(x, y),
        ufunc=np.logical_or,
        bool_result=True,
        commutative=True,
        associative=True,
    )
)
LXOR = _register(
    BinaryOp(
        "lxor",
        lambda x, y: np.logical_xor(x, y),
        ufunc=np.logical_xor,
        bool_result=True,
        commutative=True,
        associative=True,
    )
)
LXNOR = _register(
    BinaryOp(
        "lxnor",
        lambda x, y: np.logical_not(np.logical_xor(x, y)),
        bool_result=True,
        commutative=True,
        associative=True,
    )
)

EQ = _register(
    BinaryOp("eq", _iseq, ufunc=np.equal, bool_result=True, commutative=True)
)
NE = _register(
    BinaryOp("ne", np.not_equal, ufunc=np.not_equal, bool_result=True, commutative=True)
)
GT = _register(BinaryOp("gt", np.greater, ufunc=np.greater, bool_result=True))
LT = _register(BinaryOp("lt", np.less, ufunc=np.less, bool_result=True))
GE = _register(BinaryOp("ge", np.greater_equal, ufunc=np.greater_equal, bool_result=True))
LE = _register(BinaryOp("le", np.less_equal, ufunc=np.less_equal, bool_result=True))

BAND = _register(
    BinaryOp(
        "band", np.bitwise_and, ufunc=np.bitwise_and, commutative=True, associative=True
    )
)
BOR = _register(
    BinaryOp(
        "bor", np.bitwise_or, ufunc=np.bitwise_or, commutative=True, associative=True
    )
)
BXOR = _register(
    BinaryOp(
        "bxor", np.bitwise_xor, ufunc=np.bitwise_xor, commutative=True, associative=True
    )
)

# Public mapping of every registered operator, keyed by name.
BINARY_OPS: Dict[str, BinaryOp] = dict(_REGISTRY)


class _BinaryNamespace:
    """Attribute-style access to the built-in binary operators.

    ``binary.plus``, ``binary.times`` ... mirrors the namespaces exposed by the
    python-graphblas package, so downstream code reads familiarly.
    """

    def __init__(self, registry: Dict[str, BinaryOp]):
        self._registry = registry
        for key, op in registry.items():
            setattr(self, key, op)

    def __getitem__(self, name: str) -> BinaryOp:
        return self._registry[name.lower()]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._registry

    def __iter__(self):
        return iter(self._registry.values())

    def register(self, name: str, func, **kwargs) -> BinaryOp:
        """Register a user-defined binary operator and return it."""
        op = BinaryOp(name.lower(), func, **kwargs)
        self._registry[op.name] = op
        setattr(self, op.name, op)
        BINARY_OPS[op.name] = op
        return op


binary = _BinaryNamespace(_REGISTRY)
