"""Hypersparse GraphBLAS matrices.

A :class:`Matrix` stores only its nonzero entries as sorted coordinate triples
(``uint64`` rows, ``uint64`` cols, values), so storage and operation cost are
proportional to ``nvals`` and never to ``nrows * ncols``.  That is the
*hypersparse* property required for IP traffic matrices whose logical
dimensions are :math:`2^{32} \\times 2^{32}` (IPv4) or
:math:`2^{64} \\times 2^{64}` (IPv6).

The class mirrors the GraphBLAS C API surface used by the paper (build,
setElement/extractElement, eWiseAdd, eWiseMult, mxm/mxv, reduce, apply, select,
extract, assign, transpose, kronecker, dup, clear) plus the pending-tuple
buffering that SuiteSparse uses to make streams of ``setElement`` calls cheap:
scalar insertions append to an unsorted pending buffer and are merged into the
sorted representation lazily, exactly the behaviour the hierarchical layering
in :mod:`repro.core` builds upon.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from . import _kernels as K
from . import arena, coords
from .binaryop import BinaryOp, binary
from .descriptor import NULL_DESCRIPTOR, Descriptor
from .errors import (
    DimensionMismatch,
    EmptyObject,
    IndexOutOfBound,
    InvalidValue,
    NotImplementedException,
)
from .mask import Mask, resolve_mask
from .monoid import Monoid, monoid
from .select import SelectOp, select_op
from .semiring import Semiring, semiring
from .types import BOOL, DataType, lookup_dtype, unify

__all__ = ["Matrix"]

#: Maximum dimension: GraphBLAS "GrB_INDEX_MAX + 1"; full 64-bit index space.
MAX_DIM = 2 ** 64

_ALL = object()  # sentinel for "all rows/cols" in extract/assign


def _check_dim(value: int, name: str) -> int:
    value = int(value)
    if value <= 0 or value > MAX_DIM:
        raise InvalidValue(f"{name} must be in [1, 2**64], got {value}")
    return value


class Matrix:
    """A hypersparse matrix over a GraphBLAS scalar type.

    Parameters
    ----------
    dtype:
        GraphBLAS type of the stored values (name, NumPy dtype, or DataType).
    nrows, ncols:
        Logical dimensions; may be as large as ``2**64``.
    name:
        Optional label used in ``repr``.

    Examples
    --------
    >>> A = Matrix("fp64", nrows=2**32, ncols=2**32)
    >>> A.build([1, 2, 2], [10, 20, 20], [1.0, 2.0, 3.0])
    >>> A.nvals
    2
    >>> A[2, 20]
    5.0
    """

    __slots__ = (
        "_nrows",
        "_ncols",
        "_dtype",
        "_rows",
        "_cols",
        "_vals",
        "_pend",
        "_pend_op",
        "flush_hook",
        "name",
    )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def __init__(self, dtype="fp64", nrows: int = MAX_DIM, ncols: int = MAX_DIM, *, name: str = ""):
        self._dtype = lookup_dtype(dtype)
        self._nrows = _check_dim(nrows, "nrows")
        self._ncols = _check_dim(ncols, "ncols")
        self._rows = np.empty(0, dtype=K.INDEX_DTYPE)
        self._cols = np.empty(0, dtype=K.INDEX_DTYPE)
        self._vals = np.empty(0, dtype=self._dtype.np_type)
        # Pending (row, col, value-bits) triples live in a preallocated
        # arena: appends are memcpys, the flush sorts the used prefix
        # directly — no per-flush concatenation.
        self._pend = arena.make_pending(3)
        self._pend_op: Optional[BinaryOp] = None
        # Optional observer of pending-buffer flushes.  Called from _wait()
        # as hook(raw_count, op, rows, cols, vals, keys, spec) with the
        # sorted, duplicate-collapsed flush output (keys/spec may be None
        # when the shape does not pack); raw_count is the pre-collapse
        # pending size.  HierarchicalMatrix points this at its incremental
        # reduction tracker so stats drains ride the flush's sort.
        self.flush_hook = None
        self.name = name

    # -- alternate constructors ----------------------------------------- #

    @classmethod
    def sparse(cls, dtype="fp64", nrows: int = MAX_DIM, ncols: int = MAX_DIM, *, name: str = "") -> "Matrix":
        """Create an empty hypersparse matrix (alias of the constructor)."""
        return cls(dtype, nrows, ncols, name=name)

    @classmethod
    def from_coo(
        cls,
        rows,
        cols,
        values=1,
        *,
        dtype=None,
        nrows: int = MAX_DIM,
        ncols: int = MAX_DIM,
        dup_op: Optional[BinaryOp] = None,
        name: str = "",
    ) -> "Matrix":
        """Build a matrix from coordinate triples.

        ``values`` may be an array (one per coordinate) or a scalar broadcast
        to every coordinate.  Duplicate coordinates are combined with
        ``dup_op`` (default ``plus``).
        """
        r = K.as_index_array(rows, "rows")
        c = K.as_index_array(cols, "cols")
        if np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            v = np.full(r.size, values)
        else:
            v = np.asarray(values)
        if dtype is not None:
            v = v.astype(lookup_dtype(dtype).np_type)
        out = cls(v.dtype if dtype is None else dtype, nrows, ncols, name=name)
        out.build(r, c, v, dup_op=dup_op)
        return out

    @classmethod
    def from_scipy_sparse(cls, sp_matrix, *, dtype=None, name: str = "") -> "Matrix":
        """Build a matrix from any SciPy sparse matrix/array."""
        coo = sp_matrix.tocoo()
        return cls.from_coo(
            coo.row,
            coo.col,
            coo.data,
            dtype=dtype,
            nrows=coo.shape[0],
            ncols=coo.shape[1],
            name=name,
        )

    @classmethod
    def from_dense(cls, array, *, dtype=None, name: str = "") -> "Matrix":
        """Build a matrix from a dense 2-D array, dropping explicit zeros."""
        arr = np.asarray(array)
        if arr.ndim != 2:
            raise DimensionMismatch(f"from_dense expects a 2-D array, got {arr.ndim}-D")
        r, c = np.nonzero(arr)
        return cls.from_coo(
            r, c, arr[r, c], dtype=dtype, nrows=arr.shape[0], ncols=arr.shape[1], name=name
        )

    @classmethod
    def identity(cls, n: int, value=1, *, dtype="fp64", name: str = "") -> "Matrix":
        """The ``n x n`` identity-pattern matrix with ``value`` on the diagonal."""
        idx = np.arange(int(n), dtype=np.int64)
        return cls.from_coo(idx, idx, value, dtype=dtype, nrows=n, ncols=n, name=name)

    def dup(self, *, dtype=None, name: str = "") -> "Matrix":
        """Deep copy of this matrix (optionally cast to ``dtype``)."""
        self._wait()
        target = lookup_dtype(dtype) if dtype is not None else self._dtype
        out = Matrix(target, self._nrows, self._ncols, name=name or self.name)
        out._rows = self._rows.copy()
        out._cols = self._cols.copy()
        out._vals = self._vals.astype(target.np_type, copy=True)
        return out

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def nrows(self) -> int:
        """Number of rows in the logical (hypersparse) dimension."""
        return self._nrows

    @property
    def ncols(self) -> int:
        """Number of columns in the logical (hypersparse) dimension."""
        return self._ncols

    @property
    def shape(self) -> Tuple[int, int]:
        """``(nrows, ncols)``."""
        return (self._nrows, self._ncols)

    @property
    def dtype(self) -> DataType:
        """The GraphBLAS scalar type of stored values."""
        return self._dtype

    @property
    def nvals(self) -> int:
        """Number of stored entries.  Forces completion of pending updates."""
        self._wait()
        return int(self._rows.size)

    #: alias matching the sparse-matrix convention
    @property
    def nnz(self) -> int:
        """Alias of :attr:`nvals`."""
        return self.nvals

    @property
    def nvals_upper_bound(self) -> int:
        """Stored entries plus pending (not yet merged) tuples.

        Unlike :attr:`nvals` this does not force a merge, so it is O(1); the
        hierarchical cascade uses it to decide cheaply when a layer may need
        flushing.
        """
        return int(self._rows.size) + self._pend.used

    @property
    def has_pending(self) -> bool:
        """True when scalar insertions are buffered but not yet merged."""
        return self._pend.used > 0

    @property
    def memory_breakdown(self) -> dict:
        """Resident bytes by role: stored arrays vs pending used/capacity.

        The pending arena preallocates geometrically, so its resident
        footprint (``pending_capacity_bytes``) can exceed the live data
        (``pending_used_bytes``); spill/placement decisions must follow the
        capacity while traffic estimates follow the used bytes (see
        :meth:`repro.memory.hierarchy.MemoryHierarchy.placement_level`).
        """
        return {
            "stored_bytes": int(
                self._rows.nbytes + self._cols.nbytes + self._vals.nbytes
            ),
            "pending_used_bytes": int(self._pend.used_bytes),
            "pending_capacity_bytes": int(self._pend.capacity_bytes),
        }

    @property
    def memory_usage(self) -> int:
        """Approximate resident bytes: stored arrays plus pending *capacity*."""
        b = self.memory_breakdown
        return b["stored_bytes"] + b["pending_capacity_bytes"]

    @property
    def T(self) -> "Matrix":
        """Materialised transpose."""
        return self.transpose()

    # ------------------------------------------------------------------ #
    # pending-tuple machinery
    # ------------------------------------------------------------------ #

    def _append_pending(self, r: np.ndarray, c: np.ndarray, v: np.ndarray, op: BinaryOp) -> None:
        """Append validated triples to the pending buffer under operator ``op``.

        The whole pending buffer shares one combining operator; switching
        operators (e.g. interleaving ``setElement`` replace semantics with a
        lazy ``plus`` build) flushes the buffer first so ordering semantics
        are preserved exactly.  Values are canonicalised to the matrix dtype
        here — as raw bits, so the flush never re-casts — and the arena
        copies, so callers may reuse their batch buffers freely.
        """
        if r.size == 0:
            return
        if self._pend.used and self._pend_op is not None and self._pend_op is not op:
            self._wait()
        self._pend_op = op
        self._pend.append(r, c, arena.value_bits(v, self._dtype.np_type))

    def _wait(self) -> None:
        """Merge any pending tuples into the sorted representation.

        Mirrors ``GrB_wait``: pending insertions are sorted (stably, so
        insertion order survives), duplicate coordinates are collapsed with
        the buffer's pending operator, and the result is union-merged into the
        sorted arrays with the same operator.  ``setElement`` buffers under
        ``second`` (later insertions win, matching repeated-store semantics);
        lazy ``build`` buffers under its ``dup_op`` (``plus`` for the
        streaming-accumulate hot path).
        """
        if self._pend.used == 0:
            return
        raw_count = self._pend.used
        op = self._pend_op if self._pend_op is not None else binary.second
        pr_v, pc_v, bits_v = self._pend.views()
        pv_v = arena.bits_to_values(bits_v, self._dtype.np_type)
        # One flush packs its pending triples exactly once: build_triples
        # hands the sorted keys (and their split) onward, and union_merge
        # reuses them whenever the merge plans the same split — always true
        # while stored and pending coordinates share the canonical 32/32
        # plan, i.e. the whole IPv4 traffic-matrix hot path.
        pr, pc, pv, pk, pspec = K.build_triples(pr_v, pc_v, pv_v, op, with_keys=True)
        # build_triples passes already-sorted duplicate-free input through
        # unchanged; detach such outputs from the arena before it is reused.
        if pr is pr_v:
            pr = pr.copy()
        if pc is pc_v:
            pc = pc.copy()
        if pv is pv_v:
            pv = pv.copy()
        self._pend.reset()
        self._pend_op = None
        self._rows, self._cols, self._vals = K.union_merge(
            (self._rows, self._cols, self._vals),
            (pr, pc, pv),
            op,
            out_dtype=self._dtype.np_type,
            b_keys=pk,
            b_spec=pspec,
        )
        if self.flush_hook is not None:
            self.flush_hook(raw_count, op, pr, pc, pv, pk, pspec)

    def wait(self) -> "Matrix":
        """Public ``GrB_wait`` equivalent; returns ``self`` for chaining."""
        self._wait()
        return self

    def _check_indices(self, rows: np.ndarray, cols: np.ndarray) -> None:
        if rows.size != cols.size:
            raise DimensionMismatch(
                f"row and column index arrays differ in length ({rows.size} vs {cols.size})"
            )
        if rows.size == 0:
            return
        if self._nrows < MAX_DIM and rows.max() >= np.uint64(self._nrows):
            raise IndexOutOfBound(
                f"row index {int(rows.max())} out of range for nrows={self._nrows}"
            )
        if self._ncols < MAX_DIM and cols.max() >= np.uint64(self._ncols):
            raise IndexOutOfBound(
                f"column index {int(cols.max())} out of range for ncols={self._ncols}"
            )

    # ------------------------------------------------------------------ #
    # element and bulk updates
    # ------------------------------------------------------------------ #

    def build(
        self,
        rows,
        cols,
        values=1,
        *,
        dup_op: Optional[BinaryOp] = None,
        clear: bool = False,
        lazy: bool = False,
        copy: bool = True,
    ) -> "Matrix":
        """Insert a batch of coordinate triples.

        Unlike the strict C API (which requires an empty output), ``build`` on a
        non-empty matrix merges the new entries with ``dup_op`` (default
        ``plus``), which is exactly the streaming-update usage of the paper.
        Set ``clear=True`` for the strict replace-all behaviour.

        With ``lazy=True`` the triples are copied into the pending-tuple
        buffer in O(n) and the sort + duplicate-collapse + merge is deferred
        until the next :meth:`wait` (or any operation that forces one).  This
        is the streaming-insert hot path the hierarchical cascade rides:
        almost every batch becomes a plain append, and the deferred work is
        amortised over many batches.  The logical result is identical to the
        eager path for any associative ``dup_op`` because the stable pending
        sort preserves insertion order within equal coordinates; deferral
        would regroup batches under a non-associative ``dup_op``, so those
        ignore ``lazy`` and run eagerly.

        ``copy`` is accepted for API compatibility: the pending arena copies
        every batch at append time, so both values are equally safe and
        callers may mutate or reuse their arrays immediately.
        """
        if clear:
            self.clear()
        r = K.as_index_array(rows, "rows")
        c = K.as_index_array(cols, "cols")
        if np.isscalar(values) or (isinstance(values, np.ndarray) and values.ndim == 0):
            v = np.full(r.size, values, dtype=self._dtype.np_type)
        else:
            v = np.asarray(values).astype(self._dtype.np_type, copy=False)
        if v.size != r.size:
            raise DimensionMismatch(
                f"values length {v.size} does not match index length {r.size}"
            )
        self._check_indices(r, c)
        if dup_op is None:
            dup_op = binary.plus
        if lazy and dup_op.associative:
            self._append_pending(r, c, v, dup_op)
            return self
        self._wait()
        r, c, v = K.build_triples(r, c, v, dup_op)
        if self._rows.size == 0:
            self._rows, self._cols, self._vals = r.copy(), c.copy(), v.copy()
        else:
            self._rows, self._cols, self._vals = K.union_merge(
                (self._rows, self._cols, self._vals),
                (r, c, v),
                dup_op,
                out_dtype=self._dtype.np_type,
            )
        return self

    def setElement(self, row: int, col: int, value) -> None:
        """Set a single entry (buffered; merged lazily like SuiteSparse pending tuples)."""
        r = K.as_index_array([row], "row")
        c = K.as_index_array([col], "col")
        self._check_indices(r, c)
        self._append_pending(
            r, c, np.asarray([value], dtype=self._dtype.np_type), binary.second
        )

    __setitem_scalar__ = setElement

    def extractElement(self, row: int, col: int, default=None):
        """Read a single entry; returns ``default`` when the entry is not stored."""
        self._wait()
        pos = K.search_sorted_coo(
            self._rows, self._cols, np.asarray([row]), np.asarray([col])
        )[0]
        if pos < 0:
            return default
        return self._vals[pos].item()

    get = extractElement

    def removeElement(self, row: int, col: int) -> bool:
        """Delete a single entry; returns True if it was present."""
        self._wait()
        pos = K.search_sorted_coo(
            self._rows, self._cols, np.asarray([row]), np.asarray([col])
        )[0]
        if pos < 0:
            return False
        keep = np.ones(self._rows.size, dtype=bool)
        keep[pos] = False
        self._rows = self._rows[keep]
        self._cols = self._cols[keep]
        self._vals = self._vals[keep]
        return True

    def clear(self) -> "Matrix":
        """Remove every stored entry (dimensions and type are retained)."""
        self._rows = np.empty(0, dtype=K.INDEX_DTYPE)
        self._cols = np.empty(0, dtype=K.INDEX_DTYPE)
        self._vals = np.empty(0, dtype=self._dtype.np_type)
        self._pend.clear()
        self._pend_op = None
        return self

    def resize(self, nrows: int, ncols: int) -> "Matrix":
        """Change the logical dimensions, dropping entries that fall outside."""
        nrows = _check_dim(nrows, "nrows")
        ncols = _check_dim(ncols, "ncols")
        self._wait()
        if self._rows.size:
            keep = np.ones(self._rows.size, dtype=bool)
            if nrows < MAX_DIM:
                keep &= self._rows < np.uint64(nrows)
            if ncols < MAX_DIM:
                keep &= self._cols < np.uint64(ncols)
            if not np.all(keep):
                self._rows = self._rows[keep]
                self._cols = self._cols[keep]
                self._vals = self._vals[keep]
        self._nrows = nrows
        self._ncols = ncols
        return self

    def update(self, other: "Matrix", accum: Optional[BinaryOp] = None) -> "Matrix":
        """In-place merge of ``other`` into ``self`` (``self(accum) << other``).

        This is the hierarchical cascade's workhorse: ``A_{i+1}.update(A_i)``
        performs ``A_{i+1} += A_i`` using the GraphBLAS ``plus`` accumulator by
        default.
        """
        if accum is None:
            accum = binary.plus
        if other._nrows != self._nrows or other._ncols != self._ncols:
            raise DimensionMismatch(
                f"update requires equal shapes, got {self.shape} and {other.shape}"
            )
        self._wait()
        other._wait()
        if other._rows.size == 0:
            return self
        self._rows, self._cols, self._vals = K.union_merge(
            (self._rows, self._cols, self._vals),
            (other._rows, other._cols, other._vals),
            accum,
            out_dtype=self._dtype.np_type,
        )
        return self

    def extract_tuples(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` copies of all stored entries."""
        self._wait()
        return self._rows.copy(), self._cols.copy(), self._vals.copy()

    to_coo = extract_tuples

    # ------------------------------------------------------------------ #
    # element-wise operations
    # ------------------------------------------------------------------ #

    def _coerce_op(self, op, default) -> BinaryOp:
        if op is None:
            return default
        if isinstance(op, str):
            return binary[op]
        if isinstance(op, Monoid):
            return op.op
        return op

    def ewise_add(
        self,
        other: "Matrix",
        op: Optional[Union[BinaryOp, Monoid, str]] = None,
        *,
        mask=None,
        desc: Descriptor = NULL_DESCRIPTOR,
    ) -> "Matrix":
        """Element-wise union: entries of either operand, combined where both exist."""
        op = self._coerce_op(op, binary.plus)
        if other._nrows != self._nrows or other._ncols != self._ncols:
            raise DimensionMismatch(
                f"eWiseAdd requires equal shapes, got {self.shape} and {other.shape}"
            )
        self._wait()
        other._wait()
        out_type = op.output_type(self._dtype, other._dtype)
        out = Matrix(out_type, self._nrows, self._ncols)
        r, c, v = K.union_merge(
            (self._rows, self._cols, self._vals),
            (other._rows, other._cols, other._vals),
            op,
            out_dtype=out_type.np_type,
        )
        out._rows, out._cols, out._vals = r, c, v.astype(out_type.np_type, copy=False)
        return out._apply_mask(mask, desc)

    def ewise_mult(
        self,
        other: "Matrix",
        op: Optional[Union[BinaryOp, Monoid, str]] = None,
        *,
        mask=None,
        desc: Descriptor = NULL_DESCRIPTOR,
    ) -> "Matrix":
        """Element-wise intersection: only coordinates present in both operands."""
        op = self._coerce_op(op, binary.times)
        if other._nrows != self._nrows or other._ncols != self._ncols:
            raise DimensionMismatch(
                f"eWiseMult requires equal shapes, got {self.shape} and {other.shape}"
            )
        self._wait()
        other._wait()
        out_type = op.output_type(self._dtype, other._dtype)
        out = Matrix(out_type, self._nrows, self._ncols)
        r, c, v = K.intersect_merge(
            (self._rows, self._cols, self._vals),
            (other._rows, other._cols, other._vals),
            op,
            out_dtype=out_type.np_type,
        )
        out._rows, out._cols, out._vals = r, c, v.astype(out_type.np_type, copy=False)
        return out._apply_mask(mask, desc)

    # Operator sugar ----------------------------------------------------- #

    def __add__(self, other: "Matrix") -> "Matrix":
        return self.ewise_add(other, binary.plus)

    def __iadd__(self, other: "Matrix") -> "Matrix":
        return self.update(other, binary.plus)

    def __mul__(self, other):
        if isinstance(other, Matrix):
            return self.ewise_mult(other, binary.times)
        return self.apply(binary.times, right=other)

    def __rmul__(self, other):
        return self.apply(binary.times, left=other)

    def __matmul__(self, other):
        return self.mxm(other)

    def __sub__(self, other: "Matrix") -> "Matrix":
        return self.ewise_add(other.apply("ainv"), binary.plus)

    def __neg__(self) -> "Matrix":
        return self.apply("ainv")

    # ------------------------------------------------------------------ #
    # multiplication
    # ------------------------------------------------------------------ #

    def mxm(
        self,
        other: "Matrix",
        op: Optional[Union[Semiring, str]] = None,
        *,
        mask=None,
        desc: Descriptor = NULL_DESCRIPTOR,
    ) -> "Matrix":
        """Matrix-matrix multiply over a semiring (default ``plus_times``).

        The kernel is a fully vectorised sparse join: the inner dimension is
        matched by binary search, products are materialised with fancy
        indexing, and duplicates are collapsed with the additive monoid's
        ``reduceat`` fast path.  Works for arbitrarily large hypersparse
        dimensions because no dense structure is ever formed.
        """
        if op is None:
            op = semiring.plus_times
        elif isinstance(op, str):
            op = semiring[op]
        A, B = self, other
        if desc.transpose_a:
            A = A.transpose()
        if desc.transpose_b:
            B = B.transpose()
        if A._ncols != B._nrows:
            raise DimensionMismatch(
                f"mxm inner dimensions differ: {A.shape} @ {B.shape}"
            )
        A._wait()
        B._wait()
        out_type = op.output_type(A._dtype, B._dtype)
        out = Matrix(out_type, A._nrows, B._ncols)
        if A._rows.size == 0 or B._rows.size == 0:
            return out._apply_mask(mask, desc)

        # Sort A by inner index (its columns); B is already sorted by rows.
        a_order = np.argsort(A._cols, kind="stable")
        a_rows = A._rows[a_order]
        a_inner = A._cols[a_order]
        a_vals = A._vals[a_order]
        b_inner = B._rows
        b_cols = B._cols
        b_vals = B._vals

        lo = np.searchsorted(b_inner, a_inner, side="left")
        hi = np.searchsorted(b_inner, a_inner, side="right")
        counts = (hi - lo).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            return out._apply_mask(mask, desc)

        rep = np.repeat(np.arange(a_inner.size, dtype=np.int64), counts)
        starts = np.repeat(lo.astype(np.int64), counts)
        prefix = np.concatenate(([0], np.cumsum(counts)[:-1]))
        offsets = np.arange(total, dtype=np.int64) - np.repeat(prefix, counts)
        b_idx = starts + offsets

        prod_vals = op.multiply(a_vals[rep], b_vals[b_idx]).astype(
            out_type.np_type, copy=False
        )
        spec = coords.plan_pack((a_rows, b_cols))
        if spec is not None:
            # Packed product path: build the output coordinates directly as
            # single uint64 keys (row from A, column from B), so the collapse
            # is one single-key stable argsort plus one gather — no (rows,
            # cols) materialisation before the sort and only the collapsed
            # group heads are ever unpacked.  Packing is monotone in the
            # lexicographic order, so this is bit-identical to the lexsort
            # engine (property-tested).
            prod_keys = coords.pack(a_rows[rep], b_cols[b_idx], spec)
            order = np.argsort(prod_keys, kind="stable")
            skeys = prod_keys[order]
            starts2 = K.key_group_starts(skeys)
            out._rows, out._cols = coords.unpack(skeys[starts2], spec)
            out._vals = op.add.reduce_groups(prod_vals[order], starts2).astype(
                out_type.np_type, copy=False
            )
            return out._apply_mask(mask, desc)
        prod_rows = a_rows[rep]
        prod_cols = b_cols[b_idx]
        prod_rows, prod_cols, prod_vals = K.sort_coo(prod_rows, prod_cols, prod_vals)
        starts2 = K.group_starts(prod_rows, prod_cols)
        out._rows = prod_rows[starts2]
        out._cols = prod_cols[starts2]
        out._vals = op.add.reduce_groups(prod_vals, starts2).astype(
            out_type.np_type, copy=False
        )
        return out._apply_mask(mask, desc)

    def mxv(self, vector, op: Optional[Union[Semiring, str]] = None, *, mask=None):
        """Matrix-vector multiply ``A x`` over a semiring (default ``plus_times``)."""
        from .vector import Vector

        if op is None:
            op = semiring.plus_times
        elif isinstance(op, str):
            op = semiring[op]
        if vector.size != self._ncols:
            raise DimensionMismatch(
                f"mxv requires vector of size {self._ncols}, got {vector.size}"
            )
        self._wait()
        vector._wait()
        out_type = op.output_type(self._dtype, vector.dtype)
        out = Vector(out_type, self._nrows)
        if self._rows.size == 0 or vector.nvals == 0:
            return out
        v_idx, v_vals = vector._indices, vector._vals
        pos = np.searchsorted(v_idx, self._cols)
        pos_clamped = np.minimum(pos, v_idx.size - 1)
        hit = v_idx[pos_clamped] == self._cols
        if not np.any(hit):
            return out
        rows = self._rows[hit]
        prods = op.multiply(self._vals[hit], v_vals[pos_clamped[hit]]).astype(
            out_type.np_type, copy=False
        )
        # self._rows is sorted and boolean masking preserves order, so `rows`
        # is already non-decreasing: the historical stable re-sort here was
        # always the identity permutation and is skipped bit-identically.
        starts = np.flatnonzero(np.concatenate(([True], rows[1:] != rows[:-1])))
        out._indices = rows[starts]
        out._vals = op.add.reduce_groups(prods, starts).astype(out_type.np_type, copy=False)
        return out

    def kronecker(self, other: "Matrix", op: Optional[BinaryOp] = None) -> "Matrix":
        """Kronecker product with multiplicative operator ``op`` (default ``times``)."""
        op = self._coerce_op(op, binary.times)
        self._wait()
        other._wait()
        if self._nrows > MAX_DIM // max(other._nrows, 1) or self._ncols > MAX_DIM // max(other._ncols, 1):
            raise InvalidValue("kronecker result dimensions exceed 2**64")
        out_type = op.output_type(self._dtype, other._dtype)
        out = Matrix(out_type, self._nrows * other._nrows, self._ncols * other._ncols)
        if self._rows.size == 0 or other._rows.size == 0:
            return out
        na, nb = self._rows.size, other._rows.size
        rep_a = np.repeat(np.arange(na), nb)
        rep_b = np.tile(np.arange(nb), na)
        rows = self._rows[rep_a] * np.uint64(other._nrows) + other._rows[rep_b]
        cols = self._cols[rep_a] * np.uint64(other._ncols) + other._cols[rep_b]
        vals = op(self._vals[rep_a], other._vals[rep_b]).astype(out_type.np_type, copy=False)
        rows, cols, vals = K.sort_coo(rows, cols, vals)
        out._rows, out._cols, out._vals = rows, cols, vals
        return out

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #

    def reduce_rowwise(self, op: Optional[Union[Monoid, str]] = None):
        """Reduce each row to a scalar, returning a sparse Vector of length nrows."""
        from .vector import Vector

        m = monoid[op] if isinstance(op, str) else (op or monoid.plus)
        self._wait()
        out = Vector(self._dtype, self._nrows)
        if self._rows.size == 0:
            return out
        starts = np.flatnonzero(
            np.concatenate(([True], self._rows[1:] != self._rows[:-1]))
        )
        out._indices = self._rows[starts]
        out._vals = m.reduce_groups(self._vals, starts).astype(
            self._dtype.np_type, copy=False
        )
        return out

    def reduce_columnwise(self, op: Optional[Union[Monoid, str]] = None):
        """Reduce each column to a scalar, returning a sparse Vector of length ncols."""
        return self.transpose().reduce_rowwise(op)

    def reduce_scalar(self, op: Optional[Union[Monoid, str]] = None):
        """Reduce every stored value to a single scalar (monoid identity if empty)."""
        m = monoid[op] if isinstance(op, str) else (op or monoid.plus)
        self._wait()
        return m.reduce(self._vals, dtype=self._dtype)

    # ------------------------------------------------------------------ #
    # apply / select / extract / assign / transpose
    # ------------------------------------------------------------------ #

    def apply(self, op, *, left=None, right=None, mask=None, desc: Descriptor = NULL_DESCRIPTOR) -> "Matrix":
        """Apply a unary operator (or a binary operator bound to a scalar) to every value."""
        from .unaryop import UnaryOp, unary as unary_ns

        self._wait()
        if isinstance(op, str):
            op = unary_ns[op] if op in unary_ns else binary[op]
        if isinstance(op, UnaryOp):
            out_type = op.output_type(self._dtype)
            new_vals = op(self._vals)
        else:  # BinaryOp bound to a scalar on one side
            if (left is None) == (right is None):
                raise InvalidValue(
                    "binary apply requires exactly one of left= or right="
                )
            out_type = op.output_type(self._dtype, self._dtype)
            if left is not None:
                new_vals = op(np.full(self._vals.size, left), self._vals)
            else:
                new_vals = op(self._vals, np.full(self._vals.size, right))
        out = Matrix(out_type, self._nrows, self._ncols)
        out._rows = self._rows.copy()
        out._cols = self._cols.copy()
        out._vals = np.asarray(new_vals).astype(out_type.np_type, copy=False)
        return out._apply_mask(mask, desc)

    def select(self, op: Union[SelectOp, str], thunk=None) -> "Matrix":
        """Keep only the entries satisfying a select operator (``tril``, ``valuegt`` ...)."""
        if isinstance(op, str):
            op = select_op[op]
        self._wait()
        keep = np.asarray(op(self._rows, self._cols, self._vals, thunk), dtype=bool)
        out = Matrix(self._dtype, self._nrows, self._ncols)
        out._rows = self._rows[keep]
        out._cols = self._cols[keep]
        out._vals = self._vals[keep]
        return out

    @staticmethod
    def _selection_occurrences(sel: np.ndarray, coords: np.ndarray):
        """Locate every occurrence of each coordinate inside a selection list.

        Returns ``(positions, lo, counts)``: ``positions`` is the argsort of
        ``sel`` (so ``positions[lo[k] + i]`` is the i-th occurrence of
        ``coords[k]`` within ``sel``) and ``counts[k]`` the occurrence count.
        ``coords`` must already be filtered to members of ``sel``.
        """
        positions = np.argsort(sel, kind="stable")
        sorted_sel = sel[positions]
        lo = np.searchsorted(sorted_sel, coords, side="left")
        hi = np.searchsorted(sorted_sel, coords, side="right")
        return positions, lo, (hi - lo).astype(np.int64)

    def extract(self, rows=_ALL, cols=_ALL, *, reindex: bool = True) -> "Matrix":
        """Extract the submatrix at the given row/column index lists.

        With ``reindex=True`` (GraphBLAS semantics) output coordinates are the
        positions within the supplied index lists, and a duplicated selection
        index replicates the selected row/column once per occurrence — exactly
        ``out[i, j] = A[rows[i], cols[j]]``, so ``A.extract([1, 1], [1])`` has
        two entries.  With ``reindex=False`` the original coordinates are
        preserved (useful for traffic-matrix slicing) and the selection lists
        act as sets: duplicates cannot replicate entries because replicated
        entries would collide on the same coordinate.
        """
        self._wait()
        row_sel = None if rows is _ALL else K.as_index_array(rows, "rows")
        col_sel = None if cols is _ALL else K.as_index_array(cols, "cols")

        # Membership of each stored coordinate in the selection lists: the
        # fast engine sorts each (small) selection once and binary-searches
        # the stored column against it; the reference engine keeps np.isin
        # (same toggle as the packed kernels, for two-engine conformance).
        fast_join = coords.packing_enabled()
        keep = np.ones(self._rows.size, dtype=bool)
        if row_sel is not None:
            keep &= (
                K.sorted_membership(self._rows, row_sel)
                if fast_join
                else np.isin(self._rows, row_sel)
            )
        if col_sel is not None:
            keep &= (
                K.sorted_membership(self._cols, col_sel)
                if fast_join
                else np.isin(self._cols, col_sel)
            )
        r, c, v = self._rows[keep], self._cols[keep], self._vals[keep]

        if not reindex:
            out = Matrix(self._dtype, self._nrows, self._ncols)
            out._rows, out._cols, out._vals = r, c, v
            return out

        out_nrows = self._nrows if row_sel is None else max(int(row_sel.size), 1)
        out_ncols = self._ncols if col_sel is None else max(int(col_sel.size), 1)
        if r.size:
            ones = np.ones(r.size, dtype=np.int64)
            if row_sel is not None:
                r_pos, r_lo, r_cnt = self._selection_occurrences(row_sel, r)
            else:
                r_cnt = ones
            if col_sel is not None:
                c_pos, c_lo, c_cnt = self._selection_occurrences(col_sel, c)
            else:
                c_cnt = ones
            total = r_cnt * c_cnt
            if total.sum() == r.size:
                # Duplicate-free selections: each entry maps to one position.
                if row_sel is not None:
                    r = r_pos[r_lo].astype(K.INDEX_DTYPE)
                if col_sel is not None:
                    c = c_pos[c_lo].astype(K.INDEX_DTYPE)
            else:
                # Replicate each entry once per (row occurrence, col occurrence)
                # pair: entry k appears r_cnt[k] * c_cnt[k] times.
                m = int(total.sum())
                rep = np.repeat(np.arange(r.size, dtype=np.intp), total)
                prefix = np.concatenate(([0], np.cumsum(total)[:-1]))
                offs = np.arange(m, dtype=np.int64) - np.repeat(prefix, total)
                cc = np.repeat(c_cnt, total)
                row_occ = offs // cc
                col_occ = offs - row_occ * cc
                if row_sel is not None:
                    r = r_pos[r_lo[rep] + row_occ].astype(K.INDEX_DTYPE)
                else:
                    r = r[rep]
                if col_sel is not None:
                    c = c_pos[c_lo[rep] + col_occ].astype(K.INDEX_DTYPE)
                else:
                    c = c[rep]
                v = v[rep]
        out = Matrix(self._dtype, out_nrows, out_ncols)
        r, c, v = K.sort_coo(r, c, v)
        out._rows, out._cols, out._vals = r, c, v
        return out

    def assign(self, value, rows=_ALL, cols=_ALL, *, accum: Optional[BinaryOp] = None) -> "Matrix":
        """Assign a scalar (or accumulate it) into every position of a row/column block."""
        self._wait()
        row_sel = (
            np.arange(min(self._nrows, 2 ** 20), dtype=np.uint64)
            if rows is _ALL
            else K.as_index_array(rows, "rows")
        )
        col_sel = (
            np.arange(min(self._ncols, 2 ** 20), dtype=np.uint64)
            if cols is _ALL
            else K.as_index_array(cols, "cols")
        )
        if rows is _ALL and self._nrows > 2 ** 20:
            raise NotImplementedException(
                "assign to all rows of a hypersparse dimension is not supported; "
                "pass explicit row indices"
            )
        if cols is _ALL and self._ncols > 2 ** 20:
            raise NotImplementedException(
                "assign to all columns of a hypersparse dimension is not supported; "
                "pass explicit column indices"
            )
        rr = np.repeat(row_sel, col_sel.size)
        cc = np.tile(col_sel, row_sel.size)
        vv = np.full(rr.size, value, dtype=self._dtype.np_type)
        block = Matrix(self._dtype, self._nrows, self._ncols)
        block.build(rr, cc, vv, dup_op=binary.second)
        return self.update(block, accum=accum if accum is not None else binary.second)

    def transpose(self) -> "Matrix":
        """Materialised transpose (rows and columns exchanged, re-sorted)."""
        self._wait()
        out = Matrix(self._dtype, self._ncols, self._nrows)
        if self._rows.size:
            r, c, v = K.sort_coo(self._cols.copy(), self._rows.copy(), self._vals.copy())
            out._rows, out._cols, out._vals = r, c, v
        return out

    def diag(self):
        """The main diagonal as a sparse Vector of length min(nrows, ncols)."""
        from .vector import Vector

        self._wait()
        out = Vector(self._dtype, min(self._nrows, self._ncols))
        hit = self._rows == self._cols
        out._indices = self._rows[hit].copy()
        out._vals = self._vals[hit].copy()
        return out

    # ------------------------------------------------------------------ #
    # masks
    # ------------------------------------------------------------------ #

    def _apply_mask(self, mask, desc: Descriptor = NULL_DESCRIPTOR) -> "Matrix":
        """Filter stored entries through a mask (structural or value, possibly complemented)."""
        mask = resolve_mask(mask, desc)
        if mask is None:
            return self
        parent: "Matrix" = mask.parent
        parent._wait()
        self._wait()
        if mask.structure:
            m_rows, m_cols = parent._rows, parent._cols
        else:
            truthy = parent._vals.astype(bool)
            m_rows, m_cols = parent._rows[truthy], parent._cols[truthy]
        member = K.membership_mask(self._rows, self._cols, m_rows, m_cols)
        if mask.complement:
            member = ~member
        self._rows = self._rows[member]
        self._cols = self._cols[member]
        self._vals = self._vals[member]
        return self

    # ------------------------------------------------------------------ #
    # conversions and comparisons
    # ------------------------------------------------------------------ #

    def to_scipy_sparse(self, format: str = "csr"):
        """Convert to a SciPy sparse matrix (dimensions must fit in int64)."""
        import scipy.sparse as sp

        self._wait()
        if self._nrows > np.iinfo(np.int64).max or self._ncols > np.iinfo(np.int64).max:
            raise NotImplementedException(
                "matrix dimensions exceed SciPy's index range; extract a submatrix first"
            )
        coo = sp.coo_matrix(
            (self._vals, (self._rows.astype(np.int64), self._cols.astype(np.int64))),
            shape=(self._nrows, self._ncols),
        )
        return coo.asformat(format)

    def to_dense(self, fill_value=0) -> np.ndarray:
        """Convert to a dense ndarray (guarded against blowing up memory)."""
        self._wait()
        if self._nrows * self._ncols > 10 ** 8:
            raise NotImplementedException(
                f"refusing to densify a {self._nrows} x {self._ncols} matrix"
            )
        out = np.full((self._nrows, self._ncols), fill_value, dtype=self._dtype.np_type)
        out[self._rows.astype(np.int64), self._cols.astype(np.int64)] = self._vals
        return out

    def isequal(self, other: "Matrix", *, check_dtype: bool = False) -> bool:
        """Exact equality of pattern and values (and optionally dtype)."""
        if not isinstance(other, Matrix):
            return False
        if self.shape != other.shape:
            return False
        if check_dtype and self._dtype is not other._dtype:
            return False
        self._wait()
        other._wait()
        return (
            self._rows.size == other._rows.size
            and bool(np.array_equal(self._rows, other._rows))
            and bool(np.array_equal(self._cols, other._cols))
            and bool(np.array_equal(self._vals, other._vals))
        )

    def isclose(self, other: "Matrix", *, rel_tol: float = 1e-7, abs_tol: float = 0.0) -> bool:
        """Pattern equality with approximately-equal values."""
        if not isinstance(other, Matrix) or self.shape != other.shape:
            return False
        self._wait()
        other._wait()
        if self._rows.size != other._rows.size:
            return False
        if not (
            np.array_equal(self._rows, other._rows)
            and np.array_equal(self._cols, other._cols)
        ):
            return False
        return bool(
            np.allclose(
                self._vals.astype(np.float64),
                other._vals.astype(np.float64),
                rtol=rel_tol,
                atol=abs_tol,
            )
        )

    # ------------------------------------------------------------------ #
    # python protocol methods
    # ------------------------------------------------------------------ #

    def __getitem__(self, key):
        if isinstance(key, tuple) and len(key) == 2:
            i, j = key
            if np.isscalar(i) and np.isscalar(j):
                return self.extractElement(int(i), int(j))
            rows = _ALL if (isinstance(i, slice) and i == slice(None)) else i
            cols = _ALL if (isinstance(j, slice) and j == slice(None)) else j
            return self.extract(rows, cols)
        raise TypeError("Matrix indexing requires a (row, col) pair")

    def __setitem__(self, key, value):
        if isinstance(key, tuple) and len(key) == 2 and np.isscalar(key[0]) and np.isscalar(key[1]):
            self.setElement(int(key[0]), int(key[1]), value)
            return
        raise TypeError("Matrix item assignment requires scalar (row, col) indices")

    def __contains__(self, key) -> bool:
        if isinstance(key, tuple) and len(key) == 2:
            return self.extractElement(int(key[0]), int(key[1])) is not None
        return False

    def __iter__(self) -> Iterator[Tuple[int, int, object]]:
        self._wait()
        for i in range(self._rows.size):
            yield int(self._rows[i]), int(self._cols[i]), self._vals[i].item()

    def __bool__(self) -> bool:
        return self.nvals > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Matrix{label} {self._nrows}x{self._ncols} {self._dtype.name}, "
            f"nvals={self.nvals_upper_bound}{'+' if self.has_pending else ''}>"
        )
