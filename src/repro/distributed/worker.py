"""Shard-worker state and command protocol, shared by every transport.

A shard worker owns a private :class:`~repro.core.HierarchicalMatrix` and
executes a small command protocol (see :mod:`repro.distributed.pool` for the
command reference).  This module holds everything that runs *identically*
regardless of how commands reach the worker — in-process calls, pickled FIFO
queues, or the shared-memory ring transport — so the transports in
:mod:`repro.distributed.transport` stay pure plumbing and the conformance
suite (``tests/distributed/test_transport.py``) can assert that plumbing
never changes results.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core import HierarchicalMatrix
from ..core.checkpoint import checkpoint_bytes, load_checkpoint_bytes
from ..graphblas import Matrix, coords
from ..graphblas.binaryop import binary
from ..workloads.powerlaw import powerlaw_edges
from .partition import interval_mask, partition_keys
from .ringbuf import ValueCodec

__all__ = [
    "WorkerReport",
    "WorkerCrash",
    "WorkerDied",
    "ShardState",
    "CommandExecutor",
    "stream_powerlaw",
    "REPLY_COMMANDS",
    "KNOWN_COMMANDS",
    "INCREMENTAL_KINDS",
]


@dataclass(frozen=True)
class WorkerReport:
    """Result of one worker's measured ingest.

    Attributes
    ----------
    worker_id:
        0-based worker index.
    total_updates:
        Element updates streamed by this worker.
    elapsed_seconds:
        Wall-clock time spent inside ``update`` calls plus the forced final
        flush of deferred pending tuples.
    updates_per_second:
        This worker's measured rate.
    final_nvals:
        Stored entries in the worker's materialised matrix (sanity check).
    cascades:
        Per-layer cascade counts.
    """

    worker_id: int
    total_updates: int
    elapsed_seconds: float
    updates_per_second: float
    final_nvals: int
    cascades: List[int] = field(default_factory=list)


class WorkerCrash(RuntimeError):
    """A shard worker raised (or died) while executing a command."""


class WorkerDied(WorkerCrash):
    """The worker *process* is gone (SIGKILL, OOM, node failure).

    Raised only from the transports' own death-detection paths (queue
    liveness poll, ring closure, socket EOF/send failure), never from a
    worker-raised exception — so catching this, rather than polling pid
    liveness after the fact, is the race-free way to tell "the shard needs
    failover" from "the command failed but the worker survives".  A dying
    worker closes its wire *before* its pid disappears from the process
    table, so a liveness poll taken at crash time can still read alive.
    """


def stream_powerlaw(
    matrix: HierarchicalMatrix,
    worker_id: int,
    total_updates: int,
    batch_size: int,
    *,
    nnodes: int = 2 ** 32,
    alpha: float = 1.3,
    distinct_nodes: int = 2 ** 22,
    seed: Optional[int] = None,
) -> Tuple[int, float]:
    """Generate and stream exactly ``total_updates`` power-law edges.

    Returns ``(updates_streamed, timed_seconds)``.  Measured the way the paper
    measures: generation time is excluded (data resides in arrays before the
    timed insert), every ``update`` call is timed, the last batch is a partial
    batch when ``batch_size`` does not divide ``total_updates``, and the
    deferred layer-1 flush is forced *inside* the timed section so the
    reported rate pays for the sort/merge work the stream deferred.
    """
    rng_seed = (seed if seed is not None else 0) + worker_id * 1_000_003
    total = max(int(total_updates), 0)
    batch_size = max(int(batch_size), 1)
    elapsed = 0.0
    done = 0
    b = 0
    while done < total:
        n = min(batch_size, total - done)
        rows, cols = powerlaw_edges(
            n,
            alpha=alpha,
            nnodes=nnodes,
            distinct_nodes=distinct_nodes,
            seed=rng_seed + b,
        )
        values = np.ones(n, dtype=np.float64)
        start = time.perf_counter()
        matrix.update(rows, cols, values)
        elapsed += time.perf_counter() - start
        done += n
        b += 1
    start = time.perf_counter()
    matrix.wait()  # the deferred flush is ingest work, not query work
    elapsed += time.perf_counter() - start
    return done, elapsed


#: Commands that produce exactly one reply on the worker's reply channel.
REPLY_COMMANDS = frozenset(
    {
        "selfgen",
        "finalize",
        "report",
        "materialize",
        "get",
        "reduce",
        "stats",
        "reduce_incremental",
        "clear",
        "extract_slab",
        "install_slab",
        "discard_slab",
        "checkpoint",
        "restore",
    }
)

#: Incremental reduction vectors servable by the ``reduce_incremental`` command.
INCREMENTAL_KINDS = frozenset({"row_traffic", "col_traffic", "row_fan", "col_fan"})

#: Every command a worker understands.  The pool validates against this
#: parent-side: an unknown *fire-and-forget* command would otherwise be
#: swallowed worker-side and only surface at some later reply.
KNOWN_COMMANDS = REPLY_COMMANDS | {"ingest", "stop"}


class ShardState:
    """One worker's state: a private hierarchical matrix plus ingest counters.

    Runs identically inside a long-lived child process (whatever the
    transport) and in-process (``use_processes=False``), so unit tests and
    single-core machines exercise the same command protocol without fork
    overhead.
    """

    def __init__(self, worker_id: int, matrix_kwargs: Optional[Dict[str, Any]] = None):
        kwargs = dict(matrix_kwargs or {})
        nrows = kwargs.pop("nrows", 2 ** 32)
        ncols = kwargs.pop("ncols", 2 ** 32)
        dtype = kwargs.pop("dtype", "fp64")
        accum = kwargs.pop("accum", None)
        if isinstance(accum, str):
            # Operators cross the process boundary by registry name.
            accum = binary[accum]
        self.worker_id = int(worker_id)
        self.matrix = HierarchicalMatrix(nrows, ncols, dtype, accum=accum, **kwargs)
        # The toggle-independent shape split — identical to the router's, so
        # worker-side slab membership can never disagree with routing.
        self.spec = coords.shape_split(int(nrows), int(ncols))
        self.done = 0
        self.elapsed = 0.0
        self.slabs_in = 0
        self.slabs_out = 0

    # -- command handlers ------------------------------------------------ #

    def handle(self, cmd: str, payload) -> Any:
        if cmd == "ingest":
            rows, cols, values = payload
            n = rows.size
            start = time.perf_counter()
            self.matrix.update(rows, cols, values)
            self.elapsed += time.perf_counter() - start
            self.done += int(n)
            return None
        if cmd == "selfgen":
            spec = dict(payload)
            done, elapsed = stream_powerlaw(
                self.matrix,
                self.worker_id,
                spec.pop("total_updates"),
                spec.pop("batch_size"),
                **spec,
            )
            self.done += done
            self.elapsed += elapsed
            return self.report()
        if cmd == "finalize":
            start = time.perf_counter()
            self.matrix.wait()
            self.elapsed += time.perf_counter() - start
            return {"total_updates": self.done, "elapsed_seconds": self.elapsed}
        if cmd == "report":
            return self.report()
        if cmd == "materialize":
            return self.matrix.materialize().extract_tuples()
        if cmd == "get":
            row, col = payload
            return self.matrix.get(row, col, None)
        if cmd == "reduce":
            axis, op_name = payload
            flat = self.matrix.materialize()
            vec = (
                flat.reduce_rowwise(op_name)
                if axis == "row"
                else flat.reduce_columnwise(op_name)
            )
            return vec.to_coo()
        if cmd == "stats":
            inc = self.matrix.incremental
            return {
                "supported": inc.supported,
                "fan_supported": inc.fan_supported,
                "total": float(inc.total()) if inc.supported else None,
                "nnz": inc.nnz() if inc.fan_supported else None,
                "updates": self.done,
            }
        if cmd == "reduce_incremental":
            kind = payload
            if kind not in INCREMENTAL_KINDS:
                raise ValueError(f"unknown incremental reduction {kind!r}")
            inc = self.matrix.incremental
            if not inc.supported or (kind.endswith("fan") and not inc.fan_supported):
                return None
            return getattr(inc, kind)().to_coo()
        if cmd == "clear":
            self.matrix.clear()
            self.done = 0
            self.elapsed = 0.0
            self.slabs_in = 0
            self.slabs_out = 0
            return True
        if cmd == "extract_slab":
            return self._extract_slab(payload)
        if cmd == "install_slab":
            return self._install_slab(payload)
        if cmd == "discard_slab":
            return self._discard_slab(payload)
        if cmd == "checkpoint":
            # Replica resync source: the primary's full logical content as
            # in-memory .npz bytes (reply-bearing, so it is a barrier — the
            # snapshot reflects every batch mirrored before it).
            return checkpoint_bytes(self.matrix)
        if cmd == "restore":
            # Replica resync sink: replace this worker's content with the
            # primary's checkpoint.  reset_from_triples keeps the worker's
            # own hierarchy configuration (cuts, accum, tracker) — only the
            # logical triples are adopted.
            restored = load_checkpoint_bytes(payload)
            rows, cols, vals = restored.materialize().extract_tuples()
            self.matrix.reset_from_triples(rows, cols, vals)
            return int(rows.size)
        raise ValueError(f"unknown worker command {cmd!r}")

    # -- live slab migration (PR 5) -------------------------------------- #
    #
    # These three commands implement the worker half of
    # ShardedHierarchicalMatrix.rebalance().  All of them are reply-bearing,
    # so on every transport they are barriers against in-flight ingest
    # batches: the slab the source cuts always reflects every batch routed
    # to it under the old map epoch.  extract_slab only *copies* — the
    # source stays authoritative until the coordinator has confirmed the
    # install and asked for the discard, which is what keeps a crash at any
    # step from orphaning or double-owning a coordinate.

    def _slab_triples(self, partition: str, lo: int, hi: int):
        """Materialised shard triples split into (slab mask, rows, cols, vals)."""
        rows, cols, vals = self.matrix.to_coo()
        pkeys = partition_keys(rows, cols, partition, self.spec)
        return interval_mask(pkeys, int(lo), int(hi)), rows, cols, vals

    def _gather_slab(self, partition: str, lo: int, hi: int):
        """Combined ``[lo, hi)`` slab triples without materialising the shard.

        Each sorted layer is cut independently (``extract_tuples`` merges only
        that layer's own pending buffer) and only the *slab-sized* gathered
        pieces are combined across layers, so copying a small slab out of a
        large shard costs O(shard keys scanned + slab entries combined)
        instead of a full multi-layer merge.  The combine uses the hierarchy's
        own accumulator, so values are bit-identical to cutting the
        materialised sum.
        """
        lo, hi = int(lo), int(hi)
        parts = []
        for layer in self.matrix.layers:
            rows, cols, vals = layer.extract_tuples()
            if rows.size == 0:
                continue
            mask = interval_mask(partition_keys(rows, cols, partition, self.spec), lo, hi)
            if mask.any():
                parts.append((rows[mask], cols[mask], vals[mask]))
        if not parts:
            vt = self.matrix.dtype.np_type
            return np.empty(0, np.uint64), np.empty(0, np.uint64), np.empty(0, vt)
        if len(parts) == 1:
            return parts[0]
        combined = Matrix(self.matrix.dtype, self.matrix.nrows, self.matrix.ncols)
        combined.build(
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
            dup_op=self.matrix.accum,
        )
        return combined.extract_tuples()

    def _encode_slab(self, rows, cols, vals):
        """Slab wire form: packed uint64 keys + raw value bits when possible.

        Reuses the shm ring's framing pieces (the PR-1 coordinate codec and
        the :class:`~repro.distributed.ringbuf.ValueCodec` bit codec), so a
        migrating slab crosses the reply channel as two flat uint64 arrays
        instead of three pickled object arrays; unpackable (IPv6) shapes
        fall back to plain COO triples.
        """
        if self.spec is not None and vals.dtype.itemsize <= 8:
            codec = ValueCodec(vals.dtype)
            return (
                "packed",
                coords.pack(rows, cols, self.spec),
                codec.encode(vals, rows.size),
            )
        return ("coo", rows, cols, vals)

    def _decode_slab(self, slab):
        if slab[0] == "packed":
            _, keys, bits = slab
            rows, cols = coords.unpack(keys, self.spec)
            return rows, cols, ValueCodec(self.matrix.dtype.np_type).decode(bits)
        _, rows, cols, vals = slab
        return rows, cols, vals

    def _extract_slab(self, payload) -> Dict[str, Any]:
        """Choose and copy out one slab; the shard's content is unchanged.

        Because it mutates nothing and the cut below is a deterministic
        function of the shard's logical content, this command is idempotent
        across mirrors: the coordinator mirrors it to every replica as a
        stream barrier and, if the primary dies mid-extract, simply re-issues
        it to the promoted replica — which computes the *same* slab, since a
        mirror at the same stream position holds the same logical content.

        ``payload`` carries the partition kind plus either an explicit
        ``lo``/``hi`` interval or ``intervals`` (the partition-map intervals
        this shard owns) with a ``target`` load to move — then the cut is
        chosen here, where the key distribution is known: the busiest owned
        interval is found and its tail split off at the stored partition-key
        quantile whose suffix load is closest to (at most) ``target``.  Load
        is counted per the policy's metric: one unit per stored entry
        (``weight="count"``, the nnz policy) or the entry's absolute value
        (``weight="value"``, the traffic policy — exactly the units the
        coordinator's traffic loads are measured in).  Cuts land on whole
        keys only, so a hot coordinate is never split across shards.
        """
        partition = payload["partition"]
        target = payload.get("target")
        if target is None:
            lo, hi = int(payload["lo"]), int(payload["hi"])
        else:
            # Scan partition keys and weights per layer — no materialise.  A
            # coordinate stored in several layers contributes each layer's
            # weight separately; under ``plus`` (the only accumulator the
            # traffic policy meters) the value weights still sum exactly, and
            # count weights over-count such coordinates slightly — an
            # acceptable bias for what is already a load *heuristic*, while
            # the extracted slab content below stays exact.
            weight = payload.get("weight", "count")
            key_parts = []
            w_parts = []
            for layer in self.matrix.layers:
                lr, lc, lv = layer.extract_tuples()
                if lr.size == 0:
                    continue
                key_parts.append(partition_keys(lr, lc, partition, self.spec))
                if weight == "value":
                    w_parts.append(np.abs(lv.astype(np.float64, copy=False)))
                else:
                    w_parts.append(np.ones(lr.size, dtype=np.float64))
            if key_parts:
                pkeys = np.concatenate(key_parts)
                all_w = np.concatenate(w_parts)
            else:
                pkeys = np.empty(0, dtype=np.uint64)
                all_w = np.empty(0, dtype=np.float64)
            # Pick the heaviest owned interval *in the policy's own units*:
            # under the traffic policy a few huge-value entries outweigh a
            # crowd of light ones, and cutting the crowded interval instead
            # would move almost none of the load gap.
            best = None
            for cand_lo, cand_hi in payload["intervals"]:
                in_interval = interval_mask(pkeys, int(cand_lo), int(cand_hi))
                load = float(all_w[in_interval].sum())
                if best is None or load > best[0]:
                    best = (load, int(cand_lo), int(cand_hi), in_interval)
            _, int_lo, hi, in_interval = best
            n_in = int(in_interval.sum())
            if n_in == 0 or target <= 0:
                return {"lo": int_lo, "hi": hi, "count": 0, "slab": None}
            sel = np.flatnonzero(in_interval)
            order = np.argsort(pkeys[sel], kind="stable")
            sorted_keys = pkeys[sel][order]
            w = all_w[sel][order]
            # suffix[i] = load of the candidate slab starting at entry i;
            # move the longest suffix whose load does not exceed the target
            # (for unit weights this is exactly the old "tail of `target`
            # entries" cut), then widen left to a whole-key boundary.
            suffix = np.cumsum(w[::-1])[::-1]
            i = int(np.searchsorted(-suffix, -float(target), side="left"))
            if i >= n_in:
                return {"lo": int_lo, "hi": hi, "count": 0, "slab": None}
            while i > 0 and sorted_keys[i - 1] == sorted_keys[i]:
                i -= 1
            lo = int(sorted_keys[i])
        rows, cols, vals = self._gather_slab(partition, lo, hi)
        count = int(rows.size)
        if count == 0:
            return {"lo": lo, "hi": hi, "count": 0, "slab": None}
        return {
            "lo": lo,
            "hi": hi,
            "count": count,
            "slab": self._encode_slab(rows, cols, vals),
        }

    def _install_slab(self, slab) -> int:
        """Apply a migrated slab to this shard's matrix and tracker.

        The slab's coordinates were owned by the source, so under the
        disjoint-ownership invariant none of them are stored here: the
        update is a pure insert, and the incremental tracker observing it
        is exactly the tracker state the slab carried on the source (for the
        ``plus`` accumulator — the only one the tracker supports — a
        coordinate's tracked contribution *is* its combined value).
        Deliberately not counted into the ingest measurement counters.
        """
        rows, cols, vals = self._decode_slab(slab)
        if rows.size:
            self.matrix.update(rows, cols, vals)
        self.slabs_in += 1
        return int(rows.size)

    def _discard_slab(self, payload) -> int:
        """Drop the slab ``[lo, hi)`` and rebuild this shard without it.

        Runs only after the coordinator confirmed the destination installed
        its copy.  Deterministic: membership is recomputed with the same
        shared :func:`partition_keys`, and no batch can have landed since
        the extract (the single routing thread publishes no new batches
        mid-migration), so exactly the extracted entries are removed.
        """
        move, rows, cols, vals = self._slab_triples(
            payload["partition"], payload["lo"], payload["hi"]
        )
        count = int(move.sum())
        if count:
            keep = ~move
            self.matrix.reset_from_triples(rows[keep], cols[keep], vals[keep])
        self.slabs_out += 1
        return count

    def report(self) -> WorkerReport:
        stats = self.matrix.stats
        rate = self.done / self.elapsed if self.elapsed > 0 else 0.0
        return WorkerReport(
            worker_id=self.worker_id,
            total_updates=self.done,
            elapsed_seconds=self.elapsed,
            updates_per_second=rate,
            final_nvals=self.matrix.materialize().nvals,
            cascades=list(stats.cascades) if stats is not None else [],
        )


class CommandExecutor:
    """The error-latching reply protocol every transport's worker loop shares.

    Wraps a :class:`ShardState` (constructed here, so even a failing
    constructor is latched instead of crashing the loop) and owns the one
    piece of semantics the wires must never let drift: a command exception is
    captured as the *pending error*, fire-and-forget commands after it are
    skipped, and the next reply-bearing command delivers ``("error",
    traceback)`` — after which the worker resumes serving (unless
    construction itself failed, in which case every reply repeats the
    error).  Transports only decide *when* :meth:`execute` runs, never what
    it does.
    """

    def __init__(self, worker_id: int, matrix_kwargs, reply_queue) -> None:
        self._reply_queue = reply_queue
        self.state: Optional[ShardState] = None
        self._init_error: Optional[str] = None
        try:
            self.state = ShardState(worker_id, matrix_kwargs)
        except Exception:  # pragma: no cover - construction is trivial to satisfy
            self._init_error = traceback.format_exc()
        self.pending_error = self._init_error

    def ingest(self, decode_payload: Callable[[], tuple]) -> None:
        """Apply one fire-and-forget batch; ``decode_payload`` materialises
        the ``(rows, cols, values)`` tuple and may itself raise (wire decode
        errors are latched exactly like command errors)."""
        if self.pending_error is not None:
            return
        try:
            self.state.handle("ingest", decode_payload())
        except Exception:
            self.pending_error = traceback.format_exc()

    def execute(self, cmd: str, payload) -> None:
        """Run one command; emit its reply when the protocol promises one."""
        result = None
        if self.pending_error is None:
            try:
                result = self.state.handle(cmd, payload)
            except Exception:
                self.pending_error = traceback.format_exc()
        if cmd in REPLY_COMMANDS:
            if self.pending_error is not None:
                self._reply_queue.put(("error", self.pending_error))
                self.pending_error = self._init_error
            else:
                self._reply_queue.put(("ok", result))
