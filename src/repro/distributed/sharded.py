"""Sharded hierarchical hypersparse matrices over the persistent worker pool.

The paper's headline 75B updates/s is a *sum over many independent
hierarchical-matrix instances*; this module turns that sum into one logical
matrix.  A :class:`ShardedHierarchicalMatrix` partitions the coordinate space
across K shards, each shard owning a private
:class:`~repro.core.HierarchicalMatrix` with deferred layer-1 ingest, and
routes every externally supplied stream batch to the shards that own its
coordinates.  Because routing is a pure function of ``(row, col)``, every
update for a given coordinate lands on the same shard *in stream order*, the
shards' stored coordinate sets are pairwise disjoint, and the globally merged
result is exactly the matrix a single flat hierarchy would have produced from
the same stream (bit-identical for any exactly representable values, e.g. the
packet/byte counts of the traffic workload — property-tested in
``tests/distributed/test_sharded.py`` across shard counts and both coordinate
engines).

Routing reuses the PR-1 packed-coordinate codec: whenever the logical shape
fits a 64-bit split (:func:`repro.graphblas.coords.shape_split` — always true
for the IPv4 :math:`2^{32} \\times 2^{32}` traffic matrices), the shard key is
the packed ``uint64`` ``(row << col_bits) | col``; hash partitioning mixes it
through splitmix64, range partitioning divides the occupied key space into K
contiguous slabs (preserving locality for range analytics).  Full 64-bit IPv6
shapes fall back to hashing the raw coordinates / range-partitioning rows.

Since PR 5 the shard owning a coordinate is no longer frozen at construction:
ownership lives in an epoch-versioned :class:`~repro.distributed.partition.
PartitionMap` that :meth:`ShardedHierarchicalMatrix.rebalance` rewrites by
migrating a slab of stored triples (plus its derived tracker state) between
live workers — the stream keeps flowing, and the conformance suite holds the
result bit-identical to a flat matrix across any rebalance schedule, under
the engine's standing exactness caveat: migration ships *combined* values
(and forces the source's deferred flush), which regroups floating-point
additions, so bit-identity is guaranteed for exactly representable values
(integer packet/byte counts — the same qualifier the sharded guarantee has
carried since PR 2); arbitrary float streams agree to rounding.

Since PR 7 the shards can also live on *other machines*: ``transport="socket"``
connects every worker slot to a :class:`~repro.distributed.node.NodeAgent`
endpoint instead of forking locally, and ``replicas=r`` provisions ``r``
mirror workers per shard.  Every ingest batch is mirrored before any failure
is even detectable, so when a primary worker (or its whole node) dies the
router *fails over*: the pool promotes a live replica and the next partition
map epoch is published (identical intervals, bumped version — see
:meth:`PartitionMap.advance <repro.distributed.partition.PartitionMap.
advance>`), with zero lost updates.  A crashed shard with no live replica
propagates :class:`~repro.distributed.worker.WorkerCrash` and leaves the
previous epoch in force.

Since PR 9 replication is *mutation-complete*: every migration step
(``extract_slab`` / ``install_slab`` / ``discard_slab``) is mirrored to the
touched shard's replica legs, so a rebalance leaves each replica
bit-identical to its primary with no post-hoc resync — a failover landing
mid-migration, or right after one, promotes a replica that already holds
exactly the migrated state.  Retired replica slots are visible through
:meth:`ShardedHierarchicalMatrix.missing_replicas` and restored one at a
time by :meth:`ShardedHierarchicalMatrix.resync_replica`; the service-layer
:class:`~repro.service.AutoRejoiner` drives that hands-off, re-dialing
restarted agents with backoff.
"""

from __future__ import annotations

import contextlib

import numpy as np

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..graphblas import Matrix, Vector, coords
from ..graphblas import _kernels as K
from ..graphblas.binaryop import BinaryOp, binary
from ..graphblas.errors import DimensionMismatch, InvalidIndex, InvalidValue
from ..graphblas.types import DataType, lookup_dtype
from ..workloads.stream import normalize_batch
from .partition import (
    PARTITION_NAMES,
    PartitionMap,
    partition_keys,
    partition_keyspace,
)
from .pool import ShardWorkerPool, WorkerReport
from .worker import WorkerCrash, WorkerDied

__all__ = [
    "ShardRouter",
    "ShardedIncrementalReductions",
    "ShardedHierarchicalMatrix",
    "RebalanceReport",
]

_KEY_BITS = 64


class ShardRouter:
    """Deterministic ``(row, col, epoch) -> shard`` routing over the packed-key codec.

    Parameters
    ----------
    nshards:
        Number of shards K.
    nrows, ncols:
        Logical shape of the sharded matrix; fixes the bit split once so every
        batch routes identically.
    partition:
        ``"hash"`` (splitmix64 of the packed key, load-balancing) or
        ``"range"`` (contiguous slabs of the packed key space, locality
        preserving).  Either way the partition key feeds an epoch-versioned
        :class:`~repro.distributed.partition.PartitionMap`; the epoch-0 map
        reproduces the closed-form PR-2 range assignment exactly, while hash
        placement becomes contiguous slabs of the hashed keyspace (same
        uniform load as the old modulo; see
        :meth:`PartitionMap.uniform <repro.distributed.partition.PartitionMap.uniform>`).

    Notes
    -----
    The split comes from :func:`repro.graphblas.coords.shape_split`, which
    ignores the global packing toggle — disabling the packed kernels for
    benchmarking never changes which shard owns a coordinate.  Ownership *is*
    allowed to change across map epochs: :meth:`install` publishes the next
    map after a completed slab migration, and every batch routes under
    exactly one epoch.
    """

    def __init__(
        self,
        nshards: int,
        *,
        nrows: int = 2 ** 32,
        ncols: int = 2 ** 32,
        partition: str = "hash",
    ):
        self.nshards = int(nshards)
        if self.nshards < 1:
            raise InvalidValue("nshards must be >= 1")
        if partition not in PARTITION_NAMES:
            raise InvalidValue(f"partition must be 'hash' or 'range', got {partition!r}")
        self.partition = partition
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.spec = coords.shape_split(self.nrows, self.ncols)
        # The occupied key space (nrows << col_bits) for packable range
        # partitions, the row space for unpackable ones, the full hashed
        # 2^64 for hash — see partition_keyspace for the rationale.
        self.keyspace = partition_keyspace(partition, self.spec, self.nrows)
        self._map = PartitionMap.uniform(self.nshards, self.keyspace)

    @property
    def map(self) -> PartitionMap:
        """The partition map currently routing batches."""
        return self._map

    @property
    def epoch(self) -> int:
        """Epoch of the installed map (0 until the first rebalance)."""
        return self._map.epoch

    def install(self, new_map: PartitionMap) -> None:
        """Publish the next map epoch (after a completed slab migration)."""
        if new_map.nshards != self.nshards or new_map.keyspace != self.keyspace:
            raise InvalidValue("partition map does not match this router's domain")
        if new_map.epoch <= self._map.epoch:
            raise InvalidValue(
                f"stale map epoch {new_map.epoch} (installed: {self._map.epoch})"
            )
        self._map = new_map

    def partition_keys(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        keys: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Partition key of each pair (the map's domain; shared with workers)."""
        return partition_keys(rows, cols, self.partition, self.spec, keys=keys)

    def shard_of(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Shard index of each coordinate pair (vectorised, int64)."""
        return self.route(rows, cols)[0]

    def route(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        *,
        with_keys: bool = False,
        keys: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Shard index of each pair, plus the packed keys when available.

        Returns ``(shard, keys)`` where ``keys`` is the packed ``uint64``
        coordinate key array under :attr:`spec` — the exact wire format of
        the shm transport, so callers that already routed a batch can ship
        it without packing a second time.  ``keys`` is ``None`` when the
        shape has no 64-bit split, or when it was neither requested
        (``with_keys``) nor needed for routing (single shard).

        Callers that already hold the packed keys (the gateway decodes them
        straight off its client wire) pass them in as ``keys`` — aligned
        with ``rows`` and packed under :attr:`spec` — and routing reuses
        them instead of packing a second time.  Supplied keys are ignored
        for shapes with no 64-bit split.
        """
        if keys is not None and self.spec is not None:
            keys = np.asarray(keys, dtype=np.uint64)
        elif self.spec is not None and (with_keys or self.nshards > 1):
            keys = coords.pack(rows, cols, self.spec)
        else:
            keys = None
        if self.nshards == 1:
            return np.zeros(rows.size, dtype=np.int64), keys
        pkeys = partition_keys(rows, cols, self.partition, self.spec, keys=keys)
        return self._map.owner_of(pkeys), keys


class ShardedIncrementalReductions:
    """Cross-shard view of the per-shard incremental reduction trackers.

    Presents the same query surface as
    :class:`~repro.core.reductions.IncrementalReductions` — ``row_traffic`` /
    ``col_traffic`` / ``row_fan`` / ``col_fan`` / ``total`` / ``nnz`` plus the
    ``supported`` / ``fan_supported`` flags — so the analytics layer treats a
    sharded matrix exactly like a flat one.  Each query issues one
    ``reduce_incremental`` (or ``stats``) command per shard and merges the
    partial vectors with a sparse ``plus``:

    * traffic vectors: a row's global sum is the sum of its per-shard sums;
    * fan vectors and ``nnz``: shards own pairwise-disjoint coordinate sets,
      so distinct-counterparty counts and entry counts add exactly;
    * ``total``: a plain scalar sum.

    Queries are served from the shards' running trackers and therefore never
    force a shard's deferred layer-1 flush or a materialize.
    """

    def __init__(self, owner: "ShardedHierarchicalMatrix"):
        self._owner = owner
        self._flags: Optional[Tuple[bool, bool]] = None
        self._stats_memo: Optional[Tuple[Tuple[int, int], List[dict]]] = None

    def _stats(self) -> List[dict]:
        # One stats round serves every scalar in a query burst: the reply is
        # memoised against the owner's routed-update counters, so e.g.
        # ``degree_summary`` (which reads nnz and total back to back) costs a
        # single cross-shard round until the next batch is routed.
        stamp = (self._owner._total_updates, self._owner._batches)
        if self._stats_memo is not None and self._stats_memo[0] == stamp:
            return self._stats_memo[1]
        stats = self._owner._request_all("stats")
        if self._flags is None:
            self._flags = (
                all(s["supported"] for s in stats),
                all(s["fan_supported"] for s in stats),
            )
        self._stats_memo = (stamp, stats)
        return stats

    def invalidate(self) -> None:
        """Drop the memoised per-shard stats.

        Called after a rebalance: migration moves entries between shards
        without routing new updates, so the memo stamp (routed-update
        counters) would not change while the per-shard snapshots did.
        """
        self._stats_memo = None

    def _support_flags(self) -> Tuple[bool, bool]:
        # Support is a pure function of the (uniform) shard configuration, so
        # one round of `stats` replies is cached for the view's lifetime (the
        # view itself lives as long as its owning matrix).
        if self._flags is None:
            self._stats()
        return self._flags

    @property
    def supported(self) -> bool:
        """True when every shard maintains the linear (traffic) reductions."""
        return self._support_flags()[0]

    @property
    def fan_supported(self) -> bool:
        """True when every shard also maintains fan/nnz (packable shape)."""
        return self._support_flags()[1]

    def _merge(self, kind: str, size: int) -> Vector:
        partials = self._owner._request_all("reduce_incremental", kind)
        out = Vector(self._owner._dtype, size)
        for part in partials:
            if part is None:
                raise InvalidValue(
                    f"shard declined incremental reduction {kind!r}; "
                    "check supported/fan_supported first"
                )
            indices, vals = part
            if indices.size:
                out.build(indices, vals, dup_op=binary.plus)
        return out

    def row_traffic(self) -> Vector:
        """Weighted out-degree merged across shards."""
        return self._merge("row_traffic", self._owner.nrows)

    def col_traffic(self) -> Vector:
        """Weighted in-degree merged across shards."""
        return self._merge("col_traffic", self._owner.ncols)

    def row_fan(self) -> Vector:
        """Fan-out merged across shards (disjoint ownership makes sums exact)."""
        return self._merge("row_fan", self._owner.nrows)

    def col_fan(self) -> Vector:
        """Fan-in merged across shards."""
        return self._merge("col_fan", self._owner.ncols)

    def total(self) -> float:
        """Global total traffic (sum of per-shard totals)."""
        stats = self._stats()
        if not self._flags[0]:
            raise InvalidValue(
                "incremental reductions unavailable (disabled or non-plus accumulator)"
            )
        return float(sum(s["total"] for s in stats))

    def nnz(self) -> int:
        """Exact global logical entry count (shards are disjoint, so a sum)."""
        stats = self._stats()
        if not self._flags[1]:
            raise InvalidValue(
                "incremental fan/nnz unavailable: shape does not pack into a "
                "64-bit coordinate key"
            )
        return int(sum(s["nnz"] for s in stats))


@dataclass(frozen=True)
class RebalanceReport:
    """Outcome of one completed live slab migration.

    Attributes
    ----------
    epoch:
        Map epoch *after* the migration (the epoch new batches route under).
    source, dest:
        Shard the slab left and the shard it now lives on.
    moved:
        Stored entries migrated.
    slab:
        The reassigned partition-key interval ``[lo, hi)``.
    loads_before:
        Per-shard load (by the policy's metric) when the migration was
        decided.
    imbalance_before:
        ``max(load) / mean(load)`` at decision time (1.0 is perfectly even).
    """

    epoch: int
    source: int
    dest: int
    moved: int
    slab: Tuple[int, int]
    loads_before: Tuple[float, ...]
    imbalance_before: float


class ShardedHierarchicalMatrix:
    """One logical hierarchical hypersparse matrix partitioned across K shards.

    Each shard is a private :class:`~repro.core.HierarchicalMatrix` owned by a
    long-lived worker (a separate process when ``use_processes=True``, an
    in-process state otherwise) fed batches over queues, so external streams —
    packet windows, session batches, replayed triple files — can be routed,
    ingested at streaming rates, and then queried globally.

    Parameters
    ----------
    nshards:
        Number of shards.
    nrows, ncols:
        Logical dimensions (default the IPv4 :math:`2^{32} \\times 2^{32}`
        traffic-matrix space).
    dtype:
        GraphBLAS value type of every shard.
    cuts:
        Hierarchical cut thresholds forwarded to every shard.
    accum:
        Combining operator (name or :class:`BinaryOp`; default ``plus``).
        Crosses the process boundary by registry name.
    partition:
        ``"hash"`` or ``"range"`` coordinate partitioning (see
        :class:`ShardRouter`).
    use_processes:
        Back shards with long-lived worker processes (streaming parallelism)
        instead of in-process shard states (zero IPC; the default, right for
        tests and single-core machines).
    transport:
        Wire between the router and process-backed shard workers:
        ``"queue"`` (default; pickled FIFO queues), ``"shm"``
        (shared-memory ring buffers carrying ingest batches as packed
        ``uint64`` keys + raw value bits — zero pickling on the hot path),
        or ``"socket"`` (TCP connections to
        :class:`~repro.distributed.node.NodeAgent` endpoints given by
        ``nodes``; same packed-key wire format as ``shm``, length-prefixed).
        ``shm`` falls back to ``queue`` for configurations the ring cannot
        carry bit-exactly (full 64-bit IPv6 shapes); read :attr:`transport`
        for the wire in force.  Ignored when ``use_processes=False``.
    ring_slots:
        Per-shard ring capacity for the ``shm`` transport (default
        :data:`~repro.distributed.ringbuf.DEFAULT_RING_SLOTS`).
    nodes:
        Agent endpoints for the ``socket`` transport — ``"host:port"``
        strings (or ``(host, port)`` pairs) of running ``repro-node``
        agents.  Worker slots are staggered so a shard's primary and its
        replicas land on different nodes whenever there are at least two.
    replicas:
        Replica workers per shard (default 0).  Ingest batches are mirrored
        to every replica before the primary's failure could even be
        observed, so a dead primary fails over with zero lost updates:
        queries retry transparently against the promoted replica under a
        bumped map epoch.  A shard whose primary *and* replicas are all
        dead raises :class:`~repro.distributed.worker.WorkerCrash` and
        leaves the epoch untouched.
    defer_ingest / track_stats / track_reductions:
        Forwarded to every shard's :class:`~repro.core.HierarchicalMatrix`;
        ``track_reductions`` (default True) maintains each shard's incremental
        reduction vectors, served globally through :attr:`incremental`.

    Examples
    --------
    >>> import numpy as np
    >>> S = ShardedHierarchicalMatrix(2, cuts=[100, 1000])
    >>> S.update([1, 2, 3], [4, 5, 6], 1.0)
    >>> S.update(1, 4, 2.0)
    >>> S.get(1, 4)
    3.0
    >>> S.materialize().nvals
    3
    """

    def __init__(
        self,
        nshards: int,
        nrows: int = 2 ** 32,
        ncols: int = 2 ** 32,
        dtype="fp64",
        *,
        cuts: Optional[Sequence[int]] = None,
        accum: Union[BinaryOp, str, None] = None,
        partition: str = "hash",
        use_processes: bool = False,
        transport: str = "queue",
        ring_slots: Optional[int] = None,
        nodes: Optional[Sequence] = None,
        replicas: int = 0,
        defer_ingest: bool = True,
        track_stats: bool = True,
        track_reductions: bool = True,
        name: str = "",
    ):
        self._router = ShardRouter(
            nshards, nrows=nrows, ncols=ncols, partition=partition
        )
        self._dtype: DataType = lookup_dtype(dtype)
        accum_name = accum if isinstance(accum, str) else (
            accum.name if accum is not None else None
        )
        self._accum = binary[accum_name] if accum_name is not None else binary.plus
        matrix_kwargs = {
            "nrows": int(nrows),
            "ncols": int(ncols),
            "dtype": self._dtype.name,
            "defer_ingest": bool(defer_ingest),
            "track_stats": bool(track_stats),
            "track_reductions": bool(track_reductions),
        }
        if cuts is not None:
            matrix_kwargs["cuts"] = [int(c) for c in cuts]
        if accum_name is not None:
            matrix_kwargs["accum"] = accum_name
        self._pool = ShardWorkerPool(
            nshards,
            matrix_kwargs=matrix_kwargs,
            use_processes=use_processes,
            transport=transport,
            ring_slots=ring_slots,
            nodes=list(nodes) if nodes is not None else None,
            replicas=replicas,
        )
        self._incremental = ShardedIncrementalReductions(self)
        self._total_updates = 0
        self._batches = 0
        self.name = name

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def nshards(self) -> int:
        """Number of shards K."""
        return self._router.nshards

    @property
    def nrows(self) -> int:
        """Number of rows of the logical matrix."""
        return self._router.nrows

    @property
    def ncols(self) -> int:
        """Number of columns of the logical matrix."""
        return self._router.ncols

    @property
    def shape(self) -> Tuple[int, int]:
        """``(nrows, ncols)``."""
        return (self._router.nrows, self._router.ncols)

    @property
    def dtype(self) -> DataType:
        """Value type of every shard."""
        return self._dtype

    @property
    def accum(self) -> BinaryOp:
        """The combining operator every shard applies to duplicate coordinates."""
        return self._accum

    @property
    def partition(self) -> str:
        """Partitioning strategy in force (``"hash"`` or ``"range"``)."""
        return self._router.partition

    @property
    def transport(self) -> str:
        """Worker wire in force: ``"inproc"``, ``"queue"``, ``"shm"``, or
        ``"socket"``.

        ``"inproc"`` when ``use_processes=False``; otherwise the transport
        actually running — which is ``"queue"`` even under ``transport="shm"``
        when the configuration is not 64-bit-packable (the IPv6 fallback).
        """
        return self._pool.transport_name

    @property
    def replicas(self) -> int:
        """Replica workers mirroring each shard (0 = no replication)."""
        return self._pool.replicas

    @property
    def router(self) -> ShardRouter:
        """The coordinate router (deterministic per shape/partition/epoch)."""
        return self._router

    @property
    def partition_map(self) -> PartitionMap:
        """The epoch-versioned partition map currently routing batches."""
        return self._router.map

    @property
    def map_epoch(self) -> int:
        """Partition-map epoch (0 until the first completed rebalance)."""
        return self._router.epoch

    @property
    def total_updates(self) -> int:
        """Element updates routed so far."""
        return self._total_updates

    @property
    def batches_ingested(self) -> int:
        """Stream batches routed so far."""
        return self._batches

    @property
    def nvals(self) -> int:
        """Exact number of logical entries.

        Served from the incremental trackers when available (no materialize,
        no flush); otherwise falls back to materialising across shards.
        """
        inc = self.incremental
        if inc.fan_supported:
            return inc.nnz()
        return self.materialize().nvals

    @property
    def incremental(self) -> ShardedIncrementalReductions:
        """Cross-shard view of the incrementally maintained reductions.

        Check :attr:`ShardedIncrementalReductions.supported` (and
        ``fan_supported`` for fan/nnz) before querying; the analytics layer
        does so automatically and falls back to materialize-based reductions.
        The view is cached — its support flags are fetched from the workers
        once, since they are a pure function of the shard configuration.
        """
        return self._incremental

    # ------------------------------------------------------------------ #
    # failover-aware dispatch (PR 7)
    # ------------------------------------------------------------------ #

    def _failover(self, shard: int) -> None:
        """Promote ``shard``'s replica and publish the next map epoch.

        The promotion changes no interval ownership — the shard index keeps
        its slabs, only the worker slot behind it changes — so the new map is
        :meth:`PartitionMap.advance`: identical intervals, ``epoch + 1``.
        The bump is the externally observable failover fence (batches and
        queries after it run against the promoted replica).  Raises
        :class:`WorkerCrash` without touching the epoch when no live replica
        exists.
        """
        self._pool.promote(shard)
        self._router.install(self._router.map.advance())
        self._incremental.invalidate()

    def _request(self, shard: int, cmd: str, payload=None, *, mirrored=False):
        """One reply-bearing command with crash failover.

        A plain :class:`WorkerCrash` means the command itself raised — the
        worker keeps serving, so the error propagates unchanged (the
        pre-replication contract).  :class:`WorkerDied` — the transports'
        own death signal, raised only from liveness polls, ring closure, or
        stream EOF, so it cannot be confused with a surviving worker's error
        (and unlike an after-the-fact pid poll it cannot race with the
        process still tearing down) — triggers :meth:`_failover` and one
        retry against the promoted replica.  ``mirrored=True`` routes
        state-mutating commands through
        :meth:`ShardWorkerPool.request_mirrored`; after a failover those are
        *not* resent — the promoted replica already executed the command
        through its mirror leg, so a resend would apply it twice — and
        ``None`` is returned (mirrored callers ignore results).
        """
        send = self._pool.request_mirrored if mirrored else self._pool.request
        try:
            return send(shard, cmd, payload)
        except WorkerDied:
            self._failover(shard)
            if mirrored:
                return None
            return self._pool.request(shard, cmd, payload)

    def _request_all(self, cmd: str, payload=None, *, mirrored=False):
        """``cmd`` to every shard with per-shard crash failover.

        The non-mirrored path keeps the pool's pipelining (submit everywhere,
        then collect in order); a shard whose primary died mid-round fails
        over and re-runs just its own command.  Mirrored rounds (``clear``)
        are sequential — they are never on the hot path.
        """
        if mirrored:
            return [
                self._request(s, cmd, payload, mirrored=True)
                for s in range(self.nshards)
            ]
        for s in range(self.nshards):
            self._pool.submit(s, cmd, payload)
        results = []
        for s in range(self.nshards):
            try:
                results.append(self._pool.collect(s))
            except WorkerDied:
                self._failover(s)
                results.append(self._pool.request(s, cmd, payload))
        return results

    def missing_replicas(self) -> int:
        """Retired replica slots across all shards (0 = full failure budget).

        A slot is retired when its worker died (a failed mirror send, a
        promoted-away primary, a killed node) and stays retired until
        :meth:`resync_replica` restores it.  The rejoin supervisor
        (:class:`~repro.service.AutoRejoiner`) polls this as its cheap
        no-work check.
        """
        return sum(self._pool.missing_replicas(s) for s in range(self.nshards))

    def resync_replica(self, shard: int) -> Optional[int]:
        """Respawn and catch up one retired slot of ``shard``.

        Returns the slot re-registered as a replica, or ``None`` when the
        shard already has its full mirror set.  Raises when the retired
        slot cannot be respawned (its agent is still down) or the restore
        failed — callers that retry on a schedule catch this and back off.
        """
        return self._pool.resync_replica(shard)

    def resync_replicas(self) -> int:
        """Respawn and catch up every retired replica slot; returns how many.

        Each resynchronised slot restores its primary's ``checkpoint`` bytes
        over the reply channel (:func:`repro.core.checkpoint.checkpoint_bytes`
        — no shared filesystem) before rejoining the mirror set, restoring
        the failure budget after a failover.
        """
        count = 0
        for s in range(self.nshards):
            while self._pool.resync_replica(s) is not None:
                count += 1
        return count

    # ------------------------------------------------------------------ #
    # streaming updates
    # ------------------------------------------------------------------ #

    def update(self, rows, cols, values=1, *, keys=None) -> "ShardedHierarchicalMatrix":
        """Route one batch of triples to its owning shards.

        ``values`` may be an array (one per coordinate) or a scalar broadcast
        over the batch; scalar row/col coordinates are accepted like
        :meth:`HierarchicalMatrix.update`.  Out-of-range coordinates raise
        immediately (they have no owning shard).  Shard-local update time is
        accumulated worker-side; see :meth:`finalize` / :meth:`reports`.  On
        the shm transport the router's packed keys are handed straight to
        the wire, so each batch is packed exactly once.  ``keys`` may carry
        the batch's coordinates already packed under the router's split
        (aligned with ``rows``) — the gateway passes the keys it decoded off
        its client wire, making the whole gateway path one pack per update.
        """
        r = K.as_index_array(rows, "rows")
        c = K.as_index_array(cols, "cols")
        if r.size != c.size:
            raise DimensionMismatch(
                f"row and column index arrays differ in length ({r.size} vs {c.size})"
            )
        if r.size == 0:
            return self
        if int(r.max()) >= self.nrows or int(c.max()) >= self.ncols:
            raise InvalidIndex(
                f"coordinate batch exceeds the {self.nrows}x{self.ncols} shape"
            )
        scalar = np.isscalar(values) or (
            isinstance(values, np.ndarray) and values.ndim == 0
        )
        v = None if scalar else np.asarray(values)
        if v is not None and v.size != r.size:
            raise DimensionMismatch(
                f"values length {v.size} does not match index length {r.size}"
            )
        if keys is not None:
            keys = np.asarray(keys, dtype=np.uint64)
            if keys.size != r.size:
                raise DimensionMismatch(
                    f"keys length {keys.size} does not match index length {r.size}"
                )
        with_keys = self._pool.transport_name in ("shm", "socket")
        shard, keys = self._router.route(r, c, with_keys=with_keys, keys=keys)
        for s in range(self.nshards):
            mask = shard == s
            if not mask.any():
                continue
            sub_values = values if v is None else v[mask]
            try:
                self._pool.submit_ingest(
                    s,
                    r[mask],
                    c[mask],
                    sub_values,
                    keys=keys[mask] if (with_keys and keys is not None) else None,
                )
            except WorkerDied:
                # A dead primary's batch is NOT resent: submit_ingest
                # mirrors to every replica before re-raising the primary's
                # failure, so the promoted replica already holds it (this is
                # the zero-lost-updates invariant).  A live primary raising
                # (e.g. a coordinate rejection) propagates unchanged.
                self._failover(s)
        self._total_updates += int(r.size)
        self._batches += 1
        return self

    def ingest(self, batches, *, max_batches: Optional[int] = None) -> int:
        """Route an entire stream; returns the number of updates ingested.

        ``batches`` may yield :class:`~repro.workloads.powerlaw.EdgeBatch`,
        :class:`~repro.workloads.traffic.PacketBatch`, or plain
        ``(rows, cols[, values])`` tuples — the same protocol as
        :meth:`IngestSession.run <repro.workloads.stream.IngestSession.run>`.
        """
        before = self._total_updates
        count = 0
        for batch in batches:
            if max_batches is not None and count >= max_batches:
                break
            rows, cols, values = normalize_batch(batch)
            self.update(rows, cols, values)
            count += 1
        return self._total_updates - before

    def finalize(self) -> List[dict]:
        """Barrier: drain every shard's queue and force its deferred flush.

        The flush happens inside each worker's timed section, so per-shard
        ``elapsed_seconds`` afterwards reflect the full ingest cost.  Returns
        one ``{"total_updates", "elapsed_seconds"}`` dict per shard.
        """
        return self._request_all("finalize")

    # ------------------------------------------------------------------ #
    # live rebalancing (PR 5)
    # ------------------------------------------------------------------ #

    def shard_loads(self, by: str = "nnz") -> List[float]:
        """Per-shard load under one metric (served without materialising).

        ``by="nnz"`` reads each shard's exact stored-entry count from its
        incremental tracker; ``by="traffic"`` reads the total observed update
        weight.  When the tracker cannot serve the metric (non-``plus``
        accumulators, unpackable shapes) both fall back to the per-shard
        materialised entry count — *not* the routed-update counters, which
        migration never transfers and which would therefore keep reporting a
        drained shard as loaded.
        """
        return self._shard_loads_with_units(by)[0]

    def _shard_loads_with_units(self, by: str) -> Tuple[List[float], str]:
        """Loads plus the metric actually measured (``"nnz"`` after a
        traffic fallback), so the migration cut weighs entries in the same
        units the loads were."""
        if by not in ("nnz", "traffic"):
            raise InvalidValue(f"load metric must be 'nnz' or 'traffic', got {by!r}")
        stats = self._request_all("stats")
        if by == "traffic" and all(s["supported"] for s in stats):
            return [float(s["total"]) for s in stats], "traffic"
        if by == "nnz" and all(s["fan_supported"] for s in stats):
            return [float(s["nnz"]) for s in stats], "nnz"
        return (
            [float(r.final_nvals) for r in self._request_all("report")],
            "nnz",
        )

    @staticmethod
    def _imbalance(loads: Sequence[float]) -> float:
        total = float(sum(loads))
        if total <= 0.0:
            return 1.0
        return max(loads) / (total / len(loads))

    def imbalance(self, by: str = "nnz") -> float:
        """``max(load) / mean(load)`` across shards (1.0 is perfectly even)."""
        return self._imbalance(self.shard_loads(by))

    def ingest_pressure(self) -> float:
        """Worst ingest-wire fill fraction across worker slots (0..1).

        Surfaces the transport watermarks (ring occupancy, task-queue depth,
        kernel send-queue bytes) so the service layer can derive admission
        control from real wire state instead of guessing.  0.0 when the wire
        has no signal or the shards are in-process.
        """
        return self._pool.ingest_pressure()

    def rebalance(
        self,
        source: Optional[int] = None,
        dest: Optional[int] = None,
        *,
        by: str = "nnz",
        fraction: float = 0.5,
        threshold: Optional[float] = None,
    ) -> Optional[RebalanceReport]:
        """Migrate one slab from an overloaded to an underloaded live shard.

        Without arguments this is the auto-policy: measure per-shard loads
        from the PR-3 incremental trackers (metric ``by``), pick the most
        loaded shard as ``source`` and the least loaded as ``dest``, and move
        a slab containing roughly ``fraction`` of their load difference.
        Pass ``threshold`` to make the call a no-op (returning ``None``)
        while ``imbalance() <= threshold``; pass explicit ``source``/``dest``
        for manual placement.  Repeated calls converge: each migration moves
        half the remaining max-min gap.

        The stream never stops.  The protocol rides the transport barrier
        ordering (PR 4), so in-flight batches routed under the old epoch land
        before the slab is cut:

        1. ``extract_slab`` on the source — a reply-bearing barrier command
           that *copies* the chosen slab (packed keys + raw value bits) out
           of the source's matrix without removing anything;
        2. ``install_slab`` on the destination — applies the slab and lets
           the destination's incremental tracker observe it (for the one
           tracker-supported accumulator, ``plus``, a slab's tracker state
           is exactly its combined triples, so shipping the triples ships
           the tracker split);
        3. ``discard_slab`` on the source — removes the slab and rebuilds
           the source tracker from the retained triples;
        4. only then is the new map epoch published parent-side, so every
           subsequent batch routes to the new owner.

        With ``replicas > 0`` *every* step is mirrored to the touched
        shard's replica legs (the commands are reply-bearing, so each leg's
        barrier fences its in-flight mirrored ingest too): the source's
        replicas execute the extract (a pure copy — its only mirror-side
        effect is the barrier) and the discard, the destination's replicas
        execute the install, so the migration leaves every replica
        bit-identical to its primary with no post-hoc resync.  A failover
        landing at any point therefore promotes a replica that already
        reflects exactly the migration steps its primary completed.

        A crash at any step leaves the previous epoch in force with no
        coordinate orphaned or double-owned on any leg: before step 3 the
        source still holds the authoritative copy (a failed install is
        compensated by discarding the copy from the destination *and its
        mirrors*), and after step 3 the destination does.
        :class:`WorkerCrash` propagates to the caller.  After the epoch is
        published the touched shards' failure budgets are re-checked: a
        replica retired along the way is resynchronised in place, and a
        budget that cannot be restored raises :class:`WorkerCrash` loudly
        instead of leaving the shard silently under-replicated.

        Returns a :class:`RebalanceReport`, or ``None`` when there is
        nothing to do (single shard, imbalance under ``threshold``, or an
        empty source).
        """
        if self.nshards < 2:
            return None
        if not 0.0 < float(fraction) <= 1.0:
            raise InvalidValue(f"fraction must be in (0, 1], got {fraction}")
        loads, units = self._shard_loads_with_units(by)
        imbalance = self._imbalance(loads)
        if threshold is not None and imbalance <= float(threshold):
            return None
        if source is None:
            source = int(np.argmax(loads))
        source = int(source)
        if dest is None:
            dest = min(
                (load, s) for s, load in enumerate(loads) if s != source
            )[1]
        dest = int(dest)
        if source == dest:
            raise InvalidValue("rebalance source and dest must differ")
        if not (0 <= source < self.nshards and 0 <= dest < self.nshards):
            raise InvalidIndex(f"shard index out of range for {self.nshards} shards")
        # The target is expressed in the policy metric's own units (entries
        # for "nnz", summed |value| for "traffic") and the worker cuts the
        # slab by the same weight, so a weighted stream moves ~fraction of
        # the load gap rather than a mistranslated entry count.
        target = (loads[source] - loads[dest]) * float(fraction)
        if target <= 0:
            return None
        intervals = self._router.map.shard_intervals(source)
        if not intervals:
            return None
        extract = {
            "partition": self.partition,
            "intervals": intervals,
            "target": target,
            "weight": "value" if units == "traffic" else "count",
        }
        # Mirrored: the extract is a pure copy, so its replica legs change no
        # state — but as a reply-bearing barrier it pins every mirror to the
        # same stream position before any migration mutation, and it retires
        # unhealthy replicas *before* install/discard could diverge them.
        reply = self._request(source, "extract_slab", extract, mirrored=True)
        while reply is None:
            # The source failed over mid-extract.  Mirrored commands are
            # never resent through the same call (a promoted replica already
            # ran its mirror leg), but the extract's reply carried the slab —
            # re-requesting it is safe because the copy is idempotent and the
            # promoted replica holds identical logical content (same batches,
            # same mirrored mutations), hence the identical deterministic
            # cut.  Each retry consumes a replica; promote() raises
            # WorkerCrash when the budget is exhausted, bounding the loop.
            reply = self._request(source, "extract_slab", extract, mirrored=True)
        if reply["count"] == 0:
            return None
        lo, hi = reply["lo"], reply["hi"]
        discard = {"partition": self.partition, "lo": lo, "hi": hi}
        try:
            self._request(dest, "install_slab", reply["slab"], mirrored=True)
        except Exception:
            # The source still holds the authoritative copy; best-effort
            # removal of whatever the destination applied keeps the old
            # epoch exact if the destination survived its error.  (Process
            # wires surface failures as WorkerCrash; the in-process pool
            # re-raises the worker exception directly.)
            self._discard_quietly(dest, discard)
            raise
        try:
            self._request(source, "discard_slab", discard, mirrored=True)
        except Exception:
            # Undo the install so the old epoch stays the single-owner map.
            self._discard_quietly(dest, discard)
            raise
        self._router.install(self._router.map.assign(lo, hi, dest))
        self._incremental.invalidate()
        if self._pool.replicas:
            self._ensure_replica_budget((source, dest))
        return RebalanceReport(
            epoch=self.map_epoch,
            source=source,
            dest=dest,
            moved=int(reply["count"]),
            slab=(int(lo), int(hi)),
            loads_before=tuple(loads),
            imbalance_before=imbalance,
        )

    def _ensure_replica_budget(self, shards) -> None:
        """Restore (or loudly fail on) any replica retired around a migration.

        A replica that failed a mirrored migration leg is retired so it can
        never be promoted with divergent state — but leaving it retired
        *silently* would hand the next failover a reduced budget nobody
        asked for.  Each touched shard is resynchronised in place
        (checkpoint/restore over the reply channel); if the budget cannot
        be restored — the slot's agent is still down — the migration
        surfaces it as :class:`WorkerCrash` rather than returning success
        over an under-replicated shard.  The published epoch stays valid
        either way: the migration itself completed on every surviving leg.
        """
        for s in dict.fromkeys(int(x) for x in shards):
            try:
                while self._pool.resync_replica(s) is not None:
                    pass
            except WorkerCrash:
                raise
            except Exception as exc:
                raise WorkerCrash(
                    f"shard {s} is under-replicated after a migration and "
                    f"resync failed: {exc}"
                ) from exc

    def _discard_quietly(self, shard: int, discard: dict) -> None:
        """Best-effort compensation; the shard may already be dead.

        Mirrored so the shard's replicas drop the slab too — an install that
        reached the replica legs before the primary failed must not leave
        the mirrors holding entries the authoritative copy never kept.
        """
        with contextlib.suppress(Exception):
            self._pool.request_mirrored(shard, "discard_slab", discard)

    # ------------------------------------------------------------------ #
    # global queries
    # ------------------------------------------------------------------ #

    def materialize(self) -> Matrix:
        """Merge every shard into one hypersparse matrix.

        Shards own pairwise-disjoint coordinate sets, so the merge never
        combines values across shards and the result is exactly the matrix a
        single flat :class:`~repro.core.HierarchicalMatrix` would produce from
        the same stream.
        """
        triples = self._request_all("materialize")
        rows = np.concatenate([t[0] for t in triples])
        cols = np.concatenate([t[1] for t in triples])
        vals = np.concatenate([t[2] for t in triples])
        out = Matrix(self._dtype, self.nrows, self.ncols, name=f"{self.name}merged")
        if rows.size:
            out.build(
                rows,
                cols,
                vals.astype(self._dtype.np_type, copy=False),
                dup_op=self._accum,
            )
        return out

    def get(self, row: int, col: int, default=None):
        """Read one logical element from the shard that owns it."""
        r = K.as_index_array([row], "row")
        c = K.as_index_array([col], "col")
        shard = int(self._router.shard_of(r, c)[0])
        value = self._request(shard, "get", (int(row), int(col)))
        return default if value is None else value

    def __getitem__(self, key):
        if isinstance(key, tuple) and len(key) == 2:
            return self.get(int(key[0]), int(key[1]))
        raise TypeError("ShardedHierarchicalMatrix indexing requires a (row, col) pair")

    def __contains__(self, key) -> bool:
        return self.get(int(key[0]), int(key[1])) is not None

    def _reduce(self, axis: str, op) -> Vector:
        op_name = op if isinstance(op, str) else getattr(op, "name", "plus")
        partials = self._request_all("reduce", (axis, op_name))
        from ..graphblas.monoid import monoid

        dup_op = monoid[op_name].op
        size = self.nrows if axis == "row" else self.ncols
        out = Vector(self._dtype, size)
        for indices, vals in partials:
            if indices.size:
                out.build(indices, vals, dup_op=dup_op)
        return out

    def reduce_rowwise(self, op="plus") -> Vector:
        """Row reduction merged across shards (monoid ``op``, default plus).

        Each shard reduces the rows it stores; the partial vectors are merged
        with the same monoid.  Hash partitioning spreads one row over many
        shards, so cross-shard merging is what makes the result global.
        """
        return self._reduce("row", op)

    def reduce_columnwise(self, op="plus") -> Vector:
        """Column reduction merged across shards (monoid ``op``, default plus)."""
        return self._reduce("col", op)

    # ------------------------------------------------------------------ #
    # measurement and lifecycle
    # ------------------------------------------------------------------ #

    def reports(self) -> List[WorkerReport]:
        """Per-shard measurement snapshots (updates, timed seconds, rate)."""
        return self._request_all("report")

    @property
    def aggregate_rate_sum(self) -> float:
        """Sum of per-shard measured rates — the paper's aggregation."""
        return float(sum(r.updates_per_second for r in self.reports()))

    def clear(self) -> "ShardedHierarchicalMatrix":
        """Empty every shard and reset the routed-update counters."""
        self._request_all("clear", mirrored=True)
        self._total_updates = 0
        self._batches = 0
        return self

    def close(self) -> None:
        """Shut the worker pool down; the matrix is unusable afterwards."""
        self._pool.close()

    def __enter__(self) -> "ShardedHierarchicalMatrix":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<ShardedHierarchicalMatrix{label} {self.nrows}x{self.ncols} "
            f"{self._dtype.name}, shards={self.nshards}, "
            f"partition={self.partition!r}, updates={self._total_updates}>"
        )
