"""Sharded hierarchical hypersparse matrices over the persistent worker pool.

The paper's headline 75B updates/s is a *sum over many independent
hierarchical-matrix instances*; this module turns that sum into one logical
matrix.  A :class:`ShardedHierarchicalMatrix` partitions the coordinate space
across K shards, each shard owning a private
:class:`~repro.core.HierarchicalMatrix` with deferred layer-1 ingest, and
routes every externally supplied stream batch to the shards that own its
coordinates.  Because routing is a pure function of ``(row, col)``, every
update for a given coordinate lands on the same shard *in stream order*, the
shards' stored coordinate sets are pairwise disjoint, and the globally merged
result is exactly the matrix a single flat hierarchy would have produced from
the same stream (bit-identical for any exactly representable values, e.g. the
packet/byte counts of the traffic workload — property-tested in
``tests/distributed/test_sharded.py`` across shard counts and both coordinate
engines).

Routing reuses the PR-1 packed-coordinate codec: whenever the logical shape
fits a 64-bit split (:func:`repro.graphblas.coords.shape_split` — always true
for the IPv4 :math:`2^{32} \\times 2^{32}` traffic matrices), the shard key is
the packed ``uint64`` ``(row << col_bits) | col``; hash partitioning mixes it
through splitmix64, range partitioning divides the occupied key space into K
contiguous slabs (preserving locality for range analytics).  Full 64-bit IPv6
shapes fall back to hashing the raw coordinates / range-partitioning rows.
"""

from __future__ import annotations

import numpy as np

from typing import List, Optional, Sequence, Tuple, Union

from ..graphblas import Matrix, Vector, coords
from ..graphblas import _kernels as K
from ..graphblas.binaryop import BinaryOp, binary
from ..graphblas.errors import DimensionMismatch, InvalidValue
from ..graphblas.types import DataType, lookup_dtype
from ..workloads.powerlaw import _splitmix64
from ..workloads.stream import normalize_batch
from .pool import ShardWorkerPool, WorkerReport

__all__ = ["ShardRouter", "ShardedHierarchicalMatrix"]

_KEY_BITS = 64


class ShardRouter:
    """Deterministic ``(row, col) -> shard`` routing over the packed-key codec.

    Parameters
    ----------
    nshards:
        Number of shards K.
    nrows, ncols:
        Logical shape of the sharded matrix; fixes the bit split once so every
        batch routes identically.
    partition:
        ``"hash"`` (splitmix64 of the packed key, load-balancing) or
        ``"range"`` (contiguous slabs of the packed key space, locality
        preserving).

    Notes
    -----
    The split comes from :func:`repro.graphblas.coords.shape_split`, which
    ignores the global packing toggle — disabling the packed kernels for
    benchmarking never changes which shard owns a coordinate.
    """

    def __init__(
        self,
        nshards: int,
        *,
        nrows: int = 2 ** 32,
        ncols: int = 2 ** 32,
        partition: str = "hash",
    ):
        self.nshards = int(nshards)
        if self.nshards < 1:
            raise InvalidValue("nshards must be >= 1")
        if partition not in ("hash", "range"):
            raise InvalidValue(f"partition must be 'hash' or 'range', got {partition!r}")
        self.partition = partition
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.spec = coords.shape_split(self.nrows, self.ncols)
        if partition == "range":
            if self.spec is not None:
                # Divide the *occupied* key space (nrows << col_bits), not the
                # full 2^64, so small shapes still balance across shards.
                keyspace = self.nrows << self.spec.col_bits
            else:
                # Unpackable shapes slab the occupied row space [0, nrows);
                # dividing the full 2^64 here would route every row of e.g. a
                # 2^33 x 2^33 shape to shard 0.
                keyspace = self.nrows
            self._chunk = -(-keyspace // self.nshards)  # ceil division
        else:
            self._chunk = 0

    def shard_of(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Shard index of each coordinate pair (vectorised, int64)."""
        if self.nshards == 1:
            return np.zeros(rows.size, dtype=np.int64)
        if self.spec is not None:
            keys = coords.pack(rows, cols, self.spec)
        else:
            keys = None
        if self.partition == "hash":
            if keys is None:
                with np.errstate(over="ignore"):
                    keys = rows + _splitmix64(cols)
            return (_splitmix64(keys) % np.uint64(self.nshards)).astype(np.int64)
        slab_key = keys if keys is not None else rows
        shard = (slab_key // np.uint64(self._chunk)).astype(np.int64)
        return np.minimum(shard, self.nshards - 1)


class ShardedHierarchicalMatrix:
    """One logical hierarchical hypersparse matrix partitioned across K shards.

    Each shard is a private :class:`~repro.core.HierarchicalMatrix` owned by a
    long-lived worker (a separate process when ``use_processes=True``, an
    in-process state otherwise) fed batches over queues, so external streams —
    packet windows, session batches, replayed triple files — can be routed,
    ingested at streaming rates, and then queried globally.

    Parameters
    ----------
    nshards:
        Number of shards.
    nrows, ncols:
        Logical dimensions (default the IPv4 :math:`2^{32} \\times 2^{32}`
        traffic-matrix space).
    dtype:
        GraphBLAS value type of every shard.
    cuts:
        Hierarchical cut thresholds forwarded to every shard.
    accum:
        Combining operator (name or :class:`BinaryOp`; default ``plus``).
        Crosses the process boundary by registry name.
    partition:
        ``"hash"`` or ``"range"`` coordinate partitioning (see
        :class:`ShardRouter`).
    use_processes:
        Back shards with long-lived worker processes (streaming parallelism)
        instead of in-process shard states (zero IPC; the default, right for
        tests and single-core machines).
    defer_ingest / track_stats:
        Forwarded to every shard's :class:`~repro.core.HierarchicalMatrix`.

    Examples
    --------
    >>> import numpy as np
    >>> S = ShardedHierarchicalMatrix(2, cuts=[100, 1000])
    >>> S.update([1, 2, 3], [4, 5, 6], 1.0)
    >>> S.update(1, 4, 2.0)
    >>> S.get(1, 4)
    3.0
    >>> S.materialize().nvals
    3
    """

    def __init__(
        self,
        nshards: int,
        nrows: int = 2 ** 32,
        ncols: int = 2 ** 32,
        dtype="fp64",
        *,
        cuts: Optional[Sequence[int]] = None,
        accum: Union[BinaryOp, str, None] = None,
        partition: str = "hash",
        use_processes: bool = False,
        defer_ingest: bool = True,
        track_stats: bool = True,
        name: str = "",
    ):
        self._router = ShardRouter(
            nshards, nrows=nrows, ncols=ncols, partition=partition
        )
        self._dtype: DataType = lookup_dtype(dtype)
        accum_name = accum if isinstance(accum, str) else (
            accum.name if accum is not None else None
        )
        self._accum = binary[accum_name] if accum_name is not None else binary.plus
        matrix_kwargs = {
            "nrows": int(nrows),
            "ncols": int(ncols),
            "dtype": self._dtype.name,
            "defer_ingest": bool(defer_ingest),
            "track_stats": bool(track_stats),
        }
        if cuts is not None:
            matrix_kwargs["cuts"] = [int(c) for c in cuts]
        if accum_name is not None:
            matrix_kwargs["accum"] = accum_name
        self._pool = ShardWorkerPool(
            nshards, matrix_kwargs=matrix_kwargs, use_processes=use_processes
        )
        self._total_updates = 0
        self._batches = 0
        self.name = name

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def nshards(self) -> int:
        """Number of shards K."""
        return self._router.nshards

    @property
    def nrows(self) -> int:
        """Number of rows of the logical matrix."""
        return self._router.nrows

    @property
    def ncols(self) -> int:
        """Number of columns of the logical matrix."""
        return self._router.ncols

    @property
    def shape(self) -> Tuple[int, int]:
        """``(nrows, ncols)``."""
        return (self._router.nrows, self._router.ncols)

    @property
    def dtype(self) -> DataType:
        """Value type of every shard."""
        return self._dtype

    @property
    def partition(self) -> str:
        """Partitioning strategy in force (``"hash"`` or ``"range"``)."""
        return self._router.partition

    @property
    def router(self) -> ShardRouter:
        """The coordinate router (deterministic per shape/partition)."""
        return self._router

    @property
    def total_updates(self) -> int:
        """Element updates routed so far."""
        return self._total_updates

    @property
    def batches_ingested(self) -> int:
        """Stream batches routed so far."""
        return self._batches

    @property
    def nvals(self) -> int:
        """Exact number of logical entries (materialises across shards)."""
        return self.materialize().nvals

    # ------------------------------------------------------------------ #
    # streaming updates
    # ------------------------------------------------------------------ #

    def update(self, rows, cols, values=1) -> "ShardedHierarchicalMatrix":
        """Route one batch of triples to its owning shards.

        ``values`` may be an array (one per coordinate) or a scalar broadcast
        over the batch; scalar row/col coordinates are accepted like
        :meth:`HierarchicalMatrix.update`.  Shard-local update time is
        accumulated worker-side; see :meth:`finalize` / :meth:`reports`.
        """
        r = K.as_index_array(rows, "rows")
        c = K.as_index_array(cols, "cols")
        if r.size != c.size:
            raise DimensionMismatch(
                f"row and column index arrays differ in length ({r.size} vs {c.size})"
            )
        if r.size == 0:
            return self
        scalar = np.isscalar(values) or (
            isinstance(values, np.ndarray) and values.ndim == 0
        )
        v = None if scalar else np.asarray(values)
        if v is not None and v.size != r.size:
            raise DimensionMismatch(
                f"values length {v.size} does not match index length {r.size}"
            )
        shard = self._router.shard_of(r, c)
        for s in range(self.nshards):
            mask = shard == s
            if not mask.any():
                continue
            sub_values = values if v is None else v[mask]
            self._pool.submit(s, "ingest", (r[mask], c[mask], sub_values))
        self._total_updates += int(r.size)
        self._batches += 1
        return self

    def ingest(self, batches, *, max_batches: Optional[int] = None) -> int:
        """Route an entire stream; returns the number of updates ingested.

        ``batches`` may yield :class:`~repro.workloads.powerlaw.EdgeBatch`,
        :class:`~repro.workloads.traffic.PacketBatch`, or plain
        ``(rows, cols[, values])`` tuples — the same protocol as
        :meth:`IngestSession.run <repro.workloads.stream.IngestSession.run>`.
        """
        before = self._total_updates
        count = 0
        for batch in batches:
            if max_batches is not None and count >= max_batches:
                break
            rows, cols, values = normalize_batch(batch)
            self.update(rows, cols, values)
            count += 1
        return self._total_updates - before

    def finalize(self) -> List[dict]:
        """Barrier: drain every shard's queue and force its deferred flush.

        The flush happens inside each worker's timed section, so per-shard
        ``elapsed_seconds`` afterwards reflect the full ingest cost.  Returns
        one ``{"total_updates", "elapsed_seconds"}`` dict per shard.
        """
        return self._pool.request_all("finalize")

    # ------------------------------------------------------------------ #
    # global queries
    # ------------------------------------------------------------------ #

    def materialize(self) -> Matrix:
        """Merge every shard into one hypersparse matrix.

        Shards own pairwise-disjoint coordinate sets, so the merge never
        combines values across shards and the result is exactly the matrix a
        single flat :class:`~repro.core.HierarchicalMatrix` would produce from
        the same stream.
        """
        triples = self._pool.request_all("materialize")
        rows = np.concatenate([t[0] for t in triples])
        cols = np.concatenate([t[1] for t in triples])
        vals = np.concatenate([t[2] for t in triples])
        out = Matrix(self._dtype, self.nrows, self.ncols, name=f"{self.name}merged")
        if rows.size:
            out.build(
                rows,
                cols,
                vals.astype(self._dtype.np_type, copy=False),
                dup_op=self._accum,
            )
        return out

    def get(self, row: int, col: int, default=None):
        """Read one logical element from the shard that owns it."""
        r = K.as_index_array([row], "row")
        c = K.as_index_array([col], "col")
        shard = int(self._router.shard_of(r, c)[0])
        value = self._pool.request(shard, "get", (int(row), int(col)))
        return default if value is None else value

    def __getitem__(self, key):
        if isinstance(key, tuple) and len(key) == 2:
            return self.get(int(key[0]), int(key[1]))
        raise TypeError("ShardedHierarchicalMatrix indexing requires a (row, col) pair")

    def __contains__(self, key) -> bool:
        return self.get(int(key[0]), int(key[1])) is not None

    def _reduce(self, axis: str, op) -> Vector:
        op_name = op if isinstance(op, str) else getattr(op, "name", "plus")
        partials = self._pool.request_all("reduce", (axis, op_name))
        from ..graphblas.monoid import monoid

        dup_op = monoid[op_name].op
        size = self.nrows if axis == "row" else self.ncols
        out = Vector(self._dtype, size)
        for indices, vals in partials:
            if indices.size:
                out.build(indices, vals, dup_op=dup_op)
        return out

    def reduce_rowwise(self, op="plus") -> Vector:
        """Row reduction merged across shards (monoid ``op``, default plus).

        Each shard reduces the rows it stores; the partial vectors are merged
        with the same monoid.  Hash partitioning spreads one row over many
        shards, so cross-shard merging is what makes the result global.
        """
        return self._reduce("row", op)

    def reduce_columnwise(self, op="plus") -> Vector:
        """Column reduction merged across shards (monoid ``op``, default plus)."""
        return self._reduce("col", op)

    # ------------------------------------------------------------------ #
    # measurement and lifecycle
    # ------------------------------------------------------------------ #

    def reports(self) -> List[WorkerReport]:
        """Per-shard measurement snapshots (updates, timed seconds, rate)."""
        return self._pool.request_all("report")

    @property
    def aggregate_rate_sum(self) -> float:
        """Sum of per-shard measured rates — the paper's aggregation."""
        return float(sum(r.updates_per_second for r in self.reports()))

    def clear(self) -> "ShardedHierarchicalMatrix":
        """Empty every shard and reset the routed-update counters."""
        self._pool.request_all("clear")
        self._total_updates = 0
        self._batches = 0
        return self

    def close(self) -> None:
        """Shut the worker pool down; the matrix is unusable afterwards."""
        self._pool.close()

    def __enter__(self) -> "ShardedHierarchicalMatrix":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<ShardedHierarchicalMatrix{label} {self.nrows}x{self.ncols} "
            f"{self._dtype.name}, shards={self.nshards}, "
            f"partition={self.partition!r}, updates={self._total_updates}>"
        )
