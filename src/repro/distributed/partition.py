"""Epoch-versioned partition maps: shard ownership as mutable, fenced state.

PRs 2-4 baked one assumption into every layer of the sharded engine: *which
shard owns a coordinate is a pure function of ``(row, col)``*.  That is what
made the engine shippable — disjoint ownership in stream order is the whole
bit-identity argument — but it also froze the initial partition forever.  The
paper's power-law workloads concentrate their hot rows on a few range-partition
slabs, and real traffic is non-stationary, so the ROADMAP's top open item was
moving data between *live* workers without stopping the stream.

This module weakens the assumption exactly as far as necessary: shard
ownership becomes a pure function of ``(row, col)`` *and a map epoch*.  A
:class:`PartitionMap` is an interval map over a single 64-bit **partition-key
space** shared by both partitioning strategies:

* ``partition="range"`` — the partition key is the PR-1 packed coordinate key
  ``(row << col_bits) | col`` itself (rows, for shapes with no 64-bit split),
  so contiguous slabs preserve locality;
* ``partition="hash"`` — the partition key is ``splitmix64`` of the packed
  key (or of the mixed raw coordinates).  The hash output is uniform, so
  contiguous slabs of the *hashed* space are load-balanced — and, crucially,
  "rehashing" between shards becomes the same operation as moving a range
  slab: reassigning an interval of the hashed key space.

Both strategies therefore share one migration mechanism: pick an interval,
move the matching stored triples, publish a new map with ``epoch + 1``.  The
map lives in the routing parent; workers only ever see concrete ``[lo, hi)``
slabs (:func:`partition_keys` is the shared, toggle-independent helper both
sides use to decide membership, so router and worker can never disagree about
what a slab contains).

Epoch fencing: the router routes every batch under exactly one epoch, and
migration commands are reply-bearing — on every transport they act as
barriers against in-flight ingest (the shm wire orders them with its in-band
barrier frames, PR 4).  A new epoch is published only after the slab has been
extracted, installed, and discarded, so each coordinate is owned by exactly
one shard at every epoch and lands there in stream order.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..graphblas import coords
from ..graphblas.errors import InvalidValue
from ..workloads.powerlaw import _splitmix64

__all__ = [
    "PartitionMap",
    "partition_keys",
    "partition_keyspace",
    "interval_mask",
    "PARTITION_NAMES",
]

#: Partitioning strategies understood by the router, the map, and the workers.
PARTITION_NAMES = ("hash", "range")

_KEYSPACE_MAX = 2 ** 64


def partition_keys(
    rows: np.ndarray,
    cols: np.ndarray,
    partition: str,
    spec: Optional[coords.PackedSpec],
    *,
    keys: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Partition key of each coordinate pair (the domain of the map).

    ``spec`` must be the shape's :func:`repro.graphblas.coords.shape_split`
    (toggle independent, so the result never depends on the packing flag) and
    ``keys`` may carry the coordinates already packed under it.  Routing
    parent and shard workers both call this, which is what guarantees they
    agree on slab membership.
    """
    if spec is not None:
        if keys is None:
            keys = coords.pack(rows, cols, spec)
        return _splitmix64(keys) if partition == "hash" else keys
    if partition == "hash":
        with np.errstate(over="ignore"):
            return _splitmix64(rows + _splitmix64(cols))
    return rows.astype(np.uint64, copy=False)


def partition_keyspace(partition: str, spec: Optional[coords.PackedSpec], nrows: int) -> int:
    """Size of the partition-key space ``[0, keyspace)`` for one configuration.

    Hash partitions span the full hashed 2^64; range partitions span the
    *occupied* packed-key space ``nrows << col_bits`` (or the row space for
    unpackable shapes) so small shapes still balance across shards.
    """
    if partition == "hash":
        return _KEYSPACE_MAX
    if spec is not None:
        return int(nrows) << spec.col_bits
    return int(nrows)


def interval_mask(pkeys: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Boolean mask of partition keys inside ``[lo, hi)``.

    ``hi`` may be the full ``2**64`` keyspace bound, which does not fit a
    ``uint64`` — an unbounded upper end is handled explicitly instead of
    overflowing.
    """
    if lo <= 0:
        mask = np.ones(pkeys.size, dtype=bool)
    else:
        mask = pkeys >= np.uint64(lo)
    if hi < _KEYSPACE_MAX:
        mask &= pkeys < np.uint64(hi)
    return mask


class PartitionMap:
    """Epoch-versioned interval map ``partition key -> owning shard``.

    The keyspace ``[0, keyspace)`` is covered by ``m`` contiguous,
    non-overlapping intervals, each owned by one shard.  Routing is one
    binary search (``searchsorted`` over the ``m - 1`` interior boundaries),
    so with the initial ``m == nshards`` uniform map the cost matches the
    old closed-form division — and stays logarithmic in the number of
    migrated slabs afterwards.

    Maps are immutable: :meth:`assign` returns a *new* map with ``epoch + 1``.
    The router installs a new map only after a migration completed, so every
    batch is routed under exactly one well-defined epoch.

    Parameters
    ----------
    nshards:
        Number of shards the owner values range over.
    keyspace:
        Exclusive upper bound of the key domain (up to ``2**64``).
    interior:
        Sorted interior interval boundaries (``m - 1`` values, each in
        ``(0, keyspace)``); interval ``i`` is ``[interior[i-1], interior[i])``.
    owners:
        Owning shard per interval (``m`` values).
    epoch:
        Version counter; bumped by :meth:`assign`.
    """

    def __init__(
        self,
        nshards: int,
        keyspace: int,
        *,
        interior: Optional[np.ndarray] = None,
        owners: Optional[np.ndarray] = None,
        epoch: int = 0,
    ):
        self._nshards = int(nshards)
        self._keyspace = int(keyspace)
        if self._nshards < 1:
            raise InvalidValue("nshards must be >= 1")
        if not 1 <= self._keyspace <= _KEYSPACE_MAX:
            raise InvalidValue(f"keyspace must be in [1, 2**64], got {keyspace}")
        if interior is None:
            interior = np.empty(0, dtype=np.uint64)
        if owners is None:
            owners = np.zeros(1, dtype=np.int64)
        self._interior = np.ascontiguousarray(interior, dtype=np.uint64)
        self._owners = np.ascontiguousarray(owners, dtype=np.int64)
        if self._owners.size != self._interior.size + 1:
            raise InvalidValue(
                f"{self._owners.size} owners do not fit "
                f"{self._interior.size} interior boundaries"
            )
        if self._interior.size:
            if not np.all(self._interior[1:] > self._interior[:-1]):
                raise InvalidValue("interval boundaries must be strictly increasing")
            if int(self._interior[0]) == 0 or int(self._interior[-1]) >= self._keyspace:
                raise InvalidValue("interior boundaries must lie inside (0, keyspace)")
        if self._owners.size and (
            int(self._owners.min()) < 0 or int(self._owners.max()) >= self._nshards
        ):
            raise InvalidValue("interval owner out of shard range")
        self._epoch = int(epoch)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def uniform(cls, nshards: int, keyspace: int) -> "PartitionMap":
        """The epoch-0 map: the keyspace in ``nshards`` equal contiguous slabs.

        For range partitions this matches the pre-PR-5 closed-form routing
        exactly (ceil-division chunks with the top shard absorbing the
        remainder; regression-pinned), so a range matrix that never
        rebalances routes exactly as before.  Hash partitions deliberately
        change shape here: the old ``splitmix64(key) % K`` modulo assignment
        becomes contiguous slabs *of the hashed keyspace* — statistically
        identical load (the hash output is uniform) but interval-shaped
        ownership, which is precisely what lets hash shards migrate slabs
        with the same mechanism as range shards.  Shard placement was never
        part of the public contract (only disjointness and stream order
        are), so only the load properties carry over.
        """
        nshards = int(nshards)
        keyspace = int(keyspace)
        chunk = -(-keyspace // max(nshards, 1))  # ceil division
        interior = [i * chunk for i in range(1, nshards) if i * chunk < keyspace]
        owners = np.arange(len(interior) + 1, dtype=np.int64)
        return cls(
            nshards,
            keyspace,
            interior=np.asarray(interior, dtype=np.uint64),
            owners=owners,
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def nshards(self) -> int:
        """Number of shards owner values range over."""
        return self._nshards

    @property
    def keyspace(self) -> int:
        """Exclusive upper bound of the partition-key domain."""
        return self._keyspace

    @property
    def epoch(self) -> int:
        """Version of this map; each :meth:`assign` bumps it by one."""
        return self._epoch

    @property
    def interval_count(self) -> int:
        """Number of contiguous ownership intervals."""
        return self._owners.size

    def intervals(self) -> List[Tuple[int, int, int]]:
        """Every interval as ``(lo, hi, owner)`` with Python-int bounds."""
        bounds = [0] + [int(b) for b in self._interior] + [self._keyspace]
        return [
            (bounds[i], bounds[i + 1], int(self._owners[i]))
            for i in range(self._owners.size)
        ]

    def shard_intervals(self, shard: int) -> List[Tuple[int, int]]:
        """The ``[lo, hi)`` intervals currently owned by ``shard``."""
        return [(lo, hi) for lo, hi, o in self.intervals() if o == int(shard)]

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def owner_of(self, pkeys: np.ndarray) -> np.ndarray:
        """Owning shard of each partition key (vectorised, int64)."""
        idx = np.searchsorted(self._interior, pkeys, side="right")
        return self._owners[idx]

    def owner_of_point(self, pkey: int) -> int:
        """Owning shard of one partition key."""
        idx = int(np.searchsorted(self._interior, np.uint64(pkey), side="right"))
        return int(self._owners[idx])

    # ------------------------------------------------------------------ #
    # migration
    # ------------------------------------------------------------------ #

    def assign(self, lo: int, hi: int, shard: int) -> "PartitionMap":
        """A new map (``epoch + 1``) with ``[lo, hi)`` reassigned to ``shard``.

        Adjacent intervals with the same owner are coalesced, so the interval
        count stays bounded by the ownership fragmentation actually present
        rather than by the number of migrations ever performed.
        """
        lo, hi = int(lo), int(hi)
        if not 0 <= lo < hi <= self._keyspace:
            raise InvalidValue(
                f"slab [{lo}, {hi}) outside the [0, {self._keyspace}) keyspace"
            )
        shard = int(shard)
        if not 0 <= shard < self._nshards:
            raise InvalidValue(f"shard {shard} out of range for {self._nshards} shards")
        points = {0, self._keyspace, lo, hi}
        points.update(int(b) for b in self._interior)
        bounds = sorted(points)
        starts: List[int] = []
        owners: List[int] = []
        for a in bounds[:-1]:
            o = shard if lo <= a < hi else self.owner_of_point(a)
            if owners and owners[-1] == o:
                continue  # coalesce with the previous interval
            starts.append(a)
            owners.append(o)
        interior = np.asarray(starts[1:], dtype=np.uint64)
        return PartitionMap(
            self._nshards,
            self._keyspace,
            interior=interior,
            owners=np.asarray(owners, dtype=np.int64),
            epoch=self._epoch + 1,
        )

    def advance(self) -> "PartitionMap":
        """A new map with identical intervals and ``epoch + 1``.

        Failover promotion changes no interval ownership — the promoted
        replica answers for exactly the slabs its dead primary owned — but
        :meth:`ShardRouter.install` (correctly) refuses to re-install the
        current epoch, so promotion publishes this fence instead: same
        geometry, new version.
        """
        return PartitionMap(
            self._nshards,
            self._keyspace,
            interior=self._interior,
            owners=self._owners,
            epoch=self._epoch + 1,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PartitionMap epoch={self._epoch} shards={self._nshards} "
            f"intervals={self.interval_count} keyspace={self._keyspace:#x}>"
        )
