"""A model of the MIT SuperCloud deployment used in the paper's scaling study.

The paper's experiment is embarrassingly parallel: each of up to 31,000
processes on up to 1,100 server nodes owns an *independent* hierarchical
hypersparse matrix and streams its own power-law graph into it; the aggregate
update rate is the sum of per-process rates, degraded only by launch overhead
and stragglers.  We cannot rent 1,100 nodes offline, so — per the substitution
policy in DESIGN.md — the cluster is modelled: per-process rates are *measured*
on the local machine, and :class:`SuperCloudModel` combines them with a
configurable launch/straggler overhead model to produce the rate-versus-servers
curve of Figure 2.  The model parameters default to values consistent with the
MIT SuperCloud papers (32 usable cores per Xeon node, triples-mode job launch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["ClusterConfig", "ScalingPoint", "SuperCloudModel"]


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the modelled cluster.

    Attributes
    ----------
    max_nodes:
        Number of server nodes available (1,100 in the paper).
    processes_per_node:
        Hierarchical-matrix instances launched per node (the paper reaches
        31,000 instances on 1,100 nodes, i.e. ~28 per node; MIT SuperCloud
        nodes expose 32 usable slots).
    launch_overhead_seconds:
        Fixed per-job launch cost amortised over the measurement window.
    per_node_launch_seconds:
        Additional launch cost that grows with the node count (scheduler and
        interconnect contention).
    straggler_fraction:
        Fraction of processes that run at ``straggler_slowdown`` of full speed
        (models the slow tail observed on shared clusters).
    straggler_slowdown:
        Relative speed of a straggler process (0 < value <= 1).
    measurement_window_seconds:
        Length of the sustained-measurement window the rates are averaged over.
    """

    max_nodes: int = 1100
    processes_per_node: int = 28
    launch_overhead_seconds: float = 5.0
    per_node_launch_seconds: float = 0.02
    straggler_fraction: float = 0.03
    straggler_slowdown: float = 0.5
    measurement_window_seconds: float = 100.0

    def instances_for(self, nodes: int) -> int:
        """Number of hierarchical-matrix instances running on ``nodes`` nodes."""
        return int(nodes) * self.processes_per_node

    @classmethod
    def paper_configuration(cls) -> "ClusterConfig":
        """The configuration matching the paper's headline point (31,000 instances / 1,100 nodes)."""
        return cls(max_nodes=1100, processes_per_node=28)


@dataclass
class ScalingPoint:
    """One point of the rate-versus-servers curve.

    Attributes
    ----------
    nodes:
        Number of server nodes.
    instances:
        Total hierarchical-matrix instances.
    per_instance_rate:
        Updates per second of a single instance (measured locally).
    aggregate_rate:
        Modelled sustained aggregate updates per second.
    efficiency:
        ``aggregate_rate / (instances * per_instance_rate)``.
    """

    nodes: int
    instances: int
    per_instance_rate: float
    aggregate_rate: float
    efficiency: float

    def as_dict(self) -> dict:
        """Flat dict for tabular reports."""
        return {
            "nodes": self.nodes,
            "instances": self.instances,
            "per_instance_rate": round(self.per_instance_rate, 1),
            "aggregate_rate": self.aggregate_rate,
            "efficiency": round(self.efficiency, 4),
        }


class SuperCloudModel:
    """Weak-scaling model of embarrassingly parallel hierarchical ingest.

    Parameters
    ----------
    config:
        Cluster description (defaults to the paper's configuration).

    Examples
    --------
    >>> model = SuperCloudModel()
    >>> point = model.aggregate_rate(per_instance_rate=1.2e6, nodes=1100)
    >>> point.aggregate_rate > 3e10
    True
    """

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config if config is not None else ClusterConfig.paper_configuration()

    def aggregate_rate(self, per_instance_rate: float, nodes: int) -> ScalingPoint:
        """Model the sustained aggregate rate on ``nodes`` server nodes.

        The per-instance rate is degraded by the straggler tail, and the
        sustained window is stretched by launch overhead; otherwise the
        instances are independent so rates add.
        """
        cfg = self.config
        nodes = int(nodes)
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        instances = cfg.instances_for(nodes)
        # Straggler-adjusted mean per-instance rate.
        mean_rate = per_instance_rate * (
            (1.0 - cfg.straggler_fraction)
            + cfg.straggler_fraction * cfg.straggler_slowdown
        )
        ideal = instances * mean_rate
        # Launch overhead stretches the measurement window.
        launch = cfg.launch_overhead_seconds + cfg.per_node_launch_seconds * nodes
        window = cfg.measurement_window_seconds
        sustained = ideal * window / (window + launch)
        efficiency = sustained / (instances * per_instance_rate) if instances else 0.0
        return ScalingPoint(
            nodes=nodes,
            instances=instances,
            per_instance_rate=per_instance_rate,
            aggregate_rate=sustained,
            efficiency=efficiency,
        )

    def scaling_series(
        self, per_instance_rate: float, node_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1100)
    ) -> List[ScalingPoint]:
        """The full rate-versus-servers curve for Figure 2."""
        return [self.aggregate_rate(per_instance_rate, n) for n in node_counts]

    def nodes_needed_for(self, target_rate: float, per_instance_rate: float) -> int:
        """Smallest node count whose modelled aggregate rate meets ``target_rate``."""
        lo, hi = 1, self.config.max_nodes
        if self.aggregate_rate(per_instance_rate, hi).aggregate_rate < target_rate:
            raise ValueError(
                f"target rate {target_rate:.3g}/s is not reachable with "
                f"{hi} nodes at {per_instance_rate:.3g}/s per instance"
            )
        while lo < hi:
            mid = (lo + hi) // 2
            if self.aggregate_rate(per_instance_rate, mid).aggregate_rate >= target_rate:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def headline_projection(self, per_instance_rate: float) -> Dict[str, float]:
        """Projection of the paper's headline point from a measured per-instance rate."""
        point = self.aggregate_rate(per_instance_rate, self.config.max_nodes)
        return {
            "nodes": point.nodes,
            "instances": point.instances,
            "per_instance_rate": per_instance_rate,
            "aggregate_rate": point.aggregate_rate,
            "paper_rate": 75e9,
            "ratio_to_paper": point.aggregate_rate / 75e9,
        }
