"""Distributed-scaling substrate: the SuperCloud model, the persistent shard
worker pool and its pluggable transports (pickled queues, shared-memory ring
buffers, or TCP sockets to :class:`~repro.distributed.node.NodeAgent`
endpoints), the sharded hierarchical matrix with replica failover, the local
parallel ingest engine, and the Figure 2 table assembly."""

from .aggregate import DEFAULT_SERVER_COUNTS, Figure2Row, build_figure2_table, format_table
from .engine import ParallelIngestEngine, ParallelIngestResult, ingest_worker
from .node import (
    NodeAgent,
    RemoteWorkerHandle,
    format_address,
    parse_address,
    restart_local_agent,
    spawn_local_agents,
)
from .partition import (
    PARTITION_NAMES,
    PartitionMap,
    partition_keys,
    partition_keyspace,
)
from .pool import ShardWorkerPool, WorkerCrash, WorkerDied, WorkerReport, stream_powerlaw
from .ringbuf import DEFAULT_RING_SLOTS, RingClosed, RingTimeout, ShmRing
from .sharded import (
    RebalanceReport,
    ShardRouter,
    ShardedHierarchicalMatrix,
    ShardedIncrementalReductions,
)
from .supercloud import ClusterConfig, ScalingPoint, SuperCloudModel
from .transport import (
    TRANSPORT_NAMES,
    ProcessTransport,
    QueueTransport,
    ShardTransport,
    ShmRingTransport,
    SocketTransport,
    ValueCodec,
    make_transport,
    shm_supported,
)

__all__ = [
    "ClusterConfig",
    "ScalingPoint",
    "SuperCloudModel",
    "ParallelIngestEngine",
    "ParallelIngestResult",
    "WorkerReport",
    "WorkerCrash",
    "WorkerDied",
    "ingest_worker",
    "stream_powerlaw",
    "ShardWorkerPool",
    "ShardRouter",
    "ShardedHierarchicalMatrix",
    "ShardedIncrementalReductions",
    "RebalanceReport",
    "PartitionMap",
    "partition_keys",
    "partition_keyspace",
    "PARTITION_NAMES",
    "ShardTransport",
    "ProcessTransport",
    "QueueTransport",
    "ShmRingTransport",
    "SocketTransport",
    "ValueCodec",
    "make_transport",
    "shm_supported",
    "TRANSPORT_NAMES",
    "NodeAgent",
    "RemoteWorkerHandle",
    "spawn_local_agents",
    "restart_local_agent",
    "parse_address",
    "format_address",
    "ShmRing",
    "RingClosed",
    "RingTimeout",
    "DEFAULT_RING_SLOTS",
    "Figure2Row",
    "build_figure2_table",
    "format_table",
    "DEFAULT_SERVER_COUNTS",
]
