"""Distributed-scaling substrate: the SuperCloud model, the persistent shard
worker pool and its pluggable transports (pickled queues or shared-memory
ring buffers), the sharded hierarchical matrix, the local parallel ingest
engine, and the Figure 2 table assembly."""

from .aggregate import DEFAULT_SERVER_COUNTS, Figure2Row, build_figure2_table, format_table
from .engine import ParallelIngestEngine, ParallelIngestResult, ingest_worker
from .partition import (
    PARTITION_NAMES,
    PartitionMap,
    partition_keys,
    partition_keyspace,
)
from .pool import ShardWorkerPool, WorkerCrash, WorkerReport, stream_powerlaw
from .ringbuf import DEFAULT_RING_SLOTS, RingClosed, RingTimeout, ShmRing
from .sharded import (
    RebalanceReport,
    ShardRouter,
    ShardedHierarchicalMatrix,
    ShardedIncrementalReductions,
)
from .supercloud import ClusterConfig, ScalingPoint, SuperCloudModel
from .transport import (
    TRANSPORT_NAMES,
    QueueTransport,
    ShardTransport,
    ShmRingTransport,
    ValueCodec,
    make_transport,
    shm_supported,
)

__all__ = [
    "ClusterConfig",
    "ScalingPoint",
    "SuperCloudModel",
    "ParallelIngestEngine",
    "ParallelIngestResult",
    "WorkerReport",
    "WorkerCrash",
    "ingest_worker",
    "stream_powerlaw",
    "ShardWorkerPool",
    "ShardRouter",
    "ShardedHierarchicalMatrix",
    "ShardedIncrementalReductions",
    "RebalanceReport",
    "PartitionMap",
    "partition_keys",
    "partition_keyspace",
    "PARTITION_NAMES",
    "ShardTransport",
    "QueueTransport",
    "ShmRingTransport",
    "ValueCodec",
    "make_transport",
    "shm_supported",
    "TRANSPORT_NAMES",
    "ShmRing",
    "RingClosed",
    "RingTimeout",
    "DEFAULT_RING_SLOTS",
    "Figure2Row",
    "build_figure2_table",
    "format_table",
    "DEFAULT_SERVER_COUNTS",
]
