"""Distributed-scaling substrate: the SuperCloud model, the local parallel
ingest engine, and the Figure 2 table assembly."""

from .aggregate import DEFAULT_SERVER_COUNTS, Figure2Row, build_figure2_table, format_table
from .engine import ParallelIngestEngine, ParallelIngestResult, WorkerReport, ingest_worker
from .supercloud import ClusterConfig, ScalingPoint, SuperCloudModel

__all__ = [
    "ClusterConfig",
    "ScalingPoint",
    "SuperCloudModel",
    "ParallelIngestEngine",
    "ParallelIngestResult",
    "WorkerReport",
    "ingest_worker",
    "Figure2Row",
    "build_figure2_table",
    "format_table",
    "DEFAULT_SERVER_COUNTS",
]
