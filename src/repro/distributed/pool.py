"""Persistent shard-worker pool: long-lived workers behind pluggable transports.

PR 1's parallel engine could only run *one-shot* workers (``pool.map`` over a
function that generated its own workload), which rules out the serving shapes
the ROADMAP asks for: sharding one externally supplied stream across workers,
querying the shards afterwards, and keeping workers alive between batches.
This module provides that substrate.  Each worker — a separate process, or an
in-process state object when ``use_processes=False`` — owns a private
:class:`~repro.core.HierarchicalMatrix` and executes a small command protocol:

``ingest``
    Stream one ``(rows, cols, values)`` batch into the worker's matrix.  Fire
    and forget: no reply, so the parent can pipeline batches to all shards
    without per-batch round trips.  Update time is accumulated worker-side.
``selfgen``
    Generate and stream a power-law workload inside the worker (the paper's
    original self-generated measurement, now just one stream source among
    several).  Replies with a :class:`WorkerReport`.
``finalize``
    Force the deferred layer-1 flush *inside* the timed section and reply
    with the worker's measured ``(updates, seconds)`` so reported rates
    include the pending-tuple sort/merge the stream deferred.
``materialize`` / ``get`` / ``reduce``
    Read the shard: full COO triples, one element, or a row/column reduction
    (the ``reduce`` command materialises the shard first).
``stats`` / ``reduce_incremental``
    Read the shard's *incrementally maintained* reductions (see
    :mod:`repro.core.reductions`): a scalar snapshot (support flags, total
    traffic, exact nnz), or one reduction vector as ``(indices, values)``
    COO pairs — served from the running tracker, so neither command forces
    the shard's deferred layer-1 flush or a materialize.
``extract_slab`` / ``install_slab`` / ``discard_slab``
    The worker half of live slab migration (PR 5, driven by
    :meth:`ShardedHierarchicalMatrix.rebalance
    <repro.distributed.sharded.ShardedHierarchicalMatrix.rebalance>`):
    copy a partition-key slab out of a shard (packed keys + raw value
    bits), apply a migrated slab, and drop a slab after its new owner
    confirmed.  All reply-bearing, so they are barriers against in-flight
    ingest on every transport.
``report`` / ``clear`` / ``stop``
    Measurement snapshot, state reset, and shutdown.

How commands travel is the transport's business
(:mod:`repro.distributed.transport`, PR 4): the default ``queue`` wire moves
everything over per-worker pickled FIFO queues; the ``shm`` wire moves ingest
batches through per-worker shared-memory ring buffers as packed ``uint64``
keys + raw value bits (zero pickling on the hot path) with a watermarked
control side-channel; the ``socket`` wire (PR 7) connects to workers hosted
by :class:`~repro.distributed.node.NodeAgent` endpoints.  Either way the
ordering contract is identical — a reply-bearing command acts as a barrier
for every ``ingest`` submitted before it — and worker-side exceptions are
re-raised in the parent as :class:`WorkerCrash` at the next reply instead of
deadlocking; a worker that *dies* is detected by liveness polling (or stream
EOF).  The conformance suite (``tests/distributed/test_transport.py``)
asserts every transport yields bit-identical results.

Replication (PR 7): with ``replicas=r`` the pool provisions ``(1 + r)``
worker slots per shard.  Every ingest batch is *mirrored* to the shard's
replica slots unconditionally — before any primary failure is even
detectable — which is the whole zero-lost-updates argument: when a primary
dies, every batch it ever received (and any it may have missed while dying)
already sits in a replica, so :meth:`promote` simply redirects the shard to
that replica without replaying anything.  Control commands that *read* go to
the primary only; state-mutating commands — and the migration barrier
``extract_slab`` — go through :meth:`request_mirrored` so replica content
tracks the primary exactly through rebalances as well as ingest
(``install_slab`` / ``discard_slab`` / ``clear`` mutate; the mirrored
extract is a pure copy whose replica legs exist for the barrier and the
pre-mutation health check).  Replica slots never answer queries while a
primary is alive, so mirroring adds no read-path cost.  A replica that
fails any leg is retired — visible through :meth:`missing_replicas`, and
restored by :meth:`resync_replica` (hands-off via the service-layer
rejoin supervisor).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Optional

from .transport import make_transport
from .worker import (
    KNOWN_COMMANDS,
    REPLY_COMMANDS,
    ShardState,
    WorkerCrash,
    WorkerDied,
    WorkerReport,
    stream_powerlaw,
)

__all__ = [
    "WorkerReport",
    "WorkerCrash",
    "WorkerDied",
    "ShardWorkerPool",
    "stream_powerlaw",
]


class ShardWorkerPool:
    """K long-lived shard workers behind a pluggable transport.

    Parameters
    ----------
    nworkers:
        Number of shard workers.
    matrix_kwargs:
        Constructor arguments for every worker's private
        :class:`~repro.core.HierarchicalMatrix` (``nrows``, ``ncols``,
        ``dtype``, ``cuts``, ``defer_ingest`` ...).  ``accum`` may be given as
        an operator *name* so it crosses the process boundary.
    use_processes:
        When True each worker is a separate long-lived process (fork when
        available, else spawn).  When False workers are in-process state
        objects executing synchronously — identical semantics, no IPC, which
        is what unit tests and the bit-identity property suite use.
    transport:
        Wire between the parent and process-backed workers: ``"queue"``
        (default; pickled FIFO queues), ``"shm"`` (shared-memory ring
        buffers for ingest batches; falls back to ``queue`` for
        configurations the ring cannot carry bit-exactly, e.g. full 64-bit
        IPv6 shapes), or ``"socket"`` (TCP connections to
        :class:`~repro.distributed.node.NodeAgent` endpoints; requires
        ``nodes``).  Ignored when ``use_processes=False``.
    ring_slots:
        Ring capacity per worker for the ``shm`` transport (slots of one
        coordinate key + one value each); default
        :data:`~repro.distributed.ringbuf.DEFAULT_RING_SLOTS`.
    replicas:
        Replica workers per shard (default 0).  Each shard gets ``1 +
        replicas`` worker slots; ingest is mirrored to every replica and a
        dead primary can be :meth:`promote`-d without data loss.
    nodes:
        Agent endpoints for the ``socket`` transport (``"host:port"``
        strings or ``(host, port)`` pairs).  Slots are placed so a shard's
        primary and its replicas always land on *different* nodes (when
        there are at least two), making node death survivable.

    Examples
    --------
    >>> import numpy as np
    >>> with ShardWorkerPool(2, matrix_kwargs={"cuts": [100, 1000]},
    ...                      use_processes=False) as pool:
    ...     pool.submit(0, "ingest", (np.array([1], dtype=np.uint64),
    ...                               np.array([2], dtype=np.uint64), 1.0))
    ...     pool.request(0, "get", (1, 2))
    1.0
    """

    def __init__(
        self,
        nworkers: int,
        *,
        matrix_kwargs: Optional[Dict[str, Any]] = None,
        use_processes: bool = True,
        transport: str = "queue",
        ring_slots: Optional[int] = None,
        replicas: int = 0,
        nodes: Optional[list] = None,
    ):
        self.nworkers = int(nworkers)
        if self.nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        self.replicas = int(replicas)
        if self.replicas < 0:
            raise ValueError("replicas must be >= 0")
        self._matrix_kwargs = dict(matrix_kwargs or {})
        self.use_processes = bool(use_processes)
        self._closed = False
        # Slot layout: replica r of shard s is slot r*K + s (r = 0 is the
        # initial primary), so with replicas=0 slot indices equal shard
        # indices and nothing about the pre-replication surface changes.
        nslots = self.nworkers * (1 + self.replicas)
        self._primary = list(range(self.nworkers))
        self._replicas_of = {
            s: [r * self.nworkers + s for r in range(1, 1 + self.replicas)]
            for s in range(self.nworkers)
        }
        self._dead: set = set()
        if self.use_processes:
            placement = None
            if nodes:
                # Stagger replicas across nodes: slot r*K + s lands on node
                # (s + r) % N, so a shard's primary and replica share a node
                # only when there is a single node.  (Plain slot % N would
                # co-locate them whenever K % N == 0 — e.g. 2 shards on 2
                # nodes — defeating node-kill failover.)
                n = len(nodes)
                placement = [
                    (s + r) % n
                    for r in range(1 + self.replicas)
                    for s in range(self.nworkers)
                ]
            self._transport = make_transport(
                transport,
                nslots,
                self._matrix_kwargs,
                ring_slots=ring_slots,
                nodes=nodes,
                placement=placement,
            )
            self._states = None
            self._pending = None
        else:
            self._transport = None
            self._states = [ShardState(w, self._matrix_kwargs) for w in range(nslots)]
            self._pending = [deque() for _ in range(nslots)]

    @property
    def transport_name(self) -> str:
        """Wire actually in force: ``"inproc"``, ``"queue"``, ``"shm"``, or
        ``"socket"``.

        May differ from the requested transport when ``shm`` fell back to
        ``queue`` for a non-packable configuration.
        """
        return self._transport.name if self._transport is not None else "inproc"

    @property
    def nslots(self) -> int:
        """Total worker slots (``nworkers * (1 + replicas)``)."""
        return self.nworkers * (1 + self.replicas)

    @property
    def processes(self) -> list:
        """Worker processes/handles per slot (empty in-process); fault tests
        kill these.  With ``replicas=0`` slot indices equal shard indices."""
        return self._transport.processes if self._transport is not None else []

    # -- replica topology ------------------------------------------------- #

    def primary_slot(self, shard: int) -> int:
        """The slot currently serving ``shard`` (changes on :meth:`promote`)."""
        return self._primary[shard]

    def replica_slots(self, shard: int) -> list:
        """Live replica slots currently mirroring ``shard``."""
        return list(self._replicas_of[shard])

    def _slot_alive(self, slot: int) -> bool:
        if self._transport is None:
            return True  # in-process states cannot die
        if slot in self._dead:
            return False
        return self._transport.worker_alive(slot)

    def shard_alive(self, shard: int) -> bool:
        """Whether the shard's *primary* worker is still running.

        The failover path uses this to distinguish a worker that raised (it
        survives and keeps serving — no failover) from one that died.
        """
        return self._slot_alive(self._primary[shard])

    def has_live_replica(self, shard: int) -> bool:
        """Whether at least one live replica could take over ``shard``."""
        return any(self._slot_alive(s) for s in self._replicas_of[shard])

    def missing_replicas(self, shard: int) -> int:
        """Replica slots of ``shard`` currently retired (0 = full budget).

        Counts every home slot that is neither the acting primary nor a
        registered live mirror — i.e. slots spent by failovers, failed
        mirror sends, or killed nodes, each awaiting
        :meth:`resync_replica`.  This is the cheap no-work check the rejoin
        supervisor polls; it never touches the wire.
        """
        return self.replicas - len(self._replicas_of[shard])

    def ingest_pressure(self) -> float:
        """Worst ingest-wire fill fraction across all live slots (0..1).

        Replica slots count too: mirrored submits block on the slowest
        mirror, so a congested replica backpressures ingest exactly like a
        congested primary.  Wires that cannot measure depth contribute no
        signal; in-process pools report 0.0 (ingest is synchronous).
        """
        if self._transport is None:
            return 0.0
        worst = 0.0
        for slot in range(self.nslots):
            if slot in self._dead:
                continue
            mark = self._transport.ingest_watermark(slot)
            if mark is not None and mark > worst:
                worst = float(mark)
        return worst

    def _mark_replica_dead(self, shard: int, slot: int) -> None:
        self._dead.add(slot)
        if slot in self._replicas_of[shard]:
            self._replicas_of[shard].remove(slot)

    def _slot_answers(self, slot: int) -> bool:
        """Round-trip a cheap reply-bearing command to ``slot``.

        A pid poll is not a liveness proof at failover time: when a whole
        node dies, its workers die *with* it a beat later, so a replica on
        the same dying node can still read alive while its wire is already
        gone.  Only a completed round-trip proves the slot can serve.
        """
        if self._transport is None:
            return True  # in-process states cannot die
        try:
            self._submit_slot(slot, "stats")
            status, _ = self._recv_slot(slot)
        except WorkerCrash:
            return False
        return status == "ok"

    def promote(self, shard: int) -> int:
        """Redirect ``shard`` to a live replica; returns the new primary slot.

        The dead primary is retired from the shard's slot set.  Each
        candidate replica is verified with a real round-trip (see
        :meth:`_slot_answers`) before it is promoted.  Raises
        :class:`WorkerCrash` when no live replica exists — the caller leaves
        the routing epoch untouched in that case.
        """
        old = self._primary[shard]
        self._dead.add(old)
        for slot in list(self._replicas_of[shard]):
            if self._slot_alive(slot) and self._slot_answers(slot):
                self._replicas_of[shard].remove(slot)
                self._primary[shard] = slot
                return slot
            self._mark_replica_dead(shard, slot)
        raise WorkerCrash(
            f"shard {shard} lost its primary (slot {old}) and has no live replica"
        )

    # -- dispatch -------------------------------------------------------- #

    def submit(self, worker: int, cmd: str, payload=None) -> None:
        """Dispatch one command without waiting; replies come via :meth:`collect`.

        Parameters
        ----------
        worker:
            0-based worker index.
        cmd:
            Command name (see the module docstring for the protocol).
        payload:
            Command argument, e.g. the ``(rows, cols, values)`` batch of an
            ``ingest`` or the ``(row, col)`` pair of a ``get``.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if cmd not in KNOWN_COMMANDS:
            # Fail fast in the parent: a fire-and-forget typo would otherwise
            # only surface at some later reply (or never).
            raise ValueError(f"unknown worker command {cmd!r}")
        if cmd == "ingest":
            rows, cols, values = payload
            self.submit_ingest(worker, rows, cols, values)
        else:
            self._submit_slot(self._primary[worker], cmd, payload)

    def _submit_slot(self, slot: int, cmd: str, payload=None) -> None:
        """Dispatch a control command to one concrete slot (replica-aware
        callers address replicas directly; :meth:`submit` maps shard ->
        primary)."""
        if self._transport is not None:
            self._transport.send_control(slot, cmd, payload)
        else:
            result = self._states[slot].handle(cmd, payload)
            if cmd in REPLY_COMMANDS:
                self._pending[slot].append(("ok", result))

    def submit_ingest(self, worker: int, rows, cols, values, keys=None) -> None:
        """Fire-and-forget one ingest batch (the streaming hot path).

        ``keys`` optionally carries the coordinates already packed under the
        shape's 64-bit split (what :meth:`ShardRouter.route
        <repro.distributed.sharded.ShardRouter.route>` returns); the shm and
        socket transports ship them as-is instead of packing a second time.
        Other wires ignore it.

        With replicas the batch is *always* mirrored to every live replica
        slot — including when the primary send fails — so a later promotion
        never needs a resend: the primary's failure is re-raised only after
        the mirrors went out.  A failing replica is retired silently (it can
        be resynchronised later); it never fails the stream.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        primary_exc = None
        if self._transport is not None:
            try:
                self._transport.send_ingest(
                    self._primary[worker], rows, cols, values, keys=keys
                )
            except WorkerCrash as exc:
                primary_exc = exc
        else:
            self._states[self._primary[worker]].handle(
                "ingest", (rows, cols, values)
            )
        for slot in list(self._replicas_of[worker]):
            try:
                if self._transport is not None:
                    self._transport.send_ingest(slot, rows, cols, values, keys=keys)
                else:
                    self._states[slot].handle("ingest", (rows, cols, values))
            except WorkerCrash:
                self._mark_replica_dead(worker, slot)
        if primary_exc is not None:
            raise primary_exc

    def collect(self, worker: int):
        """Block for the next reply from ``worker``'s primary (FIFO per slot).

        Raises :class:`WorkerCrash` when the worker's command failed or the
        worker process died; a worker that merely raised survives and keeps
        serving subsequent commands.
        """
        status, value = self._recv_slot(self._primary[worker])
        if status == "died":
            raise WorkerDied(f"shard worker {worker} failed:\n{value}")
        if status == "error":
            raise WorkerCrash(f"shard worker {worker} failed:\n{value}")
        return value

    def _recv_slot(self, slot: int):
        if self._transport is not None:
            return self._transport.recv_reply(slot)
        return self._pending[slot].popleft()

    def request(self, worker: int, cmd: str, payload=None):
        """Submit one reply-bearing command to ``worker`` and wait for its result."""
        self.submit(worker, cmd, payload)
        return self.collect(worker)

    def request_all(self, cmd: str, payload=None) -> list:
        """Submit ``cmd`` to every worker, then gather one result per worker.

        Process-backed workers execute concurrently; the returned list is
        ordered by worker index.
        """
        for w in range(self.nworkers):
            self.submit(w, cmd, payload)
        return [self.collect(w) for w in range(self.nworkers)]

    def request_mirrored(self, shard: int, cmd: str, payload=None):
        """A reply-bearing command applied to the primary and every live
        replica of ``shard``; returns the primary's result.

        Every migration step (``extract_slab`` / ``install_slab`` /
        ``discard_slab``) and ``clear`` go through here so replica content
        stays an exact mirror of the primary — the replies double as
        barriers that pin each mirror leg to the same stream position.  A
        replica that fails the command (raised or died) is retired — a
        replica whose state can no longer be trusted must never be promoted
        — while the primary's failure propagates as :class:`WorkerCrash`
        exactly like :meth:`request`.  Retirement is never silent to the
        caller that cares: it shows up in :meth:`missing_replicas`, and the
        migration path re-checks the budget after publishing its epoch.
        The primary is addressed through the public
        :meth:`submit`/:meth:`collect` path, preserving their semantics
        (and their fault-injection hooks).
        """
        replica_slots = list(self._replicas_of[shard])
        self.submit(shard, cmd, payload)
        for slot in replica_slots:
            self._submit_slot(slot, cmd, payload)
        try:
            return self.collect(shard)
        finally:
            # Replica replies are drained even when the primary failed:
            # leaving them queued would desynchronise every later reply.
            for slot in replica_slots:
                status, _ = self._recv_slot(slot)
                if status != "ok":
                    self._mark_replica_dead(shard, slot)

    def resync_replica(self, shard: int) -> Optional[int]:
        """Respawn one retired slot of ``shard`` and catch it up; returns the
        slot re-registered as a replica (None when nothing needed resyncing).

        The replacement starts empty, restores the primary's
        ``checkpoint`` bytes (:mod:`repro.core.checkpoint` over the reply
        channel — no shared filesystem needed), and only then rejoins the
        mirror set.  Both commands are reply-bearing barriers, and the
        single routing thread publishes no batches mid-resync, so the
        restored replica is exactly the primary's logical content.
        """
        if self._transport is None:
            return None  # in-process states cannot die
        home = {
            r * self.nworkers + shard for r in range(1 + self.replicas)
        } - {self._primary[shard]} - set(self._replicas_of[shard])
        dead = sorted(home & self._dead)
        if not dead:
            return None
        slot = dead[0]
        self._transport.respawn(slot)
        self._dead.discard(slot)
        blob = self.request(shard, "checkpoint")
        self._submit_slot(slot, "restore", blob)
        status, value = self._recv_slot(slot)
        if status != "ok":
            self._dead.add(slot)
            raise WorkerCrash(f"replica resync for shard {shard} failed:\n{value}")
        self._replicas_of[shard].append(slot)
        return slot

    # -- lifecycle ------------------------------------------------------- #

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._transport is not None:
            self._transport.close()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
