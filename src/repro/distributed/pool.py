"""Persistent shard-worker pool: long-lived processes fed batches over queues.

PR 1's parallel engine could only run *one-shot* workers (``pool.map`` over a
function that generated its own workload), which rules out the serving shapes
the ROADMAP asks for: sharding one externally supplied stream across workers,
querying the shards afterwards, and keeping workers alive between batches.
This module provides that substrate.  Each worker — a separate process, or an
in-process state object when ``use_processes=False`` — owns a private
:class:`~repro.core.HierarchicalMatrix` and executes a small command protocol:

``ingest``
    Stream one ``(rows, cols, values)`` batch into the worker's matrix.  Fire
    and forget: no reply, so the parent can pipeline batches to all shards
    without per-batch round trips.  Update time is accumulated worker-side.
``selfgen``
    Generate and stream a power-law workload inside the worker (the paper's
    original self-generated measurement, now just one stream source among
    several).  Replies with a :class:`WorkerReport`.
``finalize``
    Force the deferred layer-1 flush *inside* the timed section and reply
    with the worker's measured ``(updates, seconds)`` so reported rates
    include the pending-tuple sort/merge the stream deferred.
``materialize`` / ``get`` / ``reduce``
    Read the shard: full COO triples, one element, or a row/column reduction
    (the ``reduce`` command materialises the shard first).
``stats`` / ``reduce_incremental``
    Read the shard's *incrementally maintained* reductions (see
    :mod:`repro.core.reductions`): a scalar snapshot (support flags, total
    traffic, exact nnz), or one reduction vector as ``(indices, values)``
    COO pairs — served from the running tracker, so neither command forces
    the shard's deferred layer-1 flush or a materialize.
``report`` / ``clear`` / ``stop``
    Measurement snapshot, state reset, and shutdown.

Commands queue FIFO per worker, so a reply-bearing command acts as a barrier
for every ``ingest`` submitted before it.  Worker-side exceptions are caught
and re-raised in the parent as :class:`WorkerCrash` at the next reply instead
of deadlocking the queues.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core import HierarchicalMatrix
from ..graphblas.binaryop import binary
from ..workloads.powerlaw import powerlaw_edges

__all__ = ["WorkerReport", "WorkerCrash", "ShardWorkerPool", "stream_powerlaw"]


@dataclass(frozen=True)
class WorkerReport:
    """Result of one worker's measured ingest.

    Attributes
    ----------
    worker_id:
        0-based worker index.
    total_updates:
        Element updates streamed by this worker.
    elapsed_seconds:
        Wall-clock time spent inside ``update`` calls plus the forced final
        flush of deferred pending tuples.
    updates_per_second:
        This worker's measured rate.
    final_nvals:
        Stored entries in the worker's materialised matrix (sanity check).
    cascades:
        Per-layer cascade counts.
    """

    worker_id: int
    total_updates: int
    elapsed_seconds: float
    updates_per_second: float
    final_nvals: int
    cascades: List[int] = field(default_factory=list)


class WorkerCrash(RuntimeError):
    """A shard worker raised while executing a command; carries its traceback."""


def stream_powerlaw(
    matrix: HierarchicalMatrix,
    worker_id: int,
    total_updates: int,
    batch_size: int,
    *,
    nnodes: int = 2 ** 32,
    alpha: float = 1.3,
    distinct_nodes: int = 2 ** 22,
    seed: Optional[int] = None,
) -> Tuple[int, float]:
    """Generate and stream exactly ``total_updates`` power-law edges.

    Returns ``(updates_streamed, timed_seconds)``.  Measured the way the paper
    measures: generation time is excluded (data resides in arrays before the
    timed insert), every ``update`` call is timed, the last batch is a partial
    batch when ``batch_size`` does not divide ``total_updates``, and the
    deferred layer-1 flush is forced *inside* the timed section so the
    reported rate pays for the sort/merge work the stream deferred.
    """
    rng_seed = (seed if seed is not None else 0) + worker_id * 1_000_003
    total = max(int(total_updates), 0)
    batch_size = max(int(batch_size), 1)
    elapsed = 0.0
    done = 0
    b = 0
    while done < total:
        n = min(batch_size, total - done)
        rows, cols = powerlaw_edges(
            n,
            alpha=alpha,
            nnodes=nnodes,
            distinct_nodes=distinct_nodes,
            seed=rng_seed + b,
        )
        values = np.ones(n, dtype=np.float64)
        start = time.perf_counter()
        matrix.update(rows, cols, values)
        elapsed += time.perf_counter() - start
        done += n
        b += 1
    start = time.perf_counter()
    matrix.wait()  # the deferred flush is ingest work, not query work
    elapsed += time.perf_counter() - start
    return done, elapsed


#: Commands that produce exactly one reply on the worker's reply queue.
_REPLY_COMMANDS = frozenset(
    {
        "selfgen",
        "finalize",
        "report",
        "materialize",
        "get",
        "reduce",
        "stats",
        "reduce_incremental",
        "clear",
    }
)

#: Incremental reduction vectors servable by the ``reduce_incremental`` command.
_INCREMENTAL_KINDS = frozenset({"row_traffic", "col_traffic", "row_fan", "col_fan"})


class _ShardState:
    """One worker's state: a private hierarchical matrix plus ingest counters.

    Runs identically inside a long-lived child process and in-process
    (``use_processes=False``), so unit tests and single-core machines exercise
    the same command protocol without fork overhead.
    """

    def __init__(self, worker_id: int, matrix_kwargs: Optional[Dict[str, Any]] = None):
        kwargs = dict(matrix_kwargs or {})
        nrows = kwargs.pop("nrows", 2 ** 32)
        ncols = kwargs.pop("ncols", 2 ** 32)
        dtype = kwargs.pop("dtype", "fp64")
        accum = kwargs.pop("accum", None)
        if isinstance(accum, str):
            # Operators cross the process boundary by registry name.
            accum = binary[accum]
        self.worker_id = int(worker_id)
        self.matrix = HierarchicalMatrix(nrows, ncols, dtype, accum=accum, **kwargs)
        self.done = 0
        self.elapsed = 0.0

    # -- command handlers ------------------------------------------------ #

    def handle(self, cmd: str, payload) -> Any:
        if cmd == "ingest":
            rows, cols, values = payload
            n = rows.size
            start = time.perf_counter()
            self.matrix.update(rows, cols, values)
            self.elapsed += time.perf_counter() - start
            self.done += int(n)
            return None
        if cmd == "selfgen":
            spec = dict(payload)
            done, elapsed = stream_powerlaw(
                self.matrix,
                self.worker_id,
                spec.pop("total_updates"),
                spec.pop("batch_size"),
                **spec,
            )
            self.done += done
            self.elapsed += elapsed
            return self.report()
        if cmd == "finalize":
            start = time.perf_counter()
            self.matrix.wait()
            self.elapsed += time.perf_counter() - start
            return {"total_updates": self.done, "elapsed_seconds": self.elapsed}
        if cmd == "report":
            return self.report()
        if cmd == "materialize":
            return self.matrix.materialize().extract_tuples()
        if cmd == "get":
            row, col = payload
            return self.matrix.get(row, col, None)
        if cmd == "reduce":
            axis, op_name = payload
            flat = self.matrix.materialize()
            vec = (
                flat.reduce_rowwise(op_name)
                if axis == "row"
                else flat.reduce_columnwise(op_name)
            )
            return vec.to_coo()
        if cmd == "stats":
            inc = self.matrix.incremental
            return {
                "supported": inc.supported,
                "fan_supported": inc.fan_supported,
                "total": float(inc.total()) if inc.supported else None,
                "nnz": inc.nnz() if inc.fan_supported else None,
                "updates": self.done,
            }
        if cmd == "reduce_incremental":
            kind = payload
            if kind not in _INCREMENTAL_KINDS:
                raise ValueError(f"unknown incremental reduction {kind!r}")
            inc = self.matrix.incremental
            if not inc.supported or (kind.endswith("fan") and not inc.fan_supported):
                return None
            return getattr(inc, kind)().to_coo()
        if cmd == "clear":
            self.matrix.clear()
            self.done = 0
            self.elapsed = 0.0
            return True
        raise ValueError(f"unknown worker command {cmd!r}")

    def report(self) -> WorkerReport:
        stats = self.matrix.stats
        rate = self.done / self.elapsed if self.elapsed > 0 else 0.0
        return WorkerReport(
            worker_id=self.worker_id,
            total_updates=self.done,
            elapsed_seconds=self.elapsed,
            updates_per_second=rate,
            final_nvals=self.matrix.materialize().nvals,
            cascades=list(stats.cascades) if stats is not None else [],
        )


def _pool_worker_main(worker_id, matrix_kwargs, task_queue, reply_queue) -> None:
    """Child-process loop: pop commands, run them, push replies, never crash.

    Errors are stored and delivered at the next reply-bearing command so the
    parent raises :class:`WorkerCrash` instead of hanging on an empty queue.
    """
    state = None
    init_error = None
    try:
        state = _ShardState(worker_id, matrix_kwargs)
    except Exception:  # pragma: no cover - construction is trivial to satisfy
        init_error = traceback.format_exc()
    pending_error = init_error
    while True:
        cmd, payload = task_queue.get()
        if cmd == "stop":
            break
        result = None
        if pending_error is None:
            try:
                result = state.handle(cmd, payload)
            except Exception:
                pending_error = traceback.format_exc()
        if cmd in _REPLY_COMMANDS:
            if pending_error is not None:
                reply_queue.put(("error", pending_error))
                pending_error = init_error
            else:
                reply_queue.put(("ok", result))


class ShardWorkerPool:
    """K long-lived shard workers fed commands over per-worker FIFO queues.

    Parameters
    ----------
    nworkers:
        Number of shard workers.
    matrix_kwargs:
        Constructor arguments for every worker's private
        :class:`~repro.core.HierarchicalMatrix` (``nrows``, ``ncols``,
        ``dtype``, ``cuts``, ``defer_ingest`` ...).  ``accum`` may be given as
        an operator *name* so it crosses the process boundary.
    use_processes:
        When True each worker is a separate long-lived process (fork when
        available, else spawn).  When False workers are in-process state
        objects executing synchronously — identical semantics, no IPC, which
        is what unit tests and the bit-identity property suite use.

    Examples
    --------
    >>> import numpy as np
    >>> with ShardWorkerPool(2, matrix_kwargs={"cuts": [100, 1000]},
    ...                      use_processes=False) as pool:
    ...     pool.submit(0, "ingest", (np.array([1], dtype=np.uint64),
    ...                               np.array([2], dtype=np.uint64), 1.0))
    ...     pool.request(0, "get", (1, 2))
    1.0
    """

    def __init__(
        self,
        nworkers: int,
        *,
        matrix_kwargs: Optional[Dict[str, Any]] = None,
        use_processes: bool = True,
    ):
        self.nworkers = int(nworkers)
        if self.nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        self._matrix_kwargs = dict(matrix_kwargs or {})
        self.use_processes = bool(use_processes)
        self._closed = False
        if self.use_processes:
            ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context("spawn")
            self._tasks = [ctx.Queue() for _ in range(self.nworkers)]
            self._replies = [ctx.Queue() for _ in range(self.nworkers)]
            self._procs = [
                ctx.Process(
                    target=_pool_worker_main,
                    args=(w, self._matrix_kwargs, self._tasks[w], self._replies[w]),
                    daemon=True,
                )
                for w in range(self.nworkers)
            ]
            for p in self._procs:
                p.start()
            self._states = None
            self._pending = None
        else:
            self._states = [
                _ShardState(w, self._matrix_kwargs) for w in range(self.nworkers)
            ]
            self._pending = [deque() for _ in range(self.nworkers)]

    # -- dispatch -------------------------------------------------------- #

    def submit(self, worker: int, cmd: str, payload=None) -> None:
        """Dispatch one command without waiting; replies come via :meth:`collect`.

        Parameters
        ----------
        worker:
            0-based worker index.
        cmd:
            Command name (see the module docstring for the protocol).
        payload:
            Command argument, e.g. the ``(rows, cols, values)`` batch of an
            ``ingest`` or the ``(row, col)`` pair of a ``get``.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self.use_processes:
            self._tasks[worker].put((cmd, payload))
        else:
            result = self._states[worker].handle(cmd, payload)
            if cmd in _REPLY_COMMANDS:
                self._pending[worker].append(("ok", result))

    def collect(self, worker: int):
        """Block for the next reply from ``worker`` (FIFO per worker).

        Raises :class:`WorkerCrash` when the worker's command failed; the
        worker itself survives and keeps serving subsequent commands.
        """
        if self.use_processes:
            status, value = self._replies[worker].get()
        else:
            status, value = self._pending[worker].popleft()
        if status == "error":
            raise WorkerCrash(f"shard worker {worker} failed:\n{value}")
        return value

    def request(self, worker: int, cmd: str, payload=None):
        """Submit one reply-bearing command to ``worker`` and wait for its result."""
        self.submit(worker, cmd, payload)
        return self.collect(worker)

    def request_all(self, cmd: str, payload=None) -> list:
        """Submit ``cmd`` to every worker, then gather one result per worker.

        Process-backed workers execute concurrently; the returned list is
        ordered by worker index.
        """
        for w in range(self.nworkers):
            self.submit(w, cmd, payload)
        return [self.collect(w) for w in range(self.nworkers)]

    # -- lifecycle ------------------------------------------------------- #

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.use_processes:
            for q in self._tasks:
                try:
                    q.put(("stop", None))
                except Exception:  # pragma: no cover - queue already torn down
                    pass
            for p in self._procs:
                p.join(timeout=5)
                if p.is_alive():  # pragma: no cover - defensive
                    p.terminate()
            for q in (*self._tasks, *self._replies):
                q.close()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
