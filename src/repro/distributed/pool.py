"""Persistent shard-worker pool: long-lived workers behind pluggable transports.

PR 1's parallel engine could only run *one-shot* workers (``pool.map`` over a
function that generated its own workload), which rules out the serving shapes
the ROADMAP asks for: sharding one externally supplied stream across workers,
querying the shards afterwards, and keeping workers alive between batches.
This module provides that substrate.  Each worker — a separate process, or an
in-process state object when ``use_processes=False`` — owns a private
:class:`~repro.core.HierarchicalMatrix` and executes a small command protocol:

``ingest``
    Stream one ``(rows, cols, values)`` batch into the worker's matrix.  Fire
    and forget: no reply, so the parent can pipeline batches to all shards
    without per-batch round trips.  Update time is accumulated worker-side.
``selfgen``
    Generate and stream a power-law workload inside the worker (the paper's
    original self-generated measurement, now just one stream source among
    several).  Replies with a :class:`WorkerReport`.
``finalize``
    Force the deferred layer-1 flush *inside* the timed section and reply
    with the worker's measured ``(updates, seconds)`` so reported rates
    include the pending-tuple sort/merge the stream deferred.
``materialize`` / ``get`` / ``reduce``
    Read the shard: full COO triples, one element, or a row/column reduction
    (the ``reduce`` command materialises the shard first).
``stats`` / ``reduce_incremental``
    Read the shard's *incrementally maintained* reductions (see
    :mod:`repro.core.reductions`): a scalar snapshot (support flags, total
    traffic, exact nnz), or one reduction vector as ``(indices, values)``
    COO pairs — served from the running tracker, so neither command forces
    the shard's deferred layer-1 flush or a materialize.
``extract_slab`` / ``install_slab`` / ``discard_slab``
    The worker half of live slab migration (PR 5, driven by
    :meth:`ShardedHierarchicalMatrix.rebalance
    <repro.distributed.sharded.ShardedHierarchicalMatrix.rebalance>`):
    copy a partition-key slab out of a shard (packed keys + raw value
    bits), apply a migrated slab, and drop a slab after its new owner
    confirmed.  All reply-bearing, so they are barriers against in-flight
    ingest on every transport.
``report`` / ``clear`` / ``stop``
    Measurement snapshot, state reset, and shutdown.

How commands travel is the transport's business
(:mod:`repro.distributed.transport`, PR 4): the default ``queue`` wire moves
everything over per-worker pickled FIFO queues; the ``shm`` wire moves ingest
batches through per-worker shared-memory ring buffers as packed ``uint64``
keys + raw value bits (zero pickling on the hot path) with a watermarked
control side-channel.  Either way the ordering contract is identical — a
reply-bearing command acts as a barrier for every ``ingest`` submitted before
it — and worker-side exceptions are re-raised in the parent as
:class:`WorkerCrash` at the next reply instead of deadlocking; a worker that
*dies* is detected by liveness polling.  The conformance suite
(``tests/distributed/test_transport.py``) asserts every transport yields
bit-identical results.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Optional

from .transport import make_transport
from .worker import (
    KNOWN_COMMANDS,
    REPLY_COMMANDS,
    ShardState,
    WorkerCrash,
    WorkerReport,
    stream_powerlaw,
)

__all__ = ["WorkerReport", "WorkerCrash", "ShardWorkerPool", "stream_powerlaw"]


class ShardWorkerPool:
    """K long-lived shard workers behind a pluggable transport.

    Parameters
    ----------
    nworkers:
        Number of shard workers.
    matrix_kwargs:
        Constructor arguments for every worker's private
        :class:`~repro.core.HierarchicalMatrix` (``nrows``, ``ncols``,
        ``dtype``, ``cuts``, ``defer_ingest`` ...).  ``accum`` may be given as
        an operator *name* so it crosses the process boundary.
    use_processes:
        When True each worker is a separate long-lived process (fork when
        available, else spawn).  When False workers are in-process state
        objects executing synchronously — identical semantics, no IPC, which
        is what unit tests and the bit-identity property suite use.
    transport:
        Wire between the parent and process-backed workers: ``"queue"``
        (default; pickled FIFO queues) or ``"shm"`` (shared-memory ring
        buffers for ingest batches; falls back to ``queue`` for
        configurations the ring cannot carry bit-exactly, e.g. full 64-bit
        IPv6 shapes).  Ignored when ``use_processes=False``.
    ring_slots:
        Ring capacity per worker for the ``shm`` transport (slots of one
        coordinate key + one value each); default
        :data:`~repro.distributed.ringbuf.DEFAULT_RING_SLOTS`.

    Examples
    --------
    >>> import numpy as np
    >>> with ShardWorkerPool(2, matrix_kwargs={"cuts": [100, 1000]},
    ...                      use_processes=False) as pool:
    ...     pool.submit(0, "ingest", (np.array([1], dtype=np.uint64),
    ...                               np.array([2], dtype=np.uint64), 1.0))
    ...     pool.request(0, "get", (1, 2))
    1.0
    """

    def __init__(
        self,
        nworkers: int,
        *,
        matrix_kwargs: Optional[Dict[str, Any]] = None,
        use_processes: bool = True,
        transport: str = "queue",
        ring_slots: Optional[int] = None,
    ):
        self.nworkers = int(nworkers)
        if self.nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        self._matrix_kwargs = dict(matrix_kwargs or {})
        self.use_processes = bool(use_processes)
        self._closed = False
        if self.use_processes:
            self._transport = make_transport(
                transport, self.nworkers, self._matrix_kwargs, ring_slots=ring_slots
            )
            self._states = None
            self._pending = None
        else:
            self._transport = None
            self._states = [
                ShardState(w, self._matrix_kwargs) for w in range(self.nworkers)
            ]
            self._pending = [deque() for _ in range(self.nworkers)]

    @property
    def transport_name(self) -> str:
        """Wire actually in force: ``"inproc"``, ``"queue"``, or ``"shm"``.

        May differ from the requested transport when ``shm`` fell back to
        ``queue`` for a non-packable configuration.
        """
        return self._transport.name if self._transport is not None else "inproc"

    @property
    def processes(self) -> list:
        """Worker processes (empty in-process); fault tests kill these."""
        return self._transport.processes if self._transport is not None else []

    # -- dispatch -------------------------------------------------------- #

    def submit(self, worker: int, cmd: str, payload=None) -> None:
        """Dispatch one command without waiting; replies come via :meth:`collect`.

        Parameters
        ----------
        worker:
            0-based worker index.
        cmd:
            Command name (see the module docstring for the protocol).
        payload:
            Command argument, e.g. the ``(rows, cols, values)`` batch of an
            ``ingest`` or the ``(row, col)`` pair of a ``get``.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if cmd not in KNOWN_COMMANDS:
            # Fail fast in the parent: a fire-and-forget typo would otherwise
            # only surface at some later reply (or never).
            raise ValueError(f"unknown worker command {cmd!r}")
        if cmd == "ingest":
            rows, cols, values = payload
            self.submit_ingest(worker, rows, cols, values)
        elif self._transport is not None:
            self._transport.send_control(worker, cmd, payload)
        else:
            result = self._states[worker].handle(cmd, payload)
            if cmd in REPLY_COMMANDS:
                self._pending[worker].append(("ok", result))

    def submit_ingest(self, worker: int, rows, cols, values, keys=None) -> None:
        """Fire-and-forget one ingest batch (the streaming hot path).

        ``keys`` optionally carries the coordinates already packed under the
        shape's 64-bit split (what :meth:`ShardRouter.route
        <repro.distributed.sharded.ShardRouter.route>` returns); the shm
        transport ships them as-is instead of packing a second time.  Other
        wires ignore it.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._transport is not None:
            self._transport.send_ingest(worker, rows, cols, values, keys=keys)
        else:
            self._states[worker].handle("ingest", (rows, cols, values))

    def collect(self, worker: int):
        """Block for the next reply from ``worker`` (FIFO per worker).

        Raises :class:`WorkerCrash` when the worker's command failed or the
        worker process died; a worker that merely raised survives and keeps
        serving subsequent commands.
        """
        if self._transport is not None:
            status, value = self._transport.recv_reply(worker)
        else:
            status, value = self._pending[worker].popleft()
        if status == "error":
            raise WorkerCrash(f"shard worker {worker} failed:\n{value}")
        return value

    def request(self, worker: int, cmd: str, payload=None):
        """Submit one reply-bearing command to ``worker`` and wait for its result."""
        self.submit(worker, cmd, payload)
        return self.collect(worker)

    def request_all(self, cmd: str, payload=None) -> list:
        """Submit ``cmd`` to every worker, then gather one result per worker.

        Process-backed workers execute concurrently; the returned list is
        ordered by worker index.
        """
        for w in range(self.nworkers):
            self.submit(w, cmd, payload)
        return [self.collect(w) for w in range(self.nworkers)]

    # -- lifecycle ------------------------------------------------------- #

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._transport is not None:
            self._transport.close()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
