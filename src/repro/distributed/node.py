"""Node agents: shard workers hosted behind a listening socket endpoint.

Before this module the distributed stack had one topology — a routing parent
that *forks* its own workers.  A :class:`NodeAgent` inverts that: it owns the
worker lifecycle on its machine and exposes a ``host:port`` endpoint that any
routing parent can *connect to*.  The parent's
:class:`~repro.distributed.transport.SocketTransport` opens one TCP
connection per worker slot; the agent forks a fresh worker child per
connection, and from then on the connection *is* the worker's task queue,
ingest wire, and reply channel in one — a single FIFO byte stream, which is
what gives control commands the same barrier ordering against in-flight
ingest batches that the shm ring provides with explicit barrier frames.

Wire format (all little-endian; one 9-byte header per frame)::

    header   <BQ>  frame type, payload byte length
    HELLO         pickled {"slot": int, "matrix_kwargs": dict}   parent -> agent
    HELLO_ACK     pickled {"pid": int}                           worker -> parent
    DATA          n = len/16 uint64 packed keys, then n uint64 value bits
    DATA_KEYONLY  n = len/8 uint64 packed keys (values = scalar 1)
    DATA_PICKLED  pickled (rows, cols, values)  [IPv6 / wide-dtype fallback]
    CONTROL       pickled (command, payload)
    REPLY         pickled (status, value)

Ingest frames carry the PR-1 packed ``uint64`` coordinate keys plus the
:class:`~repro.distributed.ringbuf.ValueCodec` raw value bits — no pickle on
the hot path, exactly the shm ring's payload, so the conformance battery's
bit-identity argument transfers unchanged.  All-ones batches (the traffic
workload) ship key-only.  Shapes that do not pack into 64 bits and value
types wider than 8 bytes fall back to pickled ingest frames on the same
connection, so the socket wire serves *every* shard configuration.

Failure model: a worker child sets ``PR_SET_PDEATHSIG`` so a SIGKILLed agent
takes all of its workers down with it, and a dead worker closes its
connection — the parent observes EOF (reply path) or a send error (ingest
path) instead of hanging.  The fault battery kills workers through
:class:`RemoteWorkerHandle`, which wraps the HELLO_ACK pid in the
``Process``-like surface (``kill`` / ``is_alive`` / ``join``) the existing
tests already use; pid-based liveness is meaningful for the localhost agents
the tests and benchmarks run — for genuinely remote nodes only the socket
EOF signal applies.
"""

from __future__ import annotations

import contextlib
import ctypes
import multiprocessing as mp
import os
import pickle
import signal
import socket
import struct
import time
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from ..graphblas import coords
from ..graphblas.types import lookup_dtype
from .ringbuf import ValueCodec
from .worker import CommandExecutor

__all__ = [
    "NodeAgent",
    "RemoteWorkerHandle",
    "spawn_local_agents",
    "restart_local_agent",
    "parse_address",
    "format_address",
]

# Frame types of the socket wire (module docstring has the layout).
F_HELLO = 1
F_HELLO_ACK = 2
F_DATA = 3
F_DATA_KEYONLY = 4
F_DATA_PICKLED = 5
F_CONTROL = 6
F_REPLY = 7

_HEADER = struct.Struct("<BQ")

#: Accept-loop tick: how often an idle agent reaps exited worker children.
_ACCEPT_TICK_SECONDS = 0.2

#: How long the agent waits for a connection's HELLO before dropping it.
_HELLO_TIMEOUT_SECONDS = 10.0

Address = Tuple[str, int]


def parse_address(addr: Union[str, Address]) -> Address:
    """Normalise ``"host:port"`` (or an ``(host, port)`` pair) to a pair."""
    if isinstance(addr, str):
        host, _, port = addr.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"expected 'host:port', got {addr!r}")
        return host, int(port)
    host, port = addr
    return str(host), int(port)


def format_address(addr: Union[str, Address]) -> str:
    """The canonical ``host:port`` string of an address."""
    host, port = parse_address(addr)
    return f"{host}:{port}"


# --------------------------------------------------------------------------- #
# frame I/O
# --------------------------------------------------------------------------- #


def send_frame(sock: socket.socket, ftype: int, payload) -> None:
    """Write one length-prefixed frame (header and payload in one send)."""
    sock.sendall(_HEADER.pack(ftype, len(payload)) + bytes(payload))


def send_pickled(sock: socket.socket, ftype: int, obj) -> None:
    """Write one frame whose payload is the pickled ``obj``."""
    send_frame(sock, ftype, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytearray]:
    """Read exactly ``n`` bytes, or None on EOF at a frame boundary.

    Returns a *writable* buffer so ingest arrays built on it need no second
    copy.  EOF in the middle of a frame is still returned as None — the peer
    died mid-send and the stream is unusable either way.
    """
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        try:
            r = sock.recv_into(view[got:], n - got)
        except (ConnectionResetError, BrokenPipeError, OSError):
            return None
        if r == 0:
            return None
        got += r
    return buf


def recv_frame(sock: socket.socket) -> Optional[Tuple[int, bytearray]]:
    """Read one ``(frame type, payload)`` frame, or None when the peer is gone."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    ftype, length = _HEADER.unpack(bytes(header))
    payload = _recv_exact(sock, int(length))
    if payload is None:
        return None
    return int(ftype), payload


# --------------------------------------------------------------------------- #
# worker side: one forked child per accepted connection
# --------------------------------------------------------------------------- #


def _set_parent_death_signal() -> None:
    """Arrange for SIGKILL when the agent (our parent) dies (Linux only).

    This is what makes "SIGKILL the node" mean "the node's workers are gone
    too" in the failover tests; on platforms without ``prctl`` the workers
    instead exit on the EOF their connection sees when the routing parent
    goes away.
    """
    if not hasattr(os, "fork"):  # pragma: no cover - fork implies unix
        return
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGKILL)  # PR_SET_PDEATHSIG = 1
    except Exception:  # pragma: no cover - non-Linux libc
        pass


class _SocketReplyChannel:
    """Adapter giving a connection the ``.put((status, value))`` surface the
    :class:`~repro.distributed.worker.CommandExecutor` reply protocol wants."""

    def __init__(self, conn: socket.socket) -> None:
        self._conn = conn

    def put(self, item) -> None:
        send_pickled(self._conn, F_REPLY, item)


def _serve_connection(conn: socket.socket, slot: int, matrix_kwargs) -> None:
    """Worker-child loop: one connection is task queue, wire, and replies.

    Frames are handled strictly in arrival order, so every control command is
    automatically a barrier against the ingest frames sent before it — the
    property the conformance battery pins for every transport.
    """
    _set_parent_death_signal()
    executor = CommandExecutor(slot, matrix_kwargs, _SocketReplyChannel(conn))
    kwargs = dict(matrix_kwargs or {})
    spec = coords.shape_split(
        int(kwargs.get("nrows", 2 ** 32)), int(kwargs.get("ncols", 2 ** 32))
    )
    np_type = lookup_dtype(kwargs.get("dtype", "fp64")).np_type
    codec = ValueCodec(np_type) if np_type.itemsize <= 8 else None
    send_pickled(conn, F_HELLO_ACK, {"pid": os.getpid()})
    while True:
        frame = recv_frame(conn)
        if frame is None:
            break  # routing parent is gone; nothing left to serve
        ftype, payload = frame
        if ftype == F_DATA:
            n = len(payload) // 16
            keys = np.frombuffer(payload, dtype=np.uint64, count=n)
            bits = np.frombuffer(payload, dtype=np.uint64, count=n, offset=8 * n)
            executor.ingest(lambda: (*coords.unpack(keys, spec), codec.decode(bits)))
        elif ftype == F_DATA_KEYONLY:
            keys = np.frombuffer(payload, dtype=np.uint64)
            # The producer proved every value's bit pattern equals scalar 1
            # in the shard dtype; the scalar broadcast in update() rebuilds
            # the identical array (same argument as the shm key-only frame).
            executor.ingest(lambda: (*coords.unpack(keys, spec), 1))
        elif ftype == F_DATA_PICKLED:
            executor.ingest(lambda: pickle.loads(bytes(payload)))
        elif ftype == F_CONTROL:
            cmd, cmd_payload = pickle.loads(bytes(payload))
            if cmd == "stop":
                break
            executor.execute(cmd, cmd_payload)
        # Unknown frame types are ignored (forward compatibility).
    with contextlib.suppress(OSError):
        conn.shutdown(socket.SHUT_RDWR)
    conn.close()


# --------------------------------------------------------------------------- #
# the agent
# --------------------------------------------------------------------------- #


class NodeAgent:
    """Hosts shard workers behind a listening TCP endpoint.

    The socket is bound (and the final port chosen) in the constructor, so a
    caller can fork the serve loop into a separate process and already know
    the address to hand to connecting transports.  Each accepted connection
    carries one HELLO, gets one freshly forked worker child, and is then
    served entirely by that child; the agent itself only accepts and reaps.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, backlog: int = 64):
        if not hasattr(os, "fork"):
            raise RuntimeError("NodeAgent requires a platform with os.fork")
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, int(port)))
        self._sock.listen(backlog)
        self.host, self.port = self._sock.getsockname()[:2]
        self._children: set = set()

    @property
    def address(self) -> Address:
        """The bound ``(host, port)`` endpoint."""
        return (self.host, self.port)

    def serve_forever(self) -> None:
        """Accept connections until the listening socket is closed."""
        self._sock.settimeout(_ACCEPT_TICK_SECONDS)
        while True:
            self._reap_children()
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listening socket closed: shut down
            self._spawn_worker(conn)

    def _spawn_worker(self, conn: socket.socket) -> None:
        conn.settimeout(_HELLO_TIMEOUT_SECONDS)
        try:
            frame = recv_frame(conn)
        except socket.timeout:  # pragma: no cover - defensive
            frame = None
        if frame is None or frame[0] != F_HELLO:
            conn.close()
            return
        hello = pickle.loads(bytes(frame[1]))
        pid = os.fork()
        if pid == 0:
            # Worker child: drop the listener, serve this connection forever.
            try:
                self._sock.close()
                conn.settimeout(None)
                _serve_connection(
                    conn, int(hello.get("slot", 0)), hello.get("matrix_kwargs")
                )
            finally:
                os._exit(0)
        self._children.add(pid)
        conn.close()

    def _reap_children(self) -> None:
        for pid in list(self._children):
            try:
                done, _ = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                done = pid
            if done:
                self._children.discard(pid)

    def close(self) -> None:
        """Stop accepting (the serve loop exits at its next tick)."""
        with contextlib.suppress(OSError):
            self._sock.close()


class RemoteWorkerHandle:
    """``multiprocessing.Process``-like view of an agent-hosted worker.

    Built from the pid in the worker's HELLO_ACK.  Gives the fault-injection
    suite the exact surface it already uses against forked workers —
    ``kill()`` / ``is_alive()`` / ``join()`` — valid whenever the agent runs
    on this machine (the localhost topology every test uses).
    """

    def __init__(self, pid: int) -> None:
        self.pid = int(pid)

    def is_alive(self) -> bool:
        try:
            os.kill(self.pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # pragma: no cover - exists, not ours
            return True
        # Signal 0 succeeds on zombies too; poll the proc state so a worker
        # the agent has not yet reaped still reads as dead.
        try:
            with open(f"/proc/{self.pid}/stat", "rb") as fh:
                return fh.read().rsplit(b")", 1)[-1].split()[0:1] != [b"Z"]
        except OSError:
            return True

    def kill(self) -> None:
        with contextlib.suppress(ProcessLookupError):
            os.kill(self.pid, signal.SIGKILL)

    terminate = kill

    def join(self, timeout: Optional[float] = None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.is_alive():
            if deadline is not None and time.monotonic() > deadline:
                return
            time.sleep(0.01)

    @property
    def exitcode(self) -> Optional[int]:
        """None while alive; the true code belongs to the agent that reaps."""
        return None if self.is_alive() else -signal.SIGKILL


@contextlib.contextmanager
def spawn_local_agents(
    n: int, *, host: str = "127.0.0.1"
) -> Iterator[Tuple[List[Address], List[mp.Process]]]:
    """Run ``n`` NodeAgents as local processes; yield (addresses, processes).

    The agents' listening sockets are bound *before* the serve loops fork, so
    the yielded addresses are immediately connectable.  The process handles
    are exposed so fault tests can SIGKILL an agent (taking its workers with
    it via the parent-death signal); remaining agents are terminated on exit.
    """
    ctx = mp.get_context("fork")
    agents: List[NodeAgent] = []
    procs: List[mp.Process] = []
    try:
        # Bind and fork ONE agent at a time, closing the parent's copy of
        # each listener before the next agent is created.  Forking them all
        # from a single snapshot would leak every listening fd into every
        # sibling process — and then a SIGKILLed agent's endpoint stays
        # half-alive (connectable, never accepted) for as long as any
        # sibling runs, which both defeats rejoin (the replacement agent
        # cannot rebind the port) and turns the supervisor's re-dial into
        # an indefinite hang instead of a clean connection refusal.
        for _ in range(n):
            agent = NodeAgent(host)
            proc = ctx.Process(target=agent.serve_forever, daemon=True)
            proc.start()
            agent.close()
            agents.append(agent)
            procs.append(proc)
        yield [a.address for a in agents], procs
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=5)
            if p.is_alive():  # pragma: no cover - defensive
                p.kill()


def restart_local_agent(
    address: Union[str, Address], *, attempts: int = 50, delay: float = 0.1
) -> mp.Process:
    """Start a fresh NodeAgent process re-binding a dead agent's ``address``.

    This is the operational half of the rejoin contract: the transport's
    ``respawn`` re-dials a retired slot's *original* endpoint, so recovery
    means bringing an agent back on exactly that ``host:port``.
    ``SO_REUSEADDR`` (set in :class:`NodeAgent`'s constructor) makes the
    rebind immediate even while old connections linger in ``TIME_WAIT``; the
    retry loop covers the brief window where the killed agent's listener has
    not been released by the kernel yet.  Like :func:`spawn_local_agents`,
    the socket is bound *before* the serve loop forks — when this returns,
    the endpoint is connectable and a rejoin supervisor's next resync
    attempt can succeed.  The caller owns the returned process handle.
    """
    host, port = parse_address(address)
    ctx = mp.get_context("fork")
    last_error: Optional[OSError] = None
    for _ in range(max(int(attempts), 1)):
        try:
            agent = NodeAgent(host, port)
        except OSError as exc:
            last_error = exc
            time.sleep(delay)
            continue
        proc = ctx.Process(target=agent.serve_forever, daemon=True)
        proc.start()
        agent.close()
        return proc
    raise RuntimeError(
        f"could not rebind agent endpoint {host}:{port}: {last_error}"
    )
